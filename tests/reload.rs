//! Live catalog reload: `Catalog::reload` swaps a document's `Arc` for
//! a freshly parsed `.usix` while queries are in flight. The race test
//! pins the contract — every concurrent answer is *exactly* the old or
//! the new version's answer, never a blend — and the corrupt-file test
//! pins the failure contract: a bad file leaves the old view serving.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use usi::prelude::*;
use usi::server::{respond, LoadOptions, ReloadError};

fn build(text: &[u8], seed: u64) -> UsiIndex {
    UsiBuilder::new()
        .with_k(16)
        .deterministic(seed)
        .build(WeightedString::uniform(text.to_vec(), 1.0))
}

fn write_usix(index: &UsiIndex, path: &std::path::Path) {
    let mut out = std::io::BufWriter::new(std::fs::File::create(path).unwrap());
    index.write_to(&mut out).unwrap();
    use std::io::Write;
    out.flush().unwrap();
}

fn temp_usix(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("usi-reload-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{name}.usix"))
}

const QUERY: &[u8] = br#"{"doc":"doc","patterns":["ab","abc","ca"]}"#;

#[test]
fn in_flight_queries_see_exactly_old_or_new_during_reload() {
    let path = temp_usix("doc");
    let v1 = build(b"abcabcabcabc", 1);
    let v2 = build(b"cacacacab", 2);
    write_usix(&v1, &path);

    let catalog = Arc::new(Catalog::new(4));
    catalog.load_usix_with(&path, LoadOptions { mmap: false, threads: 1 }).unwrap();

    // the two (and only two) legal answers, via the same handler
    let v1_body = respond(&catalog, "POST", "/v1/query", QUERY).body;
    write_usix(&v2, &path);
    catalog.reload("doc").unwrap();
    let v2_body = respond(&catalog, "POST", "/v1/query", QUERY).body;
    assert_ne!(v1_body, v2_body, "versions must be distinguishable for the race to mean anything");

    // readers hammer the doc while the main thread flips versions
    let stop = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = (0..4)
        .map(|_| {
            let catalog = Arc::clone(&catalog);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut bodies = Vec::new();
                while !stop.load(Ordering::SeqCst) {
                    let r = respond(&catalog, "POST", "/v1/query", QUERY);
                    assert_eq!(r.status, 200);
                    bodies.push(r.body);
                }
                bodies
            })
        })
        .collect();
    for round in 0..40 {
        write_usix(if round % 2 == 0 { &v1 } else { &v2 }, &path);
        catalog.reload("doc").unwrap();
    }
    stop.store(true, Ordering::SeqCst);
    let mut total = 0;
    for reader in readers {
        for body in reader.join().unwrap() {
            assert!(
                body == v1_body || body == v2_body,
                "a concurrent query answered with a state that is neither version"
            );
            total += 1;
        }
    }
    assert!(total > 0, "the race test never actually raced");

    // the reload counter made it to the exposed metrics
    let metrics = respond(&catalog, "GET", "/metrics", b"").body;
    assert!(metrics.contains("usi_catalog_reloads_total"), "{metrics}");
}

#[test]
fn corrupt_reload_leaves_the_old_document_serving() {
    let path = temp_usix("corrupt");
    let v1 = build(b"abababab", 3);
    write_usix(&v1, &path);

    let catalog = Arc::new(Catalog::new(4));
    catalog.load_usix_with(&path, LoadOptions { mmap: false, threads: 1 }).unwrap();
    let before = respond(&catalog, "POST", "/v1/query", br#"{"doc":"corrupt","patterns":["ab"]}"#);

    std::fs::write(&path, b"this is not a usix file").unwrap();
    let err = catalog.reload("corrupt");
    assert!(matches!(err, Err(ReloadError::Load(_))), "{err:?}");
    // the HTTP route reports the failure without dropping the doc
    let r = respond(&catalog, "POST", "/v1/docs/corrupt/reload", b"");
    assert_eq!(r.status, 500, "{}", r.body);
    assert!(r.body.contains("old view keeps serving"), "{}", r.body);

    let after = respond(&catalog, "POST", "/v1/query", br#"{"doc":"corrupt","patterns":["ab"]}"#);
    assert_eq!(after.status, 200);
    assert_eq!(after.body, before.body, "a failed reload must not disturb the serving document");
}

#[test]
fn reload_http_route_contract() {
    let path = temp_usix("route");
    write_usix(&build(b"xyxyxy", 4), &path);
    let catalog = Arc::new(Catalog::new(4));
    catalog.load_usix_with(&path, LoadOptions { mmap: false, threads: 1 }).unwrap();
    // an in-memory document has no backing file to reload from
    catalog.insert("mem", build(b"zzz", 5));

    let r = respond(&catalog, "POST", "/v1/docs/route/reload", b"");
    assert_eq!(r.status, 200, "{}", r.body);
    let parsed = usi::server::Json::parse(&r.body).unwrap();
    assert_eq!(parsed.get("reloaded").and_then(usi::server::Json::as_bool), Some(true));
    assert_eq!(parsed.get("id").and_then(usi::server::Json::as_str), Some("route"));

    assert_eq!(respond(&catalog, "POST", "/v1/docs/ghost/reload", b"").status, 404);
    assert_eq!(respond(&catalog, "POST", "/v1/docs/mem/reload", b"").status, 409);
    assert_eq!(respond(&catalog, "GET", "/v1/docs/route/reload", b"").status, 405);
}
