//! Cross-crate miner comparisons: the paper's effectiveness ordering
//! (ET exact, AT close, TT/SH far) on the synthetic corpora.

use usi::core::metrics::{estimates_as_reported, evaluate};
use usi::core::{approximate_top_k, exact_top_k, ApproxConfig, SubstringRef};
use usi::datasets::{Dataset, ALL_DATASETS};
use usi::streams::{SubstringHk, SubstringMiner, TopKTrie};

#[test]
fn at_dominates_streaming_adaptations_on_every_dataset() {
    for ds in ALL_DATASETS {
        let ws = ds.generate(12_000, 111);
        let text = ws.text();
        let k = 60;
        let (exact, sa) = exact_top_k(text, k);

        let at = approximate_top_k(text, &ApproxConfig::new(k, ds.spec().default_s.min(8)));
        let at_score = evaluate(text, &sa, &exact, &estimates_as_reported(&at.items));

        let tt_out = TopKTrie::new().mine(text, k);
        let tt_reported: Vec<(SubstringRef, u64)> =
            tt_out.into_iter().map(|m| (SubstringRef::Owned(m.bytes), m.freq)).collect();
        let tt_score = evaluate(text, &sa, &exact, &tt_reported);

        let sh_out = SubstringHk::with_seed(113).mine(text, k);
        let sh_reported: Vec<(SubstringRef, u64)> =
            sh_out.into_iter().map(|m| (SubstringRef::Owned(m.bytes), m.freq)).collect();
        let sh_score = evaluate(text, &sa, &exact, &sh_reported);

        let name = ds.spec().name;
        assert!(
            at_score.ndcg >= tt_score.ndcg && at_score.ndcg >= sh_score.ndcg,
            "{name}: AT NDCG {} vs TT {} vs SH {}",
            at_score.ndcg,
            tt_score.ndcg,
            sh_score.ndcg
        );
        assert!(
            at_score.accuracy >= tt_score.accuracy,
            "{name}: AT accuracy {} < TT {}",
            at_score.accuracy,
            tt_score.accuracy
        );
        assert!(
            at_score.relative_error <= tt_score.relative_error + 1e-9,
            "{name}: AT RE {} vs TT {}",
            at_score.relative_error,
            tt_score.relative_error
        );
    }
}

#[test]
fn at_single_round_is_exact_on_every_dataset() {
    for ds in ALL_DATASETS {
        let ws = ds.generate(6_000, 121);
        let k = 40;
        let (exact, sa) = exact_top_k(ws.text(), k);
        let at = approximate_top_k(ws.text(), &ApproxConfig::new(k, 1));
        let score = evaluate(ws.text(), &sa, &exact, &estimates_as_reported(&at.items));
        assert_eq!(score.accuracy, 1.0, "{}", ds.spec().name);
        assert!(score.relative_error.abs() < 1e-12);
        assert!((score.ndcg - 1.0).abs() < 1e-12);
    }
}

#[test]
fn at_error_is_one_sided_on_every_dataset() {
    use usi::suffix::{suffix_array, SuffixArraySearcher};
    for ds in ALL_DATASETS {
        let ws = ds.generate(6_000, 131);
        let text = ws.text();
        let sa = suffix_array(text);
        let searcher = SuffixArraySearcher::new(text, &sa);
        for s in [2usize, 5] {
            let at = approximate_top_k(text, &ApproxConfig::new(50, s));
            for item in &at.items {
                let true_freq = searcher.count(item.bytes(text)) as u64;
                assert!(
                    item.freq <= true_freq,
                    "{}: overestimate {} > {true_freq}",
                    ds.spec().name,
                    item.freq
                );
            }
        }
    }
}

#[test]
fn more_rounds_trade_accuracy_for_space() {
    // Theorem 3: extra space O(n/s + K) shrinks with s; the tracked peak
    // must be monotonically non-increasing (modulo small-constant noise).
    let ds = Dataset::Hum;
    let ws = ds.generate(40_000, 141);
    let mut peaks = Vec::new();
    for s in [2usize, 4, 8, 16] {
        let at = approximate_top_k(ws.text(), &ApproxConfig::new(200, s));
        peaks.push(at.peak_tracked_bytes);
    }
    assert!(peaks.windows(2).all(|w| w[1] <= w[0] + w[0] / 4), "peaks not shrinking: {peaks:?}");
    assert!(*peaks.last().unwrap() < peaks[0], "16 rounds should use less space than 2: {peaks:?}");
}
