//! End-to-end exercise of the ingestion subsystem across the stack:
//! durable appends through the HTTP serving layer, a simulated crash
//! (process state dropped, WAL survives — torn tail included), and a
//! replay that must answer exactly like a from-scratch build over the
//! concatenated weighted string.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use usi::ingest::{replay_file, IngestConfig, IngestPipeline};
use usi::prelude::*;
use usi::server::json::Json;
use usi::server::serve;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn tmp_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("usi-ingest-e2e").join(name);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Dyadic weights: aggregates are exact in f64, so recovered answers
/// can be compared with `==` against a from-scratch build.
fn dyadic_weights(seed: u64, n: usize) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(0..8) as f64 * 0.25).collect()
}

fn build_base(seed: u64, n: usize) -> (UsiIndex, Vec<u8>, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let text: Vec<u8> = (0..n).map(|_| b'a' + rng.gen_range(0..3u8)).collect();
    let weights = dyadic_weights(seed ^ 1, n);
    let index = UsiBuilder::new()
        .with_k(25)
        .deterministic(seed)
        .build(WeightedString::new(text.clone(), weights.clone()).unwrap());
    (index, text, weights)
}

/// One blocking HTTP exchange; returns (status, body).
fn exchange(addr: SocketAddr, request: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to test server");
    stream.write_all(request.as_bytes()).unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    let (head, body) = response.split_once("\r\n\r\n").expect("complete response");
    let status: u16 = head.split(' ').nth(1).and_then(|s| s.parse().ok()).expect("status code");
    (status, body.to_string())
}

fn post(addr: SocketAddr, path: &str, body: &str) -> (u16, String) {
    exchange(
        addr,
        &format!(
            "POST {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        ),
    )
}

#[test]
fn kill_and_replay_restores_the_served_state() {
    let dir = tmp_dir("kill-replay");
    let wal_path = dir.join("doc.usil");
    let _ = std::fs::remove_file(&wal_path);
    let (base, mut full_text, mut full_weights) = build_base(5, 300);

    let config = IngestConfig {
        seal_threshold: 32,
        compact_fanout: 2,
        background_compaction: true, // exercise the compactor thread too
        ..IngestConfig::default()
    };
    let (pipeline, _) = IngestPipeline::open(base.clone(), &wal_path, config.clone()).unwrap();

    // durable appends in several batches
    let mut rng = StdRng::seed_from_u64(77);
    for batch in 0..8 {
        let len = rng.gen_range(1..60usize);
        let text: Vec<u8> = (0..len).map(|_| b'a' + rng.gen_range(0..3u8)).collect();
        let weights = dyadic_weights(1000 + batch, len);
        pipeline.append(&text, &weights).unwrap();
        full_text.extend_from_slice(&text);
        full_weights.extend_from_slice(&weights);
    }
    assert_eq!(pipeline.with_state(|s| s.text()), full_text);
    drop(pipeline); // kill: no shutdown step beyond the per-append fsyncs

    // a torn half-record at the tail, as a crash mid-write would leave
    let mut bytes = std::fs::read(&wal_path).unwrap();
    let clean_len = bytes.len();
    bytes.extend_from_slice(&[0x55; 7]);
    std::fs::write(&wal_path, &bytes).unwrap();

    let (recovered, replay) = IngestPipeline::open(base, &wal_path, config).unwrap();
    assert!(replay.truncated, "the torn tail must be detected");
    assert_eq!(replay.valid_len as usize, clean_len);
    assert_eq!(replay.records.len(), 8, "all acknowledged appends survive");
    assert_eq!(recovered.with_state(|s| s.text()), full_text);

    // recovered answers ≡ a from-scratch build over the concatenation
    let scratch = UsiBuilder::new()
        .with_k(25)
        .deterministic(5)
        .build(WeightedString::new(full_text.clone(), full_weights).unwrap());
    let mut rng = StdRng::seed_from_u64(99);
    for _ in 0..120 {
        let m = rng.gen_range(1..40usize).min(full_text.len());
        let i = rng.gen_range(0..=full_text.len() - m);
        let pattern = &full_text[i..i + m];
        let got = recovered.query(pattern);
        let want = scratch.query(pattern);
        assert_eq!(got.occurrences, want.occurrences, "pattern {pattern:?}");
        assert_eq!(got.value, want.value, "pattern {pattern:?}");
    }

    // and the reopened log is clean again: replaying it finds no tear
    drop(recovered);
    assert!(!replay_file(&wal_path).unwrap().truncated);
}

#[test]
fn http_appends_survive_a_server_kill() {
    let dir = tmp_dir("http-kill");
    let wal_path = dir.join("live.usil");
    let _ = std::fs::remove_file(&wal_path);
    let (base, base_text, base_weights) = build_base(9, 120);

    let config = IngestConfig {
        seal_threshold: 16,
        compact_fanout: 2,
        background_compaction: true,
        ..IngestConfig::default()
    };
    let catalog = Arc::new(Catalog::new(2));
    let (pipeline, _) = IngestPipeline::open(base.clone(), &wal_path, config.clone()).unwrap();
    catalog.insert_ingest("live", pipeline);

    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let handle = serve(Arc::clone(&catalog), listener, ServerConfig::with_workers(2)).unwrap();
    let addr = handle.addr();

    // appends through the HTTP API, some with explicit dyadic weights
    let (status, body) = post(addr, "/v1/docs/live/append", r#"{"text":"abcabcab","weight":0.5}"#);
    assert_eq!(status, 200, "{body}");
    let (status, body) =
        post(addr, "/v1/docs/live/append", r#"{"text":"cab","weights":[0.25,1.75,1.0]}"#);
    assert_eq!(status, 200, "{body}");
    let parsed = Json::parse(&body).unwrap();
    assert_eq!(parsed.get("n").and_then(Json::as_f64), Some(120.0 + 11.0));

    // the served answer equals the in-process one
    let (status, body) = post(addr, "/v1/query", r#"{"doc":"live","patterns":["abc","cab"]}"#);
    assert_eq!(status, 200);
    let doc = catalog.get("live").unwrap();
    let direct = doc.query(b"abc");
    let parsed = Json::parse(&body).unwrap();
    let results = parsed.get("results").and_then(Json::as_array).unwrap();
    assert_eq!(
        results[0].get("occurrences").and_then(Json::as_f64),
        Some(direct.occurrences as f64)
    );

    // kill the server and the in-process state
    handle.shutdown();
    drop(catalog);

    // replay from the WAL alone: the full string is base + both appends
    let mut full_text = base_text;
    let mut full_weights = base_weights;
    full_text.extend_from_slice(b"abcabcab");
    full_weights.extend_from_slice(&[0.5; 8]);
    full_text.extend_from_slice(b"cab");
    full_weights.extend_from_slice(&[0.25, 1.75, 1.0]);

    let (recovered, replay) = IngestPipeline::open(base, &wal_path, config).unwrap();
    assert_eq!(replay.records.len(), 2);
    assert_eq!(recovered.with_state(|s| s.text()), full_text);
    let scratch = UsiBuilder::new()
        .with_k(25)
        .deterministic(9)
        .build(WeightedString::new(full_text, full_weights).unwrap());
    for pattern in [&b"abc"[..], b"cab", b"bca", b"ab", b"zzz"] {
        let got = recovered.query(pattern);
        let want = scratch.query(pattern);
        assert_eq!(got.occurrences, want.occurrences, "pattern {pattern:?}");
        assert_eq!(got.value, want.value, "pattern {pattern:?}");
    }
}
