//! End-to-end exercise of the epoll connection reactor's edge cases:
//! idle connections surviving without pinning workers, peer resets,
//! idle-timeout eviction ordering, the `max_connections` 503, shutdown
//! promptness (eventfd wake, no throwaway connection), and a socket
//! that turns readable mid-shutdown.
//!
//! Everything here runs through the public `serve()` entry point with
//! the reactor on (the Linux default), so the whole dispatch loop —
//! epoll registration, readiness dispatch, pool hand-off, re-arm — is
//! under test, not internals. The file is Linux-only like the reactor;
//! on other targets `serve()` takes the thread-per-connection path and
//! these properties (idle conns ≫ workers in particular) don't hold.
#![cfg(target_os = "linux")]

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};
use usi::prelude::*;
use usi::server::json::Json;
use usi::server::{serve, Catalog, ServerConfig, ServerHandle};

fn catalog() -> Arc<Catalog> {
    let catalog = Catalog::new(2);
    let ws = WeightedString::new(b"abracadabra_abracadabra".to_vec(), vec![1.0; 23]).unwrap();
    let index = UsiBuilder::new().with_k(12).deterministic(42).build(ws);
    catalog.insert("abra", index);
    Arc::new(catalog)
}

fn start(config: ServerConfig) -> ServerHandle {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    serve(catalog(), listener, config).unwrap()
}

/// Writes one keep-alive GET and reads its `Content-Length`-framed
/// response, leaving the connection open; returns (status, body).
fn keep_alive_get(stream: &mut TcpStream, addr: SocketAddr, path: &str) -> (u16, String) {
    stream.write_all(format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\n\r\n").as_bytes()).unwrap();
    read_framed_response(stream)
}

fn read_framed_response(stream: &mut TcpStream) -> (u16, String) {
    let mut bytes = Vec::new();
    let head_end = loop {
        if let Some(pos) = bytes.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos;
        }
        let mut chunk = [0u8; 512];
        let got = stream.read(&mut chunk).expect("response head");
        assert!(got > 0, "server closed mid-head: {:?}", String::from_utf8_lossy(&bytes));
        bytes.extend_from_slice(&chunk[..got]);
    };
    let head = String::from_utf8(bytes[..head_end].to_vec()).unwrap();
    let status: u16 = head.split(' ').nth(1).and_then(|s| s.parse().ok()).expect("status code");
    let content_length: usize = head
        .lines()
        .find_map(|l| l.strip_prefix("Content-Length: "))
        .expect("Content-Length")
        .trim()
        .parse()
        .unwrap();
    let mut body = bytes[head_end + 4..].to_vec();
    let already = body.len();
    body.resize(content_length, 0);
    stream.read_exact(&mut body[already..]).expect("response body");
    (status, String::from_utf8(body).unwrap())
}

/// Polls `probe` until it returns true or the deadline passes.
fn eventually(what: &str, deadline: Duration, probe: impl Fn() -> bool) {
    let start = Instant::now();
    while start.elapsed() < deadline {
        if probe() {
            return;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    panic!("timed out after {deadline:?} waiting for {what}");
}

#[test]
fn idle_connections_outnumber_workers() {
    // The reactor's whole point: 64 parked keep-alive connections served
    // from ONE worker. The threaded fallback would deadlock here (the
    // first connection would pin the only worker forever).
    let handle = start(ServerConfig::with_workers(1));
    let addr = handle.addr();

    let mut conns: Vec<TcpStream> = (0..64).map(|_| TcpStream::connect(addr).unwrap()).collect();
    for conn in &mut conns {
        let (status, body) = keep_alive_get(conn, addr, "/healthz");
        assert_eq!(status, 200);
        assert!(body.contains(r#""status":"ok""#), "{body}");
    }
    eventually("64 open connections", Duration::from_secs(5), || handle.open_connections() == 64);

    // every connection still answers a second round while the other 63
    // sit parked in the epoll set
    for conn in &mut conns {
        let (status, _) = keep_alive_get(conn, addr, "/healthz");
        assert_eq!(status, 200);
    }
    assert_eq!(handle.open_connections(), 64);
    drop(conns);
    eventually("connections drained", Duration::from_secs(5), || handle.open_connections() == 0);
    handle.shutdown();
}

#[test]
fn peer_reset_evicts_the_parked_connection() {
    // EPOLLHUP/EPOLLERR path: a client that vanishes with response
    // bytes unread makes the kernel send RST; the parked socket's error
    // event must dispatch and the reactor must reap the connection.
    let handle = start(ServerConfig::with_workers(2));
    let addr = handle.addr();

    for _ in 0..8 {
        let mut stream = TcpStream::connect(addr).unwrap();
        let (status, _) = keep_alive_get(&mut stream, addr, "/healthz");
        assert_eq!(status, 200);
        // second response is written by the server but never read here:
        // closing with unread receive-buffer data turns FIN into RST
        stream
            .write_all(format!("GET /healthz HTTP/1.1\r\nHost: {addr}\r\n\r\n").as_bytes())
            .unwrap();
        drop(stream);
    }
    eventually("reset connections reaped", Duration::from_secs(5), || {
        handle.open_connections() == 0
    });
    handle.shutdown();
}

#[test]
fn idle_timeout_evicts_older_connections_first() {
    let config =
        ServerConfig { idle_timeout: Duration::from_millis(300), ..ServerConfig::with_workers(1) };
    let handle = start(config);
    let addr = handle.addr();

    // A parks ~200ms before B, well past the wheel's granularity
    // (300ms/16 clamped to 20ms), so A's deadline tick strictly
    // precedes B's.
    let mut a = TcpStream::connect(addr).unwrap();
    assert_eq!(keep_alive_get(&mut a, addr, "/healthz").0, 200);
    std::thread::sleep(Duration::from_millis(200));
    let mut b = TcpStream::connect(addr).unwrap();
    assert_eq!(keep_alive_get(&mut b, addr, "/healthz").0, 200);

    // blocking read on A returns 0 when the server evicts it
    let mut sink = [0u8; 64];
    a.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    assert_eq!(a.read(&mut sink).expect("EOF, not an error"), 0, "A evicted by idle timeout");
    // …at which point B (deadline ~200ms later) must still be live
    let (status, _) = keep_alive_get(&mut b, addr, "/healthz");
    assert_eq!(status, 200, "B outlives A's eviction");
    handle.shutdown();
}

#[test]
fn over_capacity_connects_get_503_with_the_uniform_error_body() {
    let config = ServerConfig { max_connections: 2, ..ServerConfig::with_workers(2) };
    let handle = start(config);
    let addr = handle.addr();

    let mut first = TcpStream::connect(addr).unwrap();
    let mut second = TcpStream::connect(addr).unwrap();
    assert_eq!(keep_alive_get(&mut first, addr, "/healthz").0, 200);
    assert_eq!(keep_alive_get(&mut second, addr, "/healthz").0, 200);
    eventually("both connections counted", Duration::from_secs(5), || {
        handle.open_connections() == 2
    });

    // third connect: answered 503 and closed without entering the set
    let mut third = TcpStream::connect(addr).unwrap();
    let mut response = String::new();
    third.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    third.read_to_string(&mut response).expect("503 then EOF");
    let (head, body) = response.split_once("\r\n\r\n").expect("complete response");
    assert!(head.starts_with("HTTP/1.1 503"), "{head}");
    assert!(head.contains("Connection: close"), "{head}");
    let parsed = Json::parse(body).unwrap_or_else(|e| panic!("{e}: {body}"));
    assert!(parsed.get("error").and_then(Json::as_str).is_some(), "{body}");
    assert_eq!(parsed.get("status").and_then(Json::as_f64), Some(503.0), "{body}");
    assert_eq!(handle.open_connections(), 2, "rejected connect never counted");

    // capacity freed: closing one admits the next client
    drop(first);
    eventually("slot freed", Duration::from_secs(5), || handle.open_connections() == 1);
    let mut replacement = TcpStream::connect(addr).unwrap();
    assert_eq!(keep_alive_get(&mut replacement, addr, "/healthz").0, 200);
    handle.shutdown();
}

#[test]
fn shutdown_is_prompt_with_zero_connections() {
    // the eventfd wake: no live or throwaway connection is needed to
    // interrupt the reactor's epoll_wait
    let handle = start(ServerConfig::with_workers(2));
    let started = Instant::now();
    handle.shutdown();
    assert!(started.elapsed() < Duration::from_secs(2), "took {:?}", started.elapsed());
}

#[test]
fn shutdown_is_prompt_with_parked_and_readable_connections() {
    let handle = start(ServerConfig::with_workers(1));
    let addr = handle.addr();

    // one connection parked idle…
    let mut parked = TcpStream::connect(addr).unwrap();
    assert_eq!(keep_alive_get(&mut parked, addr, "/healthz").0, 200);
    // …and one that turns readable right as shutdown begins
    let mut readable = TcpStream::connect(addr).unwrap();
    assert_eq!(keep_alive_get(&mut readable, addr, "/healthz").0, 200);
    readable
        .write_all(format!("GET /healthz HTTP/1.1\r\nHost: {addr}\r\n\r\n").as_bytes())
        .unwrap();

    let started = Instant::now();
    handle.shutdown();
    assert!(started.elapsed() < Duration::from_secs(2), "took {:?}", started.elapsed());

    // both sockets end at EOF (or a reset) — never a hang
    for (name, stream) in [("parked", &mut parked), ("readable", &mut readable)] {
        stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let mut rest = Vec::new();
        match stream.read_to_end(&mut rest) {
            Ok(_) => {}
            Err(e) => assert_ne!(
                e.kind(),
                std::io::ErrorKind::WouldBlock,
                "{name} still open after shutdown"
            ),
        }
    }
}

#[test]
fn disabling_the_reactor_still_serves_keep_alive() {
    // --no-reactor / non-Linux fallback: same observable behaviour for
    // a small number of connections (each pins a worker)
    let config = ServerConfig { reactor: false, ..ServerConfig::with_workers(4) };
    let handle = start(config);
    let addr = handle.addr();

    let mut conns: Vec<TcpStream> = (0..3).map(|_| TcpStream::connect(addr).unwrap()).collect();
    for conn in &mut conns {
        assert_eq!(keep_alive_get(conn, addr, "/healthz").0, 200);
        assert_eq!(keep_alive_get(conn, addr, "/healthz").0, 200);
    }
    eventually("3 open connections", Duration::from_secs(5), || handle.open_connections() == 3);
    drop(conns);
    handle.shutdown();
}
