//! Cross-crate checks of the Section-V oracle against real builds and
//! real workloads: the tuning predictions must match what the built
//! index actually does.

use usi::core::oracle::TopKOracle;
use usi::datasets::Dataset;
use usi::prelude::*;

#[test]
fn predictions_match_built_index_across_k() {
    let ws = Dataset::Adv.generate(8_000, 71);
    let (oracle, _) = TopKOracle::from_text(ws.text());
    for k in [10u64, 50, 200, 1000] {
        let predicted = oracle.tune_for_k(k).unwrap();
        let index = UsiBuilder::new().with_k(k as usize).deterministic(73).build(ws.clone());
        let stats = index.stats();
        assert_eq!(stats.tau, Some(predicted.tau), "k={k}");
        assert_eq!(stats.distinct_lengths, predicted.distinct_lengths as usize, "k={k}");
        assert_eq!(stats.k_stored, k as usize, "k={k}");
    }
}

#[test]
fn tau_parameterisation_matches_task_iii() {
    let ws = Dataset::Hum.generate(8_000, 81);
    let (oracle, _) = TopKOracle::from_text(ws.text());
    for tau in [5u32, 10, 40] {
        let predicted = oracle.tune_for_tau(tau);
        let index = UsiBuilder::new().with_tau(tau).deterministic(83).build(ws.clone());
        assert_eq!(index.cached_substrings() as u64, predicted.k, "tau={tau}");
    }
}

#[test]
fn tau_bounds_fallback_occurrences() {
    // Theorem 1: any pattern answered through the text index occurs at
    // most τ_K times.
    let ws = Dataset::Ecoli.generate(8_000, 91);
    let index = UsiBuilder::new().with_k(300).deterministic(93).build(ws.clone());
    let tau = index.stats().tau.unwrap() as u64;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(95);
    for _ in 0..300 {
        let m = rng.gen_range(1..10usize);
        let i = rng.gen_range(0..ws.len() - m);
        let pat = &ws.text()[i..i + m];
        let q = index.query(pat);
        if q.source == QuerySource::TextIndex {
            assert!(
                q.occurrences <= tau,
                "uncached pattern {pat:?} has {} occurrences > tau {tau}",
                q.occurrences
            );
        }
    }
}

#[test]
fn workloads_exercise_both_query_paths() {
    use usi::datasets::w1;
    let ws = Dataset::Xml.generate(20_000, 101);
    let (oracle, sa) = TopKOracle::from_text(ws.text());
    let workload = w1(ws.text(), &oracle, &sa, 500, 50, (1, 100), 103);
    let index = UsiBuilder::new().with_k(ws.len() / 100).deterministic(105).build(ws.clone());
    let mut hits = 0usize;
    let mut misses = 0usize;
    for q in &workload.queries {
        match index.query(q).source {
            QuerySource::HashTable => hits += 1,
            QuerySource::TextIndex => misses += 1,
        }
    }
    // W1 draws 90% of its queries from the top-(n/50) frequent
    // substrings while the index caches only the top-(n/100), so a
    // substantial share of queries hits the hash table and the rest
    // (outside the cached set, or the random 10%) use the fallback.
    assert!(hits * 4 >= workload.len(), "too few hits: {hits} vs misses {misses}");
    assert!(misses > 0, "workload never used the fallback path");
}
