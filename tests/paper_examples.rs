//! The paper's worked examples, verified end to end, plus a suffix-tree
//! cross-check of the suffix-array machinery.

use usi::prelude::*;
use usi::suffix::SuffixTree;

fn example1() -> WeightedString {
    WeightedString::new(
        b"ATACCCCGATAATACCCCAG".to_vec(),
        vec![
            0.9, 1.0, 3.0, 2.0, 0.7, 1.0, 1.0, 0.6, 0.5, 0.5, 0.5, 0.8, 1.0, 1.0, 1.0, 0.9, 1.0,
            1.0, 0.8, 1.0,
        ],
    )
    .unwrap()
}

#[test]
fn paper_example_1_via_the_index() {
    // "P = TACCCC occurs in S at positions 1 and 12. USI returns
    //  U(P) = (1+3+2+0.7+1+1) + (1+1+1+0.9+1+1) = 14.6."
    for k in [1usize, 4, 16, 64] {
        let index = UsiBuilder::new().with_k(k).deterministic(171).build(example1());
        let q = index.query(b"TACCCC");
        assert_eq!(q.occurrences, 2, "k={k}");
        assert!((q.value.unwrap() - 14.6).abs() < 1e-9, "k={k}");
    }
}

#[test]
fn paper_example_1_via_the_sampler_built_index() {
    let index = UsiBuilder::new()
        .with_k(16)
        .with_strategy(TopKStrategy::Approximate { rounds: 3, lce: LceBackend::Naive })
        .deterministic(173)
        .build(example1());
    let q = index.query(b"TACCCC");
    assert_eq!(q.occurrences, 2);
    assert!((q.value.unwrap() - 14.6).abs() < 1e-9);
}

#[test]
fn suffix_tree_and_suffix_array_count_identically() {
    // ST(S) (Ukkonen) and SA(S) (SA-IS) are interchangeable text
    // indexes; every substring of the Example-1 text must agree.
    let ws = example1();
    let st = SuffixTree::from_text(ws.text());
    let index = UsiBuilder::new().with_k(8).deterministic(177).build(ws.clone());
    let n = ws.len();
    for i in 0..n {
        for len in 1..=(n - i).min(8) {
            let pat = &ws.text()[i..i + len];
            assert_eq!(st.count(pat) as u64, index.query(pat).occurrences, "pattern {pat:?}");
        }
    }
}

#[test]
fn top_k_frequent_substrings_of_example_1() {
    use usi::core::exact_top_k;
    let ws = example1();
    // The single most frequent substring of S is "C" (8 occurrences,
    // vs 7 for "A").
    let (top, sa) = exact_top_k(ws.text(), 3);
    assert_eq!(top[0].bytes(ws.text(), &sa), b"C");
    assert_eq!(top[0].freq(), 8);
    assert_eq!(top[1].bytes(ws.text(), &sa), b"A");
    assert_eq!(top[1].freq(), 7);
    // K = 1 ⇒ τ_K = max frequency: the paper's extreme-case discussion.
    use usi::core::TopKOracle;
    let (oracle, _) = TopKOracle::from_text(ws.text());
    assert_eq!(oracle.tune_for_k(1).unwrap().tau, 8);
}
