//! End-to-end: build `USI_TOP-K` over every synthetic corpus and verify
//! queries against brute force, across both mining strategies.

use usi::datasets::{Dataset, ALL_DATASETS};
use usi::prelude::*;
use usi::strings::GlobalUtility;

fn check_index(index: &UsiIndex, patterns: &[Vec<u8>]) {
    let u = index.utility();
    for pat in patterns {
        let want = u.brute_force(index.weighted_string().expect("owned index"), pat);
        let got = index.query(pat);
        assert_eq!(got.occurrences, want.count(), "pattern {pat:?}");
        match (got.value, want.finish(u.aggregator)) {
            (Some(a), Some(b)) => {
                assert!((a - b).abs() < 1e-6 * (1.0 + b.abs()), "pattern {pat:?}: {a} vs {b}")
            }
            (a, b) => assert_eq!(a, b, "pattern {pat:?}"),
        }
    }
}

fn sample_patterns(text: &[u8], seed: u64) -> Vec<Vec<u8>> {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pats = Vec::new();
    for _ in 0..60 {
        let m = rng.gen_range(1..12usize).min(text.len());
        let i = rng.gen_range(0..=text.len() - m);
        pats.push(text[i..i + m].to_vec());
    }
    pats.push(b"\xff\xfe\xfd".to_vec()); // absent
    pats.push(text[..text.len().min(64)].to_vec()); // long prefix
    pats
}

#[test]
fn every_dataset_exact_strategy() {
    for ds in ALL_DATASETS {
        let ws = ds.generate(4_000, 21);
        let patterns = sample_patterns(ws.text(), 22);
        let index = UsiBuilder::new().with_k(100).deterministic(23).build(ws);
        check_index(&index, &patterns);
    }
}

#[test]
fn every_dataset_approximate_strategy() {
    for ds in ALL_DATASETS {
        let ws = ds.generate(4_000, 31);
        let patterns = sample_patterns(ws.text(), 32);
        let index = UsiBuilder::new()
            .with_k(100)
            .with_strategy(TopKStrategy::Approximate {
                rounds: ds.spec().default_s.min(8),
                lce: LceBackend::Naive,
            })
            .deterministic(33)
            .build(ws);
        check_index(&index, &patterns);
    }
}

#[test]
fn exact_and_approximate_agree_on_answers() {
    // UAT may cache a different substring set, but every answer must be
    // identical — only the query path may differ.
    let ws = Dataset::Hum.generate(6_000, 41);
    let uet = UsiBuilder::new().with_k(150).deterministic(43).build(ws.clone());
    let uat = UsiBuilder::new()
        .with_k(150)
        .with_strategy(TopKStrategy::Approximate { rounds: 4, lce: LceBackend::Naive })
        .deterministic(43)
        .build(ws.clone());
    for pat in sample_patterns(ws.text(), 44) {
        let a = uet.query(&pat);
        let b = uat.query(&pat);
        assert_eq!(a.occurrences, b.occurrences, "{pat:?}");
        match (a.value, b.value) {
            (Some(x), Some(y)) => assert!((x - y).abs() < 1e-6 * (1.0 + y.abs()), "{pat:?}"),
            (x, y) => assert_eq!(x, y, "{pat:?}"),
        }
    }
}

#[test]
fn utility_weighted_vs_count_consistency() {
    // With unit weights and the Sum aggregator, U(P) = |occ(P)| · |P|.
    let ws = WeightedString::uniform(Dataset::Adv.generate(3_000, 51).text().to_vec(), 1.0);
    let index = UsiBuilder::new().with_k(80).deterministic(53).build(ws.clone());
    let u = GlobalUtility::sum_of_sums();
    for pat in sample_patterns(ws.text(), 54) {
        let q = index.query(&pat);
        let occ = u.brute_force(&ws, &pat).count();
        assert_eq!(q.occurrences, occ);
        assert!((q.value.unwrap() - (occ as f64 * pat.len() as f64)).abs() < 1e-9);
    }
}

#[test]
fn index_size_reports_are_complete() {
    let ws = Dataset::Xml.generate(5_000, 61);
    let index = UsiBuilder::new().with_k(100).deterministic(63).build(ws);
    let size = index.size_breakdown();
    assert_eq!(size.text, 5_000);
    assert_eq!(size.weights, 5_000 * 8);
    assert!(size.suffix_array >= 5_000 * 4);
    assert!(size.psw >= 5_000 * 8);
    assert!(size.hash_table > 0);
    assert_eq!(
        size.total(),
        size.text + size.weights + size.suffix_array + size.psw + size.hash_table
    );
}
