//! End-to-end replication: a primary catalog shipping its WAL over TCP
//! to an in-process follower, compared **byte-for-byte** through the
//! same HTTP handler (`usi::server::respond`); then a fan-out front end
//! whose documents are [`RemoteDoc`] proxies over two real HTTP shard
//! servers, checked against a single-process catalog holding the same
//! indexes.

use std::net::TcpListener;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};
use usi::prelude::*;
use usi::repl::{
    FollowSource, Follower, FollowerConfig, FollowerDoc, RemoteDoc, Shipper, ShipperConfig,
};
use usi::server::json::Json;
use usi::server::{respond, serve, LoadOptions, Role};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn sample_ws(seed: u64, n: usize) -> WeightedString {
    let mut rng = StdRng::seed_from_u64(seed);
    let text: Vec<u8> = (0..n).map(|_| b'a' + rng.gen_range(0..3u8)).collect();
    let weights: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..2.0)).collect();
    WeightedString::new(text, weights).unwrap()
}

fn build(seed: u64, n: usize) -> UsiIndex {
    UsiBuilder::new().with_k(64).deterministic(seed).build(sample_ws(seed, n))
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("usi-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn write_usix(index: &UsiIndex, path: &std::path::Path) {
    let mut out = std::io::BufWriter::new(std::fs::File::create(path).unwrap());
    index.write_to(&mut out).unwrap();
    use std::io::Write;
    out.flush().unwrap();
}

fn wait_until(deadline: Duration, mut done: impl FnMut() -> bool) -> bool {
    let stop = Instant::now() + deadline;
    while Instant::now() < stop {
        if done() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    done()
}

#[test]
fn follower_converges_to_byte_identical_answers_and_survives_the_primary() {
    let dir = temp_dir("repl-e2e");
    let usix = dir.join("d.usix");
    write_usix(&build(11, 400), &usix);

    // primary: one ingest-enabled document, synchronous compaction so
    // its structure is a deterministic function of the appended letters
    let primary = Arc::new(Catalog::new(4));
    let config = IngestConfig {
        seal_threshold: 32,
        compact_fanout: 2,
        sync_wal: false,
        background_compaction: false,
        ..IngestConfig::default()
    };
    let opts = LoadOptions { mmap: false, threads: 1 };
    primary.load_usix_ingest_with(&usix, &dir.join("d.usil"), config.clone(), opts).unwrap();
    primary.set_role(Role::Primary);
    let shipper = Shipper::start(
        TcpListener::bind("127.0.0.1:0").unwrap(),
        Arc::clone(&primary) as _,
        ShipperConfig { poll_interval: Duration::from_millis(10), ..ShipperConfig::default() },
    )
    .unwrap();

    // follower: the same base image, replayed live from the stream
    let fdoc = Arc::new(FollowerDoc::new(
        "d",
        build(11, 400),
        IngestOptions {
            seal_threshold: config.seal_threshold,
            compact_fanout: config.compact_fanout,
            threads: config.threads,
            seed: config.seed,
            segment_dir: None,
        },
    ));
    let follower_catalog = Arc::new(Catalog::new(4));
    follower_catalog.insert_engine("d", Arc::clone(&fdoc) as _);
    follower_catalog.set_role(Role::Follower);
    let follower = Follower::start(
        vec![Arc::clone(&fdoc)],
        &FollowSource::Tcp(shipper.addr().to_string()),
        FollowerConfig { poll_interval: Duration::from_millis(10), ..FollowerConfig::default() },
    );
    follower_catalog.set_replication(follower.status());

    // writes land on the primary through the public HTTP handler; the
    // batch sizes deliberately cross seal and compaction boundaries
    let mut appended = 0u64;
    for (i, len) in [7usize, 40, 3, 90, 21].into_iter().enumerate() {
        let mut rng = StdRng::seed_from_u64(100 + i as u64);
        let text: String = (0..len).map(|_| char::from(b'a' + rng.gen_range(0..3u8))).collect();
        let weights: Vec<String> =
            (0..len).map(|_| format!("{:.3}", rng.gen_range(0.0..2.0))).collect();
        let body = format!(r#"{{"text":"{text}","weights":[{}]}}"#, weights.join(","));
        let r = respond(&primary, "POST", "/v1/docs/d/append", body.as_bytes());
        assert_eq!(r.status, 200, "{}", r.body);
        appended += 1;
    }

    // replication lag converges to zero
    assert!(
        wait_until(Duration::from_secs(30), || {
            fdoc.applied_records() == appended && fdoc.lag_records() == 0
        }),
        "follower stuck at {} applied / lag {}",
        fdoc.applied_records(),
        fdoc.lag_records()
    );
    assert!(fdoc.is_connected());

    // the follower's /healthz declares its role and replication state
    let health = respond(&follower_catalog, "GET", "/healthz", b"");
    assert_eq!(health.status, 200);
    let parsed = Json::parse(&health.body).unwrap();
    assert_eq!(parsed.get("role").and_then(Json::as_str), Some("follower"));
    let replication = parsed.get("replication").expect("follower healthz carries replication");
    assert_eq!(replication.get("connected").and_then(Json::as_bool), Some(true));
    assert_eq!(replication.get("lag_records").and_then(Json::as_f64), Some(0.0));
    let health = respond(&primary, "GET", "/healthz", b"");
    assert_eq!(
        Json::parse(&health.body).unwrap().get("role").and_then(Json::as_str),
        Some("primary")
    );

    // byte-identical answers through the same HTTP handler, both the
    // plain and the accumulator-carrying encodings
    let queries = [
        r#"{"doc":"d","patterns":["ab","abc","bca","zzz","a"]}"#,
        r#"{"doc":"d","patterns":["ab","abc","bca","zzz","a"],"acc":true}"#,
        r#"{"doc":"*","patterns":["cab","bb"],"acc":true}"#,
    ];
    for body in queries {
        let p = respond(&primary, "POST", "/v1/query", body.as_bytes());
        let f = respond(&follower_catalog, "POST", "/v1/query", body.as_bytes());
        assert_eq!(p.status, 200, "{}", p.body);
        assert_eq!(p.body, f.body, "primary and follower disagree for {body}");
    }

    // the primary dies; the follower keeps answering (stale, observable)
    shipper.shutdown();
    drop(primary);
    assert!(wait_until(Duration::from_secs(30), || !fdoc.is_connected()));
    let r = respond(&follower_catalog, "POST", "/v1/query", queries[0].as_bytes());
    assert_eq!(r.status, 200);
    // and appends are refused — the (dead) primary owns the log
    let r = respond(&follower_catalog, "POST", "/v1/docs/d/append", br#"{"text":"x"}"#);
    assert_eq!(r.status, 409, "{}", r.body);

    follower.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fan_out_front_end_matches_a_single_process_catalog() {
    // two real HTTP shard servers, two documents each…
    let mut shard_handles = Vec::new();
    let mut shard_addrs = Vec::new();
    let reference = Arc::new(Catalog::new(4));
    for shard in 0..2u64 {
        let catalog = Arc::new(Catalog::new(4));
        for doc in 0..2u64 {
            let id = format!("s{shard}d{doc}");
            catalog.insert(id.clone(), build(40 + 2 * shard + doc, 300));
            reference.insert(id, build(40 + 2 * shard + doc, 300));
        }
        let handle = serve(
            catalog,
            TcpListener::bind("127.0.0.1:0").unwrap(),
            ServerConfig::with_workers(2),
        )
        .unwrap();
        shard_addrs.push(handle.addr().to_string());
        shard_handles.push(handle);
    }

    // …behind a front end whose documents are remote "*" proxies
    let front = Arc::new(Catalog::new(4));
    for addr in &shard_addrs {
        let remote = RemoteDoc::connect(addr, "*", Duration::from_secs(10)).unwrap();
        front.insert_engine(addr.clone(), Arc::new(remote) as _);
    }

    let body = r#"{"doc":"*","patterns":["abc","ba","ccc","zzzz"],"acc":true}"#;
    let front_body = respond(&front, "POST", "/v1/query", body.as_bytes());
    let reference_body = respond(&reference, "POST", "/v1/query", body.as_bytes());
    assert_eq!(front_body.status, 200, "{}", front_body.body);
    assert_eq!(reference_body.status, 200);

    // per-doc rows differ (shards vs documents) but the merged totals,
    // accumulators and utility function must agree exactly
    let front_json = Json::parse(&front_body.body).unwrap();
    let reference_json = Json::parse(&reference_body.body).unwrap();
    assert_eq!(
        front_json.get("utility").map(Json::encode),
        reference_json.get("utility").map(Json::encode),
    );
    let front_results = front_json.get("results").and_then(Json::as_array).unwrap();
    let reference_results = reference_json.get("results").and_then(Json::as_array).unwrap();
    assert_eq!(front_results.len(), reference_results.len());
    for (f, r) in front_results.iter().zip(reference_results) {
        for field in ["pattern", "occurrences", "value", "acc"] {
            assert_eq!(
                f.get(field).map(Json::encode),
                r.get(field).map(Json::encode),
                "fan-out through remote shards diverged on {field:?} for {:?}",
                f.get("pattern"),
            );
        }
    }

    for handle in shard_handles {
        handle.shutdown();
    }
}
