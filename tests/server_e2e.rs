//! End-to-end exercise of the serving layer: several indexes in a
//! sharded [`Catalog`], the HTTP server on an ephemeral port, and every
//! response checked **byte-for-byte** against answers computed directly
//! on the in-process [`UsiIndex`]es — so the whole path (routing, batch
//! spread, fan-out merge, JSON encoding) is pinned to the library's
//! ground truth.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use usi::prelude::*;
use usi::server::json::{fan_out_response_json, query_response_json, Json};
use usi::server::{serve, FanOut};
use usi::strings::UtilityAccumulator;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn sample_index(seed: u64, n: usize) -> UsiIndex {
    let mut rng = StdRng::seed_from_u64(seed);
    let text: Vec<u8> = (0..n).map(|_| b'a' + rng.gen_range(0..3u8)).collect();
    let weights: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..2.0)).collect();
    let ws = WeightedString::new(text, weights).unwrap();
    UsiBuilder::new().with_k(80).deterministic(seed).build(ws)
}

/// One blocking HTTP exchange; returns (status, body).
fn exchange(addr: SocketAddr, request: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to test server");
    stream.write_all(request.as_bytes()).unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    let (head, body) = response.split_once("\r\n\r\n").expect("complete response");
    let status: u16 = head.split(' ').nth(1).and_then(|s| s.parse().ok()).expect("status code");
    (status, body.to_string())
}

fn get(addr: SocketAddr, path: &str) -> (u16, String) {
    // one-shot helpers opt out of keep-alive so read-to-EOF framing works
    exchange(addr, &format!("GET {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n"))
}

fn post(addr: SocketAddr, path: &str, body: &str) -> (u16, String) {
    exchange(
        addr,
        &format!(
            "POST {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        ),
    )
}

/// Reads one `Content-Length`-framed response from a persistent
/// connection (a keep-alive client cannot read to EOF).
fn read_framed_response(stream: &mut TcpStream) -> (u16, String, bool) {
    let mut bytes = Vec::new();
    let head_end = loop {
        if let Some(pos) = bytes.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos;
        }
        let mut chunk = [0u8; 512];
        let got = stream.read(&mut chunk).expect("response head");
        assert!(got > 0, "server closed mid-head: {:?}", String::from_utf8_lossy(&bytes));
        bytes.extend_from_slice(&chunk[..got]);
    };
    let head = String::from_utf8(bytes[..head_end].to_vec()).unwrap();
    let status: u16 = head.split(' ').nth(1).and_then(|s| s.parse().ok()).expect("status code");
    let content_length: usize = head
        .lines()
        .find_map(|l| l.strip_prefix("Content-Length: "))
        .expect("Content-Length")
        .trim()
        .parse()
        .unwrap();
    let keep_alive = head.contains("Connection: keep-alive");
    let mut body = bytes[head_end + 4..].to_vec();
    let already = body.len();
    body.resize(content_length, 0);
    stream.read_exact(&mut body[already..]).expect("response body");
    (status, String::from_utf8(body).unwrap(), keep_alive)
}

fn query_body(doc: &str, patterns: &[&[u8]]) -> String {
    let items = patterns
        .iter()
        .map(|p| Json::str(String::from_utf8(p.to_vec()).expect("test patterns are UTF-8")))
        .collect();
    Json::Obj(vec![("doc".into(), Json::str(doc)), ("patterns".into(), Json::Arr(items))]).encode()
}

#[test]
fn catalog_server_answers_match_direct_queries_byte_for_byte() {
    // three documents, kept in hand for ground-truth answers
    let names = ["alpha", "beta", "gamma"];
    let indexes: Vec<UsiIndex> =
        [(1u64, 1_500), (2, 2_200), (3, 900)].iter().map(|&(s, n)| sample_index(s, n)).collect();

    let catalog = Arc::new(Catalog::new(4));
    for (name, index) in names.iter().zip(&indexes) {
        catalog.insert(*name, index.clone());
    }

    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
    let handle =
        serve(Arc::clone(&catalog), listener, ServerConfig::with_workers(3)).expect("start server");
    let addr = handle.addr();

    // ---- health and listing --------------------------------------------
    let (status, body) = get(addr, "/healthz");
    assert_eq!(status, 200);
    // healthz carries extra fields (version, uptime); the leading keys
    // stay pinned so grep-style probes keep working
    assert!(body.starts_with(r#"{"status":"ok","docs":3"#), "unexpected healthz body: {body}");

    let (status, body) = get(addr, "/v1/docs");
    assert_eq!(status, 200);
    let parsed = Json::parse(&body).unwrap();
    let listed: Vec<&str> = parsed
        .get("docs")
        .and_then(Json::as_array)
        .unwrap()
        .iter()
        .map(|d| d.get("id").and_then(Json::as_str).unwrap())
        .collect();
    assert_eq!(listed, names);

    let (status, body) = get(addr, "/v1/docs/beta/stats");
    assert_eq!(status, 200);
    let parsed = Json::parse(&body).unwrap();
    assert_eq!(parsed.get("n").and_then(Json::as_f64), Some(indexes[1].text().len() as f64));

    // ---- a mixed pattern batch -----------------------------------------
    let mut rng = StdRng::seed_from_u64(99);
    let beta_text = indexes[1].text().to_vec();
    let mut patterns: Vec<Vec<u8>> = (0..40)
        .map(|_| {
            let m = rng.gen_range(1..10usize);
            let i = rng.gen_range(0..beta_text.len() - m);
            beta_text[i..i + m].to_vec()
        })
        .collect();
    patterns.push(b"zzzz".to_vec());
    let refs: Vec<&[u8]> = patterns.iter().map(Vec::as_slice).collect();

    // ---- single-document batch: byte-for-byte vs direct queries -------
    let direct: Vec<UsiQuery> = refs.iter().map(|p| indexes[1].query(p)).collect();
    let expected = query_response_json("beta", &refs, &direct).encode();
    let (status, body) = post(addr, "/v1/query", &query_body("beta", &refs));
    assert_eq!(status, 200);
    assert_eq!(body, expected, "server batch answers must equal direct UsiIndex::query answers");

    // ---- fan-out: byte-for-byte vs per-index ground truth --------------
    let fans: Vec<FanOut> = refs
        .iter()
        .map(|p| {
            let mut merged = UtilityAccumulator::new();
            let per_doc: Vec<(String, UsiQuery)> = names
                .iter()
                .zip(&indexes)
                .map(|(name, index)| {
                    let (acc, _) = index.query_accumulator(p);
                    merged.merge(&acc);
                    (name.to_string(), index.query(p))
                })
                .collect();
            FanOut {
                per_doc,
                total_occurrences: merged.count(),
                total_value: merged.finish(indexes[0].utility().aggregator),
                total_acc: merged,
                utility: Some(indexes[0].utility()),
            }
        })
        .collect();
    let expected = fan_out_response_json(&refs, &fans).encode();
    let (status, body) = post(addr, "/v1/query", &query_body("*", &refs));
    assert_eq!(status, 200);
    assert_eq!(body, expected, "fan-out must merge exactly the per-index accumulators");

    // ---- catalog batch spread equals the serial loop at any width ------
    for threads in [1usize, 3, 16] {
        assert_eq!(catalog.query_batch("beta", &refs, threads).unwrap(), direct);
    }

    // ---- error paths ----------------------------------------------------
    assert_eq!(post(addr, "/v1/query", &query_body("missing", &refs)).0, 404);
    assert_eq!(post(addr, "/v1/query", "{broken").0, 400);
    assert_eq!(get(addr, "/v1/docs/missing/stats").0, 404);

    handle.shutdown();
    assert!(
        TcpStream::connect(addr).is_err(),
        "server must stop accepting connections after shutdown"
    );
}

#[test]
fn keep_alive_connection_stays_open_across_sequential_requests() {
    let index = sample_index(7, 1_200);
    let catalog = Arc::new(Catalog::new(2));
    catalog.insert("solo", index.clone());
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
    let handle =
        serve(Arc::clone(&catalog), listener, ServerConfig::with_workers(1)).expect("start server");
    let addr = handle.addr();

    // one TCP connection, several request/response exchanges on it —
    // the pre-keep-alive server closed after the first
    let mut stream = TcpStream::connect(addr).expect("connect once");
    let local = stream.local_addr().unwrap();

    for round in 0..3 {
        stream.write_all(b"GET /healthz HTTP/1.1\r\nHost: test\r\n\r\n").unwrap();
        let (status, body, keep_alive) = read_framed_response(&mut stream);
        assert_eq!(status, 200, "round {round}");
        assert!(body.starts_with(r#"{"status":"ok","docs":1"#), "round {round}: {body}");
        assert!(keep_alive, "round {round}: server must advertise keep-alive");
        // the socket is provably the same one: the local port never changed
        assert_eq!(stream.local_addr().unwrap(), local, "round {round}");
    }

    // a query on the same connection answers byte-for-byte like a
    // direct index call — keep-alive changes framing, not answers
    let patterns: Vec<&[u8]> = vec![b"ab", b"zzz"];
    let body = query_body("solo", &patterns);
    stream
        .write_all(
            format!(
                "POST /v1/query HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n{body}",
                body.len()
            )
            .as_bytes(),
        )
        .unwrap();
    let direct: Vec<UsiQuery> = patterns.iter().map(|p| index.query(p)).collect();
    let expected = query_response_json("solo", &patterns, &direct).encode();
    let (status, body, keep_alive) = read_framed_response(&mut stream);
    assert_eq!(status, 200);
    assert_eq!(body, expected);
    assert!(keep_alive);

    // asking to close ends the connection cleanly (EOF after response)
    stream.write_all(b"GET /healthz HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n").unwrap();
    let (status, _, keep_alive) = read_framed_response(&mut stream);
    assert_eq!(status, 200);
    assert!(!keep_alive, "final response must say Connection: close");
    let mut rest = Vec::new();
    stream.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty(), "no bytes after the final response");

    handle.shutdown();
}
