//! Expected-frequency queries: the paper's Section-I bioinformatics
//! motivation ("researchers are interested in evaluating the quality of
//! a DNA pattern by computing its expected frequency in a collection of
//! DNA strings with confidence scores"). With per-base correctness
//! probabilities as weights, a `Product` local window and a `Sum`
//! aggregate, `U(P)` is the expected number of correctly-read
//! occurrences of `P`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use usi::prelude::*;
use usi::strings::LocalWindow;

fn dna_with_probabilities(n: usize, seed: u64) -> WeightedString {
    let mut rng = StdRng::seed_from_u64(seed);
    let text: Vec<u8> = (0..n).map(|_| b"ACGT"[rng.gen_range(0..4)]).collect();
    let weights: Vec<f64> = (0..n).map(|_| rng.gen_range(0.8..1.0)).collect();
    WeightedString::new(text, weights).unwrap()
}

fn brute_expected_frequency(ws: &WeightedString, pat: &[u8]) -> f64 {
    let (n, m) = (ws.len(), pat.len());
    let mut total = 0.0;
    for i in 0..=(n - m) {
        if &ws.text()[i..i + m] == pat {
            total += ws.weights()[i..i + m].iter().product::<f64>();
        }
    }
    total
}

#[test]
fn expected_frequency_matches_brute_force() {
    let ws = dna_with_probabilities(2_000, 301);
    let index = UsiBuilder::new()
        .with_k(100)
        .with_local_window(LocalWindow::Product)
        .deterministic(303)
        .build(ws.clone());
    let mut rng = StdRng::seed_from_u64(305);
    for _ in 0..100 {
        let m = rng.gen_range(1..8usize);
        let i = rng.gen_range(0..ws.len() - m);
        let pat = &ws.text()[i..i + m];
        let want = brute_expected_frequency(&ws, pat);
        let got = index.query(pat).value.unwrap();
        assert!((got - want).abs() < 1e-9 * (1.0 + want), "pattern {pat:?}: {got} vs {want}");
    }
}

#[test]
fn expected_frequency_bounded_by_count() {
    // with probabilities < 1, E[freq] < true frequency, and both agree
    // in the limit of weight 1.0
    let ws = dna_with_probabilities(1_500, 311);
    let product_idx = UsiBuilder::new()
        .with_k(60)
        .with_local_window(LocalWindow::Product)
        .deterministic(313)
        .build(ws.clone());
    let certain = WeightedString::uniform(ws.text().to_vec(), 1.0);
    let certain_idx = UsiBuilder::new()
        .with_k(60)
        .with_local_window(LocalWindow::Product)
        .deterministic(313)
        .build(certain);
    let mut rng = StdRng::seed_from_u64(315);
    for _ in 0..60 {
        let m = rng.gen_range(1..6usize);
        let i = rng.gen_range(0..ws.len() - m);
        let pat = &ws.text()[i..i + m];
        let expected = product_idx.query(pat).value.unwrap();
        let q = certain_idx.query(pat);
        assert!(expected <= q.occurrences as f64 + 1e-9, "pattern {pat:?}");
        assert!((q.value.unwrap() - q.occurrences as f64).abs() < 1e-9);
    }
}

#[test]
fn expected_frequency_survives_persistence() {
    let ws = dna_with_probabilities(800, 321);
    let index = UsiBuilder::new()
        .with_k(40)
        .with_local_window(LocalWindow::Product)
        .deterministic(323)
        .build(ws.clone());
    let mut buf = Vec::new();
    index.write_to(&mut buf).unwrap();
    let loaded = UsiIndex::read_from(&mut buf.as_slice()).unwrap();
    for pat in [&ws.text()[0..4], &ws.text()[10..13], b"ACGT"] {
        assert_eq!(index.query(pat).value, loaded.query(pat).value);
    }
}

#[test]
fn dynamic_appends_with_product_locals() {
    let ws = dna_with_probabilities(300, 331);
    let mut idx = DynamicUsi::new(
        UsiBuilder::new().with_k(20).with_local_window(LocalWindow::Product).deterministic(333),
        ws.clone(),
        1_000,
    );
    let mut rng = StdRng::seed_from_u64(335);
    let mut shadow_text = ws.text().to_vec();
    let mut shadow_weights = ws.weights().to_vec();
    for _ in 0..50 {
        let b = b"ACGT"[rng.gen_range(0..4)];
        let w = rng.gen_range(0.8..1.0);
        idx.push(b, w);
        shadow_text.push(b);
        shadow_weights.push(w);
    }
    let shadow = WeightedString::new(shadow_text, shadow_weights).unwrap();
    for _ in 0..40 {
        let m = rng.gen_range(1..6usize);
        let i = rng.gen_range(0..shadow.len() - m);
        let pat = &shadow.text()[i..i + m];
        let want = brute_expected_frequency(&shadow, pat);
        let got = idx.query(pat).value.unwrap();
        assert!((got - want).abs() < 1e-9 * (1.0 + want), "pattern {pat:?}");
    }
}
