//! End-to-end determinism of parallel builds over realistic corpora:
//! Markov-generated texts (the DNA-like repeat structure the paper's
//! HUM/ECOLI stand-ins use) and the five full dataset profiles must
//! build **byte-identical** `.usix` images at every thread count. The
//! per-crate tests pin the same invariant on random and degenerate
//! inputs; this one drives the whole `usi` stack the way the CLI does.

use proptest::prelude::*;
use usi::datasets::markov::MarkovChain;
use usi::prelude::*;
use usi::strings::WeightedString;

fn usix_bytes(ws: &WeightedString, k: usize, threads: usize) -> Vec<u8> {
    let index =
        UsiBuilder::new().with_k(k).with_threads(threads).deterministic(0xabcd).build(ws.clone());
    let mut buf = Vec::new();
    index.write_to(&mut buf).expect("in-memory serialisation cannot fail");
    buf
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]
    #[test]
    fn markov_builds_are_thread_count_invariant(
        seed in any::<u32>(),
        order in 0usize..3,
        sigma in 2usize..6,
        n in 1usize..3000,
        k in 1usize..80,
    ) {
        let chain = MarkovChain::new(sigma, order, 1.2, seed as u64);
        let letters = chain.generate(n, seed as u64 ^ 0x9e37);
        let text: Vec<u8> = letters.into_iter().map(|l| b'a' + l).collect();
        let ws = WeightedString::uniform(text, 1.0);
        let serial = usix_bytes(&ws, k, 1);
        for threads in [2usize, 3, 8] {
            prop_assert_eq!(&usix_bytes(&ws, k, threads), &serial);
        }
    }
}

#[test]
fn dataset_profiles_are_thread_count_invariant() {
    // every corpus profile (varied alphabets, planted repeats, weights)
    for ds in usi::datasets::ALL_DATASETS {
        let ws = ds.generate(4_000, 5);
        let serial = usix_bytes(&ws, 64, 1);
        for threads in [2usize, 4] {
            assert_eq!(
                usix_bytes(&ws, 64, threads),
                serial,
                "{:?} differs at {threads} threads",
                ds
            );
        }
    }
}
