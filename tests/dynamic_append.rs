//! Dynamic USI (Section X): appends must preserve exact answers at all
//! times, across epoch boundaries, on realistic corpora.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use usi::datasets::Dataset;
use usi::prelude::*;

#[test]
fn streaming_appends_stay_exact_across_epochs() {
    let history = Dataset::Iot.generate(3_000, 151);
    let live = Dataset::Iot.generate(1_500, 152);
    let mut index = DynamicUsi::new(
        UsiBuilder::new().with_k(60).deterministic(153),
        history.clone(),
        500, // several epoch rebuilds over the stream
    );

    let mut shadow_text = history.text().to_vec();
    let mut shadow_weights = history.weights().to_vec();
    let mut rng = StdRng::seed_from_u64(154);

    for (i, (&b, &w)) in live.text().iter().zip(live.weights()).enumerate() {
        index.push(b, w);
        shadow_text.push(b);
        shadow_weights.push(w);
        if i % 250 == 37 {
            let shadow = WeightedString::new(shadow_text.clone(), shadow_weights.clone()).unwrap();
            let u = shadow.psw();
            for _ in 0..12 {
                let m = rng.gen_range(1..8usize);
                let start = rng.gen_range(0..shadow.len() - m);
                let pat = shadow.text()[start..start + m].to_vec();
                let q = index.query(&pat);
                // brute force over the shadow
                let mut occ = 0u64;
                let mut sum = 0.0f64;
                for j in 0..=(shadow.len() - m) {
                    if &shadow.text()[j..j + m] == pat.as_slice() {
                        occ += 1;
                        sum += u.local(j, m);
                    }
                }
                assert_eq!(q.occurrences, occ, "pattern {pat:?} at step {i}");
                assert!(
                    (q.value.unwrap() - sum).abs() < 1e-6 * (1.0 + sum.abs()),
                    "pattern {pat:?} at step {i}"
                );
            }
        }
    }
    assert!(index.rebuilds() >= 2, "epochs never fired");
    assert_eq!(index.len(), 4_500);
}

#[test]
fn manual_rebuild_is_transparent() {
    let ws = Dataset::Adv.generate(2_000, 161);
    let mut index = DynamicUsi::new(
        UsiBuilder::new().with_k(40).deterministic(163),
        ws,
        1_000_000, // no automatic rebuilds
    );
    for b in b"abcabcabc" {
        index.push(*b, 0.5);
    }
    let pat = b"abcabc".to_vec();
    let before = index.query(&pat);
    index.rebuild();
    let after = index.query(&pat);
    assert_eq!(before.occurrences, after.occurrences);
    assert!((before.value.unwrap() - after.value.unwrap()).abs() < 1e-9);
    assert_eq!(index.tail_len(), 0);
}
