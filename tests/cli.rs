//! Integration tests for the `usi` command-line tool: build → persist →
//! query round-trips through real files and processes.

use std::io::Write;
use std::process::Command;

fn usi() -> Command {
    Command::new(env!("CARGO_BIN_EXE_usi"))
}

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("usi-cli-tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

#[test]
fn build_query_roundtrip() {
    let text_path = tmp("t1.txt");
    std::fs::File::create(&text_path)
        .unwrap()
        .write_all(b"abracadabra_abracadabra_abracadabra")
        .unwrap();
    let index_path = tmp("t1.usix");

    let out = usi()
        .args([
            "build",
            text_path.to_str().unwrap(),
            "--k",
            "10",
            "--seed",
            "5",
            "-o",
            index_path.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    let out = usi().args(["query", index_path.to_str().unwrap(), "abra", "zzz"]).output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 2);
    // abra occurs 6 times; with unit weights, sum-of-sums = 6·4 = 24
    assert_eq!(lines[0].split('\t').collect::<Vec<_>>()[..3], ["abra", "6", "24"]);
    assert_eq!(lines[1].split('\t').collect::<Vec<_>>()[..2], ["zzz", "0"]);
}

#[test]
fn build_with_weights_file() {
    let text_path = tmp("t2.txt");
    std::fs::File::create(&text_path).unwrap().write_all(b"abab").unwrap();
    let weights_path = tmp("t2.weights");
    std::fs::File::create(&weights_path).unwrap().write_all(b"1.0 2.0 3.0 4.0").unwrap();
    let index_path = tmp("t2.usix");
    let out = usi()
        .args([
            "build",
            text_path.to_str().unwrap(),
            "--weights",
            weights_path.to_str().unwrap(),
            "--k",
            "3",
            "-o",
            index_path.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    // "ab" occurs at 0 (1+2=3) and 2 (3+4=7): U = 10
    let out = usi().args(["query", index_path.to_str().unwrap(), "ab"]).output().unwrap();
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert_eq!(stdout.trim().split('\t').collect::<Vec<_>>()[..3], ["ab", "2", "10"]);
}

#[test]
fn stats_and_topk_and_tradeoff() {
    let text_path = tmp("t3.txt");
    std::fs::File::create(&text_path).unwrap().write_all(&b"banana".repeat(20)).unwrap();
    let index_path = tmp("t3.usix");
    assert!(usi()
        .args([
            "build",
            text_path.to_str().unwrap(),
            "--tau",
            "10",
            "-o",
            index_path.to_str().unwrap(),
        ])
        .status()
        .unwrap()
        .success());

    let out = usi().args(["stats", index_path.to_str().unwrap()]).output().unwrap();
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("n\t120"));
    assert!(stdout.contains("cached substrings"));

    let out = usi().args(["topk", text_path.to_str().unwrap(), "--k", "3"]).output().unwrap();
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert_eq!(stdout.lines().count(), 3);
    // most frequent single letters of banana^20: a (60), n (40), b (20)
    assert!(stdout.lines().next().unwrap().starts_with("60\ta"));

    let out =
        usi().args(["tradeoff", text_path.to_str().unwrap(), "--points", "4"]).output().unwrap();
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.lines().next().unwrap().contains("tau"));
    assert!(stdout.lines().count() >= 2);
}

#[test]
fn ingest_appends_replays_and_matches_scratch_build() {
    use std::process::Stdio;
    let text_path = tmp("t4.txt");
    std::fs::File::create(&text_path).unwrap().write_all(b"abcabcabc").unwrap();
    let base_path = tmp("t4-base.usix");
    assert!(usi()
        .args([
            "build",
            text_path.to_str().unwrap(),
            "--k",
            "8",
            "--seed",
            "42",
            "-o",
            base_path.to_str().unwrap(),
        ])
        .status()
        .unwrap()
        .success());

    // interactive session: append twice, query once
    let wal_path = tmp("t4.usil");
    let _ = std::fs::remove_file(&wal_path);
    let mut child = usi()
        .args([
            "ingest",
            base_path.to_str().unwrap(),
            "--wal",
            wal_path.to_str().unwrap(),
            "--seal-threshold",
            "4",
            "--compact-fanout",
            "2",
            "--json",
        ])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    child
        .stdin
        .take()
        .unwrap()
        .write_all(b"append abc\nappendw 1 abc\nquery abc\nstats\n")
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8(out.stdout).unwrap();
    // "abc" occurs 5 times in "abcabcabc" + "abcabc": U = 5·3 = 15
    assert!(
        stdout.contains(r#"{"pattern":"abc","occurrences":5,"value":15"#),
        "unexpected ingest output:\n{stdout}"
    );
    assert!(stdout.contains("n\t15"), "stats must report the grown length:\n{stdout}");

    // crash-recovery mode: replay the WAL, answers must match a
    // from-scratch build over the concatenated text
    let out = usi()
        .args([
            "ingest",
            base_path.to_str().unwrap(),
            "--wal",
            wal_path.to_str().unwrap(),
            "--replay",
            "--query",
            "abc",
            "--query",
            "cab",
            "--json",
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let replayed = String::from_utf8(out.stdout).unwrap();

    let full_path = tmp("t4-full.txt");
    std::fs::File::create(&full_path).unwrap().write_all(b"abcabcabcabcabc").unwrap();
    let full_index = tmp("t4-full.usix");
    assert!(usi()
        .args([
            "build",
            full_path.to_str().unwrap(),
            "--k",
            "8",
            "--seed",
            "42",
            "-o",
            full_index.to_str().unwrap(),
        ])
        .status()
        .unwrap()
        .success());
    let out = usi()
        .args(["query", "--json", full_index.to_str().unwrap(), "abc", "cab"])
        .output()
        .unwrap();
    let scratch = String::from_utf8(out.stdout).unwrap();
    // compare pattern/occurrences/value line by line (the `source` field
    // may legitimately differ between the segmented and monolithic index)
    for (replayed_line, scratch_line) in replayed.lines().zip(scratch.lines()) {
        let strip = |line: &str| line.split(r#","source""#).next().unwrap_or_default().to_string();
        assert_eq!(strip(replayed_line), strip(scratch_line));
    }
    assert_eq!(replayed.lines().count(), 2);
}

#[test]
fn bad_usage_exits_nonzero() {
    assert!(!usi().args(["frobnicate"]).status().unwrap().success());
    assert!(!usi().args(["build"]).status().unwrap().success());
    assert!(!usi().args(["query", "/nonexistent/file.usix", "a"]).status().unwrap().success());
    assert!(!usi().args(["ingest", "/nonexistent/file.usix"]).status().unwrap().success());
}

#[test]
fn corrupted_index_rejected() {
    let bogus = tmp("bogus.usix");
    std::fs::File::create(&bogus).unwrap().write_all(b"not an index").unwrap();
    let out = usi().args(["query", bogus.to_str().unwrap(), "a"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("load failed"));
}

#[test]
fn inspect_validates_and_mmap_query_matches_owned() {
    let text_path = tmp("t9.txt");
    std::fs::File::create(&text_path)
        .unwrap()
        .write_all(b"abracadabra_abracadabra_abracadabra")
        .unwrap();
    let index_path = tmp("t9.usix");
    let out = usi()
        .args([
            "build",
            text_path.to_str().unwrap(),
            "--k",
            "10",
            "--seed",
            "5",
            "-o",
            index_path.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    // inspect: header, section sizes, checksum status
    let out = usi().args(["inspect", index_path.to_str().unwrap()]).output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("status\tvalid"), "{stdout}");
    assert!(stdout.contains("format\tUSIX v1"), "{stdout}");
    assert!(stdout.contains("crc32\t0x"), "{stdout}");
    assert!(stdout.contains("n\t35"), "{stdout}");
    assert!(stdout.contains("section bytes\t"), "{stdout}");

    // --mmap answers are identical to the owned load's
    let owned =
        usi().args(["query", index_path.to_str().unwrap(), "abra", "cad", "zzz"]).output().unwrap();
    let mapped = usi()
        .args(["query", "--mmap", index_path.to_str().unwrap(), "abra", "cad", "zzz"])
        .output()
        .unwrap();
    assert!(mapped.status.success(), "{}", String::from_utf8_lossy(&mapped.stderr));
    assert_eq!(owned.stdout, mapped.stdout);

    // a truncated file is reported corrupt with a nonzero exit
    let bytes = std::fs::read(&index_path).unwrap();
    let broken_path = tmp("t9-broken.usix");
    std::fs::write(&broken_path, &bytes[..bytes.len() - 5]).unwrap();
    let out = usi().args(["inspect", broken_path.to_str().unwrap()]).output().unwrap();
    assert!(!out.status.success(), "truncated file must fail inspection");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("status\tcorrupt"), "{stdout}");
}
