//! End-to-end exercise of the observability surface: real HTTP traffic
//! (queries, appends, an error) against a live server, then `/metrics`
//! must expose the Prometheus series the dashboards are built on —
//! request-latency histograms, pool queue depth, cache hit/miss
//! counters, WAL fsync latency — and `/v1/trace` must return the
//! recent spans as JSON.
//!
//! Metrics are process-global, so every assertion is a `>=` on the
//! scraped value, never an exact count.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use usi::ingest::{IngestConfig, IngestPipeline};
use usi::prelude::*;
use usi::server::json::Json;
use usi::server::{serve, AccessLog};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn sample_index(seed: u64, n: usize) -> UsiIndex {
    let mut rng = StdRng::seed_from_u64(seed);
    let text: Vec<u8> = (0..n).map(|_| b'a' + rng.gen_range(0..3u8)).collect();
    let ws = WeightedString::new(text, vec![1.0; n]).unwrap();
    UsiBuilder::new().with_k(25).deterministic(seed).build(ws)
}

/// One blocking HTTP exchange; returns (status, head, body).
fn exchange_full(addr: SocketAddr, request: &str) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to test server");
    stream.write_all(request.as_bytes()).unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    let (head, body) = response.split_once("\r\n\r\n").expect("complete response");
    let status: u16 = head.split(' ').nth(1).and_then(|s| s.parse().ok()).expect("status code");
    (status, head.to_string(), body.to_string())
}

/// One blocking HTTP exchange; returns (status, body).
fn exchange(addr: SocketAddr, request: &str) -> (u16, String) {
    let (status, _, body) = exchange_full(addr, request);
    (status, body)
}

/// The value of a response header (case-insensitive name).
fn header(head: &str, name: &str) -> Option<String> {
    head.lines().find_map(|line| {
        let (k, v) = line.split_once(':')?;
        k.eq_ignore_ascii_case(name).then(|| v.trim().to_string())
    })
}

fn get(addr: SocketAddr, path: &str) -> (u16, String) {
    exchange(addr, &format!("GET {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n"))
}

fn post(addr: SocketAddr, path: &str, body: &str) -> (u16, String) {
    exchange(
        addr,
        &format!(
            "POST {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        ),
    )
}

/// The value of the first sample whose line starts with `series`
/// (pass the full name-plus-labels prefix, e.g.
/// `usi_http_requests_total{route="/v1/query",status="200"}`).
fn sample(metrics: &str, series: &str) -> Option<f64> {
    metrics.lines().filter(|l| !l.starts_with('#')).find_map(|line| {
        let rest = line.strip_prefix(series)?;
        rest.split_whitespace().next()?.parse().ok()
    })
}

#[test]
fn metrics_and_trace_reflect_real_traffic() {
    let dir = std::env::temp_dir().join("usi-obs-e2e");
    std::fs::create_dir_all(&dir).unwrap();
    let wal_path = dir.join("live.usil");
    let _ = std::fs::remove_file(&wal_path);

    // one static document plus one ingest-enabled one; the default
    // IngestConfig keeps sync_wal on, so every append fsyncs (and
    // shows up in usi_wal_fsync_seconds)
    let catalog = Arc::new(Catalog::new(2));
    catalog.insert("alpha", sample_index(1, 400));
    let (pipeline, _) =
        IngestPipeline::open(sample_index(2, 200), &wal_path, IngestConfig::default()).unwrap();
    catalog.insert_ingest("live", pipeline);

    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    // slow_query_ms = 0: every request crosses the threshold, so the
    // slow-query path (log line + counter) is exercised; the JSON
    // access log is exercised the same way
    let config = ServerConfig {
        slow_query_ms: Some(0),
        access_log: AccessLog::Json,
        ..ServerConfig::with_workers(2)
    };
    let handle = serve(Arc::clone(&catalog), listener, config).unwrap();
    let addr = handle.addr();

    // ---- healthz keeps its contract and gains version + uptime ---------
    let (status, body) = get(addr, "/healthz");
    assert_eq!(status, 200);
    assert!(body.starts_with(r#"{"status":"ok","docs":2"#), "healthz: {body}");
    let parsed = Json::parse(&body).unwrap();
    assert_eq!(parsed.get("version").and_then(Json::as_str), Some(env!("CARGO_PKG_VERSION")));
    assert!(parsed.get("uptime_seconds").and_then(Json::as_f64).is_some(), "healthz: {body}");

    // ---- traffic: queries (repeated batch → cache hits), an append,
    // ---- and a 404 -----------------------------------------------------
    let query = r#"{"doc":"alpha","patterns":["ab","ba","aab"]}"#;
    for _ in 0..2 {
        let (status, body) = post(addr, "/v1/query", query);
        assert_eq!(status, 200, "{body}");
    }
    let (status, body) = post(addr, "/v1/docs/live/append", r#"{"text":"abcabc","weight":1.0}"#);
    assert_eq!(status, 200, "{body}");
    let (status, body) = get(addr, "/v1/definitely-not-a-route");
    assert_eq!(status, 404);
    // satellite: every HTTP error shares one JSON body shape
    let parsed = Json::parse(&body).expect("error bodies are JSON");
    assert!(parsed.get("error").and_then(Json::as_str).is_some(), "error body: {body}");
    assert_eq!(parsed.get("status").and_then(Json::as_f64), Some(404.0), "error body: {body}");

    // ---- /metrics: Prometheus text with the advertised series ----------
    let (status, metrics) = get(addr, "/metrics");
    assert_eq!(status, 200);

    // request-latency histogram, labelled by route
    assert!(
        metrics.contains("# TYPE usi_http_request_seconds histogram"),
        "missing histogram TYPE line:\n{metrics}"
    );
    assert!(
        sample(&metrics, r#"usi_http_request_seconds_count{route="/v1/query"}"#)
            .is_some_and(|v| v >= 2.0),
        "query latency count:\n{metrics}"
    );
    assert!(
        metrics.lines().any(|l| l.starts_with("usi_http_request_seconds_bucket")
            && l.contains(r#"le="+Inf""#)),
        "histogram must expose +Inf bucket:\n{metrics}"
    );
    assert!(
        sample(&metrics, r#"usi_http_requests_total{route="/v1/query",status="200"}"#)
            .is_some_and(|v| v >= 2.0),
        "query request counter:\n{metrics}"
    );
    assert!(
        sample(&metrics, r#"usi_http_requests_total{route="/v1/docs/{id}/append",status="200"}"#)
            .is_some_and(|v| v >= 1.0),
        "append request counter:\n{metrics}"
    );
    assert!(
        sample(&metrics, r#"usi_http_requests_total{route="other",status="404"}"#)
            .is_some_and(|v| v >= 1.0),
        "404 request counter:\n{metrics}"
    );
    assert!(
        sample(&metrics, "usi_http_slow_requests_total").is_some_and(|v| v >= 1.0),
        "slow-query counter (threshold 0):\n{metrics}"
    );

    // pool gauges exist (depth drains back to 0 between requests)
    assert!(sample(&metrics, "usi_pool_queue_depth").is_some(), "pool depth:\n{metrics}");
    assert!(sample(&metrics, "usi_pool_jobs_in_flight").is_some(), "pool in-flight:\n{metrics}");

    // cache counters: first batch misses, identical second batch hits
    assert!(
        sample(&metrics, "usi_cache_misses_total").is_some_and(|v| v >= 3.0),
        "cache misses:\n{metrics}"
    );
    assert!(
        sample(&metrics, "usi_cache_hits_total").is_some_and(|v| v >= 3.0),
        "cache hits:\n{metrics}"
    );
    assert!(
        sample(&metrics, r#"usi_doc_queries_total{doc="alpha"}"#).is_some_and(|v| v >= 6.0),
        "per-doc query counter:\n{metrics}"
    );
    assert!(
        sample(&metrics, "usi_query_batch_size_count").is_some_and(|v| v >= 2.0),
        "batch-size histogram:\n{metrics}"
    );

    // WAL durability: the synced append fsynced at least once
    assert!(
        sample(&metrics, "usi_wal_fsync_seconds_count").is_some_and(|v| v >= 1.0),
        "wal fsync histogram:\n{metrics}"
    );
    assert!(
        sample(&metrics, "usi_wal_bytes_written_total").is_some_and(|v| v >= 6.0),
        "wal bytes:\n{metrics}"
    );
    assert!(
        sample(&metrics, "usi_wal_appends_total").is_some_and(|v| v >= 1.0),
        "wal appends:\n{metrics}"
    );

    // index builds ran in-process (sample_index): build timings exist
    assert!(
        sample(&metrics, "usi_index_build_seconds_count").is_some_and(|v| v >= 2.0),
        "build histogram:\n{metrics}"
    );

    // ---- /v1/trace: recent spans as JSON -------------------------------
    let (status, body) = get(addr, "/v1/trace");
    assert_eq!(status, 200);
    let parsed = Json::parse(&body).unwrap();
    let spans = parsed.get("spans").and_then(Json::as_array).expect("spans array");
    assert!(
        spans.iter().any(|s| s.get("name").and_then(Json::as_str) == Some("http.request")),
        "trace must hold http.request spans: {body}"
    );
    assert!(parsed.get("dropped").and_then(Json::as_f64).is_some(), "trace: {body}");

    handle.shutdown();
}

/// The tentpole acceptance path: a slow query's `X-Request-Id` resolves
/// via `GET /v1/trace/{id}` to a stage tree whose children sum to no
/// more than the root span, the same id shows up in the flight recorder
/// at `GET /debug/requests`, and the queue-wait histogram plus both
/// drop counters are live in `/metrics`.
#[test]
fn request_ids_correlate_trace_flight_and_headers() {
    let catalog = Arc::new(Catalog::new(2));
    catalog.insert("tracy", sample_index(7, 400));

    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    // slow_query_ms = 0 doubles as the flight threshold default, so
    // every request is captured by the flight recorder
    let config = ServerConfig { slow_query_ms: Some(0), ..ServerConfig::with_workers(2) };
    let handle = serve(Arc::clone(&catalog), listener, config).unwrap();
    let addr = handle.addr();

    let body = r#"{"doc":"tracy","patterns":["ab","ba"]}"#;
    let (status, head, _) = exchange_full(
        addr,
        &format!(
            "POST /v1/query HTTP/1.1\r\nHost: test\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        ),
    );
    assert_eq!(status, 200);
    let id = header(&head, "X-Request-Id").expect("every response carries X-Request-Id");
    assert_eq!(id.len(), 16, "ids are 16 hex digits: {id}");
    assert!(id.bytes().all(|b| b.is_ascii_hexdigit()), "hex id: {id}");
    let timing = header(&head, "Server-Timing").expect("routed responses carry Server-Timing");
    assert!(timing.contains("engine;dur="), "Server-Timing lists stages: {timing}");

    // ---- /v1/trace/{id}: the request's full stage tree -----------------
    let (status, body) = get(addr, &format!("/v1/trace/{id}"));
    assert_eq!(status, 200, "{body}");
    let parsed = Json::parse(&body).unwrap();
    assert_eq!(parsed.get("trace_id").and_then(Json::as_str), Some(&*id));
    let root = parsed.get("root").expect("tree has a root span");
    assert_eq!(root.get("name").and_then(Json::as_str), Some("http.request"));
    let root_us = root.get("duration_us").and_then(Json::as_f64).expect("root duration");
    let stages = parsed.get("stages").and_then(Json::as_array).expect("stages array");
    let names: Vec<&str> =
        stages.iter().filter_map(|s| s.get("name").and_then(Json::as_str)).collect();
    for expected in ["queue", "parse", "engine", "serialize", "write"] {
        assert!(names.contains(&expected), "stage {expected} missing from {names:?}");
    }
    let child_sum: f64 =
        stages.iter().filter_map(|s| s.get("duration_us").and_then(Json::as_f64)).sum();
    assert!(
        child_sum <= root_us,
        "stages must nest inside the root: {child_sum}us > {root_us}us in {body}"
    );
    for stage in stages {
        assert_eq!(stage.get("parent").and_then(Json::as_str), Some("http.request"), "{body}");
    }

    // ---- /debug/requests: the flight recorder holds the same id --------
    let (status, body) = get(addr, "/debug/requests");
    assert_eq!(status, 200);
    let parsed = Json::parse(&body).unwrap();
    let requests = parsed.get("requests").and_then(Json::as_array).expect("requests array");
    assert!(
        requests.iter().any(|r| r.get("trace_id").and_then(Json::as_str) == Some(&*id)),
        "flight recorder must hold {id}: {body}"
    );

    // an induced 404 is always captured (status >= 400), filterable by id
    let (status, head, _) = exchange_full(
        addr,
        "GET /v1/definitely-not-a-route HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n",
    );
    assert_eq!(status, 404);
    let err_id = header(&head, "X-Request-Id").expect("errors carry ids too");
    assert_ne!(err_id, id, "ids are unique per request");
    let (_, body) = get(addr, "/debug/requests");
    assert!(body.contains(&err_id), "404 {err_id} must reach the flight recorder: {body}");

    // ---- /metrics: queue-wait histogram and both drop counters ---------
    let (status, metrics) = get(addr, "/metrics");
    assert_eq!(status, 200);
    assert!(
        sample(&metrics, "usi_pool_queue_wait_seconds_count").is_some_and(|v| v >= 1.0),
        "queue-wait histogram:\n{metrics}"
    );
    assert!(
        sample(&metrics, "usi_trace_dropped_total").is_some(),
        "trace drop counter:\n{metrics}"
    );
    assert!(
        sample(&metrics, "usi_flight_dropped_total").is_some(),
        "flight drop counter:\n{metrics}"
    );

    handle.shutdown();
}

/// Spawns the real binary and proves the id a client reads from
/// `X-Request-Id` is the same one the JSON access log emits — the
/// cross-machine correlation story (client header ↔ server log).
#[test]
fn access_log_lines_carry_the_request_id() {
    use std::io::BufRead;
    use std::process::{Command, Stdio};

    let dir = std::env::temp_dir().join("usi-obs-e2e-log");
    std::fs::create_dir_all(&dir).unwrap();
    let text_path = dir.join("corpus.txt");
    std::fs::write(&text_path, b"abracadabra".repeat(40)).unwrap();
    let index_path = dir.join("corpus.usix");
    let built = Command::new(env!("CARGO_BIN_EXE_usi"))
        .args([
            "build",
            text_path.to_str().unwrap(),
            "--k",
            "8",
            "--seed",
            "7",
            "-o",
            index_path.to_str().unwrap(),
        ])
        .status()
        .unwrap();
    assert!(built.success());

    let mut child = Command::new(env!("CARGO_BIN_EXE_usi"))
        .args([
            "serve",
            index_path.to_str().unwrap(),
            "--addr",
            "127.0.0.1:0",
            "--access-log",
            "json",
            "--slow-query-ms",
            "0",
            "--flight-slow-ms",
            "0",
            "--trace-capacity",
            "64",
        ])
        .stdin(Stdio::piped())
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    let stdin = child.stdin.take().unwrap();
    let mut stderr = std::io::BufReader::new(child.stderr.take().unwrap());

    // the startup banner names the bound address (we asked for port 0)
    let addr: SocketAddr = loop {
        let mut line = String::new();
        assert_ne!(stderr.read_line(&mut line).unwrap(), 0, "server exited before banner");
        if let Some(rest) = line.split("http://").nth(1) {
            break rest.split_whitespace().next().unwrap().parse().unwrap();
        }
    };

    let (status, head, _) =
        exchange_full(addr, "GET /healthz HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n");
    assert_eq!(status, 200);
    let id = header(&head, "X-Request-Id").expect("X-Request-Id over the wire");

    drop(stdin); // EOF → graceful shutdown flushes the logs
    let mut rest = String::new();
    stderr.read_to_string(&mut rest).unwrap();
    assert!(child.wait().unwrap().success(), "server exit: {rest}");
    let log_line = rest
        .lines()
        .find(|l| l.contains(r#""path":"/healthz""#))
        .unwrap_or_else(|| panic!("access log line for /healthz in: {rest}"));
    assert!(
        log_line.contains(&format!(r#""request_id":"{id}""#)),
        "access log must carry the client-visible id {id}: {log_line}"
    );
}
