//! End-to-end exercise of the observability surface: real HTTP traffic
//! (queries, appends, an error) against a live server, then `/metrics`
//! must expose the Prometheus series the dashboards are built on —
//! request-latency histograms, pool queue depth, cache hit/miss
//! counters, WAL fsync latency — and `/v1/trace` must return the
//! recent spans as JSON.
//!
//! Metrics are process-global, so every assertion is a `>=` on the
//! scraped value, never an exact count.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use usi::ingest::{IngestConfig, IngestPipeline};
use usi::prelude::*;
use usi::server::json::Json;
use usi::server::{serve, AccessLog};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn sample_index(seed: u64, n: usize) -> UsiIndex {
    let mut rng = StdRng::seed_from_u64(seed);
    let text: Vec<u8> = (0..n).map(|_| b'a' + rng.gen_range(0..3u8)).collect();
    let ws = WeightedString::new(text, vec![1.0; n]).unwrap();
    UsiBuilder::new().with_k(25).deterministic(seed).build(ws)
}

/// One blocking HTTP exchange; returns (status, body).
fn exchange(addr: SocketAddr, request: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to test server");
    stream.write_all(request.as_bytes()).unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    let (head, body) = response.split_once("\r\n\r\n").expect("complete response");
    let status: u16 = head.split(' ').nth(1).and_then(|s| s.parse().ok()).expect("status code");
    (status, body.to_string())
}

fn get(addr: SocketAddr, path: &str) -> (u16, String) {
    exchange(addr, &format!("GET {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n"))
}

fn post(addr: SocketAddr, path: &str, body: &str) -> (u16, String) {
    exchange(
        addr,
        &format!(
            "POST {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        ),
    )
}

/// The value of the first sample whose line starts with `series`
/// (pass the full name-plus-labels prefix, e.g.
/// `usi_http_requests_total{route="/v1/query",status="200"}`).
fn sample(metrics: &str, series: &str) -> Option<f64> {
    metrics.lines().filter(|l| !l.starts_with('#')).find_map(|line| {
        let rest = line.strip_prefix(series)?;
        rest.split_whitespace().next()?.parse().ok()
    })
}

#[test]
fn metrics_and_trace_reflect_real_traffic() {
    let dir = std::env::temp_dir().join("usi-obs-e2e");
    std::fs::create_dir_all(&dir).unwrap();
    let wal_path = dir.join("live.usil");
    let _ = std::fs::remove_file(&wal_path);

    // one static document plus one ingest-enabled one; the default
    // IngestConfig keeps sync_wal on, so every append fsyncs (and
    // shows up in usi_wal_fsync_seconds)
    let catalog = Arc::new(Catalog::new(2));
    catalog.insert("alpha", sample_index(1, 400));
    let (pipeline, _) =
        IngestPipeline::open(sample_index(2, 200), &wal_path, IngestConfig::default()).unwrap();
    catalog.insert_ingest("live", pipeline);

    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    // slow_query_ms = 0: every request crosses the threshold, so the
    // slow-query path (log line + counter) is exercised; the JSON
    // access log is exercised the same way
    let config = ServerConfig {
        slow_query_ms: Some(0),
        access_log: AccessLog::Json,
        ..ServerConfig::with_workers(2)
    };
    let handle = serve(Arc::clone(&catalog), listener, config).unwrap();
    let addr = handle.addr();

    // ---- healthz keeps its contract and gains version + uptime ---------
    let (status, body) = get(addr, "/healthz");
    assert_eq!(status, 200);
    assert!(body.starts_with(r#"{"status":"ok","docs":2"#), "healthz: {body}");
    let parsed = Json::parse(&body).unwrap();
    assert_eq!(parsed.get("version").and_then(Json::as_str), Some(env!("CARGO_PKG_VERSION")));
    assert!(parsed.get("uptime_seconds").and_then(Json::as_f64).is_some(), "healthz: {body}");

    // ---- traffic: queries (repeated batch → cache hits), an append,
    // ---- and a 404 -----------------------------------------------------
    let query = r#"{"doc":"alpha","patterns":["ab","ba","aab"]}"#;
    for _ in 0..2 {
        let (status, body) = post(addr, "/v1/query", query);
        assert_eq!(status, 200, "{body}");
    }
    let (status, body) = post(addr, "/v1/docs/live/append", r#"{"text":"abcabc","weight":1.0}"#);
    assert_eq!(status, 200, "{body}");
    let (status, body) = get(addr, "/v1/definitely-not-a-route");
    assert_eq!(status, 404);
    // satellite: every HTTP error shares one JSON body shape
    let parsed = Json::parse(&body).expect("error bodies are JSON");
    assert!(parsed.get("error").and_then(Json::as_str).is_some(), "error body: {body}");
    assert_eq!(parsed.get("status").and_then(Json::as_f64), Some(404.0), "error body: {body}");

    // ---- /metrics: Prometheus text with the advertised series ----------
    let (status, metrics) = get(addr, "/metrics");
    assert_eq!(status, 200);

    // request-latency histogram, labelled by route
    assert!(
        metrics.contains("# TYPE usi_http_request_seconds histogram"),
        "missing histogram TYPE line:\n{metrics}"
    );
    assert!(
        sample(&metrics, r#"usi_http_request_seconds_count{route="/v1/query"}"#)
            .is_some_and(|v| v >= 2.0),
        "query latency count:\n{metrics}"
    );
    assert!(
        metrics.lines().any(|l| l.starts_with("usi_http_request_seconds_bucket")
            && l.contains(r#"le="+Inf""#)),
        "histogram must expose +Inf bucket:\n{metrics}"
    );
    assert!(
        sample(&metrics, r#"usi_http_requests_total{route="/v1/query",status="200"}"#)
            .is_some_and(|v| v >= 2.0),
        "query request counter:\n{metrics}"
    );
    assert!(
        sample(&metrics, r#"usi_http_requests_total{route="/v1/docs/{id}/append",status="200"}"#)
            .is_some_and(|v| v >= 1.0),
        "append request counter:\n{metrics}"
    );
    assert!(
        sample(&metrics, r#"usi_http_requests_total{route="other",status="404"}"#)
            .is_some_and(|v| v >= 1.0),
        "404 request counter:\n{metrics}"
    );
    assert!(
        sample(&metrics, "usi_http_slow_requests_total").is_some_and(|v| v >= 1.0),
        "slow-query counter (threshold 0):\n{metrics}"
    );

    // pool gauges exist (depth drains back to 0 between requests)
    assert!(sample(&metrics, "usi_pool_queue_depth").is_some(), "pool depth:\n{metrics}");
    assert!(sample(&metrics, "usi_pool_jobs_in_flight").is_some(), "pool in-flight:\n{metrics}");

    // cache counters: first batch misses, identical second batch hits
    assert!(
        sample(&metrics, "usi_cache_misses_total").is_some_and(|v| v >= 3.0),
        "cache misses:\n{metrics}"
    );
    assert!(
        sample(&metrics, "usi_cache_hits_total").is_some_and(|v| v >= 3.0),
        "cache hits:\n{metrics}"
    );
    assert!(
        sample(&metrics, r#"usi_doc_queries_total{doc="alpha"}"#).is_some_and(|v| v >= 6.0),
        "per-doc query counter:\n{metrics}"
    );
    assert!(
        sample(&metrics, "usi_query_batch_size_count").is_some_and(|v| v >= 2.0),
        "batch-size histogram:\n{metrics}"
    );

    // WAL durability: the synced append fsynced at least once
    assert!(
        sample(&metrics, "usi_wal_fsync_seconds_count").is_some_and(|v| v >= 1.0),
        "wal fsync histogram:\n{metrics}"
    );
    assert!(
        sample(&metrics, "usi_wal_bytes_written_total").is_some_and(|v| v >= 6.0),
        "wal bytes:\n{metrics}"
    );
    assert!(
        sample(&metrics, "usi_wal_appends_total").is_some_and(|v| v >= 1.0),
        "wal appends:\n{metrics}"
    );

    // index builds ran in-process (sample_index): build timings exist
    assert!(
        sample(&metrics, "usi_index_build_seconds_count").is_some_and(|v| v >= 2.0),
        "build histogram:\n{metrics}"
    );

    // ---- /v1/trace: recent spans as JSON -------------------------------
    let (status, body) = get(addr, "/v1/trace");
    assert_eq!(status, 200);
    let parsed = Json::parse(&body).unwrap();
    let spans = parsed.get("spans").and_then(Json::as_array).expect("spans array");
    assert!(
        spans.iter().any(|s| s.get("name").and_then(Json::as_str) == Some("http.request")),
        "trace must hold http.request spans: {body}"
    );
    assert!(parsed.get("dropped").and_then(Json::as_f64).is_some(), "trace: {body}");

    handle.shutdown();
}
