#!/usr/bin/env python3
"""Holds N idle keep-alive connections open against a usi server.

Used by the CI smoke job to prove that parked connections do not occupy
pool workers: the helper opens the connections (never sending a byte —
the reactor parks each socket on accept), touches a ready file so the
calling shell knows the pool is up, then sleeps until killed. Assertions
(active query still answered, /metrics gauges) run from the shell while
this process holds the sockets.

Usage: idle_conns.py HOST PORT COUNT READY_FILE
"""

import socket
import sys
import time


def main() -> None:
    host, port, count, ready_file = (
        sys.argv[1],
        int(sys.argv[2]),
        int(sys.argv[3]),
        sys.argv[4],
    )
    conns = []
    for i in range(count):
        for attempt in range(50):
            try:
                conns.append(socket.create_connection((host, port), timeout=5))
                break
            except OSError as e:
                # the connect burst can outrun the accept loop; retry
                if attempt == 49:
                    raise SystemExit(f"connection {i} failed after retries: {e}")
                time.sleep(0.1)
    with open(ready_file, "w") as f:
        f.write(f"{len(conns)}\n")
    print(f"holding {len(conns)} idle connections", flush=True)
    # hold the sockets until the caller kills us
    time.sleep(3600)


if __name__ == "__main__":
    main()
