//! WAL torture: **any** byte-truncation of a `.usil` log replays to a
//! valid prefix of the append history — the crash-recovery contract,
//! mirroring the section-boundary truncation tests the `.usix` format
//! has in `crates/core/tests/persist_file.rs`. Truncation is exercised
//! both through the raw byte parser and through a reopened
//! [`IngestPipeline`], which must answer queries as if only the
//! surviving prefix had ever been appended.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use usi_core::UsiBuilder;
use usi_ingest::{replay_bytes, IngestConfig, IngestPipeline, Wal};
use usi_strings::WeightedString;

fn letters(max_len: usize) -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(prop_oneof![Just(b'x'), Just(b'y'), Just(b'z')], 1..max_len)
}

/// Writes `batches` into a fresh log at `path`, returning the full log
/// bytes and the cumulative letter counts after each batch.
fn write_log(path: &std::path::Path, batches: &[(Vec<u8>, Vec<f64>)]) -> (Vec<u8>, Vec<usize>) {
    let _ = std::fs::remove_file(path);
    let (mut wal, _) = Wal::open(path, false).unwrap();
    let mut prefix_lens = vec![0usize];
    for (text, weights) in batches {
        wal.append(text, weights).unwrap();
        prefix_lens.push(prefix_lens.last().unwrap() + text.len());
    }
    drop(wal);
    (std::fs::read(path).unwrap(), prefix_lens)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Parser-level contract: every truncation point yields some whole
    /// prefix of the batches, never a partial or corrupted record.
    #[test]
    fn every_truncation_replays_to_a_batch_prefix(
        batch_lens in proptest::collection::vec(1usize..12, 1..8),
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let batches: Vec<(Vec<u8>, Vec<f64>)> = batch_lens
            .iter()
            .map(|&len| {
                let text: Vec<u8> = (0..len).map(|_| b'x' + rng.gen_range(0..3u8)).collect();
                let weights: Vec<f64> =
                    (0..len).map(|_| rng.gen_range(0..8) as f64 * 0.25).collect();
                (text, weights)
            })
            .collect();
        let dir = std::env::temp_dir().join("usi-wal-torture");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("parser-{seed:016x}.usil"));
        let (bytes, _) = write_log(&path, &batches);
        let _ = std::fs::remove_file(&path);

        for cut in 0..=bytes.len() {
            let replay = replay_bytes(&bytes[..cut]).unwrap_or_else(|e| {
                panic!("cut at {cut}/{} must recover, got {e}", bytes.len())
            });
            // the recovered records are exactly a prefix of the batches
            prop_assert!(replay.records.len() <= batches.len());
            for (record, (text, weights)) in replay.records.iter().zip(&batches) {
                prop_assert_eq!(&record.text, text);
                prop_assert_eq!(&record.weights, weights);
            }
            prop_assert_eq!(replay.valid_len as usize <= cut, true);
            if cut == bytes.len() {
                prop_assert_eq!(replay.records.len(), batches.len());
                prop_assert!(!replay.truncated);
            }
        }
    }

    /// Pipeline-level contract: reopening over a truncated log answers
    /// queries exactly like a from-scratch build over the surviving
    /// prefix of the append history.
    #[test]
    fn truncated_logs_reopen_to_a_valid_prefix_state(
        base in letters(40),
        batch_lens in proptest::collection::vec(1usize..10, 1..6),
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let batches: Vec<(Vec<u8>, Vec<f64>)> = batch_lens
            .iter()
            .map(|&len| {
                let text: Vec<u8> = (0..len).map(|_| b'x' + rng.gen_range(0..3u8)).collect();
                let weights: Vec<f64> =
                    (0..len).map(|_| rng.gen_range(0..8) as f64 * 0.25).collect();
                (text, weights)
            })
            .collect();
        let dir = std::env::temp_dir().join("usi-wal-torture");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("pipeline-{seed:016x}.usil"));
        let (bytes, prefix_lens) = write_log(&path, &batches);

        let base_weights: Vec<f64> =
            (0..base.len()).map(|_| rng.gen_range(0..8) as f64 * 0.25).collect();
        let build_base = || {
            UsiBuilder::new().with_k(8).deterministic(6).build(
                WeightedString::new(base.clone(), base_weights.clone()).unwrap(),
            )
        };
        let config = IngestConfig {
            seal_threshold: 5,
            compact_fanout: 2,
            sync_wal: false,
            ..IngestConfig::default()
        };

        // a handful of random cuts plus the no-op cut
        let mut cuts: Vec<usize> = (0..6).map(|_| rng.gen_range(0..=bytes.len())).collect();
        cuts.push(bytes.len());
        for cut in cuts {
            std::fs::write(&path, &bytes[..cut]).unwrap();
            let (pipeline, replay) =
                IngestPipeline::open(build_base(), &path, config.clone()).unwrap();
            let survived = prefix_lens[replay.records.len()];

            // expected: base + the surviving whole batches
            let mut text = base.clone();
            let mut weights = base_weights.clone();
            for (t, w) in &batches[..replay.records.len()] {
                text.extend_from_slice(t);
                weights.extend_from_slice(w);
            }
            prop_assert_eq!(pipeline.stats().n, base.len() + survived);
            let scratch = UsiBuilder::new()
                .with_k(8)
                .deterministic(6)
                .build(WeightedString::new(text.clone(), weights).unwrap());
            for m in 1..=text.len().min(6) {
                let start = rng.gen_range(0..=text.len() - m);
                let pattern = &text[start..start + m];
                let got = pipeline.query(pattern);
                let want = scratch.query(pattern);
                prop_assert!(
                    got.occurrences == want.occurrences && got.value == want.value,
                    "cut {} pattern {:?}: {:?} vs {:?}",
                    cut,
                    pattern,
                    got,
                    want
                );
            }
            drop(pipeline);
        }
        let _ = std::fs::remove_file(&path);
    }
}
