//! The ingestion subsystem's central invariant, proptested: for any
//! base text, append sequence, seal threshold and compaction schedule,
//! [`IngestIndex::query`] returns results identical to a from-scratch
//! [`UsiBuilder`] build over the fully concatenated weighted string —
//! occurrences always, and values with `==` (weights are drawn from
//! dyadic rationals, so every aggregate is exact in f64 and
//! accumulation order cannot perturb it). Patterns are sampled from the
//! concatenated text, so base/segment/tail-boundary-spanning
//! occurrences are exercised constantly, and WAL replay after a
//! simulated crash must restore the same answers.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use usi_core::UsiBuilder;
use usi_ingest::{IngestConfig, IngestIndex, IngestOptions, IngestPipeline};
use usi_strings::WeightedString;

fn letters(max_len: usize) -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(prop_oneof![Just(b'a'), Just(b'b'), Just(b'c')], 0..max_len)
}

/// Dyadic weights in `{0, 0.25, …, 1.75}`: exactly representable, so
/// sums/products of any association are bit-identical.
fn weights_for(seed: u64, n: usize) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(0..8) as f64 * 0.25).collect()
}

fn sample_patterns(text: &[u8], seed: u64) -> Vec<Vec<u8>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut patterns: Vec<Vec<u8>> = Vec::new();
    if !text.is_empty() {
        for _ in 0..40 {
            let m = rng.gen_range(1..=text.len().min(24));
            let i = rng.gen_range(0..=text.len() - m);
            patterns.push(text[i..i + m].to_vec());
        }
        patterns.push(text.to_vec()); // the whole string
    }
    patterns.push(b"cba".to_vec());
    patterns.push(b"zz".to_vec());
    patterns.push(Vec::new());
    patterns
}

fn assert_matches_scratch(idx: &IngestIndex, k: usize, seed: u64, patterns: &[Vec<u8>]) {
    let full = WeightedString::new(idx.text(), idx.weights()).unwrap();
    let scratch = UsiBuilder::new().with_k(k).deterministic(seed).build(full);
    for pattern in patterns {
        let got = idx.query(pattern);
        let want = scratch.query(pattern);
        assert_eq!(got.occurrences, want.occurrences, "occurrences diverge for {pattern:?}");
        assert_eq!(got.value, want.value, "value diverges for {pattern:?}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Queries over any segmented layout equal a from-scratch build.
    #[test]
    fn segmented_queries_equal_from_scratch_build(
        base in letters(120),
        appended in letters(200),
        seal_threshold in 1usize..40,
        compact_fanout in 2usize..6,
        schedule_seed in any::<u64>(),
    ) {
        let base_ws =
            WeightedString::new(base.clone(), weights_for(1, base.len())).unwrap();
        let mut idx = IngestIndex::new(
            UsiBuilder::new().with_k(15).deterministic(9).build(base_ws),
            IngestOptions {
                seal_threshold,
                compact_fanout,
                ..IngestOptions::default()
            },
        );
        // random compaction schedule: sometimes after a push, sometimes
        // never, sometimes to quiescence
        let mut schedule = StdRng::seed_from_u64(schedule_seed);
        let appended_weights = weights_for(2, appended.len());
        for (&letter, &weight) in appended.iter().zip(&appended_weights) {
            idx.push(letter, weight);
            match schedule.gen_range(0..10) {
                0 => {
                    idx.compact_once();
                }
                1 => idx.compact_to_quiescence(),
                _ => {}
            }
        }
        let patterns = sample_patterns(&idx.text(), schedule_seed ^ 0xabcd);
        assert_matches_scratch(&idx, 15, 9, &patterns);

        // full quiescence afterwards changes nothing observable
        idx.compact_to_quiescence();
        assert_matches_scratch(&idx, 15, 9, &patterns);
    }

    /// A crash (drop without any shutdown step) followed by a WAL
    /// replay restores the same answers.
    #[test]
    fn wal_replay_restores_the_same_state(
        base in letters(60),
        appended in letters(120),
        seal_threshold in 1usize..24,
        batch_seed in any::<u64>(),
    ) {
        let dir = std::env::temp_dir().join("usi-ingest-equivalence");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("replay-{batch_seed:016x}.usil"));
        let _ = std::fs::remove_file(&path);

        let config = IngestConfig {
            seal_threshold,
            compact_fanout: 3,
            sync_wal: false, // the test tears down cleanly; torture is in wal_torture.rs
            ..IngestConfig::default()
        };
        let build_base = || {
            let ws = WeightedString::new(base.clone(), weights_for(3, base.len())).unwrap();
            UsiBuilder::new().with_k(10).deterministic(4).build(ws)
        };
        let (pipeline, _) = IngestPipeline::open(build_base(), &path, config.clone()).unwrap();
        // split the appends into random batches
        let mut rng = StdRng::seed_from_u64(batch_seed);
        let appended_weights = weights_for(5, appended.len());
        let mut at = 0usize;
        while at < appended.len() {
            let take = rng.gen_range(1..=appended.len() - at);
            pipeline
                .append(&appended[at..at + take], &appended_weights[at..at + take])
                .unwrap();
            at += take;
        }
        let full_text = pipeline.with_state(|s| s.text());
        drop(pipeline); // simulated crash

        let (reopened, replay) = IngestPipeline::open(build_base(), &path, config).unwrap();
        prop_assert!(!replay.truncated);
        prop_assert_eq!(reopened.with_state(|s| s.text()), full_text.clone());

        // recovered answers equal a from-scratch build of the whole text
        let full = WeightedString::new(
            reopened.with_state(|s| s.text()),
            reopened.with_state(|s| s.weights()),
        )
        .unwrap();
        let scratch = UsiBuilder::new().with_k(10).deterministic(4).build(full);
        for pattern in sample_patterns(&full_text, batch_seed ^ 0x77) {
            let got = reopened.query(&pattern);
            let want = scratch.query(&pattern);
            prop_assert!(
                got.occurrences == want.occurrences && got.value == want.value,
                "replayed answer diverges for {:?}: {:?} vs {:?}",
                pattern,
                got,
                want
            );
        }
        drop(reopened);
        let _ = std::fs::remove_file(&path);
    }
}
