//! Pre-registered telemetry handles for the ingestion path: WAL
//! durability cost, seal/compaction build time, and the live segment
//! count. Resolved once at first touch; the append hot path records
//! through held handles only.

use std::sync::{Arc, OnceLock};
use usi_obs::{default_latency_buckets, Counter, Gauge, Histogram};

/// Every handle the ingestion path records into.
pub(crate) struct IngestMetrics {
    /// Time spent in `fdatasync` per acknowledged WAL batch.
    pub wal_fsync_seconds: Arc<Histogram>,
    pub wal_bytes_written_total: Arc<Counter>,
    pub wal_appends_total: Arc<Counter>,
    /// Time to build one sealed segment from the tail.
    pub seal_seconds: Arc<Histogram>,
    pub seals_total: Arc<Counter>,
    /// Time to build one tier-merge output.
    pub compaction_seconds: Arc<Histogram>,
    pub compactions_total: Arc<Counter>,
    /// Sealed segments currently live, summed across documents (moves
    /// by deltas: +1 per seal, `1 − fanout` per installed compaction).
    pub segments: Arc<Gauge>,
}

/// The process-global handle set, registered on first touch.
pub(crate) fn ingest() -> &'static IngestMetrics {
    static METRICS: OnceLock<IngestMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let registry = usi_obs::global();
        IngestMetrics {
            wal_fsync_seconds: registry.histogram(
                "usi_wal_fsync_seconds",
                "fdatasync latency per acknowledged WAL append batch",
                default_latency_buckets(),
            ),
            wal_bytes_written_total: registry
                .counter("usi_wal_bytes_written_total", "Bytes appended to write-ahead logs"),
            wal_appends_total: registry
                .counter("usi_wal_appends_total", "WAL append batches written"),
            seal_seconds: registry.histogram(
                "usi_ingest_seal_seconds",
                "Time to build one sealed segment from the tail",
                default_latency_buckets(),
            ),
            seals_total: registry.counter("usi_ingest_seals_total", "Tail seals performed"),
            compaction_seconds: registry.histogram(
                "usi_ingest_compaction_seconds",
                "Time to build one tier-merge output",
                default_latency_buckets(),
            ),
            compactions_total: registry
                .counter("usi_ingest_compactions_total", "Tier merges installed"),
            segments: registry.gauge(
                "usi_ingest_segments",
                "Sealed segments currently live across all documents",
            ),
        }
    })
}
