//! The segmented append-only index: base + sealed segments + live tail.
//!
//! The paper defers true online maintenance of `USI_TOP-K` ("can in
//! general be very costly"); `usi_core::DynamicUsi` works around that
//! with one tail buffer and whole-index epoch rebuilds. This module
//! replaces the monolithic rebuild with an LSM-style layout:
//!
//! * a frozen **base** [`UsiIndex`] covers the original document;
//! * appended letters land in an in-memory **tail** (exactly the
//!   `DynamicUsi` tail);
//! * when the tail crosses `seal_threshold` it is **sealed** into an
//!   immutable generation-0 segment — a small `UsiIndex` built with
//!   `BuildOptions { threads }` — instead of rebuilding everything;
//! * a generation-tiered **compaction** merges `compact_fanout`
//!   adjacent segments of one generation into a single segment of the
//!   next, keeping the segment count logarithmic in the appended
//!   length. Compaction is a pure function of existing segments, so the
//!   pipeline can run it on a background thread off the write path.
//!
//! A query merges per-component answers (base, each segment) with the
//! shared [`usi_core::merge`] helper — the same implementation the
//! serving layer's cross-document fan-out uses — and stitches in the
//! occurrences no component can see (those crossing a component
//! boundary, plus those inside the unindexed tail) with a rolling-hash
//! scan over the boundary regions.
//!
//! **Equivalence invariant** (proptested in `tests/equivalence.rs`):
//! for any base text, append sequence, seal threshold and compaction
//! schedule, [`IngestIndex::query`] returns the same occurrences and
//! value as a from-scratch [`UsiBuilder`] build over the fully
//! concatenated weighted string.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;
use usi_core::index::IndexSize;
use usi_core::{
    merge_accumulators, QueryEngine, QuerySource, UsiBuilder, UsiIndex, UsiQuery, WeightsRef,
};
use usi_strings::{GlobalUtility, LocalWindow, UtilityAccumulator, WeightedString};

/// Tuning knobs for the segmented index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IngestOptions {
    /// Seal the tail into a segment once it holds this many letters.
    pub seal_threshold: usize,
    /// Merge a generation tier once it holds this many segments (the
    /// LSM fan-out `F`).
    pub compact_fanout: usize,
    /// Worker threads for segment and compaction builds
    /// (`BuildOptions { threads }`).
    pub threads: usize,
    /// Deterministic fingerprint seed for segment builds, so a WAL
    /// replay rebuilds byte-identical segments.
    pub seed: u64,
    /// Segment-aware mmap: when set, every sealed or compacted segment
    /// is also written to `<dir>/seg-<offset>-<len>.usix` and served
    /// through a zero-copy storage view
    /// ([`usi_core::persist::open_mmap`]) instead of the heap — the
    /// kernel pages cold segments out under memory pressure. The
    /// directory must exist (the pipeline creates it). Names embed the
    /// segment's absolute letter offset and length, so a WAL replay —
    /// which re-runs the same deterministic seal schedule — rewrites
    /// identical files. **Use one directory per index**: the names
    /// carry no document id, so two indexes sharing a directory would
    /// clobber each other's files (`usi serve` namespaces a
    /// per-document subdirectory automatically). If writing or
    /// remapping fails, the in-memory segment is kept: the option
    /// trades memory, never correctness.
    pub segment_dir: Option<PathBuf>,
}

impl Default for IngestOptions {
    fn default() -> Self {
        Self {
            seal_threshold: 4096,
            compact_fanout: 8,
            threads: 1,
            seed: 0x5ea1,
            segment_dir: None,
        }
    }
}

impl IngestOptions {
    fn normalised(mut self) -> Self {
        self.seal_threshold = self.seal_threshold.max(1);
        self.compact_fanout = self.compact_fanout.max(2);
        self.threads = self.threads.max(1);
        self
    }
}

/// One immutable sealed segment.
#[derive(Debug, Clone)]
pub struct Segment {
    index: Arc<UsiIndex>,
    generation: u32,
}

impl Segment {
    /// The segment's index.
    pub fn index(&self) -> &UsiIndex {
        &self.index
    }

    /// LSM generation: 0 for freshly sealed tails, `g + 1` for the
    /// merge of `compact_fanout` generation-`g` segments.
    pub fn generation(&self) -> u32 {
        self.generation
    }

    /// Letters covered by this segment.
    pub fn len(&self) -> usize {
        self.index.text().len()
    }

    /// Whether the segment is empty (never true: tails seal non-empty).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One pending compaction: merge `inputs` (the segments at
/// `[start, start + inputs.len())`, all of `generation`) into a single
/// segment of `generation + 1`. Built under a read lock, executed
/// off-lock, installed under a write lock.
#[derive(Debug)]
pub struct CompactionPlan {
    start: usize,
    generation: u32,
    inputs: Vec<Arc<UsiIndex>>,
}

impl CompactionPlan {
    /// Runs the merge build: concatenates the input segments and builds
    /// one index over them. Pure — touches no shared state, so the
    /// background compactor calls it without holding any lock.
    pub fn build(&self, builder: &UsiBuilder) -> UsiIndex {
        let started = Instant::now();
        let total: usize = self.inputs.iter().map(|i| i.text().len()).sum();
        let mut text = Vec::with_capacity(total);
        let mut weights = Vec::with_capacity(total);
        for input in &self.inputs {
            text.extend_from_slice(input.text());
            input.weights().extend_range_into(0..input.text().len(), &mut weights);
        }
        let merged = builder.build(
            WeightedString::new(text, weights).expect("segment concatenation keeps the invariant"),
        );
        crate::metrics::ingest().compaction_seconds.observe_duration(started.elapsed());
        usi_obs::tracer().record(usi_obs::Span::since(
            "ingest.compaction",
            started,
            vec![
                ("inputs".into(), self.inputs.len().to_string()),
                ("letters".into(), total.to_string()),
                ("generation".into(), self.generation.to_string()),
            ],
        ));
        merged
    }
}

/// The segmented append-only index. See the module docs for the layout;
/// see [`crate::IngestPipeline`] for the WAL-durable, thread-safe
/// wrapper.
#[derive(Debug, Clone)]
pub struct IngestIndex {
    base: Arc<UsiIndex>,
    segments: Vec<Segment>,
    tail_text: Vec<u8>,
    tail_weights: Vec<f64>,
    opts: IngestOptions,
    seals: u64,
    compactions: u64,
    last_compaction: Option<Instant>,
}

impl IngestIndex {
    /// Wraps a built base index. `opts` are clamped to sane minima
    /// (`seal_threshold ≥ 1`, `compact_fanout ≥ 2`, `threads ≥ 1`).
    pub fn new(base: UsiIndex, opts: IngestOptions) -> Self {
        Self {
            base: Arc::new(base),
            segments: Vec::new(),
            tail_text: Vec::new(),
            tail_weights: Vec::new(),
            opts: opts.normalised(),
            seals: 0,
            compactions: 0,
            last_compaction: None,
        }
    }

    /// The frozen base index.
    pub fn base(&self) -> &UsiIndex {
        &self.base
    }

    /// The sealed segments, oldest first.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// The effective options.
    pub fn options(&self) -> IngestOptions {
        self.opts.clone()
    }

    /// Total indexed length: base + segments + tail.
    pub fn len(&self) -> usize {
        self.base.text().len()
            + self.segments.iter().map(Segment::len).sum::<usize>()
            + self.tail_text.len()
    }

    /// Whether nothing has been indexed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Letters currently buffered in the unsealed tail.
    pub fn tail_len(&self) -> usize {
        self.tail_text.len()
    }

    /// Number of tail seals performed so far.
    pub fn seals(&self) -> u64 {
        self.seals
    }

    /// Number of tier merges performed so far.
    pub fn compactions(&self) -> u64 {
        self.compactions
    }

    /// When the last tier merge finished, if any.
    pub fn last_compaction(&self) -> Option<Instant> {
        self.last_compaction
    }

    /// The shared utility function (every component agrees with the
    /// base by construction).
    pub fn utility(&self) -> GlobalUtility {
        self.base.utility()
    }

    /// The current full text (base + segments + tail), materialised.
    pub fn text(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.len());
        out.extend_from_slice(self.base.text());
        for seg in &self.segments {
            out.extend_from_slice(seg.index.text());
        }
        out.extend_from_slice(&self.tail_text);
        out
    }

    /// The current full weight array, materialised.
    pub fn weights(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.len());
        self.base.weights().extend_range_into(0..self.base.text().len(), &mut out);
        for seg in &self.segments {
            seg.index.weights().extend_range_into(0..seg.len(), &mut out);
        }
        out.extend_from_slice(&self.tail_weights);
        out
    }

    /// Aggregate size breakdown over the base and every segment (the
    /// tail's two vectors count under `text` / `weights`).
    pub fn size_breakdown(&self) -> IndexSize {
        let mut total = self.base.size_breakdown();
        for seg in &self.segments {
            let part = seg.index.size_breakdown();
            total.text += part.text;
            total.weights += part.weights;
            total.suffix_array += part.suffix_array;
            total.psw += part.psw;
            total.hash_table += part.hash_table;
        }
        total.text += self.tail_text.capacity();
        total.weights += self.tail_weights.capacity() * std::mem::size_of::<f64>();
        total
    }

    /// The builder used for seals and compactions: same utility
    /// function as the base, deterministic fingerprints, the configured
    /// thread count. Public so the background compactor can snapshot it
    /// together with a [`CompactionPlan`] and build off-lock.
    pub fn segment_builder(&self) -> UsiBuilder {
        let utility = self.base.utility();
        UsiBuilder::new()
            .with_aggregator(utility.aggregator)
            .with_local_window(utility.local)
            .deterministic(self.opts.seed)
            .with_threads(self.opts.threads)
    }

    /// Appends one weighted letter; seals the tail into a segment when
    /// it reaches the threshold. Compaction is **not** triggered here —
    /// call [`IngestIndex::compact_once`] (or let the pipeline's
    /// background compactor run) to fold full tiers.
    pub fn push(&mut self, letter: u8, weight: f64) {
        self.tail_text.push(letter);
        self.tail_weights.push(weight);
        if self.tail_text.len() >= self.opts.seal_threshold {
            self.seal();
        }
    }

    /// Appends a batch of weighted letters.
    ///
    /// # Panics
    /// Panics if the slice lengths differ (callers validate input at
    /// the API boundary).
    pub fn append(&mut self, text: &[u8], weights: &[f64]) {
        assert_eq!(text.len(), weights.len(), "one weight per appended letter");
        for (&letter, &weight) in text.iter().zip(weights) {
            self.push(letter, weight);
        }
    }

    /// Seals the current tail into a fresh generation-0 segment. A
    /// no-op for an empty tail. With [`IngestOptions::segment_dir`] the
    /// segment is persisted and remapped zero-copy (see there).
    pub fn seal(&mut self) {
        if self.tail_text.is_empty() {
            return;
        }
        let started = Instant::now();
        let sealed_len = self.tail_text.len();
        let offset = self.len() - sealed_len;
        let ws = WeightedString::new(
            std::mem::take(&mut self.tail_text),
            std::mem::take(&mut self.tail_weights),
        )
        .expect("tail arrays grow in lockstep");
        let index = self.remap_segment(self.segment_builder().build(ws), offset);
        self.segments.push(Segment { index: Arc::new(index), generation: 0 });
        self.seals += 1;
        let m = crate::metrics::ingest();
        m.seal_seconds.observe_duration(started.elapsed());
        m.seals_total.inc();
        m.segments.inc();
        usi_obs::tracer().record(usi_obs::Span::since(
            "ingest.seal",
            started,
            vec![("letters".into(), sealed_len.to_string())],
        ));
    }

    /// The deterministic on-disk name of a segment covering
    /// `[offset, offset + len)` of the full string.
    fn segment_path(dir: &std::path::Path, offset: usize, len: usize) -> PathBuf {
        dir.join(format!("seg-{offset}-{len}.usix"))
    }

    /// Absolute letter offset of `segments[i]`.
    fn segment_offset(&self, i: usize) -> usize {
        self.base.text().len() + self.segments[..i].iter().map(Segment::len).sum::<usize>()
    }

    /// With a configured segment directory, writes `index` to its
    /// deterministic path and reopens it as a zero-copy storage view;
    /// without one — or if any I/O step fails — returns the heap-backed
    /// index unchanged (the option trades memory, never correctness).
    fn remap_segment(&self, index: UsiIndex, offset: usize) -> UsiIndex {
        let Some(dir) = &self.opts.segment_dir else {
            return index;
        };
        let path = Self::segment_path(dir, offset, index.text().len());
        let write = || -> Result<UsiIndex, Box<dyn std::error::Error>> {
            let mut out = std::io::BufWriter::new(std::fs::File::create(&path)?);
            index.write_to(&mut out)?;
            std::io::Write::flush(&mut out)?;
            Ok(usi_core::persist::open_mmap(&path)?)
        };
        write().unwrap_or(index)
    }

    /// The next due tier merge, if any: the lowest generation holding
    /// at least `compact_fanout` segments, taking its oldest
    /// `compact_fanout` members. Segments of one generation are always
    /// adjacent (generations are non-increasing from oldest to newest),
    /// so the merged segment covers contiguous text.
    pub fn compaction_plan(&self) -> Option<CompactionPlan> {
        let fanout = self.opts.compact_fanout;
        let mut due: Option<(u32, usize)> = None; // (generation, first index)
        for generation in self.segments.iter().map(Segment::generation) {
            let count = self.segments.iter().filter(|s| s.generation == generation).count();
            if count >= fanout && due.is_none_or(|(g, _)| generation < g) {
                let first = self
                    .segments
                    .iter()
                    .position(|s| s.generation == generation)
                    .expect("a counted generation has a first member");
                due = Some((generation, first));
            }
        }
        let (generation, start) = due?;
        let inputs: Vec<Arc<UsiIndex>> = self.segments[start..start + fanout]
            .iter()
            .map(|s| {
                debug_assert_eq!(s.generation, generation, "tier members are adjacent");
                Arc::clone(&s.index)
            })
            .collect();
        Some(CompactionPlan { start, generation, inputs })
    }

    /// Installs an executed plan, replacing its input segments with the
    /// merged one. Returns `false` (and changes nothing) if the
    /// segment list no longer matches the plan — only possible with an
    /// external writer racing the compactor, since appends never touch
    /// existing segments.
    pub fn install_compaction(&mut self, plan: &CompactionPlan, merged: UsiIndex) -> bool {
        let window = self.segments.get(plan.start..plan.start + plan.inputs.len());
        let matches = window.is_some_and(|window| {
            window.iter().zip(&plan.inputs).all(|(s, input)| Arc::ptr_eq(&s.index, input))
        });
        if !matches {
            return false;
        }
        let offset = self.segment_offset(plan.start);
        let merged = self.remap_segment(merged, offset);
        if let Some(dir) = self.opts.segment_dir.clone() {
            // best-effort removal of the replaced segments' files (the
            // merged one covers the same letters; unlinking a file that
            // is still mapped is safe on unix — the pages outlive the
            // name). A leftover file only wastes disk: replay never
            // reads it, segments are reopened by exact path.
            let mut at = offset;
            for input in &plan.inputs {
                let _ = std::fs::remove_file(Self::segment_path(&dir, at, input.text().len()));
                at += input.text().len();
            }
        }
        self.segments.splice(
            plan.start..plan.start + plan.inputs.len(),
            [Segment { index: Arc::new(merged), generation: plan.generation + 1 }],
        );
        self.compactions += 1;
        self.last_compaction = Some(Instant::now());
        let m = crate::metrics::ingest();
        m.compactions_total.inc();
        m.segments.add(1 - plan.inputs.len() as i64);
        true
    }

    /// Runs one due tier merge inline. Returns whether a merge ran.
    pub fn compact_once(&mut self) -> bool {
        let Some(plan) = self.compaction_plan() else {
            return false;
        };
        let merged = plan.build(&self.segment_builder());
        self.install_compaction(&plan, merged)
    }

    /// Runs tier merges inline until no tier is due.
    pub fn compact_to_quiescence(&mut self) {
        while self.compact_once() {}
    }

    /// Answers `U(P)` over the full (base + segments + tail) string.
    pub fn query(&self, pattern: &[u8]) -> UsiQuery {
        let (acc, source) = self.query_accumulator(pattern);
        UsiQuery { value: acc.finish(self.utility().aggregator), occurrences: acc.count(), source }
    }

    /// Like [`IngestIndex::query`] but returns the raw accumulator, so
    /// multi-document callers (the serving layer's fan-out) can merge
    /// further occurrences before extracting an aggregate. The reported
    /// [`QuerySource`] is the base index's (matching `DynamicUsi`).
    pub fn query_accumulator(&self, pattern: &[u8]) -> (UtilityAccumulator, QuerySource) {
        let m = pattern.len();
        if m == 0 || m > self.len() {
            return (UtilityAccumulator::new(), QuerySource::TextIndex);
        }
        // (a) occurrences fully inside one indexed component, answered
        // by that component's own index…
        let (base_acc, source) = self.base.query_accumulator(pattern);
        let mut parts: Vec<UtilityAccumulator> = Vec::with_capacity(self.segments.len() + 2);
        parts.push(base_acc);
        parts.extend(self.segments.iter().map(|seg| seg.index.query_accumulator(pattern).0));
        // (b) …plus the occurrences no component can see: crossing a
        // component boundary, or inside the unindexed tail.
        parts.push(self.scan_boundaries(pattern));
        // …merged with the same helper the cross-document fan-out uses.
        (merge_accumulators(parts.iter()), source)
    }

    /// Answers a batch of queries, one [`UsiQuery`] per pattern.
    pub fn query_batch(&self, patterns: &[&[u8]]) -> Vec<UsiQuery> {
        patterns.iter().map(|p| self.query(p)).collect()
    }

    /// The start offsets and lengths of the indexed components (base if
    /// non-empty, then every segment), in text order.
    fn component_ranges(&self) -> Vec<(usize, usize)> {
        let mut ranges = Vec::with_capacity(self.segments.len() + 1);
        let mut offset = 0usize;
        if !self.base.text().is_empty() {
            ranges.push((0, self.base.text().len()));
        }
        offset += self.base.text().len();
        for seg in &self.segments {
            ranges.push((offset, seg.len()));
            offset += seg.len();
        }
        ranges
    }

    /// Copies `[at, at + len)` of the full string out of whichever
    /// components hold it.
    fn copy_region(&self, at: usize, len: usize, text: &mut Vec<u8>, weights: &mut Vec<f64>) {
        text.clear();
        weights.clear();
        let mut offset = 0usize;
        let (start, end) = (at, at + len);
        let mut copy_from = |comp_text: &[u8], comp_weights: WeightsRef<'_>, offset: usize| {
            let comp_end = offset + comp_text.len();
            if start < comp_end && end > offset {
                let lo = start.max(offset) - offset;
                let hi = end.min(comp_end) - offset;
                text.extend_from_slice(&comp_text[lo..hi]);
                comp_weights.extend_range_into(lo..hi, weights);
            }
        };
        copy_from(self.base.text(), self.base.weights(), 0);
        offset += self.base.text().len();
        for seg in &self.segments {
            copy_from(seg.index.text(), seg.index.weights(), offset);
            offset += seg.len();
        }
        copy_from(&self.tail_text, WeightsRef::Slice(&self.tail_weights), offset);
    }

    /// Folds in every occurrence that crosses a component boundary or
    /// lies inside the unindexed tail: a rolling-hash scan (the same
    /// Karp–Rabin machinery phase (ii) uses) over the union of the
    /// boundary windows, each candidate verified by direct comparison.
    fn scan_boundaries(&self, pattern: &[u8]) -> UtilityAccumulator {
        let mut acc = UtilityAccumulator::new();
        let m = pattern.len();
        let total = self.len();
        let last_start = total - m; // inclusive; callers checked m ≤ total

        // candidate start windows: ±m around every internal component
        // boundary, plus the whole tail region
        let ranges = self.component_ranges();
        let mut windows: Vec<(usize, usize)> = Vec::new(); // [lo, hi] inclusive
        for &(offset, len) in &ranges {
            let junction = offset + len;
            if junction == 0 || junction >= total {
                continue;
            }
            // occurrences crossing `junction` start in [junction − m + 1,
            // junction − 1]
            let lo = (junction + 1).saturating_sub(m);
            let hi = (junction - 1).min(last_start);
            if lo <= hi {
                windows.push((lo, hi));
            }
        }
        if !self.tail_text.is_empty() {
            let tail_start = total - self.tail_text.len();
            // crossing into, or fully inside, the tail
            let lo = (tail_start + 1).saturating_sub(m);
            if lo <= last_start {
                windows.push((lo, last_start));
            }
        }
        if windows.is_empty() {
            return acc;
        }
        windows.sort_unstable();
        let mut merged: Vec<(usize, usize)> = Vec::with_capacity(windows.len());
        for (lo, hi) in windows {
            match merged.last_mut() {
                Some((_, last_hi)) if lo <= *last_hi + 1 => *last_hi = (*last_hi).max(hi),
                _ => merged.push((lo, hi)),
            }
        }

        let fingerprinter = self.base.fingerprinter();
        let pattern_fp = fingerprinter.fingerprint(pattern);
        let local_kind = self.utility().local;
        let mut region_text: Vec<u8> = Vec::new();
        let mut region_weights: Vec<f64> = Vec::new();
        for (lo, hi) in merged {
            self.copy_region(lo, hi - lo + m, &mut region_text, &mut region_weights);
            let Some(mut window) = fingerprinter.rolling(&region_text, m) else {
                continue;
            };
            loop {
                let p = window.position();
                let start = lo + p;
                if window.value() == pattern_fp
                    && region_text[p..p + m] == *pattern
                    && !self.contained_in_component(&ranges, start, m)
                {
                    let local = match local_kind {
                        LocalWindow::Sum => region_weights[p..p + m].iter().sum(),
                        LocalWindow::Product => region_weights[p..p + m].iter().product(),
                    };
                    acc.add(local);
                }
                if !window.slide() {
                    break;
                }
            }
        }
        acc
    }

    /// Whether `[start, start + m)` lies entirely inside one indexed
    /// component (and was therefore already counted by its index).
    fn contained_in_component(&self, ranges: &[(usize, usize)], start: usize, m: usize) -> bool {
        let i = ranges.partition_point(|&(offset, _)| offset <= start);
        if i == 0 {
            return false;
        }
        let (offset, len) = ranges[i - 1];
        start >= offset && start + m <= offset + len
    }
}

impl QueryEngine for IngestIndex {
    fn query(&self, pattern: &[u8]) -> UsiQuery {
        IngestIndex::query(self, pattern)
    }

    fn query_accumulator(&self, pattern: &[u8]) -> (UtilityAccumulator, QuerySource) {
        IngestIndex::query_accumulator(self, pattern)
    }

    fn query_batch(&self, patterns: &[&[u8]]) -> Vec<UsiQuery> {
        IngestIndex::query_batch(self, patterns)
    }

    fn utility(&self) -> GlobalUtility {
        IngestIndex::utility(self)
    }

    fn indexed_len(&self) -> usize {
        self.len()
    }

    fn cached_substrings(&self) -> usize {
        self.base.cached_substrings()
            + self.segments.iter().map(|seg| seg.index.cached_substrings()).sum::<usize>()
    }

    fn size_breakdown(&self) -> IndexSize {
        IngestIndex::size_breakdown(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use usi_strings::GlobalAggregator;

    fn builder(k: usize, seed: u64) -> UsiBuilder {
        UsiBuilder::new().with_k(k).deterministic(seed)
    }

    fn random_ws(rng: &mut StdRng, n: usize) -> WeightedString {
        let text: Vec<u8> = (0..n).map(|_| b'a' + rng.gen_range(0..3u8)).collect();
        // dyadic weights: every aggregate is exact in f64, so answers
        // compare with == regardless of accumulation order
        let weights: Vec<f64> = (0..n).map(|_| rng.gen_range(0..8) as f64 * 0.25).collect();
        WeightedString::new(text, weights).unwrap()
    }

    fn check_against_scratch(idx: &IngestIndex, k: usize, seed: u64, patterns: &[Vec<u8>]) {
        let full = WeightedString::new(idx.text(), idx.weights()).unwrap();
        let scratch = builder(k, seed).build(full);
        for pattern in patterns {
            let got = idx.query(pattern);
            let want = scratch.query(pattern);
            assert_eq!(got.occurrences, want.occurrences, "pattern {pattern:?}");
            assert_eq!(got.value, want.value, "pattern {pattern:?}");
        }
    }

    #[test]
    fn seals_and_compactions_preserve_answers() {
        let mut rng = StdRng::seed_from_u64(11);
        let ws = random_ws(&mut rng, 200);
        let mut idx = IngestIndex::new(
            builder(20, 7).build(ws),
            IngestOptions { seal_threshold: 16, compact_fanout: 3, ..IngestOptions::default() },
        );
        for step in 0..150 {
            idx.push(b'a' + rng.gen_range(0..3u8), rng.gen_range(0..8) as f64 * 0.25);
            if step % 40 == 20 {
                idx.compact_once();
            }
        }
        assert!(idx.seals() > 0, "tail must have sealed");
        assert!(idx.compactions() > 0, "tiers must have merged");
        let text = idx.text();
        let mut patterns: Vec<Vec<u8>> = (0..60)
            .map(|_| {
                let m = rng.gen_range(1..30usize);
                let i = rng.gen_range(0..text.len() - m);
                text[i..i + m].to_vec()
            })
            .collect();
        patterns.push(b"zzz".to_vec());
        patterns.push(text.clone()); // the whole string
        check_against_scratch(&idx, 20, 7, &patterns);
    }

    #[test]
    fn boundary_spanning_occurrences_counted_once() {
        // base "aaa" + three sealed 1-letter segments + tail: "aa" in
        // "aaaaaaa" occurs 6 times, none double-counted
        let ws = WeightedString::uniform(b"aaa".to_vec(), 1.0);
        let mut idx = IngestIndex::new(
            builder(2, 3).build(ws),
            IngestOptions { seal_threshold: 1, compact_fanout: 100, ..IngestOptions::default() },
        );
        for _ in 0..3 {
            idx.push(b'a', 1.0);
        }
        assert_eq!(idx.segments().len(), 3);
        idx.tail_text.push(b'a'); // one unsealed tail letter
        idx.tail_weights.push(1.0);
        let q = idx.query(b"aa");
        assert_eq!(q.occurrences, 6);
        assert_eq!(q.value, Some(12.0));
        let q = idx.query(b"aaaaaaa");
        assert_eq!(q.occurrences, 1);
        assert_eq!(q.value, Some(7.0));
    }

    #[test]
    fn generations_tier_up() {
        let ws = WeightedString::uniform(b"ab".to_vec(), 1.0);
        let mut idx = IngestIndex::new(
            builder(2, 5).build(ws),
            IngestOptions { seal_threshold: 2, compact_fanout: 2, ..IngestOptions::default() },
        );
        // 8 seals → with F = 2 full quiescence folds everything to one
        // generation-3 segment
        for _ in 0..8 {
            idx.push(b'a', 1.0);
            idx.push(b'b', 1.0);
            idx.compact_to_quiescence();
        }
        assert_eq!(idx.segments().len(), 1);
        assert_eq!(idx.segments()[0].generation(), 3);
        assert_eq!(idx.compactions(), 7);
        assert!(idx.last_compaction().is_some());
        let q = idx.query(b"ab");
        assert_eq!(q.occurrences, 9);
    }

    #[test]
    fn empty_base_grows_from_nothing() {
        let ws = WeightedString::new(vec![], vec![]).unwrap();
        let mut idx = IngestIndex::new(
            builder(4, 9).build(ws),
            IngestOptions { seal_threshold: 3, compact_fanout: 2, ..IngestOptions::default() },
        );
        assert!(idx.is_empty());
        assert_eq!(idx.query(b"a").occurrences, 0);
        idx.append(b"abcabc", &[1.0; 6]);
        idx.compact_to_quiescence();
        assert_eq!(idx.len(), 6);
        let q = idx.query(b"abc");
        assert_eq!(q.occurrences, 2);
        assert_eq!(q.value, Some(6.0));
    }

    #[test]
    fn aggregators_merge_correctly_across_segments() {
        let mut rng = StdRng::seed_from_u64(23);
        for agg in [GlobalAggregator::Min, GlobalAggregator::Max, GlobalAggregator::Avg] {
            let ws = random_ws(&mut rng, 80);
            let base =
                UsiBuilder::new().with_k(10).with_aggregator(agg).deterministic(31).build(ws);
            let mut idx = IngestIndex::new(
                base,
                IngestOptions { seal_threshold: 8, compact_fanout: 2, ..IngestOptions::default() },
            );
            for _ in 0..40 {
                idx.push(b'a' + rng.gen_range(0..3u8), rng.gen_range(0..8) as f64 * 0.25);
            }
            idx.compact_to_quiescence();
            let full = WeightedString::new(idx.text(), idx.weights()).unwrap();
            let scratch =
                UsiBuilder::new().with_k(10).with_aggregator(agg).deterministic(31).build(full);
            for pattern in [&b"a"[..], b"ab", b"abc", b"ba", b"zz"] {
                let got = idx.query(pattern);
                let want = scratch.query(pattern);
                assert_eq!(got.occurrences, want.occurrences, "{agg:?} {pattern:?}");
                assert_eq!(got.value, want.value, "{agg:?} {pattern:?}");
            }
        }
    }

    #[test]
    fn segment_dir_persists_and_remaps_segments_with_identical_answers() {
        let dir = std::env::temp_dir().join("usi-ingest-segdir-test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();

        let mut rng = StdRng::seed_from_u64(61);
        let ws = random_ws(&mut rng, 120);
        let opts = IngestOptions {
            seal_threshold: 16,
            compact_fanout: 2,
            segment_dir: Some(dir.clone()),
            ..IngestOptions::default()
        };
        let mut mapped = IngestIndex::new(builder(15, 8).build(ws.clone()), opts);
        let mut heap = IngestIndex::new(
            builder(15, 8).build(ws),
            IngestOptions { seal_threshold: 16, compact_fanout: 2, ..IngestOptions::default() },
        );
        for _ in 0..100 {
            let letter = b'a' + rng.gen_range(0..3u8);
            let weight = rng.gen_range(0..8) as f64 * 0.25;
            mapped.push(letter, weight);
            heap.push(letter, weight);
        }
        mapped.compact_to_quiescence();
        heap.compact_to_quiescence();

        assert!(!mapped.segments().is_empty());
        // on targets with the mmap wrapper every sealed/compacted
        // segment is served from its file; elsewhere the persist step
        // still ran but the view is owned bytes
        #[cfg(all(unix, target_pointer_width = "64"))]
        assert!(mapped.segments().iter().all(|s| s.index().is_memory_mapped()));
        let files: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(Result::ok)
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(files.len(), mapped.segments().len(), "one live file per segment: {files:?}");
        assert!(files.iter().all(|f| f.starts_with("seg-") && f.ends_with(".usix")));

        let text = mapped.text();
        assert_eq!(text, heap.text());
        for _ in 0..40 {
            let m = rng.gen_range(1..25usize);
            let i = rng.gen_range(0..text.len() - m);
            let pattern = &text[i..i + m];
            assert_eq!(mapped.query(pattern), heap.query(pattern), "pattern {pattern:?}");
        }
        check_against_scratch(&mapped, 15, 8, &[text.clone(), b"zzz".to_vec()]);
    }

    #[test]
    fn stale_plan_does_not_install() {
        let ws = WeightedString::uniform(b"ab".to_vec(), 1.0);
        let mut idx = IngestIndex::new(
            builder(2, 5).build(ws),
            IngestOptions { seal_threshold: 1, compact_fanout: 2, ..IngestOptions::default() },
        );
        idx.push(b'a', 1.0);
        idx.push(b'b', 1.0);
        let plan = idx.compaction_plan().expect("two gen-0 segments are due");
        let merged = plan.build(&idx.segment_builder());
        // compact through another path first: the plan goes stale
        assert!(idx.compact_once());
        assert!(!idx.install_compaction(&plan, merged));
        assert_eq!(idx.compactions(), 1);
    }
}
