//! The `.usil` write-ahead log: appended letters hit disk before they
//! hit memory, so a crash loses nothing that was acknowledged.
//!
//! Layout (`USIL` format, version 1), little-endian throughout:
//!
//! ```text
//! magic   b"USIL\x01\x00\x00\x00"
//! record* each:
//!   u32   payload length
//!   u8    tag (1 = append batch)
//!   u32   letter count c           ─┐
//!   [u8]  letters (c bytes)         ├ the payload
//!   [f64] weights (c doubles)      ─┘
//!   u32   CRC-32 (IEEE) of the payload
//! ```
//!
//! Recovery contract: **any byte-truncation of a log replays to a valid
//! prefix state** (proptested in `tests/wal_torture.rs`). Replay walks
//! records until the first incomplete or checksum-failing one, returns
//! everything before it, and reports the byte offset of the clean
//! prefix; [`Wal::open`] truncates the file there before appending, so
//! a torn tail from a crash can never corrupt later records.

use std::fs::{File, OpenOptions};
use std::io::{self, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// File magic: `USIL`, format version 1.
pub const MAGIC: [u8; 8] = *b"USIL\x01\x00\x00\x00";

/// Record tag: a batch of appended weighted letters.
const TAG_APPEND: u8 = 1;

/// Upper bound on one record's payload (sanity check against reading a
/// garbage length field as a huge allocation).
const MAX_PAYLOAD: u32 = 64 * 1024 * 1024;

/// CRC-32 (IEEE 802.3, reflected) lookup table, built at compile time.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 == 1 { (crc >> 1) ^ 0xedb8_8320 } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE) of `data` — the per-record checksum.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in data {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xff) as usize];
    }
    !crc
}

/// One replayed append batch.
#[derive(Debug, Clone, PartialEq)]
pub struct WalRecord {
    /// The appended letters.
    pub text: Vec<u8>,
    /// One weight per letter.
    pub weights: Vec<f64>,
}

/// Errors raised while opening or replaying a log.
#[derive(Debug)]
pub enum WalError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file exists, is at least magic-sized, and is not a USIL log.
    BadMagic,
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "i/o error: {e}"),
            Self::BadMagic => write!(f, "not a USIL v1 write-ahead log"),
        }
    }
}

impl std::error::Error for WalError {}

impl From<io::Error> for WalError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

/// Outcome of replaying a log file.
#[derive(Debug)]
pub struct Replay {
    /// The cleanly recovered append batches, in log order.
    pub records: Vec<WalRecord>,
    /// Byte length of the clean prefix (magic + whole valid records).
    pub valid_len: u64,
    /// Whether a torn/corrupt tail was dropped past `valid_len`.
    pub truncated: bool,
}

/// Parses one record from `bytes[pos..]`. Returns `Some((record, end))`
/// when a complete, checksum-valid record starts at `pos`.
fn parse_record(bytes: &[u8], pos: usize) -> Option<(WalRecord, usize)> {
    let len_end = pos.checked_add(4)?;
    let payload_len = u32::from_le_bytes(bytes.get(pos..len_end)?.try_into().ok()?) as usize;
    if payload_len as u64 > MAX_PAYLOAD as u64 {
        return None;
    }
    let payload_end = len_end.checked_add(payload_len)?;
    let crc_end = payload_end.checked_add(4)?;
    let payload = bytes.get(len_end..payload_end)?;
    let stored_crc = u32::from_le_bytes(bytes.get(payload_end..crc_end)?.try_into().ok()?);
    if crc32(payload) != stored_crc {
        return None;
    }
    // decode the payload: tag, count, letters, weights
    if payload.len() < 5 || payload[0] != TAG_APPEND {
        return None;
    }
    let count = u32::from_le_bytes(payload[1..5].try_into().ok()?) as usize;
    if payload.len() != 5 + count + 8 * count {
        return None;
    }
    let text = payload[5..5 + count].to_vec();
    let weights = payload[5 + count..]
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().expect("chunks_exact(8)")))
        .collect::<Vec<f64>>();
    if weights.iter().any(|w| !w.is_finite()) {
        return None;
    }
    Some((WalRecord { text, weights }, crc_end))
}

/// Parses one record starting at byte `pos` of a log image (`pos` must
/// sit on a record boundary — [`MAGIC`]`.len()` for the first record).
/// Returns `Some((record, end))` when a complete, checksum-valid record
/// starts there; `None` for a torn, corrupt or absent record. This is
/// the replication follower's verification primitive: every shipped
/// record re-runs the same CRC and shape checks replay uses.
pub fn parse_record_at(bytes: &[u8], pos: usize) -> Option<(WalRecord, usize)> {
    parse_record(bytes, pos)
}

/// A chunk of whole records read from a log's tail by [`read_tail`].
#[derive(Debug)]
pub struct TailChunk {
    /// Raw record bytes (length + payload + CRC framing intact), i.e.
    /// exactly the log bytes in `[from, end)` — zero or more complete
    /// records, shippable as-is.
    pub bytes: Vec<u8>,
    /// Number of complete records in `bytes`.
    pub records: u64,
    /// Byte offset the chunk ends at (the next record boundary).
    pub end: u64,
}

/// Reads whole records from the log at `path`, starting at byte `from`
/// (a record boundary; pass `0` to start at the first record) and never
/// past `committed` (the writer's clean length — bytes past it may be a
/// torn tail still being written). At most ~`max_bytes` are returned,
/// but always at least one complete record when one exists, so a
/// record larger than `max_bytes` cannot stall a shipper. This is the
/// primary-side tailing primitive of WAL shipping: offsets are stable
/// file positions, so a follower can disconnect and resume by offset.
pub fn read_tail(
    path: &Path,
    from: u64,
    committed: u64,
    max_bytes: usize,
) -> Result<TailChunk, WalError> {
    use std::io::Read;
    let from = if from == 0 { MAGIC.len() as u64 } else { from };
    if from < MAGIC.len() as u64 || from > committed {
        return Err(WalError::Io(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("offset {from} outside the committed log [{}, {committed}]", MAGIC.len()),
        )));
    }
    if from == committed {
        return Ok(TailChunk { bytes: Vec::new(), records: 0, end: from });
    }
    let mut file = File::open(path)?;
    let mut want = max_bytes.max(1).min((committed - from) as usize);
    loop {
        file.seek(SeekFrom::Start(from))?;
        let mut buf = vec![0u8; want];
        let mut filled = 0;
        while filled < buf.len() {
            match file.read(&mut buf[filled..])? {
                0 => break,
                n => filled += n,
            }
        }
        buf.truncate(filled);
        // keep only whole records; a record split by the read window is
        // picked up by the next (possibly enlarged) read
        let mut pos = 0;
        let mut records = 0u64;
        while let Some((_, end)) = parse_record(&buf, pos) {
            pos = end;
            records += 1;
        }
        if records > 0 {
            buf.truncate(pos);
            return Ok(TailChunk { bytes: buf, records, end: from + pos as u64 });
        }
        // no complete record fit in the window: the committed region
        // holds a record bigger than `want` — double and retry
        if want as u64 >= committed - from {
            return Err(WalError::Io(io::Error::other(format!(
                "no complete record at committed offset {from} (log corrupt past the \
                 writer's clean length?)"
            ))));
        }
        want = want.saturating_mul(2).min((committed - from) as usize);
    }
}

/// Replays the log in `bytes`: all complete records before the first
/// torn or corrupt one.
pub fn replay_bytes(bytes: &[u8]) -> Result<Replay, WalError> {
    if bytes.len() < MAGIC.len() {
        // a truncation inside the magic itself: the prefix state is
        // "nothing was ever logged" — only accept actual magic prefixes
        // so a wrong file type still fails loudly
        if MAGIC.starts_with(bytes) {
            return Ok(Replay { records: Vec::new(), valid_len: 0, truncated: !bytes.is_empty() });
        }
        return Err(WalError::BadMagic);
    }
    if bytes[..MAGIC.len()] != MAGIC {
        return Err(WalError::BadMagic);
    }
    let mut records = Vec::new();
    let mut pos = MAGIC.len();
    while pos < bytes.len() {
        match parse_record(bytes, pos) {
            Some((record, end)) => {
                records.push(record);
                pos = end;
            }
            None => {
                return Ok(Replay { records, valid_len: pos as u64, truncated: true });
            }
        }
    }
    Ok(Replay { records, valid_len: pos as u64, truncated: false })
}

/// Replays the log file at `path`. A missing file replays to the empty
/// state (nothing was ever logged).
pub fn replay_file(path: &Path) -> Result<Replay, WalError> {
    let bytes = match std::fs::read(path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == io::ErrorKind::NotFound => {
            return Ok(Replay { records: Vec::new(), valid_len: 0, truncated: false })
        }
        Err(e) => return Err(e.into()),
    };
    replay_bytes(&bytes)
}

/// Most letters packed into one record: `5 + 9 · count` payload bytes
/// stay far below [`MAX_PAYLOAD`], so the write path can never emit a
/// record the read path would refuse as corrupt. Larger appends are
/// split across records (replay concatenates them in order).
const MAX_RECORD_LETTERS: usize = 1 << 20;

/// An open, append-only log handle.
///
/// Every [`Wal::append`] writes complete records and (with
/// `sync = true`, the default everywhere durability matters) calls
/// `fdatasync` before returning, so an acknowledged append survives a
/// process kill. A failed write rolls the file back to the last clean
/// record boundary; if even the rollback fails the handle poisons
/// itself and refuses further appends (the file may hold a mid-log
/// tear that replay would truncate at, silently dropping anything
/// written after it).
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
    len: u64,
    sync: bool,
    poisoned: bool,
}

impl Wal {
    /// Opens (creating if absent) the log at `path`, replaying whatever
    /// it already holds. A torn tail from a previous crash is truncated
    /// away before the handle is returned, so new records always start
    /// on a clean record boundary.
    pub fn open(path: &Path, sync: bool) -> Result<(Self, Replay), WalError> {
        let replay = replay_file(path)?;
        // truncate(false): the clean prefix must survive; the explicit
        // set_len below handles the torn tail
        let mut file =
            OpenOptions::new().read(true).write(true).create(true).truncate(false).open(path)?;
        let clean_len = if replay.valid_len == 0 {
            // fresh (or magic-truncated) file: (re)write the magic
            file.set_len(0)?;
            file.write_all(&MAGIC)?;
            MAGIC.len() as u64
        } else {
            file.set_len(replay.valid_len)?;
            replay.valid_len
        };
        file.seek(SeekFrom::Start(clean_len))?;
        if sync {
            file.sync_data()?;
        }
        Ok((Self { file, path: path.to_path_buf(), len: clean_len, sync, poisoned: false }, replay))
    }

    /// The log's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Current log size in bytes (magic + clean records).
    pub fn bytes(&self) -> u64 {
        self.len
    }

    /// Appends one batch of weighted letters (split into 1 Mi-letter
    /// records, so every record stays replayable below the reader's
    /// payload cap), durably when the handle was opened with
    /// `sync = true`. One
    /// fsync covers the whole batch; `Ok` means the entire batch is on
    /// disk, `Err` means none of it is acknowledged (a crash may still
    /// persist a leading whole-record prefix — a valid prefix state).
    ///
    /// # Panics
    /// Panics if `text` and `weights` lengths differ (callers validate
    /// input at the API boundary).
    pub fn append(&mut self, text: &[u8], weights: &[f64]) -> io::Result<()> {
        assert_eq!(text.len(), weights.len(), "one weight per appended letter");
        if self.poisoned {
            return Err(io::Error::other(
                "write-ahead log poisoned by an earlier unrecoverable write failure",
            ));
        }
        let mut batch = Vec::with_capacity(12 + text.len() + 8 * weights.len());
        for (text, weights) in
            text.chunks(MAX_RECORD_LETTERS).zip(weights.chunks(MAX_RECORD_LETTERS))
        {
            let mut payload = Vec::with_capacity(5 + text.len() + 8 * weights.len());
            payload.push(TAG_APPEND);
            payload.extend_from_slice(&(text.len() as u32).to_le_bytes());
            payload.extend_from_slice(text);
            for &w in weights {
                payload.extend_from_slice(&w.to_le_bytes());
            }
            batch.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            batch.extend_from_slice(&payload);
            batch.extend_from_slice(&crc32(&payload).to_le_bytes());
        }
        let result = self.file.write_all(&batch).and_then(|()| {
            if self.sync {
                let started = std::time::Instant::now();
                let synced = self.file.sync_data();
                crate::metrics::ingest().wal_fsync_seconds.observe_duration(started.elapsed());
                synced
            } else {
                Ok(())
            }
        });
        match result {
            Ok(()) => {
                self.len += batch.len() as u64;
                let m = crate::metrics::ingest();
                m.wal_bytes_written_total.add(batch.len() as u64);
                m.wal_appends_total.inc();
                Ok(())
            }
            Err(e) => {
                // roll the file back to the last clean record boundary
                // so a later successful append cannot land after a tear
                // that replay would stop at
                let rolled = self
                    .file
                    .set_len(self.len)
                    .and_then(|()| self.file.seek(SeekFrom::Start(self.len)).map(|_| ()));
                if rolled.is_err() {
                    self.poisoned = true;
                }
                Err(e)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("usi-wal-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // standard IEEE CRC-32 check values
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
    }

    #[test]
    fn append_then_replay_roundtrips() {
        let path = tmp("roundtrip.usil");
        let _ = std::fs::remove_file(&path);
        let (mut wal, replay) = Wal::open(&path, false).unwrap();
        assert!(replay.records.is_empty());
        wal.append(b"abc", &[1.0, 2.0, 3.0]).unwrap();
        wal.append(b"", &[]).unwrap(); // empty appends write no record
        wal.append(b"z", &[-0.5]).unwrap();
        let bytes = wal.bytes();
        drop(wal);

        let replay = replay_file(&path).unwrap();
        assert!(!replay.truncated);
        assert_eq!(replay.valid_len, bytes);
        assert_eq!(replay.records.len(), 2);
        assert_eq!(
            replay.records[0],
            WalRecord { text: b"abc".to_vec(), weights: vec![1.0, 2.0, 3.0] }
        );
        assert_eq!(replay.records[1].weights, vec![-0.5]);
    }

    #[test]
    fn reopen_appends_after_existing_records() {
        let path = tmp("reopen.usil");
        let _ = std::fs::remove_file(&path);
        let (mut wal, _) = Wal::open(&path, false).unwrap();
        wal.append(b"ab", &[1.0, 1.0]).unwrap();
        drop(wal);
        let (mut wal, replay) = Wal::open(&path, false).unwrap();
        assert_eq!(replay.records.len(), 1);
        wal.append(b"cd", &[2.0, 2.0]).unwrap();
        drop(wal);
        let replay = replay_file(&path).unwrap();
        let text: Vec<u8> = replay.records.iter().flat_map(|r| r.text.clone()).collect();
        assert_eq!(text, b"abcd");
    }

    #[test]
    fn oversized_appends_split_into_replayable_records() {
        let path = tmp("split.usil");
        let _ = std::fs::remove_file(&path);
        let (mut wal, _) = Wal::open(&path, false).unwrap();
        let n = MAX_RECORD_LETTERS + 17;
        let text: Vec<u8> = (0..n).map(|i| b'a' + (i % 3) as u8).collect();
        wal.append(&text, &vec![1.0; n]).unwrap();
        drop(wal);
        let replay = replay_file(&path).unwrap();
        assert!(!replay.truncated, "every split record must be replayable");
        assert_eq!(replay.records.len(), 2);
        assert_eq!(replay.records[0].text.len(), MAX_RECORD_LETTERS);
        assert_eq!(replay.records[1].text.len(), 17);
        let got: Vec<u8> = replay.records.iter().flat_map(|r| r.text.clone()).collect();
        assert_eq!(got, text);
        assert_eq!(replay.records.iter().map(|r| r.weights.len()).sum::<usize>(), n);
    }

    #[test]
    fn torn_tail_recovers_to_clean_prefix() {
        let path = tmp("torn.usil");
        let _ = std::fs::remove_file(&path);
        let (mut wal, _) = Wal::open(&path, false).unwrap();
        wal.append(b"abc", &[1.0; 3]).unwrap();
        let clean = wal.bytes();
        wal.append(b"defg", &[2.0; 4]).unwrap();
        drop(wal);
        // tear the second record in half
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.truncate(clean as usize + 7);
        std::fs::write(&path, &bytes).unwrap();

        let replay = replay_file(&path).unwrap();
        assert!(replay.truncated);
        assert_eq!(replay.valid_len, clean);
        assert_eq!(replay.records.len(), 1);

        // reopening truncates the torn tail and appends cleanly
        let (mut wal, _) = Wal::open(&path, false).unwrap();
        assert_eq!(wal.bytes(), clean);
        wal.append(b"hi", &[3.0; 2]).unwrap();
        drop(wal);
        let replay = replay_file(&path).unwrap();
        assert!(!replay.truncated);
        assert_eq!(replay.records.len(), 2);
        assert_eq!(replay.records[1].text, b"hi");
    }

    #[test]
    fn corrupt_checksum_stops_replay() {
        let path = tmp("corrupt.usil");
        let _ = std::fs::remove_file(&path);
        let (mut wal, _) = Wal::open(&path, false).unwrap();
        wal.append(b"abc", &[1.0; 3]).unwrap();
        wal.append(b"def", &[1.0; 3]).unwrap();
        drop(wal);
        let mut bytes = std::fs::read(&path).unwrap();
        let n = bytes.len();
        bytes[n - 1] ^= 0xff; // flip a bit in the last record's CRC
        std::fs::write(&path, &bytes).unwrap();
        let replay = replay_file(&path).unwrap();
        assert!(replay.truncated);
        assert_eq!(replay.records.len(), 1);
    }

    #[test]
    fn read_tail_ships_whole_records_by_offset() {
        let path = tmp("tail.usil");
        let _ = std::fs::remove_file(&path);
        let (mut wal, _) = Wal::open(&path, false).unwrap();
        wal.append(b"abc", &[1.0; 3]).unwrap();
        let first_end = wal.bytes();
        wal.append(b"defgh", &[2.0; 5]).unwrap();
        wal.append(b"i", &[3.0]).unwrap();
        let committed = wal.bytes();
        drop(wal);

        // from 0 (≡ the first record boundary), a big window takes all
        let all = read_tail(&path, 0, committed, 1 << 20).unwrap();
        assert_eq!(all.records, 3);
        assert_eq!(all.end, committed);
        // the chunk's bytes re-parse with the same primitive a
        // follower verifies with
        let (rec, end) = parse_record_at(&all.bytes, 0).unwrap();
        assert_eq!(rec.text, b"abc");
        assert_eq!(end as u64 + MAGIC.len() as u64, first_end);

        // a tiny window still makes progress: at least one record
        let small = read_tail(&path, 0, committed, 1).unwrap();
        assert_eq!(small.records, 1);
        assert_eq!(small.end, first_end);
        // resuming from the returned offset continues cleanly
        let rest = read_tail(&path, small.end, committed, 1 << 20).unwrap();
        assert_eq!(rest.records, 2);
        assert_eq!(rest.end, committed);
        // caught-up reads are empty, not errors
        let done = read_tail(&path, committed, committed, 1 << 20).unwrap();
        assert_eq!(done.records, 0);
        assert!(done.bytes.is_empty());
        // offsets outside the committed range are refused
        assert!(read_tail(&path, committed + 1, committed, 64).is_err());
        assert!(read_tail(&path, 3, committed, 64).is_err());
    }

    #[test]
    fn non_wal_files_fail_loudly() {
        let path = tmp("notawal.usil");
        std::fs::write(&path, b"definitely not a log").unwrap();
        assert!(matches!(replay_file(&path), Err(WalError::BadMagic)));
        assert!(matches!(Wal::open(&path, false), Err(WalError::BadMagic)));
    }

    #[test]
    fn missing_file_is_the_empty_log() {
        let path = tmp("never-created.usil");
        let _ = std::fs::remove_file(&path);
        let replay = replay_file(&path).unwrap();
        assert!(replay.records.is_empty());
        assert!(!replay.truncated);
    }
}
