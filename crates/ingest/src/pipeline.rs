//! The WAL-durable, thread-safe ingestion pipeline: what a serving
//! process actually holds per live document.
//!
//! Write path (one lock order, `wal → state`, everywhere):
//!
//! 1. the append is written to the `.usil` log and fsync'd (with
//!    `sync_wal`, the default) — durability before visibility;
//! 2. still under the WAL lock, the letters are pushed into the
//!    in-memory [`IngestIndex`] (sealing the tail into a segment when
//!    the threshold trips), so WAL order always equals memory order;
//! 3. the background compactor is nudged (or, without one, due tiers
//!    are folded inline before returning).
//!
//! The compactor runs on an owned thread: it snapshots a
//! [`CompactionPlan`](crate::index::CompactionPlan) under a read lock,
//! builds the merged segment **off-lock** (queries and appends proceed
//! meanwhile), and installs it under a brief write lock — so the write
//! path never stalls behind a rebuild, the failure mode that motivated
//! replacing `DynamicUsi`'s epoch design.
//!
//! Crash recovery: [`IngestPipeline::open`] replays the log over the
//! base index (truncating a torn tail first). Replay re-runs the same
//! deterministic seal policy, and the equivalence invariant guarantees
//! any compaction schedule answers identically, so the recovered
//! pipeline is observationally the pre-crash one.

use crate::index::{IngestIndex, IngestOptions};
use crate::wal::{Replay, Wal, WalError};
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::Duration;
use usi_core::{QuerySource, UsiIndex, UsiQuery};
use usi_strings::UtilityAccumulator;

/// Pipeline configuration: the in-memory knobs plus durability and
/// threading choices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IngestConfig {
    /// Seal the tail into a segment at this many letters.
    pub seal_threshold: usize,
    /// Merge a generation tier at this many segments.
    pub compact_fanout: usize,
    /// Worker threads for segment/compaction builds.
    pub threads: usize,
    /// Deterministic fingerprint seed for segment builds.
    pub seed: u64,
    /// `fdatasync` the log on every append (durable acknowledgements).
    /// Disable only for benchmarks and bulk loads that re-replay on
    /// failure.
    pub sync_wal: bool,
    /// Run compaction on a background thread instead of inline on the
    /// append path.
    pub background_compaction: bool,
    /// Persist sealed/compacted segments under this directory and
    /// serve them through zero-copy storage views; created on open.
    /// See [`IngestOptions::segment_dir`].
    pub segment_dir: Option<std::path::PathBuf>,
}

impl Default for IngestConfig {
    fn default() -> Self {
        let opts = IngestOptions::default();
        Self {
            seal_threshold: opts.seal_threshold,
            compact_fanout: opts.compact_fanout,
            threads: opts.threads,
            seed: opts.seed,
            sync_wal: true,
            background_compaction: false,
            segment_dir: None,
        }
    }
}

impl IngestConfig {
    fn options(&self) -> IngestOptions {
        IngestOptions {
            seal_threshold: self.seal_threshold,
            compact_fanout: self.compact_fanout,
            threads: self.threads,
            seed: self.seed,
            segment_dir: self.segment_dir.clone(),
        }
    }
}

/// Errors surfaced by the append path.
#[derive(Debug)]
pub enum IngestError {
    /// WAL open/replay failure.
    Wal(WalError),
    /// WAL write failure (the in-memory state was **not** changed).
    Io(io::Error),
    /// Invalid input (mismatched lengths, non-finite weight).
    Input(String),
}

impl std::fmt::Display for IngestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Wal(e) => write!(f, "write-ahead log: {e}"),
            Self::Io(e) => write!(f, "write-ahead log i/o: {e}"),
            Self::Input(what) => write!(f, "invalid append: {what}"),
        }
    }
}

impl std::error::Error for IngestError {}

impl From<WalError> for IngestError {
    fn from(e: WalError) -> Self {
        Self::Wal(e)
    }
}

impl From<io::Error> for IngestError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

/// Bounded-staleness statistics, the serving layer's
/// `/v1/docs/{id}/stats` payload.
#[derive(Debug, Clone, Copy)]
pub struct IngestStats {
    /// Total indexed letters (base + segments + tail).
    pub n: usize,
    /// Letters in the frozen base index.
    pub base_n: usize,
    /// Sealed segments currently live.
    pub segments: usize,
    /// Letters buffered in the unsealed tail.
    pub tail_len: usize,
    /// Bytes in the write-ahead log (magic + clean records).
    pub wal_bytes: u64,
    /// Tail seals performed since open.
    pub seals: u64,
    /// Tier merges performed since open.
    pub compactions: u64,
    /// Time since the last tier merge finished, if any ran.
    pub last_compaction: Option<Duration>,
}

/// Signalling between the append path and the background compactor.
#[derive(Debug, Default)]
struct CompactorSignal {
    nudge: Mutex<bool>,
    condvar: Condvar,
}

/// The WAL-durable ingestion pipeline. Cheap to share behind an `Arc`;
/// all methods take `&self`.
#[derive(Debug)]
pub struct IngestPipeline {
    state: Arc<RwLock<IngestIndex>>,
    wal: Mutex<Wal>,
    background: bool,
    signal: Arc<CompactorSignal>,
    shutdown: Arc<AtomicBool>,
    compactor: Option<JoinHandle<()>>,
}

impl IngestPipeline {
    /// Opens the pipeline: wraps `base`, replays (and tail-truncates)
    /// the log at `wal_path`, and — with `background_compaction` —
    /// starts the compactor thread. Returns the pipeline and the
    /// replay report (how many records were recovered, whether a torn
    /// tail was dropped).
    pub fn open(
        base: UsiIndex,
        wal_path: &Path,
        config: IngestConfig,
    ) -> Result<(Self, Replay), IngestError> {
        if let Some(dir) = &config.segment_dir {
            std::fs::create_dir_all(dir)?;
        }
        let (wal, replay) = Wal::open(wal_path, config.sync_wal)?;
        let mut index = IngestIndex::new(base, config.options());
        for record in &replay.records {
            index.append(&record.text, &record.weights);
        }
        if !config.background_compaction {
            index.compact_to_quiescence();
        }
        let state = Arc::new(RwLock::new(index));
        let signal = Arc::new(CompactorSignal::default());
        let shutdown = Arc::new(AtomicBool::new(false));
        let compactor = if config.background_compaction {
            Some(Self::spawn_compactor(&state, &signal, &shutdown)?)
        } else {
            None
        };
        let pipeline = Self {
            state,
            wal: Mutex::new(wal),
            background: config.background_compaction,
            signal,
            shutdown,
            compactor,
        };
        if pipeline.background {
            pipeline.nudge_compactor(); // replay may have left full tiers
        }
        Ok((pipeline, replay))
    }

    fn spawn_compactor(
        state: &Arc<RwLock<IngestIndex>>,
        signal: &Arc<CompactorSignal>,
        shutdown: &Arc<AtomicBool>,
    ) -> io::Result<JoinHandle<()>> {
        let state = Arc::clone(state);
        let signal = Arc::clone(signal);
        let shutdown = Arc::clone(shutdown);
        std::thread::Builder::new().name("usi-compactor".into()).spawn(move || {
            loop {
                {
                    let mut nudged = signal.nudge.lock().expect("compactor signal lock poisoned");
                    while !*nudged && !shutdown.load(Ordering::SeqCst) {
                        nudged =
                            signal.condvar.wait(nudged).expect("compactor signal lock poisoned");
                    }
                    *nudged = false;
                }
                if shutdown.load(Ordering::SeqCst) {
                    return;
                }
                // fold every due tier: plan under a read lock, build
                // off-lock, install under a brief write lock
                loop {
                    let plan_and_builder = {
                        let guard = state.read().expect("ingest state lock poisoned");
                        guard.compaction_plan().map(|plan| (plan, guard.segment_builder()))
                    };
                    let Some((plan, builder)) = plan_and_builder else { break };
                    let merged = plan.build(&builder);
                    let mut guard = state.write().expect("ingest state lock poisoned");
                    guard.install_compaction(&plan, merged);
                    // notify any wait_for_quiescence() sleeper
                    signal.condvar.notify_all();
                }
            }
        })
    }

    fn nudge_compactor(&self) {
        let mut nudged = self.signal.nudge.lock().expect("compactor signal lock poisoned");
        *nudged = true;
        self.signal.condvar.notify_all();
    }

    /// Appends a batch of weighted letters: WAL first (fsync'd under
    /// the default config), then memory, then compaction. On `Err` the
    /// in-memory state is unchanged; on `Ok` the append is durable.
    pub fn append(&self, text: &[u8], weights: &[f64]) -> Result<(), IngestError> {
        if text.len() != weights.len() {
            return Err(IngestError::Input(format!(
                "{} letters with {} weights",
                text.len(),
                weights.len()
            )));
        }
        if let Some(i) = weights.iter().position(|w| !w.is_finite()) {
            return Err(IngestError::Input(format!("non-finite weight at offset {i}")));
        }
        if text.is_empty() {
            return Ok(());
        }
        {
            // hold the WAL lock across the state update so WAL order
            // always equals in-memory order (replay reproduces it)
            let mut wal = self.wal.lock().expect("wal lock poisoned");
            wal.append(text, weights)?;
            let mut state = self.state.write().expect("ingest state lock poisoned");
            state.append(text, weights);
            if !self.background {
                state.compact_to_quiescence();
            }
        }
        if self.background {
            self.nudge_compactor();
        }
        Ok(())
    }

    /// Appends every letter with the same weight.
    pub fn append_uniform(&self, text: &[u8], weight: f64) -> Result<(), IngestError> {
        self.append(text, &vec![weight; text.len()])
    }

    /// Answers `U(P)` over the full (base + segments + tail) string.
    pub fn query(&self, pattern: &[u8]) -> UsiQuery {
        self.state.read().expect("ingest state lock poisoned").query(pattern)
    }

    /// Raw-accumulator variant for fan-out callers.
    pub fn query_accumulator(&self, pattern: &[u8]) -> (UtilityAccumulator, QuerySource) {
        self.state.read().expect("ingest state lock poisoned").query_accumulator(pattern)
    }

    /// Batch variant; answers are in pattern order.
    pub fn query_batch(&self, patterns: &[&[u8]]) -> Vec<UsiQuery> {
        self.state.read().expect("ingest state lock poisoned").query_batch(patterns)
    }

    /// Raw-accumulator batch variant for fan-out callers, under one
    /// state read-lock acquisition.
    pub fn query_accumulator_batch(
        &self,
        patterns: &[&[u8]],
    ) -> Vec<(UtilityAccumulator, QuerySource)> {
        let state = self.state.read().expect("ingest state lock poisoned");
        patterns.iter().map(|p| state.query_accumulator(p)).collect()
    }

    /// Runs `f` over the current in-memory state (read lock held for
    /// the duration).
    pub fn with_state<T>(&self, f: impl FnOnce(&IngestIndex) -> T) -> T {
        f(&self.state.read().expect("ingest state lock poisoned"))
    }

    /// The write-ahead log's path and committed clean length, the view
    /// a WAL shipper tails: every byte below the returned length is a
    /// whole, CRC-valid record already acknowledged to a writer.
    pub fn wal_view(&self) -> (std::path::PathBuf, u64) {
        let wal = self.wal.lock().expect("wal lock poisoned");
        (wal.path().to_path_buf(), wal.bytes())
    }

    /// Bounded-staleness statistics.
    pub fn stats(&self) -> IngestStats {
        let wal_bytes = self.wal.lock().expect("wal lock poisoned").bytes();
        let state = self.state.read().expect("ingest state lock poisoned");
        IngestStats {
            n: state.len(),
            base_n: state.base().text().len(),
            segments: state.segments().len(),
            tail_len: state.tail_len(),
            wal_bytes,
            seals: state.seals(),
            compactions: state.compactions(),
            last_compaction: state.last_compaction().map(|at| at.elapsed()),
        }
    }

    /// Blocks until no tier is due for merging (or the timeout passes).
    /// Returns whether quiescence was reached. Meaningful with a
    /// background compactor; inline pipelines are always quiescent.
    pub fn wait_for_quiescence(&self, timeout: Duration) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            let due = {
                let state = self.state.read().expect("ingest state lock poisoned");
                state.compaction_plan().is_some()
            };
            if !due {
                return true;
            }
            if std::time::Instant::now() >= deadline {
                return false;
            }
            let nudged = self.signal.nudge.lock().expect("compactor signal lock poisoned");
            let _ = self
                .signal
                .condvar
                .wait_timeout(nudged, Duration::from_millis(10))
                .expect("compactor signal lock poisoned");
        }
    }
}

impl usi_core::QueryEngine for IngestPipeline {
    fn query(&self, pattern: &[u8]) -> UsiQuery {
        IngestPipeline::query(self, pattern)
    }

    fn query_accumulator(&self, pattern: &[u8]) -> (UtilityAccumulator, QuerySource) {
        IngestPipeline::query_accumulator(self, pattern)
    }

    fn query_batch(&self, patterns: &[&[u8]]) -> Vec<UsiQuery> {
        IngestPipeline::query_batch(self, patterns)
    }

    fn query_accumulator_batch(
        &self,
        patterns: &[&[u8]],
    ) -> Vec<(UtilityAccumulator, QuerySource)> {
        IngestPipeline::query_accumulator_batch(self, patterns)
    }

    fn utility(&self) -> usi_strings::GlobalUtility {
        self.with_state(|s| s.utility())
    }

    fn indexed_len(&self) -> usize {
        self.with_state(|s| s.len())
    }

    fn cached_substrings(&self) -> usize {
        self.with_state(usi_core::QueryEngine::cached_substrings)
    }

    fn size_breakdown(&self) -> usi_core::index::IndexSize {
        self.with_state(|s| s.size_breakdown())
    }
}

impl Drop for IngestPipeline {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.signal.condvar.notify_all();
        if let Some(thread) = self.compactor.take() {
            let _ = thread.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::path::PathBuf;
    use usi_core::UsiBuilder;
    use usi_strings::WeightedString;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("usi-pipeline-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn base_index(seed: u64, n: usize) -> UsiIndex {
        let mut rng = StdRng::seed_from_u64(seed);
        let text: Vec<u8> = (0..n).map(|_| b'a' + rng.gen_range(0..3u8)).collect();
        let weights: Vec<f64> = (0..n).map(|_| rng.gen_range(0..8) as f64 * 0.25).collect();
        UsiBuilder::new()
            .with_k(20)
            .deterministic(seed)
            .build(WeightedString::new(text, weights).unwrap())
    }

    fn config() -> IngestConfig {
        IngestConfig {
            seal_threshold: 8,
            compact_fanout: 2,
            sync_wal: false,
            ..IngestConfig::default()
        }
    }

    #[test]
    fn append_then_reopen_replays_to_the_same_answers() {
        let path = tmp("reopen.usil");
        let _ = std::fs::remove_file(&path);
        let (pipeline, replay) = IngestPipeline::open(base_index(1, 100), &path, config()).unwrap();
        assert!(replay.records.is_empty());
        pipeline.append(b"abcabcabc", &[1.0; 9]).unwrap();
        pipeline.append_uniform(b"cab", 0.5).unwrap();
        let before: Vec<UsiQuery> =
            [&b"abc"[..], b"ca", b"b"].iter().map(|p| pipeline.query(p)).collect();
        let text_before = pipeline.with_state(|s| s.text());
        drop(pipeline); // "crash": nothing beyond the per-append fsyncs

        let (reopened, replay) = IngestPipeline::open(base_index(1, 100), &path, config()).unwrap();
        assert_eq!(replay.records.len(), 2);
        assert!(!replay.truncated);
        assert_eq!(reopened.with_state(|s| s.text()), text_before);
        for (pattern, want) in [&b"abc"[..], b"ca", b"b"].iter().zip(&before) {
            let got = reopened.query(pattern);
            assert_eq!(got.occurrences, want.occurrences, "{pattern:?}");
            assert_eq!(got.value, want.value, "{pattern:?}");
        }
    }

    #[test]
    fn background_compactor_reaches_quiescence() {
        let path = tmp("background.usil");
        let _ = std::fs::remove_file(&path);
        let (pipeline, _) = IngestPipeline::open(
            base_index(2, 50),
            &path,
            IngestConfig { background_compaction: true, ..config() },
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..20 {
            let letters: Vec<u8> = (0..10).map(|_| b'a' + rng.gen_range(0..3u8)).collect();
            pipeline.append_uniform(&letters, 1.0).unwrap();
        }
        assert!(pipeline.wait_for_quiescence(Duration::from_secs(30)), "compactor stalled");
        let stats = pipeline.stats();
        assert!(stats.compactions > 0, "background compactor never ran");
        assert!(stats.last_compaction.is_some());

        // answers equal a from-scratch build over the concatenated text
        let full = WeightedString::new(
            pipeline.with_state(|s| s.text()),
            pipeline.with_state(|s| s.weights()),
        )
        .unwrap();
        let scratch = UsiBuilder::new().with_k(20).deterministic(2).build(full);
        for pattern in [&b"a"[..], b"ab", b"bca", b"zzz"] {
            let got = pipeline.query(pattern);
            let want = scratch.query(pattern);
            assert_eq!(got.occurrences, want.occurrences, "{pattern:?}");
            assert_eq!(got.value, want.value, "{pattern:?}");
        }
    }

    #[test]
    fn invalid_appends_change_nothing() {
        let path = tmp("invalid.usil");
        let _ = std::fs::remove_file(&path);
        let (pipeline, _) = IngestPipeline::open(base_index(3, 30), &path, config()).unwrap();
        let n0 = pipeline.stats().n;
        assert!(matches!(pipeline.append(b"ab", &[1.0]), Err(IngestError::Input(_))));
        assert!(matches!(pipeline.append(b"a", &[f64::NAN]), Err(IngestError::Input(_))));
        pipeline.append(b"", &[]).unwrap(); // no-op, not an error
        assert_eq!(pipeline.stats().n, n0);
        assert_eq!(pipeline.stats().wal_bytes, crate::wal::MAGIC.len() as u64);
    }

    #[test]
    fn stats_reflect_the_layout() {
        let path = tmp("stats.usil");
        let _ = std::fs::remove_file(&path);
        let (pipeline, _) = IngestPipeline::open(base_index(4, 40), &path, config()).unwrap();
        pipeline.append_uniform(b"abcabcabcab", 1.0).unwrap(); // 11 letters, threshold 8
        let stats = pipeline.stats();
        assert_eq!(stats.base_n, 40);
        assert_eq!(stats.n, 51);
        assert_eq!(stats.tail_len, 3);
        assert_eq!(stats.seals, 1);
        assert!(stats.wal_bytes > crate::wal::MAGIC.len() as u64);
    }
}
