//! `usi_ingest` — segmented append-log ingestion for Useful String
//! Indexing: the production-shaped answer to the paper's deferred
//! "online maintenance" problem.
//!
//! The paper observes that maintaining `USI_TOP-K` under appends "can
//! in general be very costly" and defers it; `usi_core::DynamicUsi`
//! answers with whole-index epoch rebuilds — fine for one document, a
//! dead end for a served corpus (every append eventually stalls behind
//! a full rebuild, and nothing survives a crash). This crate replaces
//! that with an LSM-style pipeline per document:
//!
//! * [`wal`] — the `.usil` write-ahead log: length-prefixed,
//!   CRC-checked records, fsync'd before acknowledgement, with clean
//!   truncated-tail recovery (any byte-truncation replays to a valid
//!   prefix state);
//! * [`index`] — the segmented [`IngestIndex`]: frozen base +
//!   immutable sealed segments + live tail, generation-tiered
//!   compaction, queries stitched across component boundaries and
//!   merged through the shared [`usi_core::merge`] seam;
//! * [`pipeline`] — the thread-safe [`IngestPipeline`]: WAL-durable
//!   appends, crash replay, and an optional background compactor that
//!   keeps merges off the write path.
//!
//! ```
//! use usi_core::UsiBuilder;
//! use usi_ingest::{IngestIndex, IngestOptions};
//! use usi_strings::WeightedString;
//!
//! let base = UsiBuilder::new().with_k(4).deterministic(1).build(
//!     WeightedString::uniform(b"abcabc".to_vec(), 1.0),
//! );
//! let mut idx = IngestIndex::new(
//!     base,
//!     IngestOptions { seal_threshold: 4, compact_fanout: 2, ..IngestOptions::default() },
//! );
//! idx.append(b"abcabc", &[1.0; 6]);
//! idx.compact_to_quiescence();
//! // "abc" occurs 4 times in "abcabcabcabc" — one spans the
//! // base/segment boundary and is stitched in by the boundary scan
//! let q = idx.query(b"abc");
//! assert_eq!(q.occurrences, 4);
//! assert_eq!(q.value, Some(12.0));
//! ```

pub mod index;
pub(crate) mod metrics;
pub mod pipeline;
pub mod wal;

pub use index::{CompactionPlan, IngestIndex, IngestOptions, Segment};
pub use pipeline::{IngestConfig, IngestError, IngestPipeline, IngestStats};
pub use wal::{
    parse_record_at, read_tail, replay_bytes, replay_file, Replay, TailChunk, Wal, WalError,
    WalRecord,
};
