//! A fixed-capacity LRU cache.
//!
//! Hash map + intrusive doubly-linked list over a slab, all `O(1)` per
//! operation. Implemented from scratch — no external cache crates.
//!
//! Lives in the substrate crate so every consumer shares one
//! implementation: `usi_baselines` uses it as the BSL2 replacement
//! policy, `usi_server` as the per-document pattern → answer cache.

use crate::FxHashMap;
use std::hash::Hash;

const NIL: u32 = u32::MAX;

#[derive(Debug, Clone)]
struct Entry<K, V> {
    key: K,
    value: V,
    prev: u32,
    next: u32,
}

/// Least-recently-used cache with at most `capacity` entries.
///
/// ```
/// use usi_strings::LruCache;
/// let mut lru = LruCache::new(2);
/// lru.insert("a", 1);
/// lru.insert("b", 2);
/// assert_eq!(lru.get(&"a"), Some(&1)); // refreshes "a"
/// lru.insert("c", 3); // evicts "b"
/// assert_eq!(lru.get(&"b"), None);
/// assert_eq!(lru.len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct LruCache<K, V> {
    map: FxHashMap<K, u32>,
    slab: Vec<Entry<K, V>>,
    free: Vec<u32>,
    head: u32, // most recent
    tail: u32, // least recent
    capacity: usize,
}

impl<K: Eq + Hash + Clone, V> LruCache<K, V> {
    /// A cache holding up to `capacity ≥ 1` entries.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "LRU capacity must be positive");
        Self {
            map: FxHashMap::default(),
            slab: Vec::with_capacity(capacity),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
        }
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn detach(&mut self, idx: u32) {
        let (prev, next) = {
            let e = &self.slab[idx as usize];
            (e.prev, e.next)
        };
        if prev != NIL {
            self.slab[prev as usize].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slab[next as usize].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, idx: u32) {
        self.slab[idx as usize].prev = NIL;
        self.slab[idx as usize].next = self.head;
        if self.head != NIL {
            self.slab[self.head as usize].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    /// Looks up `key`, marking it most-recently used. Accepts any
    /// borrowed form of the key (e.g. `&[u8]` for `Vec<u8>` keys), so
    /// hot-path lookups need not allocate an owned key.
    pub fn get<Q>(&mut self, key: &Q) -> Option<&V>
    where
        K: std::borrow::Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        let idx = *self.map.get(key)?;
        if idx != self.head {
            self.detach(idx);
            self.push_front(idx);
        }
        Some(&self.slab[idx as usize].value)
    }

    /// Drops every entry, keeping the allocated capacity (used to
    /// invalidate a pattern cache after an append or reload).
    pub fn clear(&mut self) {
        self.map.clear();
        self.slab.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
    }

    /// Inserts or refreshes `key`; evicts the least-recently-used entry
    /// when full. Returns the evicted `(key, value)` if any.
    pub fn insert(&mut self, key: K, value: V) -> Option<(K, V)> {
        if let Some(&idx) = self.map.get(&key) {
            self.slab[idx as usize].value = value;
            if idx != self.head {
                self.detach(idx);
                self.push_front(idx);
            }
            return None;
        }
        let mut evicted = None;
        if self.map.len() == self.capacity {
            let victim = self.tail;
            debug_assert_ne!(victim, NIL);
            self.detach(victim);
            let e = &mut self.slab[victim as usize];
            self.map.remove(&e.key);
            let old_key = e.key.clone();
            e.key = key.clone();
            let old_value = std::mem::replace(&mut e.value, value);
            evicted = Some((old_key, old_value));
            self.map.insert(key, victim);
            self.push_front(victim);
            return evicted;
        }
        let idx = if let Some(idx) = self.free.pop() {
            self.slab[idx as usize] = Entry { key: key.clone(), value, prev: NIL, next: NIL };
            idx
        } else {
            self.slab.push(Entry { key: key.clone(), value, prev: NIL, next: NIL });
            (self.slab.len() - 1) as u32
        };
        self.map.insert(key, idx);
        self.push_front(idx);
        evicted
    }

    /// Approximate heap footprint in bytes.
    pub fn state_bytes(&self) -> usize {
        self.slab.capacity() * std::mem::size_of::<Entry<K, V>>()
            + self.map.capacity() * (std::mem::size_of::<(K, u32)>() + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eviction_order_is_lru() {
        let mut lru = LruCache::new(3);
        lru.insert(1, "a");
        lru.insert(2, "b");
        lru.insert(3, "c");
        lru.get(&1); // order now: 1, 3, 2
        let evicted = lru.insert(4, "d");
        assert_eq!(evicted, Some((2, "b")));
        assert!(lru.get(&2).is_none());
        assert!(lru.get(&1).is_some());
    }

    #[test]
    fn reinsert_updates_value_without_eviction() {
        let mut lru = LruCache::new(2);
        lru.insert(1, 10);
        lru.insert(2, 20);
        assert_eq!(lru.insert(1, 11), None);
        assert_eq!(lru.get(&1), Some(&11));
        assert_eq!(lru.len(), 2);
    }

    #[test]
    fn capacity_one() {
        let mut lru = LruCache::new(1);
        lru.insert("x", 1);
        assert_eq!(lru.insert("y", 2), Some(("x", 1)));
        assert_eq!(lru.get(&"y"), Some(&2));
        assert_eq!(lru.len(), 1);
    }

    #[test]
    fn borrowed_lookup_and_clear() {
        let mut lru: LruCache<Vec<u8>, u32> = LruCache::new(4);
        lru.insert(b"abra".to_vec(), 7);
        // no allocation needed to probe by slice
        assert_eq!(lru.get(&b"abra"[..]), Some(&7));
        assert_eq!(lru.get(&b"zzz"[..]), None);
        lru.clear();
        assert!(lru.is_empty());
        assert_eq!(lru.get(&b"abra"[..]), None);
        lru.insert(b"new".to_vec(), 1);
        assert_eq!(lru.len(), 1);
    }

    #[test]
    fn stress_against_reference_model() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(8);
        let cap = 8;
        let mut lru = LruCache::new(cap);
        // reference: Vec<(key, value)> ordered most-recent-first
        let mut model: Vec<(u32, u32)> = Vec::new();
        for _ in 0..5000 {
            let key = rng.gen_range(0..20u32);
            if rng.gen_bool(0.5) {
                let got = lru.get(&key).copied();
                let pos = model.iter().position(|&(k, _)| k == key);
                let want = pos.map(|p| {
                    let e = model.remove(p);
                    model.insert(0, e);
                    e.1
                });
                assert_eq!(got, want);
            } else {
                let value = rng.gen_range(0..1000u32);
                lru.insert(key, value);
                if let Some(p) = model.iter().position(|&(k, _)| k == key) {
                    model.remove(p);
                } else if model.len() == cap {
                    model.pop();
                }
                model.insert(0, (key, value));
            }
            assert_eq!(lru.len(), model.len());
        }
    }
}
