//! The class `𝒰` of global utility functions (paper, Section III).
//!
//! A function `U ∈ 𝒰` satisfies two conditions:
//!
//! 1. `U` is linear-time computable — here: an associative aggregate
//!    (sum, min, max, avg, count) over the local utilities of all
//!    occurrences, see [`GlobalAggregator`];
//! 2. the local utility function has the *sliding-window property* — here:
//!    the windowed sum of weights, implemented in `O(1)` by [`crate::Psw`].
//!
//! The paper's experiments use the "sum of sums" member of the class:
//! `U(P) = Σ_{i ∈ occ(P)} u(i, |P|)` with `u(i, ℓ) = Σ w[i..i+ℓ)`.

use crate::psw::{LocalIndex, LocalWindow};
use crate::weighted::WeightedString;

/// How local utilities of the occurrences are aggregated into `U(P)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum GlobalAggregator {
    /// `U(P) = Σ u(i, |P|)` — the paper's default ("sum of sums").
    #[default]
    Sum,
    /// `U(P) = min u(i, |P|)`.
    Min,
    /// `U(P) = max u(i, |P|)`.
    Max,
    /// `U(P) = avg u(i, |P|)`.
    Avg,
    /// `U(P) = |occ(P)|` — plain frequency, ignores weights.
    Count,
}

impl GlobalAggregator {
    /// Stable wire tag for persistence.
    pub fn to_tag(self) -> u8 {
        match self {
            Self::Sum => 0,
            Self::Min => 1,
            Self::Max => 2,
            Self::Avg => 3,
            Self::Count => 4,
        }
    }

    /// Inverse of [`GlobalAggregator::to_tag`].
    pub fn from_tag(tag: u8) -> Option<Self> {
        Some(match tag {
            0 => Self::Sum,
            1 => Self::Min,
            2 => Self::Max,
            3 => Self::Avg,
            4 => Self::Count,
            _ => return None,
        })
    }

    /// Human-readable name, used by reports.
    pub fn name(self) -> &'static str {
        match self {
            Self::Sum => "sum",
            Self::Min => "min",
            Self::Max => "max",
            Self::Avg => "avg",
            Self::Count => "count",
        }
    }
}

/// Streaming accumulator for one pattern's global utility.
///
/// Stores `(sum, min, max, count)` so a single representation serves every
/// aggregator; the hash table `H` persists accumulators so that the same
/// built index can be asked for any aggregate.
///
/// ```
/// use usi_strings::{GlobalAggregator, UtilityAccumulator};
/// let mut acc = UtilityAccumulator::new();
/// acc.add(3.0);
/// acc.add(1.5);
/// assert_eq!(acc.finish(GlobalAggregator::Sum), Some(4.5));
/// assert_eq!(acc.finish(GlobalAggregator::Min), Some(1.5));
/// assert_eq!(acc.finish(GlobalAggregator::Count), Some(2.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UtilityAccumulator {
    sum: f64,
    min: f64,
    max: f64,
    count: u64,
}

impl Default for UtilityAccumulator {
    fn default() -> Self {
        Self::new()
    }
}

impl UtilityAccumulator {
    /// An empty accumulator (zero occurrences).
    pub fn new() -> Self {
        Self { sum: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY, count: 0 }
    }

    /// Folds in the local utility of one occurrence.
    #[inline]
    pub fn add(&mut self, local: f64) {
        self.sum += local;
        self.min = self.min.min(local);
        self.max = self.max.max(local);
        self.count += 1;
    }

    /// Merges another accumulator (used when combining per-round results).
    pub fn merge(&mut self, other: &Self) {
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.count += other.count;
    }

    /// Number of occurrences folded in so far.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Raw parts `(sum, min, max, count)` for persistence.
    pub fn to_raw(&self) -> (f64, f64, f64, u64) {
        (self.sum, self.min, self.max, self.count)
    }

    /// Rebuilds an accumulator from [`UtilityAccumulator::to_raw`] parts.
    pub fn from_raw(sum: f64, min: f64, max: f64, count: u64) -> Self {
        Self { sum, min, max, count }
    }

    /// Extracts the aggregate. `Sum` and `Count` of zero occurrences are 0;
    /// `Min` / `Max` / `Avg` of zero occurrences are undefined (`None`).
    pub fn finish(&self, agg: GlobalAggregator) -> Option<f64> {
        match agg {
            GlobalAggregator::Sum => Some(self.sum),
            GlobalAggregator::Count => Some(self.count as f64),
            GlobalAggregator::Min if self.count > 0 => Some(self.min),
            GlobalAggregator::Max if self.count > 0 => Some(self.max),
            GlobalAggregator::Avg if self.count > 0 => Some(self.sum / self.count as f64),
            _ => None,
        }
    }
}

/// A global utility function from the class `𝒰`: a sliding-window local
/// utility ([`LocalWindow`]: windowed sum or windowed product) combined
/// with a [`GlobalAggregator`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GlobalUtility {
    /// The outer aggregate.
    pub aggregator: GlobalAggregator,
    /// The inner (per-occurrence) window function.
    pub local: LocalWindow,
}

impl GlobalUtility {
    /// The paper's default "sum of sums" utility.
    pub fn sum_of_sums() -> Self {
        Self { aggregator: GlobalAggregator::Sum, local: LocalWindow::Sum }
    }

    /// Expected frequency (paper, Section I's bioinformatics motivation):
    /// when `w[i]` is the probability that position `i` was read
    /// correctly, `U(P) = Σ_occ Π w[i..i+m)` is the expected number of
    /// correct occurrences of `P`. Requires strictly positive weights.
    pub fn expected_frequency() -> Self {
        Self { aggregator: GlobalAggregator::Sum, local: LocalWindow::Product }
    }

    /// A utility with the given outer aggregate (windowed-sum local).
    pub fn with_aggregator(aggregator: GlobalAggregator) -> Self {
        Self { aggregator, local: LocalWindow::Sum }
    }

    /// A utility with explicit aggregate and local window function.
    pub fn with_parts(aggregator: GlobalAggregator, local: LocalWindow) -> Self {
        Self { aggregator, local }
    }

    /// Reference implementation: computes `U(P)` by scanning every text
    /// position. `O(n·m)` — used by tests and tiny examples only.
    ///
    /// Returns the accumulator so callers can extract any aggregate.
    pub fn brute_force(&self, ws: &WeightedString, pattern: &[u8]) -> UtilityAccumulator {
        let mut acc = UtilityAccumulator::new();
        let (n, m) = (ws.len(), pattern.len());
        if m == 0 || m > n {
            return acc;
        }
        for i in 0..=(n - m) {
            if &ws.text()[i..i + m] == pattern {
                let local = match self.local {
                    LocalWindow::Sum => ws.weights()[i..i + m].iter().sum(),
                    LocalWindow::Product => ws.weights()[i..i + m].iter().product(),
                };
                acc.add(local);
            }
        }
        acc
    }

    /// Builds the matching [`LocalIndex`] over `weights`.
    ///
    /// # Panics
    /// Panics for `Product` locals if any weight is not strictly
    /// positive (see [`LocalIndex::new`]).
    pub fn local_index(&self, weights: &[f64]) -> LocalIndex {
        LocalIndex::new(weights, self.local)
    }

    /// Convenience wrapper extracting the configured aggregate from
    /// [`GlobalUtility::brute_force`].
    pub fn brute_force_value(&self, ws: &WeightedString, pattern: &[u8]) -> Option<f64> {
        self.brute_force(ws, pattern).finish(self.aggregator)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example1() -> WeightedString {
        WeightedString::new(
            b"ATACCCCGATAATACCCCAG".to_vec(),
            vec![
                0.9, 1.0, 3.0, 2.0, 0.7, 1.0, 1.0, 0.6, 0.5, 0.5, 0.5, 0.8, 1.0, 1.0, 1.0, 0.9,
                1.0, 1.0, 0.8, 1.0,
            ],
        )
        .unwrap()
    }

    #[test]
    fn paper_example_1_sum_of_sums() {
        let u = GlobalUtility::sum_of_sums();
        let got = u.brute_force_value(&example1(), b"TACCCC").unwrap();
        assert!((got - 14.6).abs() < 1e-9);
    }

    #[test]
    fn all_aggregates_on_example_1() {
        let ws = example1();
        let acc = GlobalUtility::sum_of_sums().brute_force(&ws, b"TACCCC");
        assert_eq!(acc.count(), 2);
        assert!((acc.finish(GlobalAggregator::Min).unwrap() - 5.9).abs() < 1e-9);
        assert!((acc.finish(GlobalAggregator::Max).unwrap() - 8.7).abs() < 1e-9);
        assert!((acc.finish(GlobalAggregator::Avg).unwrap() - 7.3).abs() < 1e-9);
        assert_eq!(acc.finish(GlobalAggregator::Count), Some(2.0));
    }

    #[test]
    fn absent_pattern() {
        let ws = example1();
        let acc = GlobalUtility::sum_of_sums().brute_force(&ws, b"GGGG");
        assert_eq!(acc.finish(GlobalAggregator::Sum), Some(0.0));
        assert_eq!(acc.finish(GlobalAggregator::Count), Some(0.0));
        assert_eq!(acc.finish(GlobalAggregator::Min), None);
        assert_eq!(acc.finish(GlobalAggregator::Max), None);
        assert_eq!(acc.finish(GlobalAggregator::Avg), None);
    }

    #[test]
    fn empty_and_oversized_patterns() {
        let ws = example1();
        let u = GlobalUtility::sum_of_sums();
        assert_eq!(u.brute_force(&ws, b"").count(), 0);
        let long = vec![b'A'; ws.len() + 1];
        assert_eq!(u.brute_force(&ws, &long).count(), 0);
    }

    #[test]
    fn merge_equals_sequential() {
        let mut a = UtilityAccumulator::new();
        a.add(1.0);
        a.add(2.0);
        let mut b = UtilityAccumulator::new();
        b.add(-3.0);
        let mut merged = a;
        merged.merge(&b);
        let mut seq = UtilityAccumulator::new();
        for x in [1.0, 2.0, -3.0] {
            seq.add(x);
        }
        assert_eq!(merged, seq);
    }

    #[test]
    fn aggregator_names() {
        assert_eq!(GlobalAggregator::Sum.name(), "sum");
        assert_eq!(GlobalAggregator::Avg.name(), "avg");
    }
}
