//! The prefix-sum-of-weights array `PSW` (paper, Sections I and IV).
//!
//! `PSW[i] = u(0, i+1) = w[0] + … + w[i]`. Thanks to the sliding-window
//! property of the windowed-sum local utility, the local utility of any
//! fragment is a difference of two prefix sums:
//! `u(i, ℓ) = PSW[i+ℓ−1] − PSW[i−1]`.

use crate::HeapSize;

/// Prefix sums of the weight array, answering the local utility
/// `u(i, ℓ)` of any fragment in `O(1)`.
///
/// Internally stores `n + 1` sums with a leading 0 so that no boundary
/// branch is needed: `local(i, ℓ) = sums[i + ℓ] − sums[i]`.
///
/// ```
/// use usi_strings::Psw;
/// let psw = Psw::new(&[0.9, 1.0, 3.0, 2.0]);
/// assert_eq!(psw.local(0, 4), 6.9);
/// assert_eq!(psw.local(1, 2), 4.0);
/// assert_eq!(psw.local(3, 1), 2.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Psw {
    /// `sums[i]` = Σ w[0..i); length `n + 1`.
    sums: Vec<f64>,
}

impl Psw {
    /// Builds the array with a single scan (construction phase (iii)).
    pub fn new(weights: &[f64]) -> Self {
        Self::from_weights(weights.iter().copied())
    }

    /// Iterator variant of [`Psw::new`], for weight sequences that have
    /// no contiguous `&[f64]` to borrow (e.g. the little-endian weight
    /// section of a memory-mapped index file). Accumulates in the same
    /// order, so the resulting sums are bit-identical to the slice path.
    pub fn from_weights(weights: impl IntoIterator<Item = f64>) -> Self {
        let weights = weights.into_iter();
        let mut sums = Vec::with_capacity(weights.size_hint().0 + 1);
        let mut acc = 0.0f64;
        sums.push(acc);
        for w in weights {
            acc += w;
            sums.push(acc);
        }
        Self { sums }
    }

    /// Number of positions covered (`n`).
    #[inline]
    pub fn len(&self) -> usize {
        self.sums.len() - 1
    }

    /// Whether the weight array was empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Local utility `u(i, len)` of the fragment starting at `i`, i.e. the
    /// sum of its weights. `len` may be 0 (yields 0.0).
    ///
    /// # Panics
    /// Panics (in debug) if the fragment exceeds the boundary.
    #[inline]
    pub fn local(&self, i: usize, len: usize) -> f64 {
        debug_assert!(i + len < self.sums.len() + 1);
        self.sums[i + len] - self.sums[i]
    }

    /// Total utility of the whole string, `u(0, n)`.
    #[inline]
    pub fn total(&self) -> f64 {
        *self.sums.last().unwrap()
    }

    /// Appends one weight (dynamic USI, Section X: "we extend PSW by one
    /// position, storing the sum of the utility of α and the former last
    /// entry").
    #[inline]
    pub fn push(&mut self, w: f64) {
        let last = *self.sums.last().unwrap();
        self.sums.push(last + w);
    }
}

impl HeapSize for Psw {
    fn heap_bytes(&self) -> usize {
        self.sums.heap_bytes()
    }
}

/// Which sliding-window local utility function `u(i, ℓ)` aggregates the
/// weights of a fragment (paper, Section III: any `u` with the
/// sliding-window property qualifies).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum LocalWindow {
    /// `u(i, ℓ) = Σ w[i..i+ℓ)` — the paper's default.
    #[default]
    Sum,
    /// `u(i, ℓ) = Π w[i..i+ℓ)` — per-occurrence probabilities; with a
    /// `Sum` global aggregate this yields the *expected frequency* of
    /// the pattern. Requires strictly positive weights.
    Product,
}

impl LocalWindow {
    /// Stable wire tag for persistence.
    pub fn to_tag(self) -> u8 {
        match self {
            Self::Sum => 0,
            Self::Product => 1,
        }
    }

    /// Inverse of [`LocalWindow::to_tag`].
    pub fn from_tag(tag: u8) -> Option<Self> {
        Some(match tag {
            0 => Self::Sum,
            1 => Self::Product,
            _ => return None,
        })
    }
}

/// `O(1)` local utilities for either window kind: a plain [`Psw`] for
/// sums, or a `PSW` over logarithms for products
/// (`Π w = exp(Σ ln w)`).
///
/// ```
/// use usi_strings::{LocalIndex, LocalWindow};
/// let li = LocalIndex::new(&[0.5, 0.5, 0.8], LocalWindow::Product);
/// assert!((li.local(0, 2) - 0.25).abs() < 1e-12);
/// assert!((li.local(1, 2) - 0.4).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LocalIndex {
    kind: LocalWindow,
    psw: Psw,
}

impl LocalIndex {
    /// Builds the index.
    ///
    /// # Panics
    /// Panics for `Product` if any weight is not strictly positive —
    /// `ln` would poison the prefix sums (clamp zero probabilities to a
    /// small epsilon upstream if needed).
    pub fn new(weights: &[f64], kind: LocalWindow) -> Self {
        Self::from_weights(weights.iter().copied(), kind)
    }

    /// Iterator variant of [`LocalIndex::new`]; same panics, same
    /// bit-identical prefix sums (the accumulation order is unchanged).
    pub fn from_weights(weights: impl IntoIterator<Item = f64>, kind: LocalWindow) -> Self {
        let psw = match kind {
            LocalWindow::Sum => Psw::from_weights(weights),
            LocalWindow::Product => Psw::from_weights(weights.into_iter().map(|w| {
                assert!(w > 0.0, "product locals require strictly positive weights");
                w.ln()
            })),
        };
        Self { kind, psw }
    }

    /// The window kind.
    pub fn kind(&self) -> LocalWindow {
        self.kind
    }

    /// Number of positions covered.
    pub fn len(&self) -> usize {
        self.psw.len()
    }

    /// Whether the weight array was empty.
    pub fn is_empty(&self) -> bool {
        self.psw.is_empty()
    }

    /// Local utility `u(i, len)` of the fragment starting at `i`, in
    /// `O(1)`. A zero-length fragment yields the identity (0 for sums,
    /// 1 for products).
    #[inline]
    pub fn local(&self, i: usize, len: usize) -> f64 {
        match self.kind {
            LocalWindow::Sum => self.psw.local(i, len),
            LocalWindow::Product => self.psw.local(i, len).exp(),
        }
    }

    /// Appends one weight (dynamic appends).
    pub fn push(&mut self, w: f64) {
        match self.kind {
            LocalWindow::Sum => self.psw.push(w),
            LocalWindow::Product => {
                assert!(w > 0.0, "product locals require strictly positive weights");
                self.psw.push(w.ln());
            }
        }
    }
}

impl HeapSize for LocalIndex {
    fn heap_bytes(&self) -> usize {
        self.psw.heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_local(weights: &[f64], i: usize, len: usize) -> f64 {
        weights[i..i + len].iter().sum()
    }

    #[test]
    fn matches_naive_on_all_fragments() {
        let w = [0.9, 1.0, 3.0, 2.0, 0.7, 1.0, 1.0, 0.6];
        let psw = Psw::new(&w);
        for i in 0..w.len() {
            for len in 0..=(w.len() - i) {
                let got = psw.local(i, len);
                let want = naive_local(&w, i, len);
                assert!((got - want).abs() < 1e-9, "i={i} len={len}");
            }
        }
    }

    #[test]
    fn empty_weights() {
        let psw = Psw::new(&[]);
        assert!(psw.is_empty());
        assert_eq!(psw.total(), 0.0);
        assert_eq!(psw.local(0, 0), 0.0);
    }

    #[test]
    fn paper_example_1() {
        // S = ATACCCCGATAATACCCCAG with the weights from Example 1;
        // P = TACCCC occurs at 1 and 12 with local utilities 8.7 and 5.9.
        let w = [
            0.9, 1.0, 3.0, 2.0, 0.7, 1.0, 1.0, 0.6, 0.5, 0.5, 0.5, 0.8, 1.0, 1.0, 1.0, 0.9, 1.0,
            1.0, 0.8, 1.0,
        ];
        let psw = Psw::new(&w);
        let u1 = psw.local(1, 6);
        let u2 = psw.local(12, 6);
        assert!((u1 - 8.7).abs() < 1e-9);
        assert!((u2 - 5.9).abs() < 1e-9);
        assert!((u1 + u2 - 14.6).abs() < 1e-9); // U(P) from Example 1
    }

    #[test]
    fn push_matches_rebuild() {
        let mut psw = Psw::new(&[1.0, 2.0]);
        psw.push(3.0);
        psw.push(0.5);
        let rebuilt = Psw::new(&[1.0, 2.0, 3.0, 0.5]);
        assert_eq!(psw, rebuilt);
    }

    #[test]
    fn local_index_product_matches_naive() {
        let w = [0.9, 0.5, 0.99, 0.7, 1.0, 0.85];
        let li = LocalIndex::new(&w, LocalWindow::Product);
        for i in 0..w.len() {
            for len in 0..=(w.len() - i) {
                let naive: f64 = w[i..i + len].iter().product();
                assert!(
                    (li.local(i, len) - naive).abs() < 1e-9 * naive.max(1.0),
                    "i={i} len={len}"
                );
            }
        }
        assert_eq!(li.kind(), LocalWindow::Product);
    }

    #[test]
    fn local_index_sum_matches_psw() {
        let w = [1.0, -2.0, 3.5];
        let li = LocalIndex::new(&w, LocalWindow::Sum);
        let psw = Psw::new(&w);
        for i in 0..3 {
            assert_eq!(li.local(i, 3 - i), psw.local(i, 3 - i));
        }
    }

    #[test]
    #[should_panic(expected = "strictly positive")]
    fn product_rejects_zero_weights() {
        LocalIndex::new(&[0.5, 0.0], LocalWindow::Product);
    }

    #[test]
    fn local_window_tags_roundtrip() {
        for k in [LocalWindow::Sum, LocalWindow::Product] {
            assert_eq!(LocalWindow::from_tag(k.to_tag()), Some(k));
        }
        assert_eq!(LocalWindow::from_tag(9), None);
    }

    #[test]
    fn negative_weights_supported() {
        // RSSI utilities are negative dBm values before normalization.
        let psw = Psw::new(&[-80.0, -51.0, -89.0]);
        assert_eq!(psw.local(0, 3), -220.0);
        assert_eq!(psw.local(1, 1), -51.0);
    }
}
