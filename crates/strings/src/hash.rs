//! A fast non-cryptographic hasher for fingerprint-keyed tables.
//!
//! The hash table `H` of the USI index maps `(length, Karp–Rabin
//! fingerprint)` keys to utility accumulators and is probed once per query
//! — it is the single hottest structure in the index. The standard
//! `SipHash 1-3` hasher costs more than the entire remaining `O(m)` query
//! for short patterns, so we use an FxHash-style multiply-xor hasher
//! (the same family rustc uses). HashDoS resistance is irrelevant here:
//! keys are already uniformly distributed fingerprints produced with a
//! random base.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiply-xor hasher specialised for small fixed-size keys.
///
/// For each 8-byte word `w`: `state = (state rotl 5 ⊕ w) · SEED`, the
/// classic FxHash mixing step.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    state: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.mix(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.mix(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.mix(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.mix(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.mix(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.mix(i as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// `HashMap` with the fast hasher.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// `HashSet` with the fast hasher.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<(u32, u64), f64> = FxHashMap::default();
        for i in 0..1000u64 {
            m.insert((i as u32, i.wrapping_mul(0x9e37_79b9_7f4a_7c15)), i as f64);
        }
        assert_eq!(m.len(), 1000);
        for i in 0..1000u64 {
            assert_eq!(
                m.get(&(i as u32, i.wrapping_mul(0x9e37_79b9_7f4a_7c15))),
                Some(&(i as f64))
            );
        }
    }

    #[test]
    fn hash_is_deterministic() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write_u64(42);
        b.write_u64(42);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn distinct_inputs_spread() {
        // sanity: consecutive integers should not collide in the low bits
        // the hash map actually uses.
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            let mut h = FxHasher::default();
            h.write_u64(i);
            seen.insert(h.finish() & 0xffff_ffff);
        }
        assert!(seen.len() > 9_900, "too many 32-bit collisions: {}", seen.len());
    }

    #[test]
    fn byte_slice_tail_handling() {
        let mut a = FxHasher::default();
        a.write(b"abcdefghi"); // 8-byte chunk + 1-byte tail
        let mut b = FxHasher::default();
        b.write(b"abcdefghj");
        assert_ne!(a.finish(), b.finish());
    }
}
