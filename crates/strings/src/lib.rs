//! String primitives for Useful String Indexing (USI).
//!
//! This crate provides the substrate types that every other `usi-*` crate
//! builds on:
//!
//! * [`WeightedString`] — a text `S` paired with a per-position utility
//!   `w[i]`, the paper's "weighted string" `(S, w)`;
//! * [`Alphabet`] — a compaction of arbitrary byte alphabets onto `[0, σ)`;
//! * [`fingerprint`] — Karp–Rabin fingerprints over the Mersenne prime
//!   `2^61 − 1`, including `O(1)`-per-step rolling windows and an `O(n)`
//!   prefix table answering substring fingerprints in `O(1)`;
//! * [`Psw`] — the prefix-sum-of-weights array implementing the
//!   sliding-window local utility `u(i, ℓ)` in `O(1)`;
//! * [`utility`] — the class `𝒰` of global utility functions (sum / min /
//!   max / avg / count of local utilities);
//! * [`hash`] — a fast non-cryptographic hasher for the fingerprint-keyed
//!   hash table `H`;
//! * [`lru`] — a fixed-capacity LRU cache shared by the BSL2 baseline and
//!   the server's pattern-response cache.
//!
//! Everything is implemented from scratch; no external index crates.

pub mod fingerprint;
pub mod hash;
pub mod lru;
pub mod psw;
pub mod text;
pub mod utility;
pub mod weighted;

pub use fingerprint::{Fingerprint, FingerprintTable, Fingerprinter, RollingWindow};
pub use hash::{FxBuildHasher, FxHashMap, FxHashSet};
pub use lru::LruCache;
pub use psw::{LocalIndex, LocalWindow, Psw};
pub use text::Alphabet;
pub use utility::{GlobalAggregator, GlobalUtility, UtilityAccumulator};
pub use weighted::WeightedString;

/// Size accounting used across the workspace instead of `mallinfo2`.
///
/// Every index structure reports the heap bytes it owns; the experiment
/// harness sums these to reproduce the paper's index-size and peak-memory
/// plots deterministically.
pub trait HeapSize {
    /// Number of heap-allocated bytes owned by `self` (excluding inline
    /// struct fields, which are negligible for the structures we measure).
    fn heap_bytes(&self) -> usize;
}

impl<T: Copy> HeapSize for Vec<T> {
    fn heap_bytes(&self) -> usize {
        self.capacity() * std::mem::size_of::<T>()
    }
}

impl<T: Copy> HeapSize for Box<[T]> {
    fn heap_bytes(&self) -> usize {
        self.len() * std::mem::size_of::<T>()
    }
}
