//! Alphabet handling.
//!
//! The paper assumes an integer alphabet `Σ = [0, σ)` with `σ = n^{O(1)}`.
//! Real inputs (DNA, XML, ad categories) arrive as bytes; [`Alphabet`]
//! compacts the byte values that actually occur onto a dense rank space,
//! which keeps downstream structures (SA-IS buckets, trie children) tight.

/// A dense mapping between the byte values occurring in a text and the
/// integer alphabet `[0, σ)`.
///
/// ```
/// use usi_strings::Alphabet;
/// let ab = Alphabet::from_text(b"GATTACA");
/// assert_eq!(ab.sigma(), 4); // A, C, G, T
/// assert_eq!(ab.rank(b'A'), Some(0));
/// assert_eq!(ab.rank(b'T'), Some(3));
/// assert_eq!(ab.byte(0), Some(b'A'));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Alphabet {
    /// `rank_of[b] = rank + 1`, or 0 if byte `b` does not occur.
    rank_of: [u16; 256],
    /// `byte_of[r]` = the byte with rank `r`, in increasing byte order.
    byte_of: Vec<u8>,
}

impl Alphabet {
    /// Scans `text` and builds the dense alphabet of the bytes it uses.
    ///
    /// Runs in `O(|text| + 256)` time.
    pub fn from_text(text: &[u8]) -> Self {
        let mut seen = [false; 256];
        for &b in text {
            seen[b as usize] = true;
        }
        let mut rank_of = [0u16; 256];
        let mut byte_of = Vec::new();
        for (b, &s) in seen.iter().enumerate() {
            if s {
                byte_of.push(b as u8);
                rank_of[b] = byte_of.len() as u16; // rank + 1
            }
        }
        Self { rank_of, byte_of }
    }

    /// Alphabet size `σ`.
    #[inline]
    pub fn sigma(&self) -> usize {
        self.byte_of.len()
    }

    /// Rank of byte `b` in `[0, σ)`, or `None` if `b` never occurs.
    #[inline]
    pub fn rank(&self, b: u8) -> Option<usize> {
        match self.rank_of[b as usize] {
            0 => None,
            r => Some(r as usize - 1),
        }
    }

    /// The byte with rank `r`, or `None` if `r >= σ`.
    #[inline]
    pub fn byte(&self, r: usize) -> Option<u8> {
        self.byte_of.get(r).copied()
    }

    /// Maps a text onto rank space. Bytes absent from the alphabet are an
    /// error (returns `None`), since silently remapping would corrupt
    /// downstream frequency counts.
    pub fn encode(&self, text: &[u8]) -> Option<Vec<u16>> {
        text.iter()
            .map(|&b| match self.rank_of[b as usize] {
                0 => None,
                r => Some(r - 1),
            })
            .collect()
    }

    /// Inverse of [`Alphabet::encode`].
    pub fn decode(&self, ranks: &[u16]) -> Option<Vec<u8>> {
        ranks.iter().map(|&r| self.byte(r as usize)).collect()
    }
}

/// Renders a byte string for human consumption: printable ASCII is kept,
/// everything else becomes `\xNN`. Used by reports and examples.
pub fn display_bytes(s: &[u8]) -> String {
    let mut out = String::with_capacity(s.len());
    for &b in s {
        if (0x20..0x7f).contains(&b) {
            out.push(b as char);
        } else {
            out.push_str(&format!("\\x{b:02x}"));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_text_has_empty_alphabet() {
        let ab = Alphabet::from_text(b"");
        assert_eq!(ab.sigma(), 0);
        assert_eq!(ab.rank(b'x'), None);
        assert_eq!(ab.byte(0), None);
    }

    #[test]
    fn ranks_follow_byte_order() {
        let ab = Alphabet::from_text(b"banana");
        // bytes: a < b < n
        assert_eq!(ab.rank(b'a'), Some(0));
        assert_eq!(ab.rank(b'b'), Some(1));
        assert_eq!(ab.rank(b'n'), Some(2));
        assert_eq!(ab.sigma(), 3);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let text = b"mississippi";
        let ab = Alphabet::from_text(text);
        let enc = ab.encode(text).unwrap();
        assert_eq!(ab.decode(&enc).unwrap(), text);
    }

    #[test]
    fn encode_rejects_foreign_bytes() {
        let ab = Alphabet::from_text(b"abc");
        assert!(ab.encode(b"abd").is_none());
    }

    #[test]
    fn full_byte_range() {
        let text: Vec<u8> = (0..=255).collect();
        let ab = Alphabet::from_text(&text);
        assert_eq!(ab.sigma(), 256);
        for b in 0..=255u8 {
            assert_eq!(ab.rank(b), Some(b as usize));
            assert_eq!(ab.byte(b as usize), Some(b));
        }
    }

    #[test]
    fn display_escapes_nonprintable() {
        assert_eq!(display_bytes(b"ab\x00c"), "ab\\x00c");
    }
}
