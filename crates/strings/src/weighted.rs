//! The weighted string `(S, w)`.

use crate::psw::Psw;
use crate::HeapSize;

/// A text `S` of length `n` over a byte alphabet, paired with a weight
/// function `w : [0, n) → ℝ` assigning each position a utility.
///
/// This is the input object of the USI problem (paper, Section III). The
/// struct owns both arrays and enforces the single structural invariant
/// `|S| == |w|` at construction time.
///
/// ```
/// use usi_strings::WeightedString;
/// let ws = WeightedString::new(b"ATACCCC".to_vec(), vec![0.9, 1.0, 3.0, 2.0, 0.7, 1.0, 1.0]).unwrap();
/// assert_eq!(ws.len(), 7);
/// assert_eq!(ws.text()[0], b'A');
/// assert_eq!(ws.weight(2), 3.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct WeightedString {
    text: Vec<u8>,
    weights: Vec<f64>,
}

/// Error returned when the text and weight arrays disagree in length or a
/// weight is not a finite number.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WeightedStringError {
    /// `|S| != |w|`.
    LengthMismatch {
        /// Text length.
        text: usize,
        /// Weights length.
        weights: usize,
    },
    /// A weight was NaN or infinite, which would poison every aggregate.
    NonFiniteWeight {
        /// Offending position.
        position: usize,
    },
}

impl std::fmt::Display for WeightedStringError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::LengthMismatch { text, weights } => {
                write!(f, "text length {text} != weights length {weights}")
            }
            Self::NonFiniteWeight { position } => {
                write!(f, "non-finite weight at position {position}")
            }
        }
    }
}

impl std::error::Error for WeightedStringError {}

impl WeightedString {
    /// Builds a weighted string, validating lengths and weight finiteness.
    pub fn new(text: Vec<u8>, weights: Vec<f64>) -> Result<Self, WeightedStringError> {
        if text.len() != weights.len() {
            return Err(WeightedStringError::LengthMismatch {
                text: text.len(),
                weights: weights.len(),
            });
        }
        if let Some(position) = weights.iter().position(|w| !w.is_finite()) {
            return Err(WeightedStringError::NonFiniteWeight { position });
        }
        Ok(Self { text, weights })
    }

    /// Builds a weighted string assigning every position the same utility.
    /// Handy for tests and for frequency-only workloads (`U(P) = |occ(P)|`
    /// when all weights are zero and the aggregator is `Count`).
    pub fn uniform(text: Vec<u8>, weight: f64) -> Self {
        let weights = vec![weight; text.len()];
        Self { text, weights }
    }

    /// Text length `n`.
    #[inline]
    pub fn len(&self) -> usize {
        self.text.len()
    }

    /// Whether the text is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.text.is_empty()
    }

    /// The underlying text `S`.
    #[inline]
    pub fn text(&self) -> &[u8] {
        &self.text
    }

    /// The weight array `w`.
    #[inline]
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// `w[i]`.
    #[inline]
    pub fn weight(&self, i: usize) -> f64 {
        self.weights[i]
    }

    /// The fragment `S[i .. i + len)` (paper: `frag_S(i, len)`).
    ///
    /// # Panics
    /// Panics if the fragment exceeds the text boundary.
    #[inline]
    pub fn fragment(&self, i: usize, len: usize) -> &[u8] {
        &self.text[i..i + len]
    }

    /// Builds the prefix-sum-of-weights array for this string.
    pub fn psw(&self) -> Psw {
        Psw::new(&self.weights)
    }

    /// Consumes `self`, returning the parts.
    pub fn into_parts(self) -> (Vec<u8>, Vec<f64>) {
        (self.text, self.weights)
    }
}

impl HeapSize for WeightedString {
    fn heap_bytes(&self) -> usize {
        self.text.heap_bytes() + self.weights.heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_length_mismatch() {
        let err = WeightedString::new(b"ab".to_vec(), vec![1.0]).unwrap_err();
        assert_eq!(err, WeightedStringError::LengthMismatch { text: 2, weights: 1 });
    }

    #[test]
    fn rejects_nan() {
        let err = WeightedString::new(b"ab".to_vec(), vec![1.0, f64::NAN]).unwrap_err();
        assert_eq!(err, WeightedStringError::NonFiniteWeight { position: 1 });
    }

    #[test]
    fn uniform_fills_weights() {
        let ws = WeightedString::uniform(b"abc".to_vec(), 0.5);
        assert_eq!(ws.weights(), &[0.5, 0.5, 0.5]);
    }

    #[test]
    fn fragment_matches_slice() {
        let ws = WeightedString::uniform(b"abcdef".to_vec(), 1.0);
        assert_eq!(ws.fragment(2, 3), b"cde");
    }

    #[test]
    fn empty_string_is_fine() {
        let ws = WeightedString::new(vec![], vec![]).unwrap();
        assert!(ws.is_empty());
        assert_eq!(ws.len(), 0);
    }

    #[test]
    fn error_display_is_readable() {
        let err = WeightedString::new(b"ab".to_vec(), vec![1.0]).unwrap_err();
        assert!(err.to_string().contains("!="));
    }
}
