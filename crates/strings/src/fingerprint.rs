//! Karp–Rabin fingerprints (paper, Section III, \[18\]).
//!
//! Fingerprints map strings to integers so that, with high probability, no
//! two distinct substrings of a given text collide. We work modulo the
//! Mersenne prime `p = 2^61 − 1` with a per-index random base `b`, so a
//! string `x_0 x_1 … x_{ℓ−1}` maps to
//! `Σ (x_i + 1) · b^{ℓ−1−i} mod p`.
//!
//! The `+1` shift keeps letter value 0 from collapsing (`"0"` vs `"00"`).
//! Collision probability for any fixed pair of distinct equal-length
//! strings of length `ℓ` is `≤ ℓ / p ≈ ℓ · 4.3·10⁻¹⁹`; with the number of
//! comparisons our indexes perform this is negligible, matching the
//! paper's w.h.p. guarantee.
//!
//! Three interfaces:
//! * [`Fingerprinter::fingerprint`] — `O(ℓ)` one-shot (used on query
//!   patterns: the `O(m)` part of the query bound);
//! * [`RollingWindow`] — all length-`ℓ` windows of a text in `O(1)` per
//!   slide (used in construction phase (ii));
//! * [`FingerprintTable`] — `O(n)` prefix table answering the fingerprint
//!   of any `S[i..j)` in `O(1)` (used by the fingerprint LCE backend and
//!   the dynamic extension).

use crate::HeapSize;
use rand::Rng;

/// The Mersenne prime `2^61 − 1` used as modulus.
pub const MODULUS: u64 = (1 << 61) - 1;

/// A Karp–Rabin fingerprint value in `[0, 2^61 − 1)`.
///
/// Fingerprints are only meaningful together with the [`Fingerprinter`]
/// that produced them and the length of the fingerprinted string; the hash
/// table `H` therefore keys on `(length, fingerprint)`.
pub type Fingerprint = u64;

/// Reduces `x < 2^122` modulo `2^61 − 1` using the Mersenne identity
/// `2^61 ≡ 1 (mod p)`.
#[inline]
fn reduce128(x: u128) -> u64 {
    let lo = (x & MODULUS as u128) as u64;
    let mid = ((x >> 61) & MODULUS as u128) as u64;
    let hi = (x >> 122) as u64;
    let mut r = lo + mid + hi;
    if r >= MODULUS {
        r -= MODULUS;
    }
    if r >= MODULUS {
        r -= MODULUS;
    }
    r
}

/// `a · b mod (2^61 − 1)`.
#[inline]
pub fn mul_mod(a: u64, b: u64) -> u64 {
    reduce128(a as u128 * b as u128)
}

/// `a + b mod (2^61 − 1)` for `a, b < p`.
#[inline]
pub fn add_mod(a: u64, b: u64) -> u64 {
    let s = a + b;
    if s >= MODULUS {
        s - MODULUS
    } else {
        s
    }
}

/// `a − b mod (2^61 − 1)` for `a, b < p`.
#[inline]
pub fn sub_mod(a: u64, b: u64) -> u64 {
    if a >= b {
        a - b
    } else {
        a + MODULUS - b
    }
}

#[inline]
fn letter(b: u8) -> u64 {
    b as u64 + 1
}

/// The fingerprint function: a randomly drawn base over the fixed modulus.
///
/// All fingerprints that are ever compared must come from the same
/// `Fingerprinter` (same base). Indexes embed one and reuse it for queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fingerprinter {
    base: u64,
}

impl Fingerprinter {
    /// Draws a random base from `rng`, uniform in `[256, p − 1)` so that
    /// distinct single letters always map to distinct residues.
    pub fn new<R: Rng + ?Sized>(rng: &mut R) -> Self {
        Self { base: rng.gen_range(256..MODULUS - 1) }
    }

    /// Deterministic constructor for reproducible builds and tests.
    ///
    /// `base` is clamped into the valid range.
    pub fn with_base(base: u64) -> Self {
        Self { base: 256 + base % (MODULUS - 257) }
    }

    /// The base in use.
    #[inline]
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Reconstructs a fingerprinter from a persisted [`Fingerprinter::base`].
    ///
    /// # Panics
    /// Panics if `base` is outside the valid range (corrupted input).
    pub fn from_raw_base(base: u64) -> Self {
        assert!((256..MODULUS - 1).contains(&base), "invalid persisted base");
        Self { base }
    }

    /// Fingerprint of `s` in `O(|s|)` time (Horner's rule).
    pub fn fingerprint(&self, s: &[u8]) -> Fingerprint {
        let mut h = 0u64;
        for &b in s {
            h = add_mod(mul_mod(h, self.base), letter(b));
        }
        h
    }

    /// `base^e mod p` by binary exponentiation.
    pub fn pow(&self, mut e: u64) -> u64 {
        let mut acc = 1u64;
        let mut b = self.base;
        while e > 0 {
            if e & 1 == 1 {
                acc = mul_mod(acc, b);
            }
            b = mul_mod(b, b);
            e >>= 1;
        }
        acc
    }

    /// Starts a rolling window of length `len` over `text`, positioned at
    /// offset 0. Returns `None` if `len == 0` or `len > |text|`.
    pub fn rolling<'t>(&self, text: &'t [u8], len: usize) -> Option<RollingWindow<'t>> {
        RollingWindow::new(*self, text, len)
    }

    /// Builds the `O(n)` prefix-fingerprint table of `text`.
    pub fn table(&self, text: &[u8]) -> FingerprintTable {
        FingerprintTable::new(*self, text)
    }
}

/// All length-`len` windows of a text, each fingerprint in `O(1)` per slide.
///
/// ```
/// use usi_strings::Fingerprinter;
/// let fp = Fingerprinter::with_base(0xBEEF);
/// let text = b"abracadabra";
/// let mut w = fp.rolling(text, 4).unwrap();
/// let mut seen = vec![w.value()];
/// while w.slide() { seen.push(w.value()); }
/// assert_eq!(seen.len(), text.len() - 4 + 1);
/// assert_eq!(seen[0], seen[7]); // "abra" at 0 and 7
/// assert_eq!(seen[0], fp.fingerprint(b"abra"));
/// ```
#[derive(Debug, Clone)]
pub struct RollingWindow<'t> {
    fp: Fingerprinter,
    text: &'t [u8],
    len: usize,
    pos: usize,
    value: u64,
    /// `base^{len−1}`: weight of the outgoing letter.
    top_pow: u64,
}

impl<'t> RollingWindow<'t> {
    fn new(fp: Fingerprinter, text: &'t [u8], len: usize) -> Option<Self> {
        if len == 0 || len > text.len() {
            return None;
        }
        let value = fp.fingerprint(&text[..len]);
        let top_pow = fp.pow(len as u64 - 1);
        Some(Self { fp, text, len, pos: 0, value, top_pow })
    }

    /// Start position of the current window.
    #[inline]
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Fingerprint of `text[pos .. pos + len)`.
    #[inline]
    pub fn value(&self) -> Fingerprint {
        self.value
    }

    /// Advances the window one position; returns `false` (and stays put)
    /// if the window is already flush with the end of the text.
    #[inline]
    pub fn slide(&mut self) -> bool {
        if self.pos + self.len >= self.text.len() {
            return false;
        }
        let out = letter(self.text[self.pos]);
        let inc = letter(self.text[self.pos + self.len]);
        let without_out = sub_mod(self.value, mul_mod(out, self.top_pow));
        self.value = add_mod(mul_mod(without_out, self.fp.base), inc);
        self.pos += 1;
        true
    }
}

/// Prefix-fingerprint table: `O(n)` space, `O(1)` fingerprint of any
/// substring `S[i..j)`.
///
/// ```
/// use usi_strings::Fingerprinter;
/// let fp = Fingerprinter::with_base(7);
/// let t = fp.table(b"mississippi");
/// assert_eq!(t.substring(1, 4), t.substring(4, 7)); // "issi" == "issi"
/// assert_eq!(t.substring(0, 11), fp.fingerprint(b"mississippi"));
/// ```
#[derive(Debug, Clone)]
pub struct FingerprintTable {
    fp: Fingerprinter,
    /// `prefix[i]` = fingerprint of `S[0..i)`; length `n + 1`.
    prefix: Vec<u64>,
    /// `pow[i] = base^i`; length `n + 1`.
    pow: Vec<u64>,
}

impl FingerprintTable {
    fn new(fp: Fingerprinter, text: &[u8]) -> Self {
        let n = text.len();
        let mut prefix = Vec::with_capacity(n + 1);
        let mut pow = Vec::with_capacity(n + 1);
        prefix.push(0);
        pow.push(1);
        let mut h = 0u64;
        let mut p = 1u64;
        for &b in text {
            h = add_mod(mul_mod(h, fp.base), letter(b));
            p = mul_mod(p, fp.base);
            prefix.push(h);
            pow.push(p);
        }
        Self { fp, prefix, pow }
    }

    /// Length of the underlying text.
    #[inline]
    pub fn len(&self) -> usize {
        self.prefix.len() - 1
    }

    /// Whether the underlying text is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The fingerprinter this table was built with.
    #[inline]
    pub fn fingerprinter(&self) -> Fingerprinter {
        self.fp
    }

    /// Fingerprint of `S[i..j)` in `O(1)`. Requires `i ≤ j ≤ n`.
    #[inline]
    pub fn substring(&self, i: usize, j: usize) -> Fingerprint {
        debug_assert!(i <= j && j < self.prefix.len());
        sub_mod(self.prefix[j], mul_mod(self.prefix[i], self.pow[j - i]))
    }

    /// Appends one letter, extending the table (dynamic USI, Section X).
    pub fn push(&mut self, b: u8) {
        let h = add_mod(mul_mod(*self.prefix.last().unwrap(), self.fp.base), letter(b));
        let p = mul_mod(*self.pow.last().unwrap(), self.fp.base);
        self.prefix.push(h);
        self.pow.push(p);
    }
}

impl HeapSize for FingerprintTable {
    fn heap_bytes(&self) -> usize {
        self.prefix.heap_bytes() + self.pow.heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fp() -> Fingerprinter {
        Fingerprinter::with_base(0x1234_5678_9abc)
    }

    #[test]
    fn modular_arithmetic_basics() {
        assert_eq!(add_mod(MODULUS - 1, 1), 0);
        assert_eq!(sub_mod(0, 1), MODULUS - 1);
        assert_eq!(mul_mod(MODULUS - 1, MODULUS - 1), 1); // (-1)² = 1
        assert_eq!(mul_mod(1 << 60, 4), 2); // 2^62 mod (2^61−1) = 2
    }

    #[test]
    fn pow_matches_iterated_mul() {
        let f = fp();
        let mut acc = 1u64;
        for e in 0..40u64 {
            assert_eq!(f.pow(e), acc);
            acc = mul_mod(acc, f.base());
        }
    }

    #[test]
    fn distinct_short_strings_distinct_fps() {
        let f = fp();
        let mut seen = std::collections::HashSet::new();
        // all strings of length ≤ 3 over {a, b, c}
        let sigma = b"abc";
        let mut strings: Vec<Vec<u8>> = vec![vec![]];
        let mut frontier: Vec<Vec<u8>> = vec![vec![]];
        for _ in 0..3 {
            let mut next = Vec::new();
            for s in &frontier {
                for &c in sigma {
                    let mut t = s.clone();
                    t.push(c);
                    next.push(t);
                }
            }
            strings.extend(next.iter().cloned());
            frontier = next;
        }
        for s in &strings {
            // include length in the key, as the index does
            assert!(seen.insert((s.len(), f.fingerprint(s))), "collision on {s:?}");
        }
    }

    #[test]
    fn rolling_matches_oneshot_on_random_text() {
        let mut rng = StdRng::seed_from_u64(42);
        let text: Vec<u8> = (0..500).map(|_| rng.gen_range(b'a'..=b'd')).collect();
        let f = Fingerprinter::new(&mut rng);
        for len in [1usize, 2, 3, 17, 499, 500] {
            let mut w = f.rolling(&text, len).unwrap();
            loop {
                let i = w.position();
                assert_eq!(w.value(), f.fingerprint(&text[i..i + len]), "len={len} i={i}");
                if !w.slide() {
                    break;
                }
            }
            assert_eq!(w.position(), text.len() - len);
        }
    }

    #[test]
    fn rolling_rejects_degenerate_lengths() {
        let f = fp();
        assert!(f.rolling(b"abc", 0).is_none());
        assert!(f.rolling(b"abc", 4).is_none());
        assert!(f.rolling(b"", 1).is_none());
    }

    #[test]
    fn table_matches_oneshot() {
        let f = fp();
        let text = b"abracadabra";
        let t = f.table(text);
        for i in 0..=text.len() {
            for j in i..=text.len() {
                assert_eq!(t.substring(i, j), f.fingerprint(&text[i..j]));
            }
        }
    }

    #[test]
    fn table_push_extends() {
        let f = fp();
        let mut t = f.table(b"abra");
        for &b in b"cadabra" {
            t.push(b);
        }
        let full = f.table(b"abracadabra");
        assert_eq!(t.substring(0, 11), full.substring(0, 11));
        assert_eq!(t.substring(3, 9), full.substring(3, 9));
    }

    #[test]
    fn zero_letter_does_not_collapse() {
        let f = fp();
        assert_ne!(f.fingerprint(&[0]), f.fingerprint(&[0, 0]));
        assert_ne!(f.fingerprint(&[0, 1]), f.fingerprint(&[1]));
    }

    #[test]
    fn different_bases_differ() {
        let a = Fingerprinter::with_base(1);
        let b = Fingerprinter::with_base(2);
        assert_ne!(a.fingerprint(b"hello"), b.fingerprint(b"hello"));
    }
}
