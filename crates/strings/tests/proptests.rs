//! Property-based tests for the string primitives.

use proptest::prelude::*;
use usi_strings::fingerprint::{add_mod, mul_mod, sub_mod, MODULUS};
use usi_strings::{Fingerprinter, GlobalAggregator, GlobalUtility, Psw, WeightedString};

fn small_text() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(prop_oneof![Just(b'a'), Just(b'b'), Just(b'c'), Just(b'd')], 0..200)
}

proptest! {
    #[test]
    fn modular_ops_agree_with_u128(a in 0..MODULUS, b in 0..MODULUS) {
        prop_assert_eq!(add_mod(a, b) as u128, (a as u128 + b as u128) % MODULUS as u128);
        prop_assert_eq!(mul_mod(a, b) as u128, (a as u128 * b as u128) % MODULUS as u128);
        prop_assert_eq!(sub_mod(a, b) as u128,
            (a as u128 + MODULUS as u128 - b as u128) % MODULUS as u128);
    }

    #[test]
    fn rolling_equals_oneshot(text in small_text(), len in 1usize..16, base in 0u64..u64::MAX) {
        prop_assume!(len <= text.len());
        let fp = Fingerprinter::with_base(base);
        let mut w = fp.rolling(&text, len).unwrap();
        loop {
            let i = w.position();
            prop_assert_eq!(w.value(), fp.fingerprint(&text[i..i + len]));
            if !w.slide() { break; }
        }
    }

    #[test]
    fn table_equals_oneshot(text in small_text(), base in 0u64..u64::MAX) {
        let fp = Fingerprinter::with_base(base);
        let t = fp.table(&text);
        let n = text.len();
        // spot-check a quadratic-free selection of substrings
        for i in (0..n).step_by(1 + n / 16) {
            for j in (i..=n).step_by(1 + n / 16) {
                prop_assert_eq!(t.substring(i, j), fp.fingerprint(&text[i..j]));
            }
        }
    }

    #[test]
    fn equal_substrings_equal_fingerprints(text in small_text()) {
        // fingerprints must be a function of string content, not position
        let fp = Fingerprinter::with_base(12345);
        let t = fp.table(&text);
        let n = text.len();
        for i in 0..n {
            for j in (i + 1)..n {
                let max = (n - j).min(4);
                for len in 1..=max {
                    if text[i..i + len] == text[j..j + len] {
                        prop_assert_eq!(t.substring(i, i + len), t.substring(j, j + len));
                    }
                }
            }
        }
    }

    #[test]
    fn psw_local_equals_naive_sum(weights in proptest::collection::vec(-100.0f64..100.0, 0..100)) {
        let psw = Psw::new(&weights);
        let n = weights.len();
        for i in 0..n {
            for len in 0..=(n - i).min(8) {
                let naive: f64 = weights[i..i + len].iter().sum();
                prop_assert!((psw.local(i, len) - naive).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn brute_force_count_matches_window_scan(text in small_text(), pat in proptest::collection::vec(prop_oneof![Just(b'a'), Just(b'b')], 1..4)) {
        let ws = WeightedString::uniform(text.clone(), 1.0);
        let acc = GlobalUtility::sum_of_sums().brute_force(&ws, &pat);
        let expected = if pat.len() > text.len() { 0 } else {
            text.windows(pat.len()).filter(|w| *w == &pat[..]).count()
        };
        prop_assert_eq!(acc.count() as usize, expected);
        // with unit weights, sum-of-sums = count * |P|
        prop_assert_eq!(acc.finish(GlobalAggregator::Sum), Some(expected as f64 * pat.len() as f64));
    }
}
