//! Parallel/serial build equivalence: for every input and thread count,
//! `UsiBuilder::with_threads(k)` must produce an index whose `USIX`
//! serialisation is **byte-identical** to the single-threaded build.
//! This is the same invariant the CI smoke job enforces with `cmp` on
//! the CLI's `.usix` output, checked here at property-test granularity
//! (including the degenerate inputs the CLI fixture cannot cover).

use proptest::prelude::*;
use usi_core::{BuildOptions, UsiBuilder, UsiIndex};
use usi_strings::WeightedString;

/// Serialises a build at the given thread count.
fn usix_bytes(ws: &WeightedString, k: usize, threads: usize) -> Vec<u8> {
    let index = UsiBuilder::new()
        .with_k(k)
        .with_options(BuildOptions { threads })
        .deterministic(0xfeed)
        .build(ws.clone());
    let mut buf = Vec::new();
    index.write_to(&mut buf).expect("in-memory serialisation cannot fail");
    buf
}

fn assert_thread_count_invariant(ws: &WeightedString, k: usize) {
    let serial = usix_bytes(ws, k, 1);
    for threads in [2usize, 3, 8] {
        let parallel = usix_bytes(ws, k, threads);
        assert_eq!(
            serial,
            parallel,
            "threads={threads} produced different bytes (n={}, k={k})",
            ws.len()
        );
    }
    // and the serialisation loads back into a working index
    let loaded = UsiIndex::read_from(&mut serial.as_slice()).expect("round-trip");
    assert_eq!(loaded.text(), ws.text());
}

proptest! {
    #[test]
    fn parallel_build_bytes_equal_serial(
        text in proptest::collection::vec(prop_oneof![Just(b'a'), Just(b'b'), Just(b'c')], 0..400),
        k in 1usize..60,
    ) {
        let ws = WeightedString::uniform(text, 1.0);
        assert_thread_count_invariant(&ws, k);
    }

    #[test]
    fn parallel_build_bytes_equal_serial_weighted(
        text in proptest::collection::vec(any::<u8>(), 1..250),
        seed in any::<u32>(),
    ) {
        // varied weights: accumulator contents must match bit-for-bit,
        // which requires the same occurrence-aggregation results
        let weights: Vec<f64> =
            (0..text.len()).map(|i| ((i as u64 * 2654435761 + seed as u64) % 97) as f64 / 7.0).collect();
        let ws = WeightedString::new(text, weights).unwrap();
        assert_thread_count_invariant(&ws, 25);
    }
}

#[test]
fn degenerate_inputs_are_thread_count_invariant() {
    // empty text
    assert_thread_count_invariant(&WeightedString::uniform(Vec::new(), 1.0), 5);
    // single byte
    assert_thread_count_invariant(&WeightedString::uniform(vec![b'x'], 1.0), 5);
    // shorter than one sharding block at any practical thread count
    assert_thread_count_invariant(&WeightedString::uniform(b"abc".to_vec(), 1.0), 3);
    // all-equal bytes (one seed group: exercises the repetitive path)
    assert_thread_count_invariant(&WeightedString::uniform(vec![b'z'; 700], 1.0), 20);
    // zero bytes, which collide with key padding if the packing is wrong
    assert_thread_count_invariant(&WeightedString::uniform(vec![0u8; 120], 1.0), 10);
}

#[test]
fn tau_and_default_k_builds_are_thread_count_invariant() {
    let text = b"abracadabra_abracadabra_abracadabra".repeat(8);
    let ws = WeightedString::uniform(text, 1.0);
    let serialise = |builder: UsiBuilder, threads: usize| {
        let mut buf = Vec::new();
        builder
            .with_threads(threads)
            .deterministic(99)
            .build(ws.clone())
            .write_to(&mut buf)
            .unwrap();
        buf
    };
    for threads in [2usize, 4] {
        assert_eq!(
            serialise(UsiBuilder::new().with_tau(6), 1),
            serialise(UsiBuilder::new().with_tau(6), threads),
            "tau build, threads={threads}"
        );
        assert_eq!(
            serialise(UsiBuilder::new(), 1),
            serialise(UsiBuilder::new(), threads),
            "default-K build, threads={threads}"
        );
    }
}
