//! The serving layer shares one `UsiIndex` across a pool of query
//! threads (`&UsiIndex` is `Sync`: queries take no locks and mutate
//! nothing). This test guards that assumption: many threads issuing
//! interleaved queries against one shared index must produce exactly
//! the answers of a serial run.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use usi_core::{UsiBuilder, UsiIndex, UsiQuery};
use usi_strings::WeightedString;

fn build_index(seed: u64, n: usize) -> UsiIndex {
    let mut rng = StdRng::seed_from_u64(seed);
    let text: Vec<u8> = (0..n).map(|_| b'a' + rng.gen_range(0..4u8)).collect();
    let weights: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..2.0)).collect();
    let ws = WeightedString::new(text, weights).unwrap();
    UsiBuilder::new().with_k(150).deterministic(seed).build(ws)
}

fn workload(index: &UsiIndex, count: usize, seed: u64) -> Vec<Vec<u8>> {
    let text = index.text();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut patterns: Vec<Vec<u8>> = (0..count)
        .map(|_| {
            let m = rng.gen_range(1..12usize);
            let i = rng.gen_range(0..text.len() - m);
            text[i..i + m].to_vec()
        })
        .collect();
    patterns.push(b"zzzz".to_vec()); // absent
    patterns.push(Vec::new()); // empty
    patterns
}

#[test]
fn interleaved_threads_agree_with_serial_run() {
    const THREADS: usize = 8;
    let index = build_index(41, 3_000);
    let patterns = workload(&index, 400, 43);
    let serial: Vec<UsiQuery> = patterns.iter().map(|p| index.query(p)).collect();

    let per_thread: Vec<Vec<UsiQuery>> = std::thread::scope(|scope| {
        let index = &index;
        let patterns = &patterns;
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                scope.spawn(move || {
                    // each thread walks the workload from a different
                    // offset so the threads interleave distinct queries
                    // at any instant; answers are realigned afterwards
                    let len = patterns.len();
                    let mut answers = vec![None; len];
                    for step in 0..len {
                        let i = (t * len / THREADS + step) % len;
                        answers[i] = Some(index.query(&patterns[i]));
                    }
                    answers.into_iter().map(Option::unwrap).collect::<Vec<_>>()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("query thread panicked")).collect()
    });

    for (t, answers) in per_thread.iter().enumerate() {
        assert_eq!(answers.len(), serial.len());
        for (i, (concurrent, expected)) in answers.iter().zip(&serial).enumerate() {
            assert_eq!(concurrent, expected, "thread {t}, pattern {i}");
        }
    }
}

#[test]
fn batch_with_heavy_duplicates_matches_serial() {
    // serving batches are skewed towards hot patterns; query_batch
    // answers duplicates by copying — answers must stay identical
    let index = build_index(59, 1_500);
    let distinct = workload(&index, 25, 61);
    let mut rng = StdRng::seed_from_u64(67);
    let skewed: Vec<&[u8]> =
        (0..400).map(|_| distinct[rng.gen_range(0..distinct.len())].as_slice()).collect();
    let serial: Vec<UsiQuery> = skewed.iter().map(|p| index.query(p)).collect();
    assert_eq!(index.query_batch(&skewed), serial);
}

#[test]
fn concurrent_batches_agree_with_serial_run() {
    let index = build_index(47, 2_000);
    let patterns = workload(&index, 300, 53);
    let refs: Vec<&[u8]> = patterns.iter().map(Vec::as_slice).collect();
    let serial: Vec<UsiQuery> = refs.iter().map(|p| index.query(p)).collect();

    std::thread::scope(|scope| {
        let index = &index;
        let refs = &refs;
        let serial = &serial;
        for _ in 0..4 {
            scope.spawn(move || {
                assert_eq!(&index.query_batch(refs), serial);
            });
        }
    });
}
