//! The zero-copy contract of `persist::open_mmap`: a storage-backed
//! index must be **observationally identical** to the owned load of the
//! same bytes — every query answer bit-for-bit equal (proptested) —
//! and must reject malformed files as cleanly as `read_from` does,
//! including truncation at every section boundary.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::PathBuf;
use std::sync::Arc;
use usi_core::storage::IndexStorage;
use usi_core::{PersistError, UsiBuilder, UsiIndex};
use usi_strings::{GlobalAggregator, LocalWindow, WeightedString};

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("usi-storage-equivalence-tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn build_index(seed: u64, n: usize) -> UsiIndex {
    let mut rng = StdRng::seed_from_u64(seed);
    let text: Vec<u8> = (0..n).map(|_| b'a' + rng.gen_range(0..4u8)).collect();
    let weights: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..2.0)).collect();
    let ws = WeightedString::new(text, weights).unwrap();
    UsiBuilder::new().with_k(n / 10).deterministic(seed).build(ws)
}

/// Opens serialised bytes through the same validation path `open_mmap`
/// uses, minus the filesystem.
fn open_view(bytes: &[u8]) -> Result<UsiIndex, PersistError> {
    UsiIndex::from_storage(Arc::new(IndexStorage::Owned(bytes.to_vec())))
}

#[test]
fn open_mmap_answers_match_read_from_through_a_real_file() {
    let index = build_index(11, 1_500);
    let path = tmp("real-file.usix");
    let mut buf = Vec::new();
    index.write_to(&mut buf).unwrap();
    std::fs::write(&path, &buf).unwrap();

    let owned = UsiIndex::read_from(&mut buf.as_slice()).unwrap();
    let mapped = usi_core::persist::open_mmap(&path).unwrap();
    #[cfg(all(unix, target_pointer_width = "64"))]
    assert!(mapped.is_memory_mapped(), "unix mmap wrapper must be used");
    assert!(!owned.is_memory_mapped());

    assert_eq!(mapped.cached_substrings(), owned.cached_substrings());
    assert_eq!(mapped.stats().tau, owned.stats().tau);
    assert_eq!(mapped.stats().distinct_lengths, owned.stats().distinct_lengths);
    assert_eq!(mapped.text(), owned.text());
    assert_eq!(
        mapped.suffix_array().iter().collect::<Vec<_>>(),
        owned.suffix_array().iter().collect::<Vec<_>>()
    );
    assert_eq!(mapped.weights().to_vec(), owned.weights().to_vec());

    let text = owned.text().to_vec();
    let mut rng = StdRng::seed_from_u64(13);
    let mut patterns: Vec<Vec<u8>> = (0..300)
        .map(|_| {
            let m = rng.gen_range(1..14usize);
            let i = rng.gen_range(0..text.len() - m);
            text[i..i + m].to_vec()
        })
        .collect();
    patterns.push(Vec::new());
    patterns.push(b"zzzz".to_vec());
    patterns.push(text.clone());
    for pattern in &patterns {
        assert_eq!(mapped.query(pattern), owned.query(pattern), "pattern {pattern:?}");
    }
    // batch paths agree too (they share the dedup logic but dispatch
    // to different searcher backings)
    let refs: Vec<&[u8]> = patterns.iter().map(Vec::as_slice).collect();
    assert_eq!(mapped.query_batch(&refs), owned.query_batch(&refs));
}

#[test]
fn view_reserialisation_is_byte_identical() {
    // write → open zero-copy → write again must reproduce the file
    // exactly: the view decodes to the same canonical encoding
    let index = build_index(17, 900);
    let mut first = Vec::new();
    index.write_to(&mut first).unwrap();
    let view = open_view(&first).unwrap();
    let mut second = Vec::new();
    view.write_to(&mut second).unwrap();
    assert_eq!(first, second);
}

/// Byte offsets of every section boundary (mirrors the layout at the
/// top of `crates/core/src/persist.rs`).
fn section_boundaries(index: &UsiIndex, total: usize) -> Vec<usize> {
    let n = index.text().len();
    let h = index.cached_substrings();
    let sections = [8, 1, 1, 8, 8, n, 8 * n, 4 * n, 8, 44 * h, 8, 8, 4, 8];
    let mut boundaries = Vec::new();
    let mut offset = 0usize;
    for size in sections {
        offset += size;
        boundaries.push(offset);
    }
    assert_eq!(offset, total, "section sizes must cover the whole file");
    boundaries
}

#[test]
fn truncation_at_every_section_boundary_is_a_clean_error() {
    let (index, buf) = {
        let index = build_index(19, 1_200);
        let mut buf = Vec::new();
        index.write_to(&mut buf).unwrap();
        (index, buf)
    };
    let boundaries = section_boundaries(&index, buf.len());
    let mut cuts: Vec<usize> = vec![0];
    for &b in &boundaries {
        cuts.extend([b.saturating_sub(1), b, b + 1]);
    }
    cuts.retain(|&c| c < buf.len());
    for cut in cuts {
        let result = std::panic::catch_unwind(|| open_view(&buf[..cut]));
        match result {
            Ok(Err(_)) => {} // clean PersistError: what we want
            Ok(Ok(_)) => panic!("cut at {cut}/{} accepted as a full index", buf.len()),
            Err(_) => panic!("cut at {cut}/{} panicked instead of erroring", buf.len()),
        }
    }
    // the whole file still opens — and also through a real mapping,
    // where a truncated copy must fail identically
    assert!(open_view(&buf).is_ok());
    let path = tmp("truncated.usix");
    std::fs::write(&path, &buf[..buf.len() - 3]).unwrap();
    assert!(usi_core::persist::open_mmap(&path).is_err());
    std::fs::write(&path, &buf).unwrap();
    assert!(usi_core::persist::open_mmap(&path).is_ok());
}

#[test]
fn trailing_bytes_and_unsorted_entries_are_rejected() {
    let index = build_index(23, 800);
    let mut buf = Vec::new();
    index.write_to(&mut buf).unwrap();

    // the view demands an exact layout match: read_from tolerates a
    // trailing newline on a stream, a mapping must not
    let mut padded = buf.clone();
    padded.push(b'\n');
    assert!(matches!(open_view(&padded), Err(PersistError::Corrupt("file size"))));

    // swapping two adjacent hash-table entries breaks the canonical
    // order the binary-search probe relies on
    assert!(index.cached_substrings() >= 2, "need two entries to swap");
    let n = index.text().len();
    let h_off = 26 + 13 * n + 8;
    let mut swapped = buf.clone();
    let (a, b) = (h_off, h_off + 44);
    let first: Vec<u8> = swapped[a..a + 44].to_vec();
    let second: Vec<u8> = swapped[b..b + 44].to_vec();
    swapped[a..a + 44].copy_from_slice(&second);
    swapped[b..b + 44].copy_from_slice(&first);
    assert!(matches!(open_view(&swapped), Err(PersistError::Corrupt("hash table order"))));

    // duplicated suffix-array entry: same permutation check as read_from
    let sa_off = 26 + 9 * n;
    let mut corrupt = buf.clone();
    let first: [u8; 4] = corrupt[sa_off..sa_off + 4].try_into().unwrap();
    corrupt[sa_off + 4..sa_off + 8].copy_from_slice(&first);
    assert!(matches!(open_view(&corrupt), Err(PersistError::Corrupt("suffix array permutation"))));

    // non-finite weight is caught field-precisely
    let weights_off = 26 + n;
    let mut corrupt = buf;
    corrupt[weights_off..weights_off + 8].copy_from_slice(&f64::NAN.to_le_bytes());
    assert!(matches!(open_view(&corrupt), Err(PersistError::Corrupt("non-finite weight"))));
}

#[test]
fn every_aggregator_and_local_window_round_trips_through_a_view() {
    let mut rng = StdRng::seed_from_u64(29);
    for agg in [
        GlobalAggregator::Sum,
        GlobalAggregator::Min,
        GlobalAggregator::Max,
        GlobalAggregator::Avg,
        GlobalAggregator::Count,
    ] {
        for local in [LocalWindow::Sum, LocalWindow::Product] {
            let n = 300;
            let text: Vec<u8> = (0..n).map(|_| b'a' + rng.gen_range(0..3u8)).collect();
            // strictly positive so Product locals are valid
            let weights: Vec<f64> =
                (0..n).map(|_| 0.25 + rng.gen_range(0..8) as f64 * 0.25).collect();
            let ws = WeightedString::new(text.clone(), weights).unwrap();
            let index = UsiBuilder::new()
                .with_k(20)
                .with_aggregator(agg)
                .with_local_window(local)
                .deterministic(31)
                .build(ws);
            let mut buf = Vec::new();
            index.write_to(&mut buf).unwrap();
            let owned = UsiIndex::read_from(&mut buf.as_slice()).unwrap();
            let view = open_view(&buf).unwrap();
            for _ in 0..40 {
                let m = rng.gen_range(1..8usize);
                let i = rng.gen_range(0..n - m);
                let pattern = &text[i..i + m];
                assert_eq!(view.query(pattern), owned.query(pattern), "{agg:?}/{local:?}");
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The tentpole invariant: for any indexed string, the owned and
    /// storage-view backings of the same serialised bytes answer every
    /// query identically — value, occurrence count and source.
    #[test]
    fn owned_and_view_backings_answer_identically(seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = rng.gen_range(1..400usize);
        let text: Vec<u8> = (0..n).map(|_| b'a' + rng.gen_range(0..3u8)).collect();
        let weights: Vec<f64> = (0..n).map(|_| rng.gen_range(0..16) as f64 * 0.125 - 1.0).collect();
        let ws = WeightedString::new(text.clone(), weights).unwrap();
        let index = UsiBuilder::new().with_k(1 + n / 8).deterministic(seed).build(ws);
        let mut buf = Vec::new();
        index.write_to(&mut buf).unwrap();
        let owned = UsiIndex::read_from(&mut buf.as_slice()).unwrap();
        let view = open_view(&buf).unwrap();
        prop_assert_eq!(view.cached_substrings(), owned.cached_substrings());
        for _ in 0..30 {
            let m = rng.gen_range(1..=n.min(12));
            let i = rng.gen_range(0..=n - m);
            let pattern = &text[i..i + m];
            prop_assert_eq!(view.query(pattern), owned.query(pattern));
        }
        // absent and empty patterns too
        prop_assert_eq!(view.query(b"zzzz"), owned.query(b"zzzz"));
        prop_assert_eq!(view.query(b""), owned.query(b""));
    }
}
