//! Property-based tests for the USI core: Theorem-level invariants.

use proptest::prelude::*;
use usi_core::{approximate_top_k, exact_top_k, ApproxConfig, TopKOracle, UsiBuilder};
use usi_strings::{GlobalUtility, WeightedString};
use usi_suffix::naive::substring_frequencies_naive;

fn text_strategy(max_len: usize) -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(prop_oneof![Just(b'a'), Just(b'b'), Just(b'c')], 1..max_len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Exact-Top-K returns substrings with true frequencies forming the
    /// maximal frequency multiset (Theorem 2).
    #[test]
    fn exact_top_k_is_maximal(text in text_strategy(80), k in 1usize..25) {
        let truth = substring_frequencies_naive(&text);
        let (got, sa) = exact_top_k(&text, k);
        let expect_len = k.min(truth.len());
        prop_assert_eq!(got.len(), expect_len);
        let mut got_freqs: Vec<u32> = got.iter().map(|t| t.freq()).collect();
        got_freqs.sort_unstable_by(|a, b| b.cmp(a));
        let mut all: Vec<u32> = truth.values().copied().collect();
        all.sort_unstable_by(|a, b| b.cmp(a));
        all.truncate(expect_len);
        prop_assert_eq!(got_freqs, all);
        for t in &got {
            prop_assert_eq!(truth[&t.bytes(&text, &sa).to_vec()], t.freq());
        }
    }

    /// Oracle tuning tasks are consistent with Task (i) listing.
    #[test]
    fn oracle_tasks_consistent(text in text_strategy(60)) {
        let (oracle, _) = TopKOracle::from_text(&text);
        let total = oracle.total_distinct_substrings();
        for k in (1..=total).step_by((total as usize / 8).max(1)) {
            let t = oracle.tune_for_k(k).unwrap();
            let listed = oracle.top_k(k as usize);
            prop_assert_eq!(t.tau, listed.iter().map(|s| s.freq()).min().unwrap());
            let mut lens: Vec<u32> = listed.iter().map(|s| s.len).collect();
            lens.sort_unstable();
            lens.dedup();
            prop_assert_eq!(t.distinct_lengths as usize, lens.len());
        }
        for tau in 1..=4u32 {
            let t = oracle.tune_for_tau(tau);
            let truth = substring_frequencies_naive(&text);
            let want = truth.values().filter(|&&f| f >= tau).count() as u64;
            prop_assert_eq!(t.k, want);
        }
    }

    /// Approximate-Top-K never over-estimates frequencies (Theorem 3).
    #[test]
    fn approx_one_sided_error(text in text_strategy(100), k in 1usize..12, s in 1usize..6) {
        let truth = substring_frequencies_naive(&text);
        let res = approximate_top_k(&text, &ApproxConfig::new(k, s));
        for item in &res.items {
            let true_freq = truth[&item.bytes(&text).to_vec()] as u64;
            prop_assert!(item.freq <= true_freq);
        }
    }

    /// The full USI index answers every substring query exactly like the
    /// brute-force utility (Theorem 1 correctness).
    #[test]
    fn usi_query_equals_brute_force(
        text in text_strategy(60),
        weights_seed in any::<u64>(),
        k in 1usize..20,
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(weights_seed);
        let weights: Vec<f64> = (0..text.len()).map(|_| rng.gen_range(0.0..2.0)).collect();
        let ws = WeightedString::new(text.clone(), weights).unwrap();
        let index = UsiBuilder::new().with_k(k).deterministic(weights_seed).build(ws.clone());
        let u = GlobalUtility::sum_of_sums();
        // every distinct substring of bounded length, plus absent patterns
        let mut pats: Vec<Vec<u8>> = substring_frequencies_naive(&text)
            .into_keys()
            .filter(|p| p.len() <= 6)
            .collect();
        pats.push(b"zz".to_vec());
        for pat in pats {
            let want = u.brute_force(&ws, &pat);
            let got = index.query(&pat);
            prop_assert_eq!(got.occurrences, want.count());
            let (a, b) = (got.value.unwrap(), want.finish(u.aggregator).unwrap());
            prop_assert!((a - b).abs() < 1e-6 * (1.0 + b.abs()));
        }
    }
}
