//! Failure-injection tests for the `USIX` loader: arbitrary corruption
//! must produce an error, never a panic or a silently wrong index.

use proptest::prelude::*;
use usi_core::UsiBuilder;
use usi_strings::WeightedString;

fn serialized_index(seed: u64) -> Vec<u8> {
    let text = b"abracadabra_banana".repeat(8);
    let weights: Vec<f64> = (0..text.len()).map(|i| 0.5 + (i % 7) as f64 * 0.1).collect();
    let ws = WeightedString::new(text, weights).unwrap();
    let index = UsiBuilder::new().with_k(25).deterministic(seed).build(ws);
    let mut buf = Vec::new();
    index.write_to(&mut buf).unwrap();
    buf
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Truncation at any offset is rejected (or, at worst for a byte-exact
    /// prefix of a valid file, never produces wrong answers — but with a
    /// length-prefixed format every strict prefix must fail).
    #[test]
    fn truncation_never_panics(cut in 0usize..4096) {
        let buf = serialized_index(1);
        let cut = cut.min(buf.len().saturating_sub(1));
        let short = &buf[..cut];
        prop_assert!(usi_core::UsiIndex::read_from(&mut &short[..]).is_err());
    }

    /// Single-byte corruption never panics; it either fails validation or
    /// yields an index whose text/weights arithmetic still holds (flips
    /// in utility payload bytes are undetectable by design, like any
    /// checksum-free format).
    #[test]
    fn byte_flip_never_panics(pos in 0usize..4096, xor in 1u8..=255) {
        let mut buf = serialized_index(2);
        let pos = pos % buf.len();
        buf[pos] ^= xor;
        match usi_core::UsiIndex::read_from(&mut buf.as_slice()) {
            Err(_) => {} // rejected: fine
            Ok(index) => {
                // loaded: it must at least be internally consistent enough
                // to answer queries without panicking
                let _ = index.query(b"banana");
                let _ = index.query(b"zzz");
                let _ = index.query(b"");
            }
        }
    }

    /// Garbage input of any length is rejected.
    #[test]
    fn garbage_never_panics(garbage in proptest::collection::vec(any::<u8>(), 0..600)) {
        prop_assert!(usi_core::UsiIndex::read_from(&mut garbage.as_slice()).is_err()
            || garbage.len() >= 40);
    }
}
