//! On-disk round-trip for the `USIX` format: the in-memory tests in
//! `persist.rs` exercise `write_to`/`read_from` through byte buffers;
//! these go through a real temporary `.usix` file, the way the CLI and
//! any service deployment will use the format.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::path::PathBuf;
use usi_core::{UsiBuilder, UsiIndex};
use usi_strings::WeightedString;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("usi-persist-tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn build_index(seed: u64) -> (UsiIndex, WeightedString) {
    let mut rng = StdRng::seed_from_u64(seed);
    let alphabet = b"acgt";
    let text: Vec<u8> = (0..2_000).map(|_| alphabet[rng.gen_range(0..4)]).collect();
    let weights: Vec<f64> = (0..text.len()).map(|_| rng.gen_range(0.0..2.0)).collect();
    let ws = WeightedString::new(text, weights).unwrap();
    let index = UsiBuilder::new().with_k(200).deterministic(seed).build(ws.clone());
    (index, ws)
}

#[test]
fn file_roundtrip_preserves_every_answer() {
    let (index, ws) = build_index(7);
    let path = tmp("roundtrip.usix");

    let mut out = BufWriter::new(File::create(&path).unwrap());
    index.write_to(&mut out).unwrap();
    drop(out);

    let mut input = BufReader::new(File::open(&path).unwrap());
    let loaded = UsiIndex::read_from(&mut input).unwrap();

    assert_eq!(loaded.cached_substrings(), index.cached_substrings());
    assert_eq!(loaded.stats().tau, index.stats().tau);

    // query agreement between the reloaded and the in-memory index, on
    // patterns both above and below the frequency threshold, plus absent
    // and empty patterns
    let text = ws.text();
    let mut rng = StdRng::seed_from_u64(99);
    let mut patterns: Vec<Vec<u8>> = (0..200)
        .map(|_| {
            let len = rng.gen_range(1..12usize);
            let start = rng.gen_range(0..text.len() - len);
            text[start..start + len].to_vec()
        })
        .collect();
    patterns.push(b"zzzzz".to_vec());
    patterns.push(Vec::new());

    for pat in &patterns {
        let a = index.query(pat);
        let b = loaded.query(pat);
        assert_eq!(a.occurrences, b.occurrences, "pattern {:?}", pat);
        assert_eq!(a.source, b.source, "pattern {:?}", pat);
        match (a.value, b.value) {
            (None, None) => {}
            (Some(x), Some(y)) => {
                assert!((x - y).abs() < 1e-12 * (1.0 + x.abs()), "pattern {:?}", pat)
            }
            other => panic!("value mismatch for {:?}: {:?}", pat, other),
        }
    }
}

#[test]
fn file_roundtrip_twice_is_byte_identical() {
    // write → read → write must reproduce the file byte for byte: the
    // format has a single canonical encoding per index
    let (index, _) = build_index(13);
    let path = tmp("stable.usix");

    let mut out = BufWriter::new(File::create(&path).unwrap());
    index.write_to(&mut out).unwrap();
    drop(out);
    let first = std::fs::read(&path).unwrap();

    let loaded = UsiIndex::read_from(&mut first.as_slice()).unwrap();
    let mut second = Vec::new();
    loaded.write_to(&mut second).unwrap();
    assert_eq!(first, second);
}
