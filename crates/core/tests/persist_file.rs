//! On-disk round-trip for the `USIX` format: the in-memory tests in
//! `persist.rs` exercise `write_to`/`read_from` through byte buffers;
//! these go through a real temporary `.usix` file, the way the CLI and
//! any service deployment will use the format.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::path::PathBuf;
use usi_core::{PersistError, UsiBuilder, UsiIndex};
use usi_strings::WeightedString;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("usi-persist-tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn build_index(seed: u64) -> (UsiIndex, WeightedString) {
    let mut rng = StdRng::seed_from_u64(seed);
    let alphabet = b"acgt";
    let text: Vec<u8> = (0..2_000).map(|_| alphabet[rng.gen_range(0..4)]).collect();
    let weights: Vec<f64> = (0..text.len()).map(|_| rng.gen_range(0.0..2.0)).collect();
    let ws = WeightedString::new(text, weights).unwrap();
    let index = UsiBuilder::new().with_k(200).deterministic(seed).build(ws.clone());
    (index, ws)
}

#[test]
fn file_roundtrip_preserves_every_answer() {
    let (index, ws) = build_index(7);
    let path = tmp("roundtrip.usix");

    let mut out = BufWriter::new(File::create(&path).unwrap());
    index.write_to(&mut out).unwrap();
    drop(out);

    let mut input = BufReader::new(File::open(&path).unwrap());
    let loaded = UsiIndex::read_from(&mut input).unwrap();

    assert_eq!(loaded.cached_substrings(), index.cached_substrings());
    assert_eq!(loaded.stats().tau, index.stats().tau);

    // query agreement between the reloaded and the in-memory index, on
    // patterns both above and below the frequency threshold, plus absent
    // and empty patterns
    let text = ws.text();
    let mut rng = StdRng::seed_from_u64(99);
    let mut patterns: Vec<Vec<u8>> = (0..200)
        .map(|_| {
            let len = rng.gen_range(1..12usize);
            let start = rng.gen_range(0..text.len() - len);
            text[start..start + len].to_vec()
        })
        .collect();
    patterns.push(b"zzzzz".to_vec());
    patterns.push(Vec::new());

    for pat in &patterns {
        let a = index.query(pat);
        let b = loaded.query(pat);
        assert_eq!(a.occurrences, b.occurrences, "pattern {:?}", pat);
        assert_eq!(a.source, b.source, "pattern {:?}", pat);
        match (a.value, b.value) {
            (None, None) => {}
            (Some(x), Some(y)) => {
                assert!((x - y).abs() < 1e-12 * (1.0 + x.abs()), "pattern {:?}", pat)
            }
            other => panic!("value mismatch for {:?}: {:?}", pat, other),
        }
    }
}

/// Byte offsets of every section boundary of a serialised index, in
/// stream order, ending at the total length. Mirrors the layout
/// documented at the top of `crates/core/src/persist.rs`.
fn section_boundaries(index: &UsiIndex, total: usize) -> Vec<usize> {
    let n = index.text().len();
    let h = index.cached_substrings();
    let sections = [
        8,      // magic + version
        1,      // aggregator tag
        1,      // local window tag
        8,      // fingerprinter base
        8,      // n
        n,      // text
        8 * n,  // weights
        4 * n,  // suffix array
        8,      // |H|
        44 * h, // hash-table entries (4 + 8 + 8 + 8 + 8 + 8 each)
        8,      // k_requested
        8,      // k_stored
        4,      // tau
        8,      // L_K
    ];
    let mut boundaries = Vec::with_capacity(sections.len());
    let mut offset = 0usize;
    for size in sections {
        offset += size;
        boundaries.push(offset);
    }
    assert_eq!(offset, total, "section sizes must cover the whole stream");
    boundaries
}

#[test]
fn truncation_at_every_section_boundary_is_an_error_not_a_panic() {
    let (index, _) = build_index(31);
    let mut buf = Vec::new();
    index.write_to(&mut buf).unwrap();
    let boundaries = section_boundaries(&index, buf.len());

    // cuts exactly on, one before, and one after every boundary (the
    // last boundary is the full stream: only its "one before" applies)
    let mut cuts: Vec<usize> = Vec::new();
    for &b in &boundaries {
        cuts.extend([b.saturating_sub(1), b, b + 1]);
    }
    cuts.retain(|&c| c < buf.len());
    cuts.push(0);

    for cut in cuts {
        let result = std::panic::catch_unwind(|| UsiIndex::read_from(&mut &buf[..cut]));
        match result {
            Ok(Err(_)) => {} // clean PersistError: what we want
            Ok(Ok(_)) => panic!("cut at {cut}/{} accepted as a full index", buf.len()),
            Err(_) => panic!("cut at {cut}/{} panicked instead of erroring", buf.len()),
        }
    }

    // the untruncated stream still loads
    assert!(UsiIndex::read_from(&mut buf.as_slice()).is_ok());
}

#[test]
fn corrupted_fields_are_rejected_with_corrupt_errors() {
    let (index, _) = build_index(37);
    let mut pristine = Vec::new();
    index.write_to(&mut pristine).unwrap();

    // (offset to poke, poison byte, description)
    let pokes = [
        (8usize, 0xffu8, "aggregator tag"),
        (9, 0xff, "local window tag"),
        (10, 0x00, "fingerprinter base low byte"),
        (18, 0xff, "text length"),
    ];
    for (offset, byte, what) in pokes {
        let mut buf = pristine.clone();
        // overwrite the whole field region's first byte(s)
        buf[offset] = byte;
        if what == "fingerprinter base low byte" {
            // zero the full base so it falls below 256
            buf[10..18].fill(0);
        }
        if what == "text length" {
            // absurd n: either Corrupt("text length") or an I/O error
            buf[18..26].fill(0xff);
        }
        let result = std::panic::catch_unwind(|| UsiIndex::read_from(&mut buf.as_slice()));
        let loaded = result.unwrap_or_else(|_| panic!("poking {what} panicked"));
        assert!(loaded.is_err(), "poking {what} was accepted");
    }

    // a non-finite weight is caught field-precisely
    let n = index.text().len();
    let weights_off = 8 + 1 + 1 + 8 + 8 + n;
    let mut buf = pristine.clone();
    buf[weights_off..weights_off + 8].copy_from_slice(&f64::NAN.to_le_bytes());
    assert!(matches!(
        UsiIndex::read_from(&mut buf.as_slice()),
        Err(PersistError::Corrupt("non-finite weight"))
    ));
}

#[test]
fn file_roundtrip_twice_is_byte_identical() {
    // write → read → write must reproduce the file byte for byte: the
    // format has a single canonical encoding per index
    let (index, _) = build_index(13);
    let path = tmp("stable.usix");

    let mut out = BufWriter::new(File::create(&path).unwrap());
    index.write_to(&mut out).unwrap();
    drop(out);
    let first = std::fs::read(&path).unwrap();

    let loaded = UsiIndex::read_from(&mut first.as_slice()).unwrap();
    let mut second = Vec::new();
    loaded.write_to(&mut second).unwrap();
    assert_eq!(first, second);
}
