//! Useful String Indexing (USI) — the core of the reproduction of
//! Bernardini et al., *Indexing Strings with Utilities*, ICDE 2025.
//!
//! Given a weighted string `(S, w)` and a global utility function
//! `U ∈ 𝒰`, the [`UsiIndex`] answers `U(P)` queries in `O(m + τ_K)`
//! using `O(n + K)` space (Theorem 1):
//!
//! * the global utilities of the **top-K frequent substrings** are
//!   precomputed into a hash table keyed by Karp–Rabin fingerprints
//!   (query `O(m)`);
//! * every other pattern is located in the suffix array and aggregated on
//!   the fly through the prefix-sum array `PSW` (query `O(m + τ_K)`).
//!
//! Module map:
//!
//! * [`topk`] — shared top-K substring representations;
//! * [`oracle`] — the linear-space data structure of Section V (arrays
//!   `T`, `Q`, `L`) powering Exact-Top-K and parameter tuning;
//! * [`approx`] — the space-efficient Approximate-Top-K sampler of
//!   Section VI;
//! * [`index`] / [`builder`] — the `USI_TOP-K` data structure of
//!   Section IV;
//! * [`metrics`] — Accuracy, Relative Error and NDCG (Section IX-B);
//! * [`dynamic`] — an append-only dynamic variant (Section X);
//! * [`merge`] — the shared semantics for combining per-part answers
//!   (the server's cross-document fan-out, the ingestion layer's
//!   per-segment results);
//! * [`storage`] / [`persist`] — the byte-stable `.usix` format and the
//!   zero-copy (memory-mapped) storage views behind
//!   [`persist::open_mmap`];
//! * [`engine`] — the [`QueryEngine`] trait every backend (frozen,
//!   dynamic, segmented-ingest) implements, so consumers dispatch
//!   without knowing the concrete type.

pub mod approx;
pub mod builder;
pub mod dynamic;
pub mod engine;
pub mod index;
pub mod merge;
pub mod metrics;
pub mod oracle;
pub mod persist;
pub mod storage;
pub mod topk;

pub use approx::{approximate_top_k, ApproxConfig, ApproxResult};
pub use builder::{BuildOptions, TopKStrategy, UsiBuilder};
pub use dynamic::DynamicUsi;
pub use engine::QueryEngine;
pub use index::{BuildStats, QuerySource, UsiIndex, UsiQuery};
pub use merge::{merge_accumulators, merged_total};
pub use oracle::{exact_top_k, TopKOracle, TradeoffPoint, TuneForK, TuneForTau};
pub use persist::{open_mmap, PersistError};
pub use storage::{IndexStorage, SaRef, WeightsRef};
pub use topk::{SubstringRef, TopKEstimate, TopKSubstring};
