//! The unified query surface every index backend speaks.
//!
//! The serving layer used to be hard-wired to concrete types — a
//! `match` per call site over frozen [`UsiIndex`]es and live ingestion
//! pipelines. [`QueryEngine`] is the seam that replaces those matches:
//! anything that can answer `U(P)` queries over a weighted string
//! implements it, and consumers (the server's `Doc`, the CLI, tests)
//! dispatch through `&dyn QueryEngine` without caring whether the
//! answers come from owned heap structures, a memory-mapped `.usix`
//! view, an epoch-rebuilding [`crate::DynamicUsi`], or a segmented
//! ingestion index.
//!
//! Implementations in this workspace:
//!
//! * [`UsiIndex`] — the frozen index, either backing;
//! * [`crate::DynamicUsi`] — append-only with epoch rebuilds;
//! * `usi_ingest::IngestIndex` / `usi_ingest::IngestPipeline` — the
//!   segmented append log (the pipeline locks internally, so it
//!   implements the trait directly on `&self`).

use crate::index::{IndexSize, QuerySource, UsiIndex, UsiQuery};
use usi_strings::{GlobalUtility, UtilityAccumulator};

/// A queryable utility index over one weighted string.
///
/// Batch methods have pattern-order answers identical to looping the
/// single-pattern calls; implementations override them only to amortise
/// per-query setup. The accumulator variants return raw
/// [`UtilityAccumulator`]s so multi-part callers (cross-document
/// fan-out, cross-segment stitching) can merge occurrences before
/// extracting an aggregate through [`crate::merge`].
pub trait QueryEngine {
    /// Answers the global utility `U(P)` of `pattern`.
    fn query(&self, pattern: &[u8]) -> UsiQuery;

    /// Like [`QueryEngine::query`], but returns the raw accumulator.
    fn query_accumulator(&self, pattern: &[u8]) -> (UtilityAccumulator, QuerySource);

    /// Answers a batch of queries, one [`UsiQuery`] per pattern in
    /// order.
    fn query_batch(&self, patterns: &[&[u8]]) -> Vec<UsiQuery> {
        patterns.iter().map(|p| self.query(p)).collect()
    }

    /// Batch variant of [`QueryEngine::query_accumulator`].
    fn query_accumulator_batch(
        &self,
        patterns: &[&[u8]],
    ) -> Vec<(UtilityAccumulator, QuerySource)> {
        patterns.iter().map(|p| self.query_accumulator(p)).collect()
    }

    /// The configured global utility function.
    fn utility(&self) -> GlobalUtility;

    /// Total indexed letters.
    fn indexed_len(&self) -> usize;

    /// Distinct substrings with precomputed utilities (summed over
    /// components for segmented backends).
    fn cached_substrings(&self) -> usize;

    /// Size breakdown of the backing structures.
    fn size_breakdown(&self) -> IndexSize;
}

impl QueryEngine for UsiIndex {
    fn query(&self, pattern: &[u8]) -> UsiQuery {
        UsiIndex::query(self, pattern)
    }

    fn query_accumulator(&self, pattern: &[u8]) -> (UtilityAccumulator, QuerySource) {
        UsiIndex::query_accumulator(self, pattern)
    }

    fn query_batch(&self, patterns: &[&[u8]]) -> Vec<UsiQuery> {
        UsiIndex::query_batch(self, patterns)
    }

    fn query_accumulator_batch(
        &self,
        patterns: &[&[u8]],
    ) -> Vec<(UtilityAccumulator, QuerySource)> {
        UsiIndex::query_accumulator_batch(self, patterns)
    }

    fn utility(&self) -> GlobalUtility {
        UsiIndex::utility(self)
    }

    fn indexed_len(&self) -> usize {
        self.text().len()
    }

    fn cached_substrings(&self) -> usize {
        UsiIndex::cached_substrings(self)
    }

    fn size_breakdown(&self) -> IndexSize {
        UsiIndex::size_breakdown(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::UsiBuilder;
    use usi_strings::WeightedString;

    #[test]
    fn dyn_dispatch_matches_inherent_calls() {
        let ws = WeightedString::uniform(b"abracadabra".to_vec(), 1.0);
        let index = UsiBuilder::new().with_k(5).deterministic(9).build(ws);
        let engine: &dyn QueryEngine = &index;
        assert_eq!(engine.query(b"abra"), index.query(b"abra"));
        assert_eq!(engine.indexed_len(), 11);
        assert_eq!(engine.cached_substrings(), index.cached_substrings());
        assert_eq!(engine.utility().aggregator, index.utility().aggregator);
        let patterns: Vec<&[u8]> = vec![b"a", b"abra", b"zz"];
        assert_eq!(engine.query_batch(&patterns), index.query_batch(&patterns));
        let (acc, source) = engine.query_accumulator(b"bra");
        let (want_acc, want_source) = index.query_accumulator(b"bra");
        assert_eq!(acc.to_raw(), want_acc.to_raw());
        assert_eq!(source, want_source);
        assert_eq!(engine.size_breakdown().total(), index.size_breakdown().total());
    }
}
