//! Shared representations of top-K frequent substrings.
//!
//! The paper uses two encodings:
//!
//! * `⟨lcp, lb, rb⟩` triplets — a substring length plus the suffix-array
//!   interval of all its occurrences ([`TopKSubstring`]; output of
//!   Exact-Top-K, input of the `USI_TOP-K` construction);
//! * `⟨j, ℓ, f⟩` tuples — a *witness occurrence* `S[j .. j+ℓ)` plus an
//!   estimated frequency ([`TopKEstimate`]; output of Approximate-Top-K
//!   and the streaming baselines, where full occurrence lists are
//!   unavailable).

use usi_strings::FxHashMap;

/// Groups exact triplets by substring length and returns the sorted
/// distinct lengths alongside the groups. A length group is the unit of
/// work of a phase-(ii) sliding-window pass, and — because the hash-table
/// key embeds the length — the unit of sharding for the parallel
/// populate path: every group writes a key-disjoint part of `H`.
pub fn group_by_length(items: &[TopKSubstring]) -> (Vec<u32>, FxHashMap<u32, Vec<&TopKSubstring>>) {
    let mut by_len: FxHashMap<u32, Vec<&TopKSubstring>> = FxHashMap::default();
    for item in items {
        by_len.entry(item.len).or_default().push(item);
    }
    let mut lengths: Vec<u32> = by_len.keys().copied().collect();
    lengths.sort_unstable();
    (lengths, by_len)
}

/// A top-K frequent substring as a suffix-array interval triplet
/// `⟨lcp, lb, rb⟩` (paper, Section V, Task (i)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TopKSubstring {
    /// Substring length (`lcp` in the paper's triplet).
    pub len: u32,
    /// Left boundary of the SA interval (inclusive).
    pub lb: u32,
    /// Right boundary of the SA interval (inclusive).
    pub rb: u32,
}

impl TopKSubstring {
    /// Exact frequency: the SA interval size.
    #[inline]
    pub fn freq(&self) -> u32 {
        self.rb - self.lb + 1
    }

    /// Materialises the substring bytes using the suffix array and text:
    /// `S[SA[lb] .. SA[lb] + len)`.
    pub fn bytes<'t>(&self, text: &'t [u8], sa: &[u32]) -> &'t [u8] {
        let start = sa[self.lb as usize] as usize;
        &text[start..start + self.len as usize]
    }

    /// Witness form (first occurrence in SA order).
    pub fn to_estimate(&self, sa: &[u32]) -> TopKEstimate {
        TopKEstimate { witness: sa[self.lb as usize], len: self.len, freq: self.freq() as u64 }
    }
}

/// A top-K frequent substring as a witness tuple `⟨j, ℓ, f⟩` (paper,
/// Section VI): `S[j .. j+ℓ)` with (possibly estimated) frequency `f`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TopKEstimate {
    /// A position where the substring occurs.
    pub witness: u32,
    /// Substring length `ℓ`.
    pub len: u32,
    /// Reported frequency (a lower bound for Approximate-Top-K).
    pub freq: u64,
}

impl TopKEstimate {
    /// Materialises the substring bytes.
    pub fn bytes<'t>(&self, text: &'t [u8]) -> &'t [u8] {
        let j = self.witness as usize;
        &text[j..j + self.len as usize]
    }
}

/// A reported substring from any miner, for the effectiveness metrics:
/// either a witness into the indexed text or owned bytes (streaming
/// baselines that spell strings out of their own state).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubstringRef {
    /// `S[pos .. pos + len)` of the indexed text.
    Witness {
        /// Start position in the text.
        pos: u32,
        /// Length.
        len: u32,
    },
    /// An explicit byte string.
    Owned(Vec<u8>),
}

impl SubstringRef {
    /// Resolves to bytes against `text`.
    pub fn resolve<'a>(&'a self, text: &'a [u8]) -> &'a [u8] {
        match self {
            Self::Witness { pos, len } => &text[*pos as usize..(*pos + *len) as usize],
            Self::Owned(b) => b,
        }
    }

    /// Length of the referenced substring.
    pub fn len(&self) -> usize {
        match self {
            Self::Witness { len, .. } => *len as usize,
            Self::Owned(b) => b.len(),
        }
    }

    /// Whether the referenced substring is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use usi_suffix::suffix_array;

    #[test]
    fn substring_materialisation() {
        let text = b"banana";
        let sa = suffix_array(text);
        // "ana" occupies SA ranks 1..=2 ("anana","ana" sorted: a, ana, anana...)
        // ranks: 0:"a"(5) 1:"ana"(3) 2:"anana"(1) 3:"banana"(0) 4:"na"(4) 5:"nana"(2)
        let s = TopKSubstring { len: 3, lb: 1, rb: 2 };
        assert_eq!(s.freq(), 2);
        assert_eq!(s.bytes(text, &sa), b"ana");
        let est = s.to_estimate(&sa);
        assert_eq!(est.bytes(text), b"ana");
        assert_eq!(est.freq, 2);
    }

    #[test]
    fn substring_ref_resolution() {
        let text = b"abcdef";
        let w = SubstringRef::Witness { pos: 2, len: 3 };
        assert_eq!(w.resolve(text), b"cde");
        assert_eq!(w.len(), 3);
        let o = SubstringRef::Owned(b"xyz".to_vec());
        assert_eq!(o.resolve(text), b"xyz");
        assert!(!o.is_empty());
    }
}
