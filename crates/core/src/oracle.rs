//! The linear-space top-K oracle (paper, Section V).
//!
//! One structure serves three tasks:
//!
//! * **Task (i)** — list the top-K frequent substrings as `⟨lcp, lb, rb⟩`
//!   triplets (`Exact-Top-K`, Theorem 2: `O(n + K)` after construction);
//! * **Task (ii)** — given `K`, report `τ_K` (minimum top-K frequency —
//!   the query-time bound of `USI_TOP-K`) and `L_K` (number of distinct
//!   top-K lengths — the construction-time factor);
//! * **Task (iii)** — given `τ`, report `K_τ` (number of `τ`-frequent
//!   substrings — the space bound) and `L_τ`.
//!
//! The structure is the array `T` of suffix-tree node triplets
//! `⟨v, f(v), q(v)⟩` sorted by decreasing frequency (ties: shorter string
//! depth first), with two parallel prefix arrays: `Q` (cumulative distinct
//! substring counts) and `L` (cumulative distinct lengths). Because every
//! node's ancestors have strictly larger frequency and therefore precede
//! it in `T`, the lengths covered by a prefix of `T` are exactly
//! `1 ..= max string depth`, so `L` is the running maximum of depths —
//! the paper's counter `c` / maximum `M` bookkeeping.

use crate::topk::TopKSubstring;
use usi_strings::HeapSize;
use usi_suffix::{lcp_array, lcp_intervals, suffix_array, LcpInterval};

/// One entry of the array `T`: an explicit suffix-tree node with its
/// frequency, string depth, parent string depth and SA interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OracleEntry {
    /// Frequency `f(v)` = size of the SA interval.
    pub freq: u32,
    /// String depth `sd(v)`.
    pub depth: u32,
    /// String depth of the parent, so `q(v) = depth − parent_depth`.
    pub parent_depth: u32,
    /// SA interval left boundary (inclusive).
    pub lb: u32,
    /// SA interval right boundary (inclusive).
    pub rb: u32,
}

impl OracleEntry {
    /// Edge letter count `q(v)`: distinct substrings this entry holds.
    #[inline]
    pub fn q(&self) -> u32 {
        self.depth - self.parent_depth
    }
}

/// Result of Task (ii): parameters implied by a choice of `K`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TuneForK {
    /// `τ_K`: smallest frequency among the top-K substrings. Queries run
    /// in `O(m + τ_K)`.
    pub tau: u32,
    /// `L_K`: number of distinct lengths among the top-K substrings.
    /// Construction runs in `O(n · L_K)`.
    pub distinct_lengths: u32,
}

/// Result of Task (iii): parameters implied by a choice of `τ`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TuneForTau {
    /// `K_τ`: number of substrings with frequency ≥ τ. The hash table
    /// stores `K_τ` entries.
    pub k: u64,
    /// `L_τ`: number of distinct lengths among those substrings.
    pub distinct_lengths: u32,
}

/// The Section-V data structure: `T`, `Q` and `L`.
#[derive(Debug, Clone)]
pub struct TopKOracle {
    /// `T`: nodes sorted by (frequency desc, string depth asc).
    entries: Vec<OracleEntry>,
    /// `Q[i]`: Σ q(v) over `entries[..=i]`.
    cum_q: Vec<u64>,
    /// `L[i]`: distinct lengths covered by `entries[..=i]` (running max depth).
    cum_l: Vec<u32>,
}

impl TopKOracle {
    /// Builds the oracle from a text's suffix and LCP arrays. `O(n)`.
    pub fn new(text_len: usize, sa: &[u32], lcp: &[u32]) -> Self {
        Self::new_threads(text_len, sa, lcp, 1)
    }

    /// [`TopKOracle::new`] with the radix-sort counting phases fanned
    /// over up to `threads` scoped workers (the lcp-interval enumeration
    /// is a sequential stack sweep and stays serial). The resulting
    /// oracle is identical to the single-threaded one.
    pub fn new_threads(text_len: usize, sa: &[u32], lcp: &[u32], threads: usize) -> Self {
        let nodes = lcp_intervals(lcp, |i| (text_len - sa[i] as usize) as u32, true);
        Self::from_nodes_threads(nodes, text_len, threads)
    }

    /// Builds SA and LCP internally, then the oracle.
    pub fn from_text(text: &[u8]) -> (Self, Vec<u32>) {
        let sa = suffix_array(text);
        let lcp = lcp_array(text, &sa);
        let oracle = Self::new(text.len(), &sa, &lcp);
        (oracle, sa)
    }

    /// Builds from pre-enumerated suffix-tree nodes (shared with the
    /// sparse per-round accounting of Approximate-Top-K). `max_freq`
    /// bounds frequencies for the radix sort (`n` for a full text).
    pub fn from_nodes(nodes: Vec<LcpInterval>, max_freq: usize) -> Self {
        Self::from_nodes_threads(nodes, max_freq, 1)
    }

    /// [`TopKOracle::from_nodes`] with parallel radix counting phases.
    pub fn from_nodes_threads(
        mut nodes: Vec<LcpInterval>,
        max_freq: usize,
        threads: usize,
    ) -> Self {
        radix_sort_nodes(&mut nodes, max_freq, threads);
        let entries: Vec<OracleEntry> = nodes
            .iter()
            .map(|n| OracleEntry {
                freq: n.freq(),
                depth: n.depth,
                parent_depth: n.parent_depth,
                lb: n.lb,
                rb: n.rb,
            })
            .collect();
        let mut cum_q = Vec::with_capacity(entries.len());
        let mut cum_l = Vec::with_capacity(entries.len());
        let mut q_acc = 0u64;
        let mut max_depth = 0u32;
        for e in &entries {
            q_acc += e.q() as u64;
            max_depth = max_depth.max(e.depth);
            cum_q.push(q_acc);
            cum_l.push(max_depth);
        }
        Self { entries, cum_q, cum_l }
    }

    /// The sorted node array `T`.
    pub fn entries(&self) -> &[OracleEntry] {
        &self.entries
    }

    /// Total number of distinct substrings of the text.
    pub fn total_distinct_substrings(&self) -> u64 {
        self.cum_q.last().copied().unwrap_or(0)
    }

    /// **Task (i)**: the top-`k` frequent substrings as SA-interval
    /// triplets, ties broken by shorter length first. `O(k)` after the
    /// `O(n)` construction (Theorem 2). Returns fewer than `k` items only
    /// when the text has fewer distinct substrings.
    pub fn top_k(&self, k: usize) -> Vec<TopKSubstring> {
        let mut out = Vec::with_capacity(k.min(self.total_distinct_substrings() as usize));
        'outer: for e in &self.entries {
            for len in (e.parent_depth + 1)..=e.depth {
                if out.len() == k {
                    break 'outer;
                }
                out.push(TopKSubstring { len, lb: e.lb, rb: e.rb });
            }
        }
        out
    }

    /// **Task (ii)**: `(τ_K, L_K)` for a given `K`, by binary search in
    /// `Q`. `O(log n)`. `K` is clamped to the number of distinct
    /// substrings; `K = 0` or an empty text yields `None`.
    pub fn tune_for_k(&self, k: u64) -> Option<TuneForK> {
        if k == 0 || self.entries.is_empty() {
            return None;
        }
        let k = k.min(self.total_distinct_substrings());
        // smallest i with Q[i] ≥ k
        let i = self.cum_q.partition_point(|&q| q < k);
        // The paper reports L[i]; when K cuts entry i mid-edge that is an
        // upper bound. Since Task (i) lists shorter edge lengths first and
        // ancestors (covering lengths 1..=parent_depth) precede entry i,
        // the exact distinct-length count of the listed set is
        // max(L[i−1], parent_depth + consumed).
        let (prev_q, prev_l) = if i == 0 { (0, 0) } else { (self.cum_q[i - 1], self.cum_l[i - 1]) };
        let consumed = (k - prev_q) as u32;
        let e = &self.entries[i];
        Some(TuneForK { tau: e.freq, distinct_lengths: prev_l.max(e.parent_depth + consumed) })
    }

    /// **Task (iii)**: `(K_τ, L_τ)` for a given `τ`, by binary search in
    /// the frequencies of `T`. `O(log n)`. A `τ` above the maximum
    /// frequency yields `K_τ = 0`.
    pub fn tune_for_tau(&self, tau: u32) -> TuneForTau {
        // entries are sorted by freq desc: find the largest i with freq ≥ τ
        let end = self.entries.partition_point(|e| e.freq >= tau);
        if end == 0 {
            return TuneForTau { k: 0, distinct_lengths: 0 };
        }
        TuneForTau { k: self.cum_q[end - 1], distinct_lengths: self.cum_l[end - 1] }
    }

    /// The complete space/time trade-off curve (the paper's Section-X
    /// suggestion: "produce a large number of (K, τ) values efficiently
    /// … to select a good trade-off" with a skyline operator).
    ///
    /// Returns one point per *distinct frequency* in `T` — the only
    /// places the trade-off changes: caching `K_τ` substrings yields
    /// query bound `τ` and construction factor `L_τ`. Points are emitted
    /// in decreasing-`τ` (increasing-`K`) order and form a Pareto
    /// frontier by construction: `K` strictly grows while `τ` strictly
    /// falls. `O(n)` time.
    pub fn tradeoff_curve(&self) -> Vec<TradeoffPoint> {
        let mut out = Vec::new();
        let mut i = 0usize;
        while i < self.entries.len() {
            let freq = self.entries[i].freq;
            // advance to the last entry with this frequency
            let mut j = i;
            while j + 1 < self.entries.len() && self.entries[j + 1].freq == freq {
                j += 1;
            }
            out.push(TradeoffPoint {
                tau: freq,
                k: self.cum_q[j],
                distinct_lengths: self.cum_l[j],
            });
            i = j + 1;
        }
        out
    }

    /// Picks the trade-off point that minimises a weighted cost
    /// `query_weight · τ + space_weight · K` over the skyline, modelling
    /// the simplest "good trade-off" selection on top of
    /// [`TopKOracle::tradeoff_curve`]. Returns `None` on an empty text.
    pub fn select_tradeoff(&self, query_weight: f64, space_weight: f64) -> Option<TradeoffPoint> {
        self.tradeoff_curve().into_iter().min_by(|a, b| {
            let cost = |p: &TradeoffPoint| query_weight * p.tau as f64 + space_weight * p.k as f64;
            cost(a).total_cmp(&cost(b))
        })
    }
}

/// One point of the `(K, τ)` trade-off curve: caching the `k` most
/// frequent substrings yields query bound `O(m + τ)` and construction
/// factor `L_K = distinct_lengths`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TradeoffPoint {
    /// Query-time bound `τ` (max fallback occurrences).
    pub tau: u32,
    /// Space: number of cached substrings `K_τ`.
    pub k: u64,
    /// Construction factor `L_τ`.
    pub distinct_lengths: u32,
}

impl HeapSize for TopKOracle {
    fn heap_bytes(&self) -> usize {
        self.entries.capacity() * std::mem::size_of::<OracleEntry>()
            + self.cum_q.heap_bytes()
            + self.cum_l.heap_bytes()
    }
}

/// Below this node count the scoped-thread counting phases cost more
/// than they save.
const PARALLEL_COUNT_MIN: usize = 1 << 14;

/// Stable two-pass radix sort of suffix-tree nodes by
/// (frequency descending, string depth ascending), as the paper's `O(n)`
/// radix sort of `T`. Counting sorts: depth ascending first, then
/// frequency descending (stability preserves the depth order within equal
/// frequencies). With `threads > 1` the histogram of each pass is
/// accumulated blockwise on scoped workers and merged; the stable
/// scatter stays sequential, so the permutation — and hence the oracle —
/// is identical at every thread count.
fn radix_sort_nodes(nodes: &mut [LcpInterval], max_freq: usize, threads: usize) {
    if nodes.len() <= 1 {
        return;
    }
    // Blockwise histogram: `bucket_of` maps a node to its bucket.
    let histogram = |buckets: usize,
                     bucket_of: &(dyn Fn(&LcpInterval) -> usize + Sync),
                     nodes: &[LcpInterval]|
     -> Vec<u32> {
        let mut count = vec![0u32; buckets];
        // Parallel counting only pays off when the per-worker bucket
        // allocations and the serial merge (threads × buckets adds) are
        // small next to the counting itself — on a full-text oracle
        // max_freq ≈ n, so wide-bucket passes must stay serial.
        if threads <= 1
            || nodes.len() < PARALLEL_COUNT_MIN
            || buckets.saturating_mul(threads) >= nodes.len()
        {
            for n in nodes {
                count[bucket_of(n)] += 1;
            }
            return count;
        }
        let chunk = nodes.len().div_ceil(threads);
        let partials: Vec<Vec<u32>> = std::thread::scope(|scope| {
            let handles: Vec<_> = nodes
                .chunks(chunk)
                .map(|block| {
                    scope.spawn(move || {
                        let mut local = vec![0u32; buckets];
                        for n in block {
                            local[bucket_of(n)] += 1;
                        }
                        local
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("histogram worker panicked")).collect()
        });
        for local in partials {
            for (c, l) in count.iter_mut().zip(local) {
                *c += l;
            }
        }
        count
    };
    let max_depth = nodes.iter().map(|n| n.depth).max().unwrap_or(0) as usize;

    // Pass 1: stable counting sort by depth ascending.
    let mut count = histogram(max_depth + 2, &|n| n.depth as usize + 1, nodes);
    for i in 1..count.len() {
        count[i] += count[i - 1];
    }
    let mut tmp = vec![LcpInterval { depth: 0, parent_depth: 0, lb: 0, rb: 0 }; nodes.len()];
    for n in nodes.iter() {
        let slot = &mut count[n.depth as usize];
        tmp[*slot as usize] = *n;
        *slot += 1;
    }

    // Pass 2: stable counting sort by frequency descending.
    // (bucket by max_freq − freq to sort descending)
    let mut count = histogram(max_freq + 2, &|n| max_freq - n.freq() as usize + 1, &tmp);
    for i in 1..count.len() {
        count[i] += count[i - 1];
    }
    for n in &tmp {
        let slot = &mut count[max_freq - n.freq() as usize];
        nodes[*slot as usize] = *n;
        *slot += 1;
    }
}

/// Convenience: Exact-Top-K end to end. Builds SA, LCP and the oracle,
/// then lists the top-`k` triplets. Returns `(triplets, suffix array)`
/// so callers can materialise substrings. `O(n + k)` (Theorem 2).
pub fn exact_top_k(text: &[u8], k: usize) -> (Vec<TopKSubstring>, Vec<u32>) {
    let (oracle, sa) = TopKOracle::from_text(text);
    (oracle.top_k(k), sa)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;
    use usi_suffix::naive::{substring_frequencies_naive, top_k_naive};

    fn freq_multiset(items: &[(Vec<u8>, u32)]) -> Vec<u32> {
        let mut v: Vec<u32> = items.iter().map(|(_, f)| *f).collect();
        v.sort_unstable_by(|a, b| b.cmp(a));
        v
    }

    fn check_top_k(text: &[u8], k: usize) {
        let (got, sa) = exact_top_k(text, k);
        let want = top_k_naive(text, k);
        assert_eq!(got.len(), want.len(), "k={k} text={text:?}");
        // frequency multisets agree (tie-breaks may differ)
        let got_freqs: Vec<u32> = {
            let mut v: Vec<u32> = got.iter().map(|s| s.freq()).collect();
            v.sort_unstable_by(|a, b| b.cmp(a));
            v
        };
        assert_eq!(got_freqs, freq_multiset(&want), "k={k} text={text:?}");
        // every reported substring has its true frequency and no duplicates
        let truth = substring_frequencies_naive(text);
        let mut seen = std::collections::HashSet::new();
        for s in &got {
            let bytes = s.bytes(text, &sa).to_vec();
            assert_eq!(truth[&bytes], s.freq(), "substring {bytes:?}");
            assert!(seen.insert(bytes), "duplicate in top-k output");
        }
    }

    #[test]
    fn top_k_matches_naive() {
        for text in [&b"banana"[..], b"mississippi", b"abab", b"aaaa", b"abcdefgh", b"abracadabra"]
        {
            let total: usize = substring_frequencies_naive(text).len();
            for k in [0usize, 1, 2, 3, 5, 10, total, total + 5] {
                check_top_k(text, k);
            }
        }
    }

    #[test]
    fn tune_for_k_matches_direct_computation() {
        let text = b"abracadabra";
        let (oracle, sa) = TopKOracle::from_text(text);
        let truth = substring_frequencies_naive(text);
        for k in 1..=truth.len() as u64 {
            let t = oracle.tune_for_k(k).unwrap();
            let listed = oracle.top_k(k as usize);
            let min_freq = listed.iter().map(|s| s.freq()).min().unwrap();
            assert_eq!(t.tau, min_freq, "k={k}");
            let mut lens: Vec<u32> = listed.iter().map(|s| s.len).collect();
            lens.sort_unstable();
            lens.dedup();
            assert_eq!(t.distinct_lengths as usize, lens.len(), "k={k}");
            // lengths covered are exactly 1..=max (ancestor-closure property)
            assert_eq!(*lens.last().unwrap() as usize, lens.len());
            let _ = sa;
        }
    }

    #[test]
    fn tune_for_tau_counts_tau_frequent() {
        let text = b"abracadabra";
        let (oracle, _) = TopKOracle::from_text(text);
        let truth = substring_frequencies_naive(text);
        let max_freq = *truth.values().max().unwrap();
        for tau in 1..=(max_freq + 2) {
            let t = oracle.tune_for_tau(tau);
            let want_k = truth.values().filter(|&&f| f >= tau).count() as u64;
            assert_eq!(t.k, want_k, "tau={tau}");
            let want_lengths: std::collections::HashSet<usize> =
                truth.iter().filter(|(_, &f)| f >= tau).map(|(s, _)| s.len()).collect();
            assert_eq!(t.distinct_lengths as usize, want_lengths.len(), "tau={tau}");
        }
    }

    #[test]
    fn tune_roundtrip() {
        // K → τ_K → K_{τ_K} ≥ K (all τ_K-frequent substrings include the top-K)
        let text = b"mississippi";
        let (oracle, _) = TopKOracle::from_text(text);
        for k in 1..=oracle.total_distinct_substrings() {
            let tau = oracle.tune_for_k(k).unwrap().tau;
            let k_tau = oracle.tune_for_tau(tau).k;
            assert!(k_tau >= k, "k={k} tau={tau} k_tau={k_tau}");
        }
    }

    #[test]
    fn degenerate_inputs() {
        let (oracle, _) = TopKOracle::from_text(b"");
        assert_eq!(oracle.total_distinct_substrings(), 0);
        assert!(oracle.tune_for_k(1).is_none());
        assert_eq!(oracle.tune_for_tau(1).k, 0);
        assert!(oracle.top_k(5).is_empty());

        let (oracle, _) = TopKOracle::from_text(b"z");
        assert_eq!(oracle.total_distinct_substrings(), 1);
        assert_eq!(oracle.tune_for_k(1).unwrap(), TuneForK { tau: 1, distinct_lengths: 1 });
        assert!(oracle.tune_for_k(0).is_none());
    }

    #[test]
    fn entries_sorted_freq_desc_depth_asc() {
        let (oracle, _) = TopKOracle::from_text(b"abababab");
        let e = oracle.entries();
        for w in e.windows(2) {
            assert!(
                w[0].freq > w[1].freq || (w[0].freq == w[1].freq && w[0].depth <= w[1].depth),
                "bad order: {:?} then {:?}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn q_sums_to_distinct_substrings() {
        for text in [&b"banana"[..], b"aaaa", b"abcabc"] {
            let (oracle, _) = TopKOracle::from_text(text);
            let truth: HashMap<Vec<u8>, u32> = substring_frequencies_naive(text);
            assert_eq!(oracle.total_distinct_substrings() as usize, truth.len());
        }
    }

    #[test]
    fn tradeoff_curve_is_a_pareto_frontier() {
        let (oracle, _) = TopKOracle::from_text(b"abracadabra_abracadabra");
        let curve = oracle.tradeoff_curve();
        assert!(!curve.is_empty());
        // strictly decreasing tau, strictly increasing K, consistent with
        // the point tasks
        for w in curve.windows(2) {
            assert!(w[0].tau > w[1].tau);
            assert!(w[0].k < w[1].k);
            assert!(w[0].distinct_lengths <= w[1].distinct_lengths);
        }
        for p in &curve {
            let t = oracle.tune_for_tau(p.tau);
            assert_eq!(t.k, p.k);
            assert_eq!(t.distinct_lengths, p.distinct_lengths);
        }
        // the last point covers every distinct substring (tau = 1)
        assert_eq!(curve.last().unwrap().tau, 1);
        assert_eq!(curve.last().unwrap().k, oracle.total_distinct_substrings());
    }

    #[test]
    fn select_tradeoff_follows_weights() {
        let (oracle, _) = TopKOracle::from_text(b"banana_banana_banana");
        // all weight on queries: minimise tau (pick the tau = 1 extreme)
        let q = oracle.select_tradeoff(1.0, 0.0).unwrap();
        assert_eq!(q.tau, 1);
        // all weight on space: minimise K (pick the smallest-K extreme)
        let s = oracle.select_tradeoff(0.0, 1.0).unwrap();
        assert_eq!(s.k, oracle.tradeoff_curve()[0].k);
        // mixed weights minimise the weighted cost over the whole curve
        let m = oracle.select_tradeoff(1.0, 1.0).unwrap();
        let cost = |p: &TradeoffPoint| p.tau as f64 + p.k as f64;
        for p in &oracle.tradeoff_curve() {
            assert!(cost(&m) <= cost(p), "{m:?} costlier than {p:?}");
        }
    }

    #[test]
    fn unary_text_oracle() {
        // "aaaa": substrings a(4) aa(3) aaa(2) aaaa(1)
        let (oracle, sa) = TopKOracle::from_text(b"aaaa");
        let top = oracle.top_k(3);
        let texts: Vec<&[u8]> = top.iter().map(|s| s.bytes(b"aaaa", &sa)).collect();
        assert_eq!(texts, vec![&b"a"[..], b"aa", b"aaa"]);
        assert_eq!(oracle.tune_for_k(2).unwrap().tau, 3);
        assert_eq!(oracle.tune_for_tau(2).k, 3);
    }
}
