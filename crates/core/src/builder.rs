//! Builder for the `USI_TOP-K` index.
//!
//! Wires up the three construction phases of Section IV with either the
//! exact Section-V oracle (`UET` in the paper's experiments) or the
//! space-efficient Section-VI sampler (`UAT`), and resolves the space /
//! query-time trade-off from a user-supplied `K` or `τ` via the oracle's
//! tuning tasks.

use crate::approx::{approximate_top_k, ApproxConfig};
use crate::index::{BuildStats, UsiIndex};
use crate::oracle::TopKOracle;
use crate::topk::TopKEstimate;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;
use usi_strings::{Fingerprinter, GlobalAggregator, GlobalUtility, LocalWindow, WeightedString};
use usi_suffix::{lcp_array_threads, suffix_array_threads, LceBackend};

/// Build-time execution options, orthogonal to the indexing parameters
/// (`K`/`τ`, strategy, utility): how the construction runs rather than
/// what it builds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BuildOptions {
    /// Worker threads for construction (1 = fully sequential, the
    /// default). Parallelises the suffix-array and LCP builds, the
    /// oracle's radix phases and the phase-(ii) sliding-window passes
    /// over `std::thread::scope` workers. **The output is byte-identical
    /// to a single-threaded build for every thread count** — the CI
    /// determinism gate `cmp`s the resulting `.usix` files.
    pub threads: usize,
}

impl Default for BuildOptions {
    fn default() -> Self {
        Self { threads: 1 }
    }
}

/// How phase (i) obtains the top-K frequent substrings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopKStrategy {
    /// `Exact-Top-K` via the Section-V oracle (paper: `UET`).
    Exact,
    /// `Approximate-Top-K` with `rounds` sampling rounds and the given
    /// LCE backend (paper: `UAT`).
    Approximate {
        /// Number of sampling rounds `s`.
        rounds: usize,
        /// LCE oracle backend.
        lce: LceBackend,
    },
}

/// Parameter controlling the size / query-time trade-off.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SizeParam {
    /// Fixed number of cached substrings.
    K(usize),
    /// Minimum cached frequency; `K_τ` resolved by the oracle (Task iii).
    Tau(u32),
    /// The paper's practical default `K = n / 100`.
    Default,
}

/// Fluent builder for [`UsiIndex`].
///
/// ```
/// use usi_core::UsiBuilder;
/// use usi_strings::WeightedString;
/// let ws = WeightedString::uniform(b"abracadabra".repeat(20), 1.0);
/// let index = UsiBuilder::new().with_k(10).deterministic(42).build(ws);
/// let q = index.query(b"abra");
/// assert_eq!(q.occurrences, 40);
/// ```
#[derive(Debug, Clone)]
pub struct UsiBuilder {
    size: SizeParam,
    strategy: TopKStrategy,
    aggregator: GlobalAggregator,
    local: LocalWindow,
    /// Execution options (thread count).
    options: BuildOptions,
    /// `Some(seed)` → deterministic fingerprints; `None` → thread RNG.
    seed: Option<u64>,
}

impl Default for UsiBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl UsiBuilder {
    /// A builder with the paper's defaults: exact top-K mining,
    /// `K = n / 100`, sum-of-sums utility, random fingerprint base.
    pub fn new() -> Self {
        Self {
            size: SizeParam::Default,
            strategy: TopKStrategy::Exact,
            aggregator: GlobalAggregator::Sum,
            local: LocalWindow::Sum,
            options: BuildOptions::default(),
            seed: None,
        }
    }

    /// Caches the top-`k` frequent substrings.
    pub fn with_k(mut self, k: usize) -> Self {
        self.size = SizeParam::K(k);
        self
    }

    /// Caches every substring with frequency ≥ `tau` (Task (iii) resolves
    /// the implied `K_τ`).
    pub fn with_tau(mut self, tau: u32) -> Self {
        self.size = SizeParam::Tau(tau);
        self
    }

    /// Selects the mining strategy for phase (i).
    pub fn with_strategy(mut self, strategy: TopKStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Selects the global aggregate of the utility function.
    pub fn with_aggregator(mut self, aggregator: GlobalAggregator) -> Self {
        self.aggregator = aggregator;
        self
    }

    /// Selects the local (per-occurrence) window function. `Product`
    /// locals require strictly positive weights and, combined with the
    /// `Sum` aggregate, answer *expected frequency* queries.
    pub fn with_local_window(mut self, local: LocalWindow) -> Self {
        self.local = local;
        self
    }

    /// Makes fingerprints (and hence the index) deterministic.
    pub fn deterministic(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Sets the execution options wholesale.
    pub fn with_options(mut self, options: BuildOptions) -> Self {
        self.options = BuildOptions { threads: options.threads.max(1) };
        self
    }

    /// Runs construction with up to `threads` workers: the suffix-array
    /// and LCP builds, the oracle's radix phases and the `L_K`
    /// phase-(ii) length passes all fan out over a scoped pool. Output
    /// is byte-identical to a sequential build.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.options.threads = threads.max(1);
        self
    }

    /// Builds the index over `ws`, running all three phases with up to
    /// [`BuildOptions::threads`] workers.
    pub fn build(&self, ws: WeightedString) -> UsiIndex {
        let build_started = Instant::now();
        let n = ws.len();
        let threads = self.options.threads;
        let fingerprinter = match self.seed {
            Some(seed) => Fingerprinter::new(&mut StdRng::seed_from_u64(seed)),
            None => Fingerprinter::new(&mut rand::thread_rng()),
        };
        let utility = GlobalUtility::with_parts(self.aggregator, self.local);

        // Phase (iii) structures first: SA is shared by phase (i), and
        // PSW is needed by phase (ii)'s sliding window.
        let t0 = Instant::now();
        let sa = suffix_array_threads(ws.text(), threads);
        let psw = utility.local_index(ws.weights());
        let phase_index = t0.elapsed();

        // Resolve K.
        let t1 = Instant::now();
        let need_oracle =
            matches!(self.strategy, TopKStrategy::Exact) || matches!(self.size, SizeParam::Tau(_));
        let oracle = if need_oracle {
            let lcp = lcp_array_threads(ws.text(), &sa, threads);
            Some(TopKOracle::new_threads(n, &sa, &lcp, threads))
        } else {
            None
        };
        let k = match self.size {
            SizeParam::K(k) => k,
            SizeParam::Default => (n / 100).max(1),
            SizeParam::Tau(tau) => {
                oracle.as_ref().expect("oracle built for tau resolution").tune_for_tau(tau).k
                    as usize
            }
        };

        // Phase (i): mine the top-K frequent substrings.
        let mut stats = BuildStats { n, k_requested: k, ..BuildStats::default() };
        let mined = match self.strategy {
            TopKStrategy::Exact => {
                let oracle = oracle.as_ref().expect("oracle built for exact strategy");
                let items = oracle.top_k(k);
                stats.tau = items.iter().map(|s| s.freq()).min();
                Mined::Triplets(items)
            }
            TopKStrategy::Approximate { rounds, lce } => {
                let cfg = ApproxConfig {
                    k,
                    rounds,
                    lce,
                    fingerprint_base: self.seed.unwrap_or(0x5eed_cafe),
                };
                let res = approximate_top_k(ws.text(), &cfg);
                stats.miner_peak_bytes = res.peak_tracked_bytes;
                Mined::Estimates(res.items)
            }
        };
        stats.phase_topk = t1.elapsed();

        // Phase (ii): populate H with one sliding-window pass per length.
        let t2 = Instant::now();
        let (h, distinct_lengths) = match &mined {
            Mined::Triplets(items) if threads > 1 => UsiIndex::populate_from_triplets_parallel(
                ws.text(),
                &sa,
                &psw,
                &fingerprinter,
                items,
                threads,
            ),
            Mined::Triplets(items) => {
                UsiIndex::populate_from_triplets(ws.text(), &sa, &psw, &fingerprinter, items)
            }
            Mined::Estimates(items) => {
                UsiIndex::populate_from_estimates(ws.text(), &psw, &fingerprinter, items)
            }
        };
        stats.phase_populate = t2.elapsed();
        stats.phase_index = phase_index;
        stats.k_stored = h.len();
        stats.distinct_lengths = distinct_lengths;

        let index = UsiIndex::from_parts(ws, sa, psw, fingerprinter, utility, h, stats);
        // cold path: one registry lookup and one observation per build
        usi_obs::global()
            .histogram(
                "usi_index_build_seconds",
                "End-to-end UsiBuilder::build wall-clock time",
                usi_obs::default_latency_buckets(),
            )
            .observe_duration(build_started.elapsed());
        usi_obs::tracer().record(usi_obs::Span::since(
            "index.build",
            build_started,
            vec![("n".into(), n.to_string()), ("k".into(), index.cached_substrings().to_string())],
        ));
        index
    }
}

enum Mined {
    Triplets(Vec<crate::topk::TopKSubstring>),
    Estimates(Vec<TopKEstimate>),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::QuerySource;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_ws(seed: u64, n: usize, sigma: u8) -> WeightedString {
        let mut rng = StdRng::seed_from_u64(seed);
        let text: Vec<u8> = (0..n).map(|_| b'a' + rng.gen_range(0..sigma)).collect();
        let weights: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..2.0)).collect();
        WeightedString::new(text, weights).unwrap()
    }

    fn check_against_brute_force(index: &UsiIndex, patterns: &[Vec<u8>]) {
        let u = index.utility();
        for pat in patterns {
            let want = u.brute_force(index.weighted_string().expect("built index is owned"), pat);
            let got = index.query(pat);
            assert_eq!(got.occurrences, want.count(), "pattern {pat:?}");
            match (got.value, want.finish(u.aggregator)) {
                (Some(a), Some(b)) => {
                    assert!((a - b).abs() < 1e-6 * (1.0 + b.abs()), "pattern {pat:?}: {a} vs {b}")
                }
                (a, b) => assert_eq!(a, b, "pattern {pat:?}"),
            }
        }
    }

    fn all_short_substrings(text: &[u8], max_len: usize) -> Vec<Vec<u8>> {
        let mut out = std::collections::HashSet::new();
        for i in 0..text.len() {
            for len in 1..=max_len.min(text.len() - i) {
                out.insert(text[i..i + len].to_vec());
            }
        }
        out.into_iter().collect()
    }

    #[test]
    fn exact_index_answers_every_substring() {
        let ws = random_ws(1, 300, 3);
        let patterns = all_short_substrings(ws.text(), 5);
        for k in [1usize, 10, 100] {
            let index = UsiBuilder::new().with_k(k).deterministic(7).build(ws.clone());
            check_against_brute_force(&index, &patterns);
        }
    }

    #[test]
    fn approx_index_answers_every_substring() {
        let ws = random_ws(2, 300, 3);
        let patterns = all_short_substrings(ws.text(), 5);
        let index = UsiBuilder::new()
            .with_k(20)
            .with_strategy(TopKStrategy::Approximate { rounds: 4, lce: LceBackend::Naive })
            .deterministic(7)
            .build(ws);
        check_against_brute_force(&index, &patterns);
    }

    #[test]
    fn absent_patterns_and_edge_lengths() {
        let ws = random_ws(3, 120, 2); // alphabet {a, b}
        let index = UsiBuilder::new().with_k(15).deterministic(9).build(ws.clone());
        let q = index.query(b"zzz");
        assert_eq!(q.occurrences, 0);
        assert_eq!(q.value, Some(0.0)); // sum of no occurrences
        assert_eq!(index.query(b"").occurrences, 0);
        let too_long = vec![b'a'; ws.len() + 1];
        assert_eq!(index.query(&too_long).occurrences, 0);
        // the whole text occurs once
        let full = ws.text().to_vec();
        assert_eq!(index.query(&full).occurrences, 1);
    }

    #[test]
    fn frequent_patterns_hit_the_hash_table() {
        let ws = WeightedString::uniform(b"ab".repeat(100), 1.0);
        let index = UsiBuilder::new().with_k(5).deterministic(3).build(ws);
        // "a" and "ab" are among the most frequent substrings
        assert_eq!(index.query(b"a").source, QuerySource::HashTable);
        assert_eq!(index.query(b"ab").source, QuerySource::HashTable);
        // a rare long pattern goes through the text index
        let rare = b"ab".repeat(90);
        assert_eq!(index.query(&rare).source, QuerySource::TextIndex);
    }

    #[test]
    fn tau_parameterisation_caches_all_tau_frequent() {
        let ws = WeightedString::uniform(b"banana".repeat(10), 1.0);
        let tau = 10u32;
        let index = UsiBuilder::new().with_tau(tau).deterministic(5).build(ws.clone());
        // every substring with frequency ≥ tau must be served from H
        let u = GlobalUtility::sum_of_sums();
        for pat in all_short_substrings(ws.text(), 6) {
            let freq = u.brute_force(&ws, &pat).count();
            if freq >= tau as u64 {
                assert_eq!(
                    index.query(&pat).source,
                    QuerySource::HashTable,
                    "pattern {pat:?} freq {freq}"
                );
            }
        }
    }

    #[test]
    fn aggregators_all_work() {
        use usi_strings::GlobalAggregator::*;
        let ws = random_ws(5, 150, 3);
        let patterns = all_short_substrings(ws.text(), 4);
        for agg in [Sum, Min, Max, Avg, Count] {
            let index = UsiBuilder::new()
                .with_k(20)
                .with_aggregator(agg)
                .deterministic(11)
                .build(ws.clone());
            check_against_brute_force(&index, &patterns);
        }
    }

    #[test]
    fn stats_are_populated() {
        let ws = random_ws(6, 200, 3);
        let index = UsiBuilder::new().with_k(25).deterministic(13).build(ws);
        let stats = index.stats();
        assert_eq!(stats.n, 200);
        assert_eq!(stats.k_requested, 25);
        assert!(stats.k_stored > 0 && stats.k_stored <= 25);
        assert!(stats.tau.is_some());
        assert!(stats.distinct_lengths > 0);
        let size = index.size_breakdown();
        assert!(size.suffix_array >= 200 * 4);
        assert!(size.hash_table > 0);
        assert!(size.total() > 0);
    }

    #[test]
    fn parallel_phase2_equals_sequential() {
        let ws = random_ws(9, 600, 3);
        let seq = UsiBuilder::new().with_k(60).deterministic(19).build(ws.clone());
        let par = UsiBuilder::new().with_k(60).with_threads(4).deterministic(19).build(ws.clone());
        assert_eq!(seq.cached_substrings(), par.cached_substrings());
        for pat in all_short_substrings(ws.text(), 5) {
            let a = seq.query(&pat);
            let b = par.query(&pat);
            assert_eq!(a.occurrences, b.occurrences, "{pat:?}");
            assert_eq!(a.value, b.value, "{pat:?}");
            assert_eq!(a.source, b.source, "{pat:?}");
        }
    }

    #[test]
    fn k_stored_counts_distinct_substrings() {
        // K distinct substrings must create exactly K hash entries
        // (multiple occurrences aggregate into one entry).
        let ws = WeightedString::uniform(b"abcabcabc".to_vec(), 1.0);
        let index = UsiBuilder::new().with_k(4).deterministic(17).build(ws);
        assert_eq!(index.cached_substrings(), 4);
    }
}
