//! Storage-generic, zero-copy backing for persisted indexes.
//!
//! A `.usix` file has a single canonical, byte-stable encoding (see
//! [`crate::persist`]), which makes it directly servable from the bytes
//! on disk: this module provides
//!
//! * [`IndexStorage`] — the backing bytes of a loaded index, either
//!   owned on the heap or memory-mapped from a file through the
//!   std-only [`Mmap`] wrapper (no external crates; the two raw
//!   `mmap`/`munmap` libc calls are declared locally);
//! * typed section views over those bytes: [`SaRef`] (suffix-array
//!   ranks) and [`WeightsRef`] (position weights), which decode
//!   little-endian records per access because the `.usix` sections are
//!   not naturally aligned — plus the internal [`IndexView`] that a
//!   view-backed [`crate::UsiIndex`] carries instead of owned `Vec`s.
//!
//! The payoff: [`crate::persist::open_mmap`] serves queries without
//! copying the text, weights, suffix array or cached-substring table
//! onto the heap, so cold-start time and resident memory scale with
//! the number of corpora served rather than their total size (the `PSW`
//! prefix sums are the one derived structure still computed on load:
//! the format does not store them).

use std::io;
use std::ops::Range;
use std::path::Path;
use std::sync::Arc;
use usi_strings::UtilityAccumulator;
use usi_suffix::SaAccess;

/// Size of one serialised hash-table entry:
/// `u32 len + u64 fp + f64 sum + f64 min + f64 max + u64 count`.
pub const H_ENTRY_BYTES: usize = 4 + 8 + 8 + 8 + 8 + 8;

#[cfg(all(unix, target_pointer_width = "64"))]
mod ffi {
    //! The two libc calls a read-only file mapping needs. Declared
    //! locally because the workspace is std-only (no `libc` crate); std
    //! already links libc on every unix target. `PROT_READ`/
    //! `MAP_PRIVATE` share these values on Linux and the BSDs (macOS
    //! included), and on LP64 targets `off_t` is 64-bit, matching the
    //! `i64` offset below — the `target_pointer_width = "64"` gate
    //! exists exactly for that assumption.
    use std::ffi::{c_int, c_void};

    pub const PROT_READ: c_int = 1;
    pub const MAP_PRIVATE: c_int = 2;
    pub const MAP_FAILED: *mut c_void = usize::MAX as *mut c_void;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }
}

/// A read-only, private memory mapping of a whole file.
///
/// Std-only: the mapping is created with a locally declared `mmap`
/// call and released with `munmap` on drop. The mapping is
/// `MAP_PRIVATE`, so later writes to the file by other processes are
/// not guaranteed to be visible; truncating a mapped file can make
/// page accesses fault (`SIGBUS`), the standard caveat of every mmap
/// consumer — `.usix` files are written once and never modified in
/// place, which is why the format is mmap-safe.
#[cfg(all(unix, target_pointer_width = "64"))]
#[derive(Debug)]
pub struct Mmap {
    ptr: *mut u8,
    len: usize,
}

// SAFETY: the mapping is read-only and private; the raw pointer is
// owned by this struct alone and the pointed-to pages are immutable
// for its whole lifetime, so shared access from any thread is sound.
#[cfg(all(unix, target_pointer_width = "64"))]
unsafe impl Send for Mmap {}
#[cfg(all(unix, target_pointer_width = "64"))]
unsafe impl Sync for Mmap {}

#[cfg(all(unix, target_pointer_width = "64"))]
impl Mmap {
    /// Maps the whole of `file` read-only. An empty file maps to an
    /// empty byte view (POSIX rejects zero-length mappings, so none is
    /// created).
    pub fn map(file: &std::fs::File) -> io::Result<Self> {
        use std::os::unix::io::AsRawFd;
        let len = file.metadata()?.len();
        let len = usize::try_from(len).map_err(|_| {
            io::Error::new(io::ErrorKind::InvalidData, "file exceeds address space")
        })?;
        if len == 0 {
            return Ok(Self { ptr: std::ptr::null_mut(), len: 0 });
        }
        // SAFETY: a fresh read-only private mapping of a file we hold
        // open; the kernel validates the fd, length and protection and
        // reports failure through MAP_FAILED.
        let ptr = unsafe {
            ffi::mmap(
                std::ptr::null_mut(),
                len,
                ffi::PROT_READ,
                ffi::MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr == ffi::MAP_FAILED {
            return Err(io::Error::last_os_error());
        }
        Ok(Self { ptr: ptr.cast(), len })
    }

    /// The mapped bytes.
    pub fn as_bytes(&self) -> &[u8] {
        if self.len == 0 {
            return &[];
        }
        // SAFETY: `ptr` points to a live, page-aligned, `len`-byte
        // read-only mapping owned by `self`; the pages stay mapped
        // until drop.
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }
}

#[cfg(all(unix, target_pointer_width = "64"))]
impl Drop for Mmap {
    fn drop(&mut self) {
        if self.len > 0 {
            // SAFETY: exactly the mapping created in `map`, released
            // once (drop runs once and `map` is the only constructor).
            unsafe {
                ffi::munmap(self.ptr.cast(), self.len);
            }
        }
    }
}

/// The backing bytes of a loaded index: owned heap bytes, or a
/// borrowed file mapping on platforms that support it.
#[derive(Debug)]
pub enum IndexStorage {
    /// The whole file's bytes, owned on the heap (also the fallback on
    /// targets without the mmap wrapper).
    Owned(Vec<u8>),
    /// A memory mapping of the file: the kernel pages sections in on
    /// first touch and can evict them under pressure.
    #[cfg(all(unix, target_pointer_width = "64"))]
    Mapped(Mmap),
}

impl IndexStorage {
    /// Opens `path` with the cheapest available backing: a memory
    /// mapping where the wrapper exists, owned bytes elsewhere.
    pub fn open(path: &Path) -> io::Result<Self> {
        #[cfg(all(unix, target_pointer_width = "64"))]
        {
            let file = std::fs::File::open(path)?;
            Ok(Self::Mapped(Mmap::map(&file)?))
        }
        #[cfg(not(all(unix, target_pointer_width = "64")))]
        {
            Ok(Self::Owned(std::fs::read(path)?))
        }
    }

    /// The stored bytes.
    pub fn bytes(&self) -> &[u8] {
        match self {
            Self::Owned(bytes) => bytes,
            #[cfg(all(unix, target_pointer_width = "64"))]
            Self::Mapped(map) => map.as_bytes(),
        }
    }

    /// Whether the bytes live in a file mapping rather than on the
    /// heap.
    pub fn is_mapped(&self) -> bool {
        match self {
            Self::Owned(_) => false,
            #[cfg(all(unix, target_pointer_width = "64"))]
            Self::Mapped(_) => true,
        }
    }
}

/// Read access to an index's suffix array: a borrowed rank slice for
/// heap-built indexes, or the raw little-endian `u32` section of a
/// storage-backed one (decoded per access — the section offset is not
/// 4-byte aligned in the `.usix` layout, so a `&[u32]` cast would be
/// undefined behaviour).
#[derive(Debug, Clone, Copy)]
pub enum SaRef<'a> {
    /// Ranks owned by the index.
    Ranks(&'a [u32]),
    /// `4 · n` little-endian bytes of a storage section.
    Bytes(&'a [u8]),
}

impl SaRef<'_> {
    /// Number of ranks.
    pub fn len(&self) -> usize {
        match self {
            Self::Ranks(sa) => sa.len(),
            Self::Bytes(b) => b.len() / 4,
        }
    }

    /// Whether the array is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The rank at `i`.
    #[inline]
    pub fn at(&self, i: usize) -> u32 {
        match self {
            Self::Ranks(sa) => sa[i],
            Self::Bytes(b) => {
                u32::from_le_bytes(b[4 * i..4 * i + 4].try_into().expect("4-byte record"))
            }
        }
    }

    /// The ranks in order.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        (0..self.len()).map(|i| self.at(i))
    }
}

impl SaAccess for SaRef<'_> {
    #[inline]
    fn len(&self) -> usize {
        SaRef::len(self)
    }

    #[inline]
    fn at(&self, rank: usize) -> u32 {
        SaRef::at(self, rank)
    }
}

/// Read access to an index's weight array, mirroring [`SaRef`]: a
/// borrowed `&[f64]` for heap-built indexes, the raw little-endian
/// section for storage-backed ones.
#[derive(Debug, Clone, Copy)]
pub enum WeightsRef<'a> {
    /// Weights owned by the index.
    Slice(&'a [f64]),
    /// `8 · n` little-endian bytes of a storage section.
    Bytes(&'a [u8]),
}

impl<'a> From<&'a [f64]> for WeightsRef<'a> {
    fn from(weights: &'a [f64]) -> Self {
        Self::Slice(weights)
    }
}

impl WeightsRef<'_> {
    /// Number of weights.
    pub fn len(&self) -> usize {
        match self {
            Self::Slice(w) => w.len(),
            Self::Bytes(b) => b.len() / 8,
        }
    }

    /// Whether the array is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The weight at `i`.
    #[inline]
    pub fn at(&self, i: usize) -> f64 {
        match self {
            Self::Slice(w) => w[i],
            Self::Bytes(b) => {
                f64::from_le_bytes(b[8 * i..8 * i + 8].try_into().expect("8-byte record"))
            }
        }
    }

    /// The weights in order.
    pub fn iter(&self) -> impl Iterator<Item = f64> + '_ {
        (0..self.len()).map(|i| self.at(i))
    }

    /// Appends `range` of the weights to `out` (the segmented
    /// ingestion layer stitches boundary regions this way).
    pub fn extend_range_into(&self, range: Range<usize>, out: &mut Vec<f64>) {
        match self {
            Self::Slice(w) => out.extend_from_slice(&w[range]),
            Self::Bytes(_) => out.extend(range.map(|i| self.at(i))),
        }
    }

    /// The weights, materialised.
    pub fn to_vec(&self) -> Vec<f64> {
        match self {
            Self::Slice(w) => w.to_vec(),
            Self::Bytes(_) => self.iter().collect(),
        }
    }
}

/// The section map a view-backed [`crate::UsiIndex`] carries: byte
/// ranges into an [`IndexStorage`] instead of owned `Vec`s. Constructed
/// (and validated) only by [`crate::persist`].
#[derive(Debug, Clone)]
pub struct IndexView {
    storage: Arc<IndexStorage>,
    /// Text length `n`.
    n: usize,
    text_off: usize,
    weights_off: usize,
    sa_off: usize,
    h_off: usize,
    h_len: usize,
}

impl IndexView {
    /// Assembles a view over validated offsets. `pub(crate)`: only the
    /// persistence layer, which has just validated the layout, may
    /// build one.
    pub(crate) fn new(
        storage: Arc<IndexStorage>,
        n: usize,
        text_off: usize,
        weights_off: usize,
        sa_off: usize,
        h_off: usize,
        h_len: usize,
    ) -> Self {
        Self { storage, n, text_off, weights_off, sa_off, h_off, h_len }
    }

    /// Whether the backing bytes are a file mapping.
    pub fn is_mapped(&self) -> bool {
        self.storage.is_mapped()
    }

    /// The text section.
    pub fn text(&self) -> &[u8] {
        &self.storage.bytes()[self.text_off..self.text_off + self.n]
    }

    /// The weight section.
    pub fn weights(&self) -> WeightsRef<'_> {
        WeightsRef::Bytes(&self.storage.bytes()[self.weights_off..self.weights_off + 8 * self.n])
    }

    /// The suffix-array section.
    pub fn sa(&self) -> SaRef<'_> {
        SaRef::Bytes(&self.storage.bytes()[self.sa_off..self.sa_off + 4 * self.n])
    }

    /// Number of cached-substring entries.
    pub fn h_len(&self) -> usize {
        self.h_len
    }

    /// The `(length, fingerprint)` key of entry `i`.
    pub fn h_key(&self, i: usize) -> (u32, u64) {
        let at = self.h_off + H_ENTRY_BYTES * i;
        let b = self.storage.bytes();
        let len = u32::from_le_bytes(b[at..at + 4].try_into().expect("4-byte field"));
        let fp = u64::from_le_bytes(b[at + 4..at + 12].try_into().expect("8-byte field"));
        (len, fp)
    }

    /// The accumulator of entry `i`.
    pub fn h_acc(&self, i: usize) -> UtilityAccumulator {
        let at = self.h_off + H_ENTRY_BYTES * i + 12;
        let b = self.storage.bytes();
        let field =
            |k: usize| f64::from_le_bytes(b[at + 8 * k..at + 8 * k + 8].try_into().expect("f64"));
        let count = u64::from_le_bytes(b[at + 24..at + 32].try_into().expect("u64"));
        UtilityAccumulator::from_raw(field(0), field(1), field(2), count)
    }

    /// Probes the cached-substring section for `key`: binary search
    /// over the entries, which the canonical encoding stores sorted by
    /// `(length, fingerprint)` (validated on open). `O(log K)` per
    /// probe against the hash map's `O(1)` — both are dwarfed by the
    /// `O(m)` fingerprint computation that precedes every probe.
    pub fn h_lookup(&self, key: (u32, u64)) -> Option<UtilityAccumulator> {
        let (mut lo, mut hi) = (0usize, self.h_len);
        while lo < hi {
            let mid = (lo + hi) / 2;
            match self.h_key(mid).cmp(&key) {
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
                std::cmp::Ordering::Equal => return Some(self.h_acc(mid)),
            }
        }
        None
    }

    /// The entries in `(length, fingerprint)` order.
    pub fn h_entries(&self) -> impl Iterator<Item = ((u32, u64), UtilityAccumulator)> + '_ {
        (0..self.h_len).map(|i| (self.h_key(i), self.h_acc(i)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sa_ref_decodes_le_records() {
        let ranks = [3u32, 0, 2, 1];
        let bytes: Vec<u8> = ranks.iter().flat_map(|r| r.to_le_bytes()).collect();
        let owned = SaRef::Ranks(&ranks);
        let view = SaRef::Bytes(&bytes);
        assert_eq!(owned.len(), view.len());
        for i in 0..ranks.len() {
            assert_eq!(owned.at(i), view.at(i));
        }
        assert_eq!(view.iter().collect::<Vec<_>>(), ranks);
    }

    #[test]
    fn weights_ref_decodes_le_records() {
        let weights = [0.5f64, -1.25, 3.0];
        let bytes: Vec<u8> = weights.iter().flat_map(|w| w.to_le_bytes()).collect();
        let view = WeightsRef::Bytes(&bytes);
        assert_eq!(view.len(), 3);
        assert_eq!(view.to_vec(), weights);
        let mut out = vec![9.0];
        view.extend_range_into(1..3, &mut out);
        assert_eq!(out, vec![9.0, -1.25, 3.0]);
        let slice = WeightsRef::from(&weights[..]);
        assert_eq!(slice.at(2), 3.0);
    }

    #[cfg(all(unix, target_pointer_width = "64"))]
    #[test]
    fn mmap_round_trips_file_bytes() {
        let dir = std::env::temp_dir().join("usi-storage-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("map.bin");
        std::fs::write(&path, b"hello mapping").unwrap();
        let storage = IndexStorage::open(&path).unwrap();
        assert!(storage.is_mapped());
        assert_eq!(storage.bytes(), b"hello mapping");

        let empty = dir.join("empty.bin");
        std::fs::write(&empty, b"").unwrap();
        let storage = IndexStorage::open(&empty).unwrap();
        assert!(storage.bytes().is_empty());
    }
}
