//! Merging per-part query answers into a whole-string (or whole-corpus)
//! answer.
//!
//! Two subsystems answer one pattern from several partial indexes and
//! must combine the raw [`UtilityAccumulator`]s before extracting an
//! aggregate:
//!
//! * the serving layer's fan-out (`usi_server::Catalog::query_all`):
//!   one accumulator per *document*;
//! * the ingestion layer (`usi_ingest::IngestIndex`): one accumulator
//!   per *segment* of a single growing document, plus the
//!   boundary-spanning occurrences.
//!
//! Both go through this module so there is exactly one implementation of
//! the merge semantics: accumulators merge associatively (sum / min /
//! max / count are all order-insensitive), and a combined *value* is
//! only defined when every part agrees on the utility function —
//! otherwise finishing the merged accumulator would silently mix
//! aggregates.

use usi_strings::{GlobalUtility, UtilityAccumulator};

/// Merges raw per-part accumulators into one. The merge is associative
/// and order-insensitive, so callers may combine parts in any order
/// (per-segment, per-document, per-thread) and get the same result.
pub fn merge_accumulators<'a, I>(parts: I) -> UtilityAccumulator
where
    I: IntoIterator<Item = &'a UtilityAccumulator>,
{
    let mut merged = UtilityAccumulator::new();
    for part in parts {
        merged.merge(part);
    }
    merged
}

/// Combines per-part `(utility, accumulator)` answers into the total
/// `(occurrences, value)` pair: occurrences always merge; the merged
/// value is `Some` only when every part shares one utility function
/// (merging a `min` answer into a `sum` answer would be meaningless)
/// and the merged aggregate is defined for the occurrence count.
pub fn merged_total(parts: &[(GlobalUtility, UtilityAccumulator)]) -> (u64, Option<f64>) {
    let merged = merge_accumulators(parts.iter().map(|(_, acc)| acc));
    let shared = parts.first().map(|(u, _)| *u);
    let uniform = parts.iter().all(|(u, _)| Some(*u) == shared);
    let value = match (uniform, shared) {
        (true, Some(utility)) => merged.finish(utility.aggregator),
        _ => None,
    };
    (merged.count(), value)
}

#[cfg(test)]
mod tests {
    use super::*;
    use usi_strings::GlobalAggregator;

    fn acc(locals: &[f64]) -> UtilityAccumulator {
        let mut a = UtilityAccumulator::new();
        for &x in locals {
            a.add(x);
        }
        a
    }

    #[test]
    fn merge_is_order_insensitive() {
        let parts = [acc(&[1.0, 2.0]), acc(&[]), acc(&[-3.0, 0.5])];
        let forward = merge_accumulators(parts.iter());
        let backward = merge_accumulators(parts.iter().rev());
        assert_eq!(forward, backward);
        assert_eq!(forward, acc(&[1.0, 2.0, -3.0, 0.5]));
    }

    #[test]
    fn uniform_parts_have_a_total_value() {
        let u = GlobalUtility::sum_of_sums();
        let parts = vec![(u, acc(&[1.0, 2.0])), (u, acc(&[4.0]))];
        assert_eq!(merged_total(&parts), (3, Some(7.0)));
    }

    #[test]
    fn mixed_aggregators_have_no_total_value() {
        let parts = vec![
            (GlobalUtility::sum_of_sums(), acc(&[1.0])),
            (GlobalUtility::with_aggregator(GlobalAggregator::Max), acc(&[2.0])),
        ];
        let (occurrences, value) = merged_total(&parts);
        assert_eq!(occurrences, 2);
        assert_eq!(value, None);
    }

    #[test]
    fn empty_and_undefined_merges() {
        assert_eq!(merged_total(&[]), (0, None));
        let u = GlobalUtility::with_aggregator(GlobalAggregator::Min);
        // min of zero occurrences is undefined even with uniform parts
        assert_eq!(merged_total(&[(u, acc(&[]))]), (0, None));
    }
}
