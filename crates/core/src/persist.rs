//! Index persistence: a versioned little-endian binary format for
//! [`UsiIndex`], so a built index can be saved once and memory-mapped or
//! streamed back without re-running construction.
//!
//! Layout (`USIX` format, version 1):
//!
//! ```text
//! magic  b"USIX\x01\x00\x00\x00"
//! u8     aggregator tag
//! u8     local window tag
//! u64    fingerprinter base
//! u64    n
//! [u8]   text (n bytes)
//! [f64]  weights (n)
//! [u32]  suffix array (n)          — PSW is recomputed on load
//! u64    |H|
//! |H| ×  (u32 len, u64 fp, f64 sum, f64 min, f64 max, u64 count)
//!        — sorted by (len, fp), so the encoding is canonical: indexes
//!          with equal contents serialise to identical bytes no matter
//!          how (or on how many threads) they were built
//! u64    k_requested; u64 k_stored; u32 tau (u32::MAX = none); u64 L_K
//! ```
//!
//! Readers validate the magic, version, aggregator tag, base range and
//! the suffix-array permutation property, so a truncated or corrupted
//! file fails loudly instead of producing wrong answers.

use crate::index::{BuildStats, UsiIndex};
use crate::storage::{IndexStorage, IndexView, H_ENTRY_BYTES};
use std::io::{self, Read, Write};
use std::path::Path;
use std::sync::Arc;
use usi_strings::{
    Fingerprinter, FxHashMap, GlobalUtility, LocalIndex, UtilityAccumulator, WeightedString,
};

const MAGIC: [u8; 8] = *b"USIX\x01\x00\x00\x00";

/// Bytes before the text section: magic + aggregator tag + local tag +
/// fingerprinter base + `n`.
pub const HEADER_BYTES: usize = 8 + 1 + 1 + 8 + 8;

/// Bytes after the hash-table section: `k_requested + k_stored + tau +
/// L_K`.
pub const TRAILER_BYTES: usize = 8 + 8 + 4 + 8;

/// Errors raised when loading a persisted index.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Bad magic/version header.
    BadMagic,
    /// A field failed validation (message describes which).
    Corrupt(&'static str),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "i/o error: {e}"),
            Self::BadMagic => write!(f, "not a USIX v1 index file"),
            Self::Corrupt(what) => write!(f, "corrupted index file: {what}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<io::Error> for PersistError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

struct Writer<'w, W: Write>(&'w mut W);

impl<W: Write> Writer<'_, W> {
    fn u8(&mut self, v: u8) -> io::Result<()> {
        self.0.write_all(&[v])
    }
    fn u32(&mut self, v: u32) -> io::Result<()> {
        self.0.write_all(&v.to_le_bytes())
    }
    fn u64(&mut self, v: u64) -> io::Result<()> {
        self.0.write_all(&v.to_le_bytes())
    }
    fn f64(&mut self, v: f64) -> io::Result<()> {
        self.0.write_all(&v.to_le_bytes())
    }
}

struct Reader<'r, R: Read>(&'r mut R);

impl<R: Read> Reader<'_, R> {
    fn u8(&mut self) -> io::Result<u8> {
        let mut b = [0u8; 1];
        self.0.read_exact(&mut b)?;
        Ok(b[0])
    }
    fn u32(&mut self) -> io::Result<u32> {
        let mut b = [0u8; 4];
        self.0.read_exact(&mut b)?;
        Ok(u32::from_le_bytes(b))
    }
    fn u64(&mut self) -> io::Result<u64> {
        let mut b = [0u8; 8];
        self.0.read_exact(&mut b)?;
        Ok(u64::from_le_bytes(b))
    }
    fn f64(&mut self) -> io::Result<f64> {
        let mut b = [0u8; 8];
        self.0.read_exact(&mut b)?;
        Ok(f64::from_le_bytes(b))
    }
}

impl UsiIndex {
    /// Serialises the index in `USIX` v1 format.
    pub fn write_to<W: Write>(&self, out: &mut W) -> io::Result<()> {
        out.write_all(&MAGIC)?;
        let mut w = Writer(out);
        w.u8(self.utility().aggregator.to_tag())?;
        w.u8(self.utility().local.to_tag())?;
        w.u64(self.fingerprinter().base())?;
        w.u64(self.text().len() as u64)?;
        w.0.write_all(self.text())?;
        for x in self.weights().iter() {
            w.f64(x)?;
        }
        for p in self.suffix_array().iter() {
            w.u32(p)?;
        }
        // Canonical entry order: hash-map iteration order depends on
        // insertion history (serial vs sharded-parallel populate), so
        // entries are sorted by key to make equal indexes serialise to
        // equal bytes — the CI determinism gate `cmp`s serial and
        // parallel builds. (A storage view is already in this order.)
        let entries = self.h_entries_sorted();
        w.u64(entries.len() as u64)?;
        for ((len, fp), acc) in entries {
            let (sum, min, max, count) = acc.to_raw();
            w.u32(len)?;
            w.u64(fp)?;
            w.f64(sum)?;
            w.f64(min)?;
            w.f64(max)?;
            w.u64(count)?;
        }
        let stats = self.stats();
        w.u64(stats.k_requested as u64)?;
        w.u64(stats.k_stored as u64)?;
        w.u32(stats.tau.unwrap_or(u32::MAX))?;
        w.u64(stats.distinct_lengths as u64)?;
        Ok(())
    }

    /// Deserialises an index written by [`UsiIndex::write_to`],
    /// revalidating structural invariants.
    pub fn read_from<R: Read>(input: &mut R) -> Result<Self, PersistError> {
        let started = std::time::Instant::now();
        let index = Self::read_from_inner(input)?;
        observe_open("read", started);
        Ok(index)
    }

    fn read_from_inner<R: Read>(input: &mut R) -> Result<Self, PersistError> {
        let mut magic = [0u8; 8];
        input.read_exact(&mut magic)?;
        if magic != MAGIC {
            return Err(PersistError::BadMagic);
        }
        let mut r = Reader(input);
        let aggregator = usi_strings::GlobalAggregator::from_tag(r.u8()?)
            .ok_or(PersistError::Corrupt("aggregator tag"))?;
        let local = usi_strings::LocalWindow::from_tag(r.u8()?)
            .ok_or(PersistError::Corrupt("local window tag"))?;
        let base = r.u64()?;
        if !(256..usi_strings::fingerprint::MODULUS - 1).contains(&base) {
            return Err(PersistError::Corrupt("fingerprint base"));
        }
        let fingerprinter = Fingerprinter::from_raw_base(base);
        let n = r.u64()? as usize;
        if n > (u32::MAX as usize) - 2 {
            return Err(PersistError::Corrupt("text length"));
        }
        let mut text = vec![0u8; n];
        r.0.read_exact(&mut text)?;
        let mut weights = Vec::with_capacity(n);
        for _ in 0..n {
            let x = r.f64()?;
            if !x.is_finite() {
                return Err(PersistError::Corrupt("non-finite weight"));
            }
            weights.push(x);
        }
        let mut sa = Vec::with_capacity(n);
        let mut seen = vec![false; n];
        for _ in 0..n {
            let p = r.u32()?;
            if p as usize >= n || seen[p as usize] {
                return Err(PersistError::Corrupt("suffix array permutation"));
            }
            seen[p as usize] = true;
            sa.push(p);
        }
        let h_len = r.u64()? as usize;
        if h_len > n.saturating_mul(n).max(1024) {
            return Err(PersistError::Corrupt("hash table size"));
        }
        let mut h: FxHashMap<(u32, u64), UtilityAccumulator> = FxHashMap::default();
        h.reserve(h_len);
        for _ in 0..h_len {
            let len = r.u32()?;
            let fp = r.u64()?;
            let sum = r.f64()?;
            let min = r.f64()?;
            let max = r.f64()?;
            let count = r.u64()?;
            if len == 0 || len as usize > n {
                return Err(PersistError::Corrupt("cached substring length"));
            }
            h.insert((len, fp), UtilityAccumulator::from_raw(sum, min, max, count));
        }
        let k_requested = r.u64()? as usize;
        let k_stored = r.u64()? as usize;
        let tau = match r.u32()? {
            u32::MAX => None,
            t => Some(t),
        };
        let distinct_lengths = r.u64()? as usize;

        let ws = WeightedString::new(text, weights)
            .map_err(|_| PersistError::Corrupt("weighted string"))?;
        let utility = GlobalUtility::with_parts(aggregator, local);
        if local == usi_strings::LocalWindow::Product && ws.weights().iter().any(|&w| w <= 0.0) {
            return Err(PersistError::Corrupt("non-positive weight for product local"));
        }
        let psw = utility.local_index(ws.weights());
        let stats =
            BuildStats { n, k_requested, k_stored, tau, distinct_lengths, ..BuildStats::default() };
        Ok(UsiIndex::from_parts(ws, sa, psw, fingerprinter, utility, h, stats))
    }

    /// Opens a `.usix` file as a zero-copy storage view: the payload
    /// sections (text, weights, suffix array, cached-substring table)
    /// are served straight from the backing bytes — a memory mapping
    /// where the platform wrapper exists ([`crate::storage::Mmap`]),
    /// owned file bytes elsewhere. See [`open_mmap`].
    pub fn open_mmap(path: &Path) -> Result<Self, PersistError> {
        let storage = IndexStorage::open(path)?;
        Self::from_storage(Arc::new(storage))
    }

    /// Validates `storage` as a complete `USIX` v1 image and wraps it
    /// in a view-backed index **without copying any section**: the same
    /// structural checks [`UsiIndex::read_from`] performs (magic, tags,
    /// fingerprint-base range, weight finiteness, the suffix-array
    /// permutation property, per-entry length bounds) plus two that the
    /// view depends on — the byte length must match the layout exactly,
    /// and the hash-table entries must be in strictly increasing
    /// `(length, fingerprint)` order (the canonical encoding guarantees
    /// it; the probe's binary search requires it).
    ///
    /// The only load-time allocation proportional to the corpus is the
    /// `PSW` prefix-sum array, which the format does not store.
    pub fn from_storage(storage: Arc<IndexStorage>) -> Result<Self, PersistError> {
        let started = std::time::Instant::now();
        let index = Self::from_storage_inner(storage)?;
        observe_open("mmap", started);
        Ok(index)
    }

    fn from_storage_inner(storage: Arc<IndexStorage>) -> Result<Self, PersistError> {
        let bytes = storage.bytes();
        if bytes.len() < 8 || bytes[..8] != MAGIC {
            return Err(PersistError::BadMagic);
        }
        if bytes.len() < HEADER_BYTES {
            return Err(PersistError::Corrupt("truncated header"));
        }
        let u32_at = |at: usize| u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4 bytes"));
        let u64_at = |at: usize| u64::from_le_bytes(bytes[at..at + 8].try_into().expect("8 bytes"));
        let aggregator = usi_strings::GlobalAggregator::from_tag(bytes[8])
            .ok_or(PersistError::Corrupt("aggregator tag"))?;
        let local = usi_strings::LocalWindow::from_tag(bytes[9])
            .ok_or(PersistError::Corrupt("local window tag"))?;
        let base = u64_at(10);
        if !(256..usi_strings::fingerprint::MODULUS - 1).contains(&base) {
            return Err(PersistError::Corrupt("fingerprint base"));
        }
        let fingerprinter = Fingerprinter::from_raw_base(base);
        let n64 = u64_at(18);
        if n64 > (u32::MAX as u64) - 2 {
            return Err(PersistError::Corrupt("text length"));
        }
        let n = n64 as usize;

        // Section offsets; everything up to the trailer must fit.
        let text_off = HEADER_BYTES;
        let weights_off = text_off + n;
        let sa_off = weights_off + 8 * n;
        let h_count_off = sa_off + 4 * n;
        let h_off = h_count_off + 8;
        if bytes.len() < h_off {
            return Err(PersistError::Corrupt("truncated sections"));
        }
        let h_len64 = u64_at(h_count_off);
        if h_len64 > (n as u64).saturating_mul(n as u64).max(1024) {
            return Err(PersistError::Corrupt("hash table size"));
        }
        let h_len = h_len64 as usize;
        let expected = (h_off as u64)
            .checked_add((H_ENTRY_BYTES as u64).saturating_mul(h_len64))
            .and_then(|v| v.checked_add(TRAILER_BYTES as u64))
            .ok_or(PersistError::Corrupt("hash table size"))?;
        if bytes.len() as u64 != expected {
            return Err(PersistError::Corrupt("file size"));
        }
        let trailer_off = h_off + H_ENTRY_BYTES * h_len;

        let view =
            IndexView::new(Arc::clone(&storage), n, text_off, weights_off, sa_off, h_off, h_len);

        // Weights: finite, and strictly positive under a Product local
        // window (whose PSW takes logarithms).
        for w in view.weights().iter() {
            if !w.is_finite() {
                return Err(PersistError::Corrupt("non-finite weight"));
            }
            if local == usi_strings::LocalWindow::Product && w <= 0.0 {
                return Err(PersistError::Corrupt("non-positive weight for product local"));
            }
        }

        // Suffix array: a permutation of 0..n.
        let sa = view.sa();
        let mut seen = vec![false; n];
        for i in 0..n {
            let p = sa.at(i) as usize;
            if p >= n || seen[p] {
                return Err(PersistError::Corrupt("suffix array permutation"));
            }
            seen[p] = true;
        }

        // Hash-table entries: valid lengths, strictly increasing keys
        // (the probe's binary search and the canonical encoding both
        // require it), and the distinct lengths collected along the way.
        let mut cached_lengths: Vec<u32> = Vec::new();
        let mut previous: Option<(u32, u64)> = None;
        for i in 0..h_len {
            let key = view.h_key(i);
            if key.0 == 0 || key.0 as usize > n {
                return Err(PersistError::Corrupt("cached substring length"));
            }
            if previous.is_some_and(|p| p >= key) {
                return Err(PersistError::Corrupt("hash table order"));
            }
            if cached_lengths.last() != Some(&key.0) {
                cached_lengths.push(key.0);
            }
            previous = Some(key);
        }

        let stats = BuildStats {
            n,
            k_requested: u64_at(trailer_off) as usize,
            k_stored: u64_at(trailer_off + 8) as usize,
            tau: match u32_at(trailer_off + 16) {
                u32::MAX => None,
                t => Some(t),
            },
            distinct_lengths: u64_at(trailer_off + 20) as usize,
            ..BuildStats::default()
        };
        let utility = GlobalUtility::with_parts(aggregator, local);
        // PSW is the one derived structure the format does not store:
        // rebuilt from the weight section in a single decoding pass,
        // bit-identical to the owned load's (same accumulation order).
        let psw = LocalIndex::from_weights(view.weights().iter(), local);
        Ok(UsiIndex::from_view(view, psw, fingerprinter, utility, cached_lengths, stats))
    }
}

/// Opens `path` as a zero-copy, storage-backed [`UsiIndex`]: the
/// header and every structural invariant are validated up front, but
/// no payload section is copied onto the heap — text, weights, suffix
/// array and the cached-substring table are typed slices over the
/// file mapping, paged in on first touch. Queries answer
/// byte-identically to [`UsiIndex::read_from`] (proptested).
///
/// Prefer this over `read_from` when serving many corpora from one
/// process: cold-start and resident memory then scale with the number
/// of indexes, not their total size. Prefer `read_from` when the file
/// may be replaced underneath a long-lived process, or when every
/// section will be hot anyway and the double page-cache/heap residency
/// is unwanted.
pub fn open_mmap(path: &Path) -> Result<UsiIndex, PersistError> {
    UsiIndex::open_mmap(path)
}

/// Records one successful index open in
/// `usi_index_open_seconds{mode}` — a cold path, so the registry
/// lookup per open is fine.
fn observe_open(mode: &str, started: std::time::Instant) {
    usi_obs::global()
        .histogram_vec(
            "usi_index_open_seconds",
            "Time to load and validate a persisted index, by open mode",
            &["mode"],
            usi_obs::default_latency_buckets(),
        )
        .with(&[mode])
        .observe_duration(started.elapsed());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::UsiBuilder;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn sample_index() -> UsiIndex {
        let mut rng = StdRng::seed_from_u64(201);
        let n = 500;
        let text: Vec<u8> = (0..n).map(|_| b'a' + rng.gen_range(0..4u8)).collect();
        let weights: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..2.0)).collect();
        let ws = WeightedString::new(text, weights).unwrap();
        UsiBuilder::new().with_k(40).deterministic(203).build(ws)
    }

    #[test]
    fn roundtrip_preserves_every_answer() {
        let index = sample_index();
        let mut buf = Vec::new();
        index.write_to(&mut buf).unwrap();
        let loaded = UsiIndex::read_from(&mut buf.as_slice()).unwrap();

        assert_eq!(loaded.cached_substrings(), index.cached_substrings());
        assert_eq!(loaded.stats().tau, index.stats().tau);
        let text = index.text().to_vec();
        let mut rng = StdRng::seed_from_u64(205);
        for _ in 0..200 {
            let m = rng.gen_range(1..10usize);
            let i = rng.gen_range(0..text.len() - m);
            let pat = &text[i..i + m];
            let a = index.query(pat);
            let b = loaded.query(pat);
            assert_eq!(a.occurrences, b.occurrences, "{pat:?}");
            assert_eq!(a.value, b.value, "{pat:?}");
            assert_eq!(a.source, b.source, "{pat:?}");
        }
    }

    #[test]
    fn bad_magic_rejected() {
        let mut buf = Vec::new();
        sample_index().write_to(&mut buf).unwrap();
        buf[0] = b'X';
        assert!(matches!(UsiIndex::read_from(&mut buf.as_slice()), Err(PersistError::BadMagic)));
    }

    #[test]
    fn truncation_rejected() {
        let mut buf = Vec::new();
        sample_index().write_to(&mut buf).unwrap();
        for cut in [8usize, 20, buf.len() / 2, buf.len() - 3] {
            let short = buf[..cut].to_vec();
            assert!(UsiIndex::read_from(&mut &short[..]).is_err(), "cut at {cut} accepted");
        }
    }

    #[test]
    fn corrupted_suffix_array_rejected() {
        let index = sample_index();
        let mut buf = Vec::new();
        index.write_to(&mut buf).unwrap();
        // SA starts after magic(8) + agg(1) + base(8) + n(8) + text + weights
        let n = index.text().len();
        let sa_off = 8 + 1 + 8 + 8 + n + 8 * n;
        // duplicate the first SA entry into the second
        let first: [u8; 4] = buf[sa_off..sa_off + 4].try_into().unwrap();
        buf[sa_off + 4..sa_off + 8].copy_from_slice(&first);
        assert!(matches!(
            UsiIndex::read_from(&mut buf.as_slice()),
            Err(PersistError::Corrupt("suffix array permutation"))
        ));
    }

    #[test]
    fn empty_index_roundtrips() {
        let ws = WeightedString::new(vec![], vec![]).unwrap();
        let index = UsiBuilder::new().with_k(1).deterministic(207).build(ws);
        let mut buf = Vec::new();
        index.write_to(&mut buf).unwrap();
        let loaded = UsiIndex::read_from(&mut buf.as_slice()).unwrap();
        assert_eq!(loaded.query(b"a").occurrences, 0);
    }
}
