//! The `USI_TOP-K` data structure (paper, Section IV, Theorem 1).
//!
//! Components:
//!
//! * hash table `H`: `(pattern length, Karp–Rabin fingerprint) →`
//!   [`UtilityAccumulator`], holding the precomputed global utilities of
//!   the top-K frequent substrings;
//! * the text index: suffix array `SA(S)` (standing in for the suffix
//!   tree, see DESIGN.md §3) locating infrequent patterns;
//! * `PSW`: prefix sums of the weights, giving any occurrence's local
//!   utility in `O(1)`.
//!
//! Construction phases (mirroring the paper):
//!
//! 1. **Phase (i)** — obtain the top-K frequent substrings (exact oracle
//!    of Section V or the Section-VI sampler); done by [`crate::builder`].
//! 2. **Phase (ii)** — group the substrings by length; for each of the
//!    `L_K` lengths, mark occurrence start positions in a bit vector
//!    (exact triplets) or collect witness fingerprints in a set
//!    (estimates), then slide a window over `S` computing each window's
//!    fingerprint and local utility in `O(1)` and aggregating marked
//!    windows into `H`. `O(n · L_K)` total.
//! 3. **Phase (iii)** — build `SA(S)` and `PSW`.
//!
//! A query for `P` of length `m` computes `P`'s fingerprint (`O(m)`),
//! probes `H`, and on a miss falls back to the suffix array plus `PSW`
//! (`O(m log n + occ)`, with `occ ≤ τ_K` for exact-built indexes).

use crate::storage::{IndexView, SaRef, WeightsRef, H_ENTRY_BYTES};
use crate::topk::{TopKEstimate, TopKSubstring};
use std::time::Duration;
use usi_strings::{
    Fingerprinter, FxHashMap, FxHashSet, GlobalUtility, HeapSize, LocalIndex, UtilityAccumulator,
    WeightedString,
};
use usi_suffix::{SaAccess, SuffixArraySearcher};

/// How a query was answered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuerySource {
    /// Precomputed: found in the hash table `H`. `O(m)`.
    HashTable,
    /// Computed on the fly from the text index and `PSW`.
    TextIndex,
}

/// Result of a USI query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UsiQuery {
    /// The global utility `U(P)`; `None` when the aggregate is undefined
    /// for zero occurrences (min/max/avg of an absent pattern).
    pub value: Option<f64>,
    /// Number of occurrences of `P` in `S`.
    pub occurrences: u64,
    /// Which path answered the query.
    pub source: QuerySource,
}

/// Construction statistics (reported by the experiment harness).
#[derive(Debug, Clone, Default)]
pub struct BuildStats {
    /// Text length `n`.
    pub n: usize,
    /// Requested `K`.
    pub k_requested: usize,
    /// Number of substrings actually inserted into `H`.
    pub k_stored: usize,
    /// `τ_K` (exact strategy only): worst-case fallback occurrence count.
    pub tau: Option<u32>,
    /// `L_K`: number of distinct top-K substring lengths (phase-(ii)
    /// sliding-window passes).
    pub distinct_lengths: usize,
    /// Phase (i) wall time (top-K mining).
    pub phase_topk: Duration,
    /// Phase (ii) wall time (hash-table population).
    pub phase_populate: Duration,
    /// Phase (iii) wall time (SA + PSW; SA construction is attributed
    /// here even though phase (i) reuses it).
    pub phase_index: Duration,
    /// Peak tracked bytes of the miner (AT strategy; 0 for exact).
    pub miner_peak_bytes: usize,
}

impl BuildStats {
    /// Total construction wall time.
    pub fn total_time(&self) -> Duration {
        self.phase_topk + self.phase_populate + self.phase_index
    }
}

/// Index-size breakdown in bytes (the paper's Fig. 6k–p measurements).
#[derive(Debug, Clone, Copy, Default)]
pub struct IndexSize {
    /// The text `S`.
    pub text: usize,
    /// The weight array `w`.
    pub weights: usize,
    /// The suffix array.
    pub suffix_array: usize,
    /// The `PSW` array.
    pub psw: usize,
    /// The hash table `H` (keys, values, control bytes).
    pub hash_table: usize,
}

impl IndexSize {
    /// Sum of all components.
    pub fn total(&self) -> usize {
        self.text + self.weights + self.suffix_array + self.psw + self.hash_table
    }
}

/// Hash-table key: (substring length, fingerprint). Keying on the length
/// too makes cross-length fingerprint collisions impossible.
type HKey = (u32, u64);

/// What actually holds the payload sections (text, weights, suffix
/// array, cached-substring table): owned heap structures for built or
/// stream-loaded indexes, or typed slices over an
/// [`crate::storage::IndexStorage`] for zero-copy loads
/// ([`crate::persist::open_mmap`]). Both backings answer every query
/// byte-identically (proptested in `tests/storage_equivalence.rs`).
#[derive(Debug, Clone)]
enum Payload {
    Owned { ws: WeightedString, sa: Vec<u32>, h: FxHashMap<HKey, UtilityAccumulator> },
    View(IndexView),
}

/// The `USI_TOP-K` index. Build through [`crate::builder::UsiBuilder`],
/// load owned with [`UsiIndex::read_from`], or load zero-copy with
/// [`crate::persist::open_mmap`].
#[derive(Debug, Clone)]
pub struct UsiIndex {
    payload: Payload,
    psw: LocalIndex,
    fingerprinter: Fingerprinter,
    utility: GlobalUtility,
    /// The `L_K` distinct lengths present in `H`, sorted. A query whose
    /// length is absent cannot be cached, so the `O(m)` fingerprint
    /// computation is skipped entirely — important for long infrequent
    /// patterns (e.g. the IOT workloads).
    cached_lengths: Vec<u32>,
    stats: BuildStats,
}

impl UsiIndex {
    /// Assembles an index from prebuilt parts; used by the builder.
    pub(crate) fn from_parts(
        ws: WeightedString,
        sa: Vec<u32>,
        psw: LocalIndex,
        fingerprinter: Fingerprinter,
        utility: GlobalUtility,
        h: FxHashMap<HKey, UtilityAccumulator>,
        stats: BuildStats,
    ) -> Self {
        let mut cached_lengths: Vec<u32> = h.keys().map(|&(len, _)| len).collect();
        cached_lengths.sort_unstable();
        cached_lengths.dedup();
        Self {
            payload: Payload::Owned { ws, sa, h },
            psw,
            fingerprinter,
            utility,
            cached_lengths,
            stats,
        }
    }

    /// Assembles a storage-backed index from a validated view; used by
    /// the persistence layer's zero-copy open path.
    pub(crate) fn from_view(
        view: IndexView,
        psw: LocalIndex,
        fingerprinter: Fingerprinter,
        utility: GlobalUtility,
        cached_lengths: Vec<u32>,
        stats: BuildStats,
    ) -> Self {
        Self { payload: Payload::View(view), psw, fingerprinter, utility, cached_lengths, stats }
    }

    /// The indexed weighted string; `None` for storage-backed indexes,
    /// whose text and weights have no owned `WeightedString` to borrow
    /// (use [`UsiIndex::text`] and [`UsiIndex::weights`] instead — they
    /// work for both backings).
    pub fn weighted_string(&self) -> Option<&WeightedString> {
        match &self.payload {
            Payload::Owned { ws, .. } => Some(ws),
            Payload::View(_) => None,
        }
    }

    /// The text `S`.
    pub fn text(&self) -> &[u8] {
        match &self.payload {
            Payload::Owned { ws, .. } => ws.text(),
            Payload::View(view) => view.text(),
        }
    }

    /// The weight array `w`, whatever its backing.
    pub fn weights(&self) -> WeightsRef<'_> {
        match &self.payload {
            Payload::Owned { ws, .. } => WeightsRef::Slice(ws.weights()),
            Payload::View(view) => view.weights(),
        }
    }

    /// The suffix array of `S`, whatever its backing.
    pub fn suffix_array(&self) -> SaRef<'_> {
        match &self.payload {
            Payload::Owned { sa, .. } => SaRef::Ranks(sa),
            Payload::View(view) => view.sa(),
        }
    }

    /// Whether the payload sections are served from a file mapping
    /// (zero-copy) rather than the heap.
    pub fn is_memory_mapped(&self) -> bool {
        match &self.payload {
            Payload::Owned { .. } => false,
            Payload::View(view) => view.is_mapped(),
        }
    }

    /// The configured global utility function.
    pub fn utility(&self) -> GlobalUtility {
        self.utility
    }

    /// The fingerprint function (shared with any cooperating structure).
    pub fn fingerprinter(&self) -> Fingerprinter {
        self.fingerprinter
    }

    /// Number of entries in the hash table `H` (distinct cached
    /// substrings).
    pub fn cached_substrings(&self) -> usize {
        match &self.payload {
            Payload::Owned { h, .. } => h.len(),
            Payload::View(view) => view.h_len(),
        }
    }

    /// Construction statistics.
    pub fn stats(&self) -> &BuildStats {
        &self.stats
    }

    /// Probes the cached-substring table for `(length, fingerprint)`.
    fn h_lookup(&self, key: HKey) -> Option<UtilityAccumulator> {
        match &self.payload {
            Payload::Owned { h, .. } => h.get(&key).copied(),
            Payload::View(view) => view.h_lookup(key),
        }
    }

    /// The cached-substring entries in canonical `(length, fingerprint)`
    /// order (persistence, diagnostics).
    pub(crate) fn h_entries_sorted(&self) -> Vec<(HKey, UtilityAccumulator)> {
        match &self.payload {
            Payload::Owned { h, .. } => {
                let mut entries: Vec<(HKey, UtilityAccumulator)> =
                    h.iter().map(|(&key, &acc)| (key, acc)).collect();
                entries.sort_unstable_by_key(|&(key, _)| key);
                entries
            }
            Payload::View(view) => view.h_entries().collect(),
        }
    }

    /// Index-size breakdown. For storage-backed indexes the text,
    /// weights, suffix-array and hash-table numbers are the mapped
    /// section sizes (paged in lazily by the kernel); only `psw` is
    /// resident heap.
    pub fn size_breakdown(&self) -> IndexSize {
        match &self.payload {
            Payload::Owned { ws, sa, h } => IndexSize {
                text: ws.text().len(),
                weights: std::mem::size_of_val(ws.weights()),
                suffix_array: sa.heap_bytes(),
                psw: self.psw.heap_bytes(),
                hash_table: h.capacity()
                    * (std::mem::size_of::<HKey>() + std::mem::size_of::<UtilityAccumulator>() + 1)
                    + self.cached_lengths.capacity() * std::mem::size_of::<u32>(),
            },
            Payload::View(view) => IndexSize {
                text: view.text().len(),
                weights: 8 * view.text().len(),
                suffix_array: 4 * view.text().len(),
                psw: self.psw.heap_bytes(),
                hash_table: H_ENTRY_BYTES * view.h_len()
                    + self.cached_lengths.capacity() * std::mem::size_of::<u32>(),
            },
        }
    }

    /// Answers a USI query: the global utility `U(P)` of `pattern`.
    ///
    /// `O(m)` when the pattern is cached in `H`; otherwise
    /// `O(m log n + occ)` with `occ ≤ τ_K` for exact-built indexes.
    pub fn query(&self, pattern: &[u8]) -> UsiQuery {
        let (acc, source) = self.query_accumulator(pattern);
        UsiQuery { value: acc.finish(self.utility.aggregator), occurrences: acc.count(), source }
    }

    /// Like [`UsiIndex::query`], but returns the raw accumulator so
    /// callers (e.g. the dynamic index) can merge further occurrences
    /// before extracting an aggregate.
    pub fn query_accumulator(&self, pattern: &[u8]) -> (UtilityAccumulator, QuerySource) {
        match &self.payload {
            Payload::Owned { ws, sa, .. } => {
                self.query_accumulator_with(&SuffixArraySearcher::new(ws.text(), sa), pattern)
            }
            Payload::View(view) => self.query_accumulator_with(
                &SuffixArraySearcher::with_access(view.text(), view.sa()),
                pattern,
            ),
        }
    }

    /// Query body with the suffix-array searcher hoisted out, so batch
    /// callers set it up once per batch instead of once per pattern.
    /// Generic over the searcher's backing: heap-built indexes pass a
    /// `&[u32]` searcher (monomorphised to the pre-redesign code),
    /// storage views pass a byte-section one.
    fn query_accumulator_with<A: SaAccess>(
        &self,
        searcher: &SuffixArraySearcher<'_, A>,
        pattern: &[u8],
    ) -> (UtilityAccumulator, QuerySource) {
        let m = pattern.len();
        if m == 0 || m > searcher.text().len() {
            return (UtilityAccumulator::new(), QuerySource::TextIndex);
        }
        // Only compute the O(m) fingerprint when some cached substring
        // has this length; otherwise the probe cannot hit.
        if self.cached_lengths.binary_search(&(m as u32)).is_ok() {
            let fp = self.fingerprinter.fingerprint(pattern);
            if let Some(acc) = self.h_lookup((m as u32, fp)) {
                return (acc, QuerySource::HashTable);
            }
        }
        let mut acc = UtilityAccumulator::new();
        if let Some(range) = searcher.interval(pattern) {
            for r in range {
                acc.add(self.psw.local(searcher.access().at(r) as usize, m));
            }
        }
        (acc, QuerySource::TextIndex)
    }

    /// Answers a batch of USI queries, one [`UsiQuery`] per pattern in
    /// order. Answers are identical to calling [`UsiIndex::query`] in a
    /// loop. Two things amortise across the batch: the per-query setup
    /// (searcher construction, result allocation) is hoisted out of the
    /// loop, and **repeated patterns are answered once** — real query
    /// batches are heavily skewed towards hot patterns, and a duplicate
    /// costs one hash probe instead of a full `O(m log n + occ)` query.
    pub fn query_batch(&self, patterns: &[&[u8]]) -> Vec<UsiQuery> {
        self.query_accumulator_batch(patterns)
            .into_iter()
            .map(|(acc, source)| UsiQuery {
                value: acc.finish(self.utility.aggregator),
                occurrences: acc.count(),
                source,
            })
            .collect()
    }

    /// Batch variant of [`UsiIndex::query_accumulator`]: raw accumulators
    /// for a pattern batch, so multi-document callers (e.g. a fan-out
    /// over a catalog of indexes) can merge per-document occurrences
    /// before extracting aggregates. Duplicate patterns in the batch are
    /// computed once and copied.
    pub fn query_accumulator_batch(
        &self,
        patterns: &[&[u8]],
    ) -> Vec<(UtilityAccumulator, QuerySource)> {
        match &self.payload {
            Payload::Owned { ws, sa, .. } => {
                self.accumulate_batch(&SuffixArraySearcher::new(ws.text(), sa), patterns)
            }
            Payload::View(view) => self.accumulate_batch(
                &SuffixArraySearcher::with_access(view.text(), view.sa()),
                patterns,
            ),
        }
    }

    /// Batch body shared by both payload backings.
    fn accumulate_batch<A: SaAccess>(
        &self,
        searcher: &SuffixArraySearcher<'_, A>,
        patterns: &[&[u8]],
    ) -> Vec<(UtilityAccumulator, QuerySource)> {
        let mut first_seen: FxHashMap<&[u8], usize> = FxHashMap::default();
        let mut out: Vec<(UtilityAccumulator, QuerySource)> = Vec::with_capacity(patterns.len());
        for (i, &pattern) in patterns.iter().enumerate() {
            match first_seen.entry(pattern) {
                std::collections::hash_map::Entry::Occupied(entry) => {
                    let answer = out[*entry.get()];
                    out.push(answer);
                }
                std::collections::hash_map::Entry::Vacant(entry) => {
                    entry.insert(i);
                    out.push(self.query_accumulator_with(searcher, pattern));
                }
            }
        }
        out
    }

    /// Populates `H` from exact triplets (phase (ii), bit-vector variant):
    /// one sliding-window pass per distinct length, marked positions read
    /// from the SA intervals. `O(n · L_K)`. Exposed for the phase-(ii)
    /// ablation bench; normal construction goes through
    /// [`crate::builder::UsiBuilder`].
    pub fn populate_from_triplets(
        text: &[u8],
        sa: &[u32],
        psw: &LocalIndex,
        fingerprinter: &Fingerprinter,
        items: &[TopKSubstring],
    ) -> (FxHashMap<HKey, UtilityAccumulator>, usize) {
        let n = text.len();
        let mut h: FxHashMap<HKey, UtilityAccumulator> = FxHashMap::default();
        h.reserve(items.len());

        // Radix-style grouping by length.
        let (lengths, by_len) = crate::topk::group_by_length(items);

        let mut bits = vec![0u64; n.div_ceil(64)];
        for &len in &lengths {
            bits.fill(0);
            for item in &by_len[&len] {
                for r in item.lb..=item.rb {
                    let p = sa[r as usize] as usize;
                    bits[p / 64] |= 1 << (p % 64);
                }
            }
            let Some(mut window) = fingerprinter.rolling(text, len as usize) else {
                continue;
            };
            loop {
                let i = window.position();
                if bits[i / 64] >> (i % 64) & 1 == 1 {
                    h.entry((len, window.value())).or_default().add(psw.local(i, len as usize));
                }
                if !window.slide() {
                    break;
                }
            }
        }
        (h, lengths.len())
    }

    /// Parallel variant of [`UsiIndex::populate_from_triplets`]: the
    /// `L_K` length groups are independent sliding-window passes writing
    /// to key-disjoint parts of `H` (keys embed the length), so they are
    /// sharded across `threads` workers and the per-thread tables merged
    /// without conflicts. Same output as the sequential pass.
    pub fn populate_from_triplets_parallel(
        text: &[u8],
        sa: &[u32],
        psw: &LocalIndex,
        fingerprinter: &Fingerprinter,
        items: &[TopKSubstring],
        threads: usize,
    ) -> (FxHashMap<HKey, UtilityAccumulator>, usize) {
        let threads = threads.max(1);
        let (lengths, by_len) = crate::topk::group_by_length(items);
        let num_lengths = lengths.len();
        if threads == 1 || num_lengths <= 1 {
            return Self::populate_from_triplets(text, sa, psw, fingerprinter, items);
        }

        let n = text.len();
        let shards: Vec<FxHashMap<HKey, UtilityAccumulator>> = std::thread::scope(|scope| {
            let by_len = &by_len;
            let lengths = &lengths;
            let handles: Vec<_> = (0..threads.min(num_lengths))
                .map(|t| {
                    scope.spawn(move || {
                        let mut shard: FxHashMap<HKey, UtilityAccumulator> = FxHashMap::default();
                        let mut bits = vec![0u64; n.div_ceil(64)];
                        // strided assignment balances short and long lengths
                        for &len in lengths.iter().skip(t).step_by(threads.min(num_lengths)) {
                            bits.fill(0);
                            for item in &by_len[&len] {
                                for r in item.lb..=item.rb {
                                    let p = sa[r as usize] as usize;
                                    bits[p / 64] |= 1 << (p % 64);
                                }
                            }
                            let Some(mut window) = fingerprinter.rolling(text, len as usize) else {
                                continue;
                            };
                            loop {
                                let i = window.position();
                                if bits[i / 64] >> (i % 64) & 1 == 1 {
                                    shard
                                        .entry((len, window.value()))
                                        .or_default()
                                        .add(psw.local(i, len as usize));
                                }
                                if !window.slide() {
                                    break;
                                }
                            }
                        }
                        shard
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
        });

        let mut h: FxHashMap<HKey, UtilityAccumulator> = FxHashMap::default();
        h.reserve(items.len());
        for shard in shards {
            // keys are disjoint across shards: each (len, fp) lives in
            // exactly one length group
            h.extend(shard);
        }
        (h, num_lengths)
    }

    /// Populates `H` from witness estimates (phase (ii), fingerprint-set
    /// variant used with Approximate-Top-K): per length, collect the
    /// witnesses' fingerprints and aggregate every window whose
    /// fingerprint is in the set. Computes **exact** global utilities for
    /// the estimated substring set. `O(n · L_K)`. Exposed for the
    /// phase-(ii) ablation bench.
    pub fn populate_from_estimates(
        text: &[u8],
        psw: &LocalIndex,
        fingerprinter: &Fingerprinter,
        items: &[TopKEstimate],
    ) -> (FxHashMap<HKey, UtilityAccumulator>, usize) {
        let mut h: FxHashMap<HKey, UtilityAccumulator> = FxHashMap::default();
        h.reserve(items.len());
        let table = fingerprinter.table(text);

        let mut by_len: FxHashMap<u32, FxHashSet<u64>> = FxHashMap::default();
        for item in items {
            let fp = table.substring(item.witness as usize, (item.witness + item.len) as usize);
            by_len.entry(item.len).or_default().insert(fp);
        }
        let mut lengths: Vec<u32> = by_len.keys().copied().collect();
        lengths.sort_unstable();

        for &len in &lengths {
            let set = &by_len[&len];
            let Some(mut window) = fingerprinter.rolling(text, len as usize) else {
                continue;
            };
            loop {
                let fp = window.value();
                if set.contains(&fp) {
                    h.entry((len, fp)).or_default().add(psw.local(window.position(), len as usize));
                }
                if !window.slide() {
                    break;
                }
            }
        }
        (h, lengths.len())
    }
}

impl HeapSize for UsiIndex {
    fn heap_bytes(&self) -> usize {
        self.size_breakdown().total()
    }
}
