//! Effectiveness metrics for top-K substring estimation (paper,
//! Section IX-B, "Measures").
//!
//! * **Accuracy** — percentage of reported substrings whose reported
//!   frequency equals their true frequency *and* whose true frequency
//!   reaches the exact top-K threshold `τ_K` (membership up to ties);
//! * **Relative Error** —
//!   `(Σ_{P∈T_K} |occ(P)| − Σ_{P'∈T'_K} |occ(P')|) / Σ_{P∈T_K} |occ(P)|`,
//!   with true occurrence counts on both sides;
//! * **NDCG** — discounted cumulative gain of the reported ranking with
//!   true frequencies as gains, normalised by the ideal (exact) ranking.

use crate::topk::{SubstringRef, TopKSubstring};
use usi_strings::FxHashMap;
use usi_suffix::SuffixArraySearcher;

/// Effectiveness of an estimated top-K set against the exact one.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EffectivenessReport {
    /// Fraction in `[0, 1]` (the paper reports percentages).
    pub accuracy: f64,
    /// Relative error of total covered frequency; ≥ 0 when the estimate
    /// misses mass, and 0 for a perfect estimate.
    pub relative_error: f64,
    /// Normalised discounted cumulative gain in `[0, 1]`.
    pub ndcg: f64,
}

/// Evaluates a reported top-K list against the exact top-K of `text`.
///
/// * `exact` — output of the Section-V oracle (defines `K` and `τ_K`);
/// * `reported` — `(substring, reported frequency)` pairs in rank order
///   (estimated-frequency descending), e.g. from Approximate-Top-K or a
///   streaming baseline.
///
/// True frequencies of reported substrings are recomputed from the
/// suffix array (`O(m log n)` each). Duplicate reported substrings are
/// collapsed, keeping the first (highest-ranked) occurrence.
pub fn evaluate(
    text: &[u8],
    sa: &[u32],
    exact: &[TopKSubstring],
    reported: &[(SubstringRef, u64)],
) -> EffectivenessReport {
    let k = exact.len();
    if k == 0 {
        return EffectivenessReport { accuracy: 1.0, relative_error: 0.0, ndcg: 1.0 };
    }
    let searcher = SuffixArraySearcher::new(text, sa);
    let tau = exact.iter().map(|t| t.freq()).min().unwrap_or(0) as u64;

    // Deduplicate the reported list (first occurrence wins the rank).
    let mut seen: FxHashMap<Vec<u8>, ()> = FxHashMap::default();
    let mut items: Vec<(&SubstringRef, u64, u64)> = Vec::with_capacity(reported.len());
    for (sref, est_freq) in reported {
        let bytes = sref.resolve(text).to_vec();
        if seen.insert(bytes, ()).is_some() {
            continue;
        }
        let true_freq = searcher.count(sref.resolve(text)) as u64;
        items.push((sref, *est_freq, true_freq));
    }

    // Accuracy.
    let hits = items.iter().filter(|(_, est, truth)| est == truth && *truth >= tau).count();
    let accuracy = hits as f64 / k as f64;

    // Relative error over true frequency mass.
    let exact_mass: u64 = exact.iter().map(|t| t.freq() as u64).sum();
    let reported_mass: u64 = items.iter().map(|(_, _, truth)| *truth).sum();
    let relative_error = if exact_mass == 0 {
        0.0
    } else {
        (exact_mass as f64 - reported_mass as f64) / exact_mass as f64
    };

    // NDCG with true frequencies as gains.
    let dcg: f64 = items
        .iter()
        .take(k)
        .enumerate()
        .map(|(i, (_, _, truth))| *truth as f64 / ((i + 2) as f64).log2())
        .sum();
    let mut ideal_gains: Vec<u64> = exact.iter().map(|t| t.freq() as u64).collect();
    ideal_gains.sort_unstable_by(|a, b| b.cmp(a));
    let idcg: f64 =
        ideal_gains.iter().enumerate().map(|(i, &g)| g as f64 / ((i + 2) as f64).log2()).sum();
    let ndcg = if idcg == 0.0 { 1.0 } else { (dcg / idcg).min(1.0) };

    EffectivenessReport { accuracy, relative_error, ndcg }
}

/// Convenience: converts witness estimates into the `(SubstringRef, freq)`
/// shape [`evaluate`] expects.
pub fn estimates_as_reported(items: &[crate::topk::TopKEstimate]) -> Vec<(SubstringRef, u64)> {
    items.iter().map(|e| (SubstringRef::Witness { pos: e.witness, len: e.len }, e.freq)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx::{approximate_top_k, ApproxConfig};
    use crate::metrics;
    use crate::oracle::exact_top_k;

    #[test]
    fn perfect_estimate_scores_one() {
        let text = b"abracadabra_abracadabra_abra";
        let (exact, sa) = exact_top_k(text, 10);
        let reported: Vec<(SubstringRef, u64)> = exact
            .iter()
            .map(|t| {
                (SubstringRef::Witness { pos: sa[t.lb as usize], len: t.len }, t.freq() as u64)
            })
            .collect();
        let r = evaluate(text, &sa, &exact, &reported);
        assert_eq!(r.accuracy, 1.0);
        assert!(r.relative_error.abs() < 1e-12);
        assert!((r.ndcg - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_estimate_scores_zero() {
        let text = b"banana_banana";
        let (exact, sa) = exact_top_k(text, 5);
        let r = evaluate(text, &sa, &exact, &[]);
        assert_eq!(r.accuracy, 0.0);
        assert!((r.relative_error - 1.0).abs() < 1e-12);
        assert_eq!(r.ndcg, 0.0);
    }

    #[test]
    fn wrong_frequencies_hurt_accuracy_not_ndcg_much() {
        let text = b"aabaabaabaab";
        let (exact, sa) = exact_top_k(text, 4);
        // right substrings, frequencies off by one
        let reported: Vec<(SubstringRef, u64)> = exact
            .iter()
            .map(|t| {
                (SubstringRef::Witness { pos: sa[t.lb as usize], len: t.len }, t.freq() as u64 - 1)
            })
            .collect();
        let r = evaluate(text, &sa, &exact, &reported);
        assert_eq!(r.accuracy, 0.0);
        // NDCG uses true frequencies, so it stays perfect
        assert!((r.ndcg - 1.0).abs() < 1e-12);
        assert!(r.relative_error.abs() < 1e-12);
    }

    #[test]
    fn single_round_at_is_perfect() {
        let text = b"mississippi_mississippi";
        let (exact, sa) = exact_top_k(text, 8);
        let res = approximate_top_k(text, &ApproxConfig::new(8, 1));
        let r = evaluate(text, &sa, &exact, &metrics::estimates_as_reported(&res.items));
        assert_eq!(r.accuracy, 1.0);
        assert!((r.ndcg - 1.0).abs() < 1e-9);
    }

    #[test]
    fn duplicates_are_collapsed() {
        let text = b"abab";
        let (exact, sa) = exact_top_k(text, 3); // a, b, ab (freq 2 each)
        let dup = vec![
            (SubstringRef::Owned(b"a".to_vec()), 2u64),
            (SubstringRef::Owned(b"a".to_vec()), 2u64),
            (SubstringRef::Owned(b"a".to_vec()), 2u64),
        ];
        let r = evaluate(text, &sa, &exact, &dup);
        assert!((r.accuracy - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn owned_and_witness_refs_agree() {
        let text = b"banana_banana";
        let (exact, sa) = exact_top_k(text, 5);
        let as_witness: Vec<(SubstringRef, u64)> = exact
            .iter()
            .map(|t| {
                (SubstringRef::Witness { pos: sa[t.lb as usize], len: t.len }, t.freq() as u64)
            })
            .collect();
        let as_owned: Vec<(SubstringRef, u64)> = exact
            .iter()
            .map(|t| (SubstringRef::Owned(t.bytes(text, &sa).to_vec()), t.freq() as u64))
            .collect();
        assert_eq!(
            evaluate(text, &sa, &exact, &as_witness),
            evaluate(text, &sa, &exact, &as_owned)
        );
    }
}
