//! Dynamic USI under letter appends (paper, Section X).
//!
//! The paper sketches a partial solution that keeps the suffix tree
//! online (Ukkonen), a heap of node frequencies, and a fingerprint table,
//! but observes that maintaining ancestor frequencies and hash-table
//! entries "can in general be very costly" and defers it to future work.
//!
//! We implement an honest, fully correct alternative with the same
//! interface: an **epoch** design. The static `USI_TOP-K` index covers a
//! frozen prefix; appended letters accumulate in a tail buffer. A query
//! combines (a) the static answer over the prefix with (b) a rolling-hash
//! scan of the boundary-plus-tail region, whose occurrences the static
//! index cannot see. When the tail outgrows a threshold the index is
//! rebuilt (amortised `O(construction / threshold)` per append). `PSW`
//! and the fingerprint table extend per append exactly as in the paper's
//! sketch.
//!
//! Query cost: `O(m + τ_K + tail)`; append cost: amortised near-constant
//! between rebuilds.

use crate::builder::UsiBuilder;
use crate::engine::QueryEngine;
use crate::index::{IndexSize, QuerySource, UsiIndex, UsiQuery};
use usi_strings::{GlobalUtility, UtilityAccumulator, WeightedString};

/// Append-only USI index with epoch rebuilds.
///
/// ```
/// use usi_core::{DynamicUsi, UsiBuilder};
/// use usi_strings::WeightedString;
/// let ws = WeightedString::uniform(b"abcabcabc".to_vec(), 1.0);
/// let mut dyn_idx = DynamicUsi::new(UsiBuilder::new().with_k(5).deterministic(1), ws, 16);
/// dyn_idx.push(b'a', 2.0);
/// dyn_idx.push(b'b', 2.0);
/// dyn_idx.push(b'c', 2.0);
/// // "abc" now occurs 4 times: 3 in the prefix, 1 spanning into the tail
/// let q = dyn_idx.query(b"abc");
/// assert_eq!(q.occurrences, 4);
/// assert_eq!(q.value, Some(3.0 * 3.0 + 6.0));
/// ```
#[derive(Debug, Clone)]
pub struct DynamicUsi {
    builder: UsiBuilder,
    index: UsiIndex,
    tail_text: Vec<u8>,
    tail_weights: Vec<f64>,
    /// Rebuild when the tail reaches this many letters.
    threshold: usize,
    rebuilds: usize,
}

impl DynamicUsi {
    /// Builds the initial epoch over `ws`. `threshold` is the tail length
    /// that triggers a rebuild (clamped to ≥ 1).
    pub fn new(builder: UsiBuilder, ws: WeightedString, threshold: usize) -> Self {
        let index = builder.build(ws);
        Self {
            builder,
            index,
            tail_text: Vec::new(),
            tail_weights: Vec::new(),
            threshold: threshold.max(1),
            rebuilds: 0,
        }
    }

    /// Total indexed length (prefix + tail).
    pub fn len(&self) -> usize {
        self.index.text().len() + self.tail_text.len()
    }

    /// Whether nothing has been indexed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current tail length (letters appended since the last rebuild).
    pub fn tail_len(&self) -> usize {
        self.tail_text.len()
    }

    /// Number of epoch rebuilds performed so far.
    pub fn rebuilds(&self) -> usize {
        self.rebuilds
    }

    /// The builder every epoch rebuild runs through — rebuilds reuse its
    /// full configuration, including [`crate::BuildOptions::threads`]
    /// and the deterministic fingerprint seed, so a rebuilt index is
    /// byte-identical to a from-scratch build of the same builder over
    /// the concatenated string (pinned by a regression test).
    pub fn builder(&self) -> &UsiBuilder {
        &self.builder
    }

    /// Retunes the worker-thread count used by subsequent rebuilds
    /// (e.g. after moving the index to a machine with more cores).
    pub fn set_threads(&mut self, threads: usize) {
        self.builder = self.builder.clone().with_threads(threads);
    }

    /// The current full text (prefix + tail), materialised.
    pub fn text(&self) -> Vec<u8> {
        let mut t = self.index.text().to_vec();
        t.extend_from_slice(&self.tail_text);
        t
    }

    /// Appends one weighted letter (`S' = Sα` in the paper's notation).
    pub fn push(&mut self, letter: u8, weight: f64) {
        self.tail_text.push(letter);
        self.tail_weights.push(weight);
        if self.tail_text.len() >= self.threshold {
            self.rebuild();
        }
    }

    /// Forces an epoch rebuild, folding the tail into the static index.
    ///
    /// The rebuild runs through the stored builder, so it reuses the
    /// builder's [`crate::BuildOptions::threads`]: an index whose
    /// initial build was threaded rebuilds threaded too (and, with a
    /// deterministic seed, byte-identically to a serial build).
    pub fn rebuild(&mut self) {
        if self.tail_text.is_empty() {
            return;
        }
        let mut text = self.index.text().to_vec();
        let mut weights = self.index.weights().to_vec();
        text.append(&mut self.tail_text);
        weights.append(&mut self.tail_weights);
        let ws = WeightedString::new(text, weights)
            .expect("rebuild concatenation preserves the length invariant");
        self.index = self.builder.build(ws);
        self.rebuilds += 1;
    }

    /// Answers `U(P)` over the full (prefix + tail) string.
    pub fn query(&self, pattern: &[u8]) -> UsiQuery {
        let (acc, source) = self.query_accumulator(pattern);
        UsiQuery {
            value: acc.finish(self.index.utility().aggregator),
            occurrences: acc.count(),
            source,
        }
    }

    /// Like [`DynamicUsi::query`] but returns the raw accumulator, so
    /// multi-document callers can merge further occurrences before
    /// extracting an aggregate (the [`QueryEngine`] contract).
    pub fn query_accumulator(&self, pattern: &[u8]) -> (UtilityAccumulator, QuerySource) {
        let m = pattern.len();
        let total = self.len();
        if m == 0 || m > total {
            return (UtilityAccumulator::new(), QuerySource::TextIndex);
        }
        // (a) occurrences fully inside the frozen prefix.
        let (mut acc, source) = self.index.query_accumulator(pattern);

        // (b) occurrences starting late enough to touch the tail: starts
        // in [prefix_len − m + 1, total − m]. Scan with a rolling weight
        // sum; each candidate is verified by direct comparison (O(m)),
        // which is fine since the region has ≤ m + tail positions.
        let prefix_len = self.index.text().len();
        if !self.tail_text.is_empty() {
            let first = (prefix_len + 1).saturating_sub(m);
            let last = total - m; // inclusive
            let prefix_text = self.index.text();
            let prefix_weights = self.index.weights();
            let letter = |i: usize| -> u8 {
                if i < prefix_len {
                    prefix_text[i]
                } else {
                    self.tail_text[i - prefix_len]
                }
            };
            let weight = |i: usize| -> f64 {
                if i < prefix_len {
                    prefix_weights.at(i)
                } else {
                    self.tail_weights[i - prefix_len]
                }
            };
            // Scan the boundary region; the local utility of a match is
            // folded directly (O(m) only on matches, which the O(m)
            // verification already costs).
            let local_kind = self.index.utility().local;
            for start in first..=last {
                // Only count starts that were invisible to the static
                // index: those whose occurrence extends past the prefix.
                if start + m > prefix_len && (0..m).all(|k| letter(start + k) == pattern[k]) {
                    let local = match local_kind {
                        usi_strings::LocalWindow::Sum => (start..start + m).map(weight).sum(),
                        usi_strings::LocalWindow::Product => {
                            (start..start + m).map(weight).product()
                        }
                    };
                    acc.add(local);
                }
            }
        }
        (acc, source)
    }
}

impl QueryEngine for DynamicUsi {
    fn query(&self, pattern: &[u8]) -> UsiQuery {
        DynamicUsi::query(self, pattern)
    }

    fn query_accumulator(&self, pattern: &[u8]) -> (UtilityAccumulator, QuerySource) {
        DynamicUsi::query_accumulator(self, pattern)
    }

    fn utility(&self) -> GlobalUtility {
        self.index.utility()
    }

    fn indexed_len(&self) -> usize {
        self.len()
    }

    fn cached_substrings(&self) -> usize {
        self.index.cached_substrings()
    }

    /// The frozen prefix's breakdown, with the tail buffers counted
    /// under `text` / `weights`.
    fn size_breakdown(&self) -> IndexSize {
        let mut size = self.index.size_breakdown();
        size.text += self.tail_text.capacity();
        size.weights += self.tail_weights.capacity() * std::mem::size_of::<f64>();
        size
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use usi_strings::{GlobalAggregator, GlobalUtility};

    fn brute(ws: &WeightedString, pat: &[u8], agg: GlobalAggregator) -> (Option<f64>, u64) {
        let acc = GlobalUtility::with_aggregator(agg).brute_force(ws, pat);
        (acc.finish(agg), acc.count())
    }

    #[test]
    fn appends_then_queries_match_brute_force() {
        let mut rng = StdRng::seed_from_u64(41);
        let n0 = 120;
        let text: Vec<u8> = (0..n0).map(|_| b'a' + rng.gen_range(0..3u8)).collect();
        let weights: Vec<f64> = (0..n0).map(|_| rng.gen_range(0.0..1.0)).collect();
        let ws = WeightedString::new(text, weights).unwrap();
        let mut idx = DynamicUsi::new(
            UsiBuilder::new().with_k(10).deterministic(2),
            ws,
            1000, // no automatic rebuild during the test
        );

        // shadow weighted string for brute force
        let rebuild_shadow = |idx: &DynamicUsi| {
            let text = idx.text();
            let mut weights = idx.index.weights().to_vec();
            weights.extend_from_slice(&idx.tail_weights);
            WeightedString::new(text, weights).unwrap()
        };

        for step in 0..60 {
            let b = b'a' + rng.gen_range(0..3u8);
            let w = rng.gen_range(0.0..1.0);
            idx.push(b, w);
            if step % 7 == 0 {
                let shadow = rebuild_shadow(&idx);
                for _ in 0..10 {
                    let m = rng.gen_range(1..6usize);
                    let start = rng.gen_range(0..shadow.len() - m);
                    let pat = shadow.text()[start..start + m].to_vec();
                    let (want, want_occ) = brute(&shadow, &pat, GlobalAggregator::Sum);
                    let got = idx.query(&pat);
                    assert_eq!(got.occurrences, want_occ, "pattern {pat:?}");
                    let (a, b) = (got.value.unwrap(), want.unwrap());
                    assert!((a - b).abs() < 1e-6 * (1.0 + b.abs()), "pattern {pat:?}");
                }
            }
        }
    }

    #[test]
    fn automatic_rebuild_fires_and_stays_correct() {
        let ws = WeightedString::uniform(b"abcabc".to_vec(), 1.0);
        let mut idx = DynamicUsi::new(UsiBuilder::new().with_k(4).deterministic(3), ws, 4);
        for _ in 0..3 {
            for &b in b"abc" {
                idx.push(b, 1.0);
            }
        }
        assert!(idx.rebuilds() >= 1);
        // "abc" occurs 5 times in abcabc + abcabcabc appended
        let q = idx.query(b"abc");
        assert_eq!(q.occurrences, 5);
        assert_eq!(q.value, Some(15.0));
        assert!(idx.tail_len() < 4);
    }

    #[test]
    fn boundary_spanning_occurrences_counted_once() {
        // prefix "aaa", tail "aaa": "aa" occurs 5 times in "aaaaaa"
        let ws = WeightedString::uniform(b"aaa".to_vec(), 1.0);
        let mut idx = DynamicUsi::new(UsiBuilder::new().with_k(2).deterministic(4), ws, 100);
        for _ in 0..3 {
            idx.push(b'a', 1.0);
        }
        let q = idx.query(b"aa");
        assert_eq!(q.occurrences, 5);
        assert_eq!(q.value, Some(10.0));
        // whole-string pattern
        let q = idx.query(b"aaaaaa");
        assert_eq!(q.occurrences, 1);
        assert_eq!(q.value, Some(6.0));
    }

    #[test]
    fn empty_tail_equals_static_index() {
        let ws = WeightedString::uniform(b"banana".to_vec(), 1.0);
        let idx = DynamicUsi::new(UsiBuilder::new().with_k(3).deterministic(5), ws.clone(), 10);
        let static_idx = UsiBuilder::new().with_k(3).deterministic(5).build(ws);
        for pat in [&b"an"[..], b"ana", b"x", b"banana"] {
            assert_eq!(idx.query(pat).occurrences, static_idx.query(pat).occurrences);
        }
    }

    /// Regression test for rebuild parallelism: a rebuild must run
    /// through the stored builder — thread count included — so the
    /// rebuilt index serialises byte-identically to both a serial and a
    /// threaded from-scratch build over the concatenated string.
    #[test]
    fn rebuild_reuses_builder_threads() {
        let mut rng = StdRng::seed_from_u64(47);
        let n0 = 400;
        let text: Vec<u8> = (0..n0).map(|_| b'a' + rng.gen_range(0..3u8)).collect();
        let weights: Vec<f64> = (0..n0).map(|_| rng.gen_range(0.0..1.0)).collect();
        let ws = WeightedString::new(text, weights).unwrap();

        let threaded_builder = UsiBuilder::new().with_k(30).deterministic(48).with_threads(3);
        let mut idx = DynamicUsi::new(threaded_builder, ws.clone(), 1_000_000);
        assert_eq!(idx.builder().clone().build(ws.clone()).cached_substrings(), 30);

        let mut appended: Vec<(u8, f64)> = Vec::new();
        for _ in 0..50 {
            let b = b'a' + rng.gen_range(0..3u8);
            let w = rng.gen_range(0.0..1.0);
            idx.push(b, w);
            appended.push((b, w));
        }
        idx.rebuild();
        assert_eq!(idx.rebuilds(), 1);
        assert_eq!(idx.tail_len(), 0);

        let (mut full_text, mut full_weights) = ws.into_parts();
        full_text.extend(appended.iter().map(|&(b, _)| b));
        full_weights.extend(appended.iter().map(|&(_, w)| w));
        let full = WeightedString::new(full_text, full_weights).unwrap();

        let mut rebuilt_bytes = Vec::new();
        idx.index.write_to(&mut rebuilt_bytes).unwrap();
        for threads in [1usize, 3] {
            let scratch = UsiBuilder::new()
                .with_k(30)
                .deterministic(48)
                .with_threads(threads)
                .build(full.clone());
            let mut scratch_bytes = Vec::new();
            scratch.write_to(&mut scratch_bytes).unwrap();
            assert_eq!(
                rebuilt_bytes, scratch_bytes,
                "threaded rebuild differs from a {threads}-thread from-scratch build"
            );
        }

        // retuning the thread count sticks for later rebuilds and keeps
        // the output identical
        idx.set_threads(1);
        idx.push(b'a', 0.5);
        idx.rebuild();
        let mut retuned_bytes = Vec::new();
        idx.index.write_to(&mut retuned_bytes).unwrap();
        let (mut text2, mut weights2) = full.into_parts();
        text2.push(b'a');
        weights2.push(0.5);
        let scratch = UsiBuilder::new()
            .with_k(30)
            .deterministic(48)
            .build(WeightedString::new(text2, weights2).unwrap());
        let mut scratch_bytes = Vec::new();
        scratch.write_to(&mut scratch_bytes).unwrap();
        assert_eq!(retuned_bytes, scratch_bytes);
    }

    #[test]
    fn pattern_longer_than_text_then_grows_into_it() {
        let ws = WeightedString::uniform(b"ab".to_vec(), 1.0);
        let mut idx = DynamicUsi::new(UsiBuilder::new().with_k(2).deterministic(6), ws, 100);
        assert_eq!(idx.query(b"abab").occurrences, 0);
        idx.push(b'a', 1.0);
        idx.push(b'b', 1.0);
        assert_eq!(idx.query(b"abab").occurrences, 1);
    }
}
