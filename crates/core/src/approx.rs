//! Approximate-Top-K: estimating the top-K frequent substrings in small
//! space (paper, Section VI).
//!
//! The algorithm runs `s` rounds. Round `i` samples the positions
//! `{i + r·s}` of `S` (the `s` samples partition the text positions),
//! builds a *sparse* suffix/LCP array over just the sampled suffixes
//! (Step 2), extracts the top-K frequent substrings **of the sample** via
//! the bottom-up lcp-interval traversal (Step 3), and merges them with
//! the running result, keeping the best `K` by accumulated frequency
//! (Step 4). All string comparisons go through an [`LceOracle`].
//!
//! The error is one-sided (Theorem 3): a substring's occurrences are
//! partitioned across the `s` samples, and it only accumulates the counts
//! of rounds where it survived into the sample's top-K — so reported
//! frequencies never exceed the truth.
//!
//! Time `Õ(n + sK)`; tracked working space `O(n/s + K)` on top of the
//! text and the (shared) LCE oracle — see DESIGN.md §3 for the
//! substitution of Prezza's in-place LCE structure.

use crate::oracle::TopKOracle;
use crate::topk::TopKEstimate;
use usi_strings::{Fingerprinter, HeapSize};
use usi_suffix::sparse::arithmetic_sample;
use usi_suffix::{
    lcp_intervals, sparse_suffix_array, FingerprintLce, LceBackend, LceOracle, NaiveLce, RmqLce,
};

/// Configuration for [`approximate_top_k`].
#[derive(Debug, Clone)]
pub struct ApproxConfig {
    /// Number of substrings to report.
    pub k: usize,
    /// Number of sampling rounds `s ∈ [1, n]`; `s = 1` is exact. The
    /// paper recommends `s = O(log n)`.
    pub rounds: usize,
    /// LCE oracle backend for all suffix comparisons.
    pub lce: LceBackend,
    /// Base for the fingerprint LCE backend (deterministic builds).
    pub fingerprint_base: u64,
}

impl ApproxConfig {
    /// A configuration with the given `k` and `s`, naive LCE.
    pub fn new(k: usize, rounds: usize) -> Self {
        Self { k, rounds, lce: LceBackend::Naive, fingerprint_base: 0x5eed_cafe }
    }

    /// Selects an LCE backend.
    pub fn with_lce(mut self, lce: LceBackend) -> Self {
        self.lce = lce;
        self
    }
}

/// Output of [`approximate_top_k`].
#[derive(Debug, Clone)]
pub struct ApproxResult {
    /// The estimated top-K substrings, sorted by estimated frequency
    /// descending (ties: shorter first, then smaller witness).
    pub items: Vec<TopKEstimate>,
    /// Peak bytes of the sampler's own working state (sparse arrays,
    /// per-round node lists, merge buffers) — the quantity the paper's
    /// Fig. 5 space plots track for AT.
    pub peak_tracked_bytes: usize,
    /// Number of rounds actually executed.
    pub rounds: usize,
}

enum Oracle<'t> {
    Naive(NaiveLce<'t>),
    Fingerprint(FingerprintLce),
    Rmq(RmqLce),
}

impl LceOracle for Oracle<'_> {
    fn text_len(&self) -> usize {
        match self {
            Self::Naive(o) => o.text_len(),
            Self::Fingerprint(o) => o.text_len(),
            Self::Rmq(o) => o.text_len(),
        }
    }

    fn lce(&self, i: usize, j: usize) -> usize {
        match self {
            Self::Naive(o) => o.lce(i, j),
            Self::Fingerprint(o) => o.lce(i, j),
            Self::Rmq(o) => o.lce(i, j),
        }
    }
}

/// Runs Approximate-Top-K on `text` (Theorem 3).
pub fn approximate_top_k(text: &[u8], cfg: &ApproxConfig) -> ApproxResult {
    let n = text.len();
    if n == 0 || cfg.k == 0 {
        return ApproxResult { items: Vec::new(), peak_tracked_bytes: 0, rounds: 0 };
    }
    let s = cfg.rounds.clamp(1, n);
    let oracle = match cfg.lce {
        LceBackend::Naive => Oracle::Naive(NaiveLce::new(text)),
        LceBackend::Fingerprint => Oracle::Fingerprint(FingerprintLce::new(
            text,
            Fingerprinter::with_base(cfg.fingerprint_base),
        )),
        LceBackend::Rmq => Oracle::Rmq(RmqLce::new(text)),
    };

    let mut acc: Vec<TopKEstimate> = Vec::new();
    let mut peak = 0usize;
    for round in 0..s {
        // Step 1 + 2: sample and build the sparse index.
        let sample = arithmetic_sample(n, round, s);
        if sample.is_empty() {
            continue;
        }
        let idx = sparse_suffix_array(text, sample, &oracle);

        // Step 3: top-K of the sample via the lcp-interval traversal.
        let nodes = lcp_intervals(&idx.slcp, |i| (n - idx.ssa[i] as usize) as u32, true);
        let nodes_bytes = nodes.capacity() * std::mem::size_of::<usi_suffix::LcpInterval>();
        let round_oracle = TopKOracle::from_nodes(nodes, idx.len());
        let round_items: Vec<TopKEstimate> = round_oracle
            .top_k(cfg.k)
            .into_iter()
            .map(|t| TopKEstimate {
                witness: idx.ssa[t.lb as usize],
                len: t.len,
                freq: t.freq() as u64,
            })
            .collect();

        peak = peak.max(
            idx.heap_bytes()
                + nodes_bytes
                + round_oracle.heap_bytes()
                + (acc.len() + round_items.len()) * 2 * std::mem::size_of::<TopKEstimate>(),
        );

        // Step 4: merge with the accumulated list, keep the top-K.
        acc = merge_top_k(text, &oracle, acc, round_items, cfg.k);
    }
    ApproxResult { items: acc, peak_tracked_bytes: peak, rounds: s }
}

/// Lexicographically compares the substrings `S[a.witness..+a.len)` and
/// `S[b.witness..+b.len)` with one LCE query.
fn cmp_substrings(
    text: &[u8],
    oracle: &impl LceOracle,
    a: &TopKEstimate,
    b: &TopKEstimate,
) -> std::cmp::Ordering {
    let (wa, wb) = (a.witness as usize, b.witness as usize);
    let common = oracle.lce(wa, wb).min(a.len as usize).min(b.len as usize);
    if common < a.len as usize && common < b.len as usize {
        text[wa + common].cmp(&text[wb + common])
    } else {
        a.len.cmp(&b.len) // one is a prefix of the other
    }
}

/// Step 4: concatenate, sort lexicographically, fold duplicates by
/// summing their frequencies, re-sort by frequency, truncate to `k`.
fn merge_top_k(
    text: &[u8],
    oracle: &impl LceOracle,
    acc: Vec<TopKEstimate>,
    fresh: Vec<TopKEstimate>,
    k: usize,
) -> Vec<TopKEstimate> {
    let mut combined = acc;
    combined.extend(fresh);
    combined.sort_unstable_by(|a, b| cmp_substrings(text, oracle, a, b));

    let mut merged: Vec<TopKEstimate> = Vec::with_capacity(combined.len());
    for item in combined {
        if let Some(last) = merged.last_mut() {
            if last.len == item.len
                && oracle.lce(last.witness as usize, item.witness as usize) >= item.len as usize
            {
                last.freq += item.freq;
                continue;
            }
        }
        merged.push(item);
    }
    merged.sort_unstable_by(|a, b| {
        b.freq.cmp(&a.freq).then(a.len.cmp(&b.len)).then(a.witness.cmp(&b.witness))
    });
    merged.truncate(k);
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::exact_top_k;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use usi_suffix::naive::substring_frequencies_naive;

    #[test]
    fn single_round_is_exact() {
        for text in [&b"banana"[..], b"mississippi", b"abracadabra", b"aaaa"] {
            for k in [1usize, 3, 8, 20] {
                let approx = approximate_top_k(text, &ApproxConfig::new(k, 1));
                let (exact, sa) = exact_top_k(text, k);
                assert_eq!(approx.items.len(), exact.len());
                // same substrings with same frequencies (as sets)
                let mut got: Vec<(Vec<u8>, u64)> =
                    approx.items.iter().map(|e| (e.bytes(text).to_vec(), e.freq)).collect();
                let mut want: Vec<(Vec<u8>, u64)> =
                    exact.iter().map(|t| (t.bytes(text, &sa).to_vec(), t.freq() as u64)).collect();
                got.sort();
                want.sort();
                // frequency multisets must agree even if tie-broken differently
                let gf: Vec<u64> = got.iter().map(|x| x.1).collect();
                let wf: Vec<u64> = want.iter().map(|x| x.1).collect();
                let mut gfs = gf.clone();
                let mut wfs = wf.clone();
                gfs.sort_unstable();
                wfs.sort_unstable();
                assert_eq!(gfs, wfs, "text={text:?} k={k}");
            }
        }
    }

    #[test]
    fn frequencies_never_overestimated() {
        let mut rng = StdRng::seed_from_u64(23);
        for _ in 0..20 {
            let n = rng.gen_range(10..150);
            let text: Vec<u8> = (0..n).map(|_| b'a' + rng.gen_range(0..3u8)).collect();
            let truth = substring_frequencies_naive(&text);
            for s in [1usize, 2, 3, 5, 8] {
                let res = approximate_top_k(&text, &ApproxConfig::new(10, s));
                for item in &res.items {
                    let bytes = item.bytes(&text).to_vec();
                    let true_freq = truth[&bytes] as u64;
                    assert!(
                        item.freq <= true_freq,
                        "overestimate: {bytes:?} est={} true={true_freq} s={s}",
                        item.freq
                    );
                }
            }
        }
    }

    #[test]
    fn backends_agree() {
        let mut rng = StdRng::seed_from_u64(31);
        let text: Vec<u8> = (0..300).map(|_| b'a' + rng.gen_range(0..4u8)).collect();
        for s in [2usize, 4, 7] {
            let base = ApproxConfig::new(12, s);
            let naive = approximate_top_k(&text, &base.clone().with_lce(LceBackend::Naive));
            let fp = approximate_top_k(&text, &base.clone().with_lce(LceBackend::Fingerprint));
            let rmq = approximate_top_k(&text, &base.with_lce(LceBackend::Rmq));
            assert_eq!(naive.items, fp.items, "s={s}");
            assert_eq!(naive.items, rmq.items, "s={s}");
        }
    }

    #[test]
    fn degenerate_inputs() {
        assert!(approximate_top_k(b"", &ApproxConfig::new(5, 3)).items.is_empty());
        assert!(approximate_top_k(b"abc", &ApproxConfig::new(0, 3)).items.is_empty());
        // s larger than n is clamped
        let res = approximate_top_k(b"ab", &ApproxConfig::new(3, 100));
        assert_eq!(res.rounds, 2);
        assert!(!res.items.is_empty());
    }

    #[test]
    fn unary_text_estimates() {
        // "aaaa...": top substrings are "a", "aa", ... — AT must find them.
        let text = vec![b'a'; 64];
        let res = approximate_top_k(&text, &ApproxConfig::new(3, 4));
        let strings: Vec<Vec<u8>> = res.items.iter().map(|e| e.bytes(&text).to_vec()).collect();
        assert_eq!(strings[0], b"a".to_vec());
        // frequencies are lower bounds but the ordering must hold
        assert!(res.items[0].freq >= res.items[1].freq);
    }

    #[test]
    fn high_accuracy_on_structured_text() {
        // A text with clear heavy hitters: "the " planted repeatedly.
        let mut rng = StdRng::seed_from_u64(77);
        let mut text = Vec::new();
        for _ in 0..200 {
            if rng.gen_bool(0.4) {
                text.extend_from_slice(b"the ");
            } else {
                text.push(b'a' + rng.gen_range(0..6u8));
            }
        }
        let k = 20;
        let res = approximate_top_k(&text, &ApproxConfig::new(k, 4));
        let truth = substring_frequencies_naive(&text);
        let (exact, _) = exact_top_k(&text, k);
        let tau = exact.iter().map(|t| t.freq()).min().unwrap() as u64;
        // most reported items should have their exact frequency
        let exact_hits =
            res.items.iter().filter(|e| truth[&e.bytes(&text).to_vec()] as u64 == e.freq).count();
        assert!(exact_hits * 2 >= k, "only {exact_hits}/{k} exact (tau={tau})");
    }
}
