//! `SubstringHK`: the paper's adaptation of HeavyKeeper to the substrings
//! of a single string (Section VII).
//!
//! For every position `i`, the single letter `S[i]` is offered to the
//! HeavyKeeper summary; the window is then extended to `S[i .. i+ℓ]`
//! (a) only while the previous window `S[i .. i+ℓ−1]` sits in `ssummary`
//! and (b) with geometric probability `1/c` per extra letter, so the
//! expected number of hashed substrings per position is `O(1)` and the
//! total stream length `z` stays linear in `n` on average.
//!
//! Substrings are keyed by Karp–Rabin fingerprints mixed with the length.
//! "The frequency value of a string is the number of times it has been a
//! candidate for insertion" — which is exactly why the scheme
//! under-counts long frequent substrings: they are rarely *offered*
//! (Section VII's failure argument; see the `(AB)^{n/2}` test).

use crate::heavy_keeper::HeavyKeeper;
use crate::{MinedString, SubstringMiner};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use usi_strings::{Fingerprinter, FxHashMap};

/// Tuning knobs for [`SubstringHk`].
#[derive(Debug, Clone)]
pub struct SubstringHkConfig {
    /// Per-letter extension probability `1/c` (`c > 1`).
    pub extension_prob: f64,
    /// HeavyKeeper sketch width multiplier (width = `mult · k`).
    pub width_mult: usize,
    /// HeavyKeeper sketch depth.
    pub depth: usize,
    /// HeavyKeeper decay base `b`.
    pub decay_base: f64,
    /// RNG / hash seed.
    pub seed: u64,
}

impl Default for SubstringHkConfig {
    fn default() -> Self {
        Self {
            extension_prob: 0.5, // c = 2
            width_mult: 8,
            depth: 2,
            decay_base: 1.08,
            seed: 0x6b5a_11ce,
        }
    }
}

/// The `SubstringHK` miner.
#[derive(Debug, Clone)]
pub struct SubstringHk {
    cfg: SubstringHkConfig,
    last_state_bytes: usize,
    /// Number of substrings hashed during the last run (the paper's `z`).
    pub hashed_substrings: u64,
}

impl SubstringHk {
    /// A miner with the given configuration.
    pub fn new(cfg: SubstringHkConfig) -> Self {
        Self { cfg, last_state_bytes: 0, hashed_substrings: 0 }
    }

    /// A miner with default parameters and the given seed.
    pub fn with_seed(seed: u64) -> Self {
        Self::new(SubstringHkConfig { seed, ..SubstringHkConfig::default() })
    }
}

/// Mixes a fingerprint with the substring length into one summary key.
#[inline]
fn key_of(fp: u64, len: usize) -> u64 {
    let mut z = fp ^ (len as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z ^ (z >> 31)
}

impl SubstringMiner for SubstringHk {
    fn name(&self) -> &'static str {
        "SH"
    }

    fn mine(&mut self, text: &[u8], k: usize) -> Vec<MinedString> {
        let n = text.len();
        if n == 0 || k == 0 {
            return Vec::new();
        }
        let fingerprinter = Fingerprinter::with_base(self.cfg.seed | 1);
        let table = fingerprinter.table(text);
        let mut hk = HeavyKeeper::new(
            k,
            (self.cfg.width_mult * k).max(64),
            self.cfg.depth,
            self.cfg.decay_base,
            self.cfg.seed,
        );
        let mut rng = SmallRng::seed_from_u64(self.cfg.seed ^ 0x5b57_a11c);
        // key → witness (pos, len) for spelling the report
        let mut witness: FxHashMap<u64, (u32, u32)> = FxHashMap::default();
        let mut hashed = 0u64;

        for i in 0..n {
            let mut len = 1usize;
            loop {
                if i + len > n {
                    break;
                }
                let key = key_of(table.substring(i, i + len), len);
                hashed += 1;
                let in_summary = hk.insert(key);
                if in_summary {
                    witness.entry(key).or_insert((i as u32, len as u32));
                }
                // extension gates: membership of the current window, then
                // the geometric coin
                if !in_summary || !rng.gen_bool(self.cfg.extension_prob) {
                    break;
                }
                len += 1;
            }
        }
        self.hashed_substrings = hashed;
        self.last_state_bytes =
            hk.state_bytes() + witness.capacity() * (std::mem::size_of::<(u64, (u32, u32))>() + 1);

        hk.top_k()
            .into_iter()
            .filter_map(|(key, freq)| {
                witness.get(&key).map(|&(pos, len)| MinedString {
                    bytes: text[pos as usize..(pos + len) as usize].to_vec(),
                    freq,
                })
            })
            .collect()
    }

    fn state_bytes(&self) -> usize {
        self.last_state_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_letters_are_counted_exactly() {
        // with k ≥ σ and no competition, every letter is offered n times
        let text = b"aaabbbbbbcc".to_vec();
        let mut sh = SubstringHk::with_seed(1);
        let out = sh.mine(&text, 20);
        let freq_of = |s: &[u8]| out.iter().find(|m| m.bytes == s).map(|m| m.freq);
        assert_eq!(freq_of(b"b"), Some(6));
        assert_eq!(freq_of(b"a"), Some(3));
        assert_eq!(freq_of(b"c"), Some(2));
    }

    #[test]
    fn reports_at_most_k() {
        let text = b"abcdefghij".repeat(10);
        let mut sh = SubstringHk::with_seed(2);
        assert!(sh.mine(&text, 5).len() <= 5);
    }

    #[test]
    fn degenerate_inputs() {
        let mut sh = SubstringHk::with_seed(3);
        assert!(sh.mine(b"", 5).is_empty());
        assert!(sh.mine(b"abc", 0).is_empty());
    }

    #[test]
    fn hashed_substring_count_is_linear() {
        // expected z ≈ n · Σ (1/c)^j ≤ 2n for c = 2; allow generous slack
        let text: Vec<u8> = b"ab".repeat(2000);
        let mut sh = SubstringHk::with_seed(4);
        sh.mine(&text, 16);
        assert!(
            sh.hashed_substrings <= 4 * text.len() as u64,
            "z = {} for n = {}",
            sh.hashed_substrings,
            text.len()
        );
    }

    #[test]
    fn misses_long_frequent_substrings() {
        // Section VII: (AB)^{n/2} defeats the extension rule — the
        // geometric gate alone makes offering a length-ℓ substring
        // exponentially unlikely, so long frequent substrings are
        // drastically under-counted or missing.
        let text = b"AB".repeat(512);
        let mut sh = SubstringHk::with_seed(5);
        let out = sh.mine(&text, 16);
        let longest_reported = out.iter().map(|m| m.bytes.len()).max().unwrap_or(0);
        // the exact top-16 contains substrings of length up to 16 with
        // frequency > 1000; SH cannot see anywhere near that depth
        assert!(
            longest_reported < 16,
            "SH unexpectedly reported a length-{longest_reported} substring"
        );
    }
}
