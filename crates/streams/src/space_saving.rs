//! The SpaceSaving algorithm of Metwally, Agrawal and El Abbadi (paper
//! reference \[22\]).
//!
//! Keeps exactly `k` monitored items. A new item evicts the currently
//! minimal counter and *inherits* its count plus one, so estimates
//! over-approximate by at most the evicted minimum (stored as the error
//! term). Eviction uses a lazily-cleaned min-heap for `O(log k)` updates.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use usi_strings::FxHashMap;

/// SpaceSaving summary over `u64` items.
///
/// ```
/// use usi_streams::SpaceSaving;
/// let mut ss = SpaceSaving::new(2);
/// for x in [7u64, 7, 7, 8, 9, 7] { ss.insert(x); }
/// assert!(ss.estimate(7) >= 4); // never under-estimates
/// ```
#[derive(Debug, Clone)]
pub struct SpaceSaving {
    k: usize,
    /// item → (count, error at admission)
    counters: FxHashMap<u64, (u64, u64)>,
    /// lazy min-heap of (count, item); entries may be stale.
    heap: BinaryHeap<Reverse<(u64, u64)>>,
    processed: u64,
}

impl SpaceSaving {
    /// A summary monitoring `k ≥ 1` items.
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "SpaceSaving needs at least one counter");
        Self { k, counters: FxHashMap::default(), heap: BinaryHeap::new(), processed: 0 }
    }

    /// Number of monitored items.
    pub fn capacity(&self) -> usize {
        self.k
    }

    /// Number of stream items processed.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    fn pop_true_min(&mut self) -> Option<(u64, u64)> {
        while let Some(&Reverse((count, item))) = self.heap.peek() {
            match self.counters.get(&item) {
                Some(&(current, _)) if current == count => {
                    self.heap.pop();
                    return Some((count, item));
                }
                _ => {
                    self.heap.pop(); // stale entry
                }
            }
        }
        None
    }

    /// Feeds one item.
    pub fn insert(&mut self, item: u64) {
        self.processed += 1;
        if let Some((count, _)) = self.counters.get_mut(&item) {
            *count += 1;
            self.heap.push(Reverse((*count, item)));
            return;
        }
        if self.counters.len() < self.k {
            self.counters.insert(item, (1, 0));
            self.heap.push(Reverse((1, item)));
            return;
        }
        // Evict the minimum; the newcomer inherits min + 1 with error = min.
        let (min_count, min_item) =
            self.pop_true_min().expect("counters non-empty implies a live heap entry");
        self.counters.remove(&min_item);
        self.counters.insert(item, (min_count + 1, min_count));
        self.heap.push(Reverse((min_count + 1, item)));
    }

    /// Estimated count (an upper bound for monitored items; 0 when the
    /// item is not monitored).
    pub fn estimate(&self, item: u64) -> u64 {
        self.counters.get(&item).map_or(0, |&(c, _)| c)
    }

    /// Over-estimation bound recorded at admission time.
    pub fn error(&self, item: u64) -> u64 {
        self.counters.get(&item).map_or(0, |&(_, e)| e)
    }

    /// Monitored items sorted by estimated count descending.
    pub fn items(&self) -> Vec<(u64, u64)> {
        let mut v: Vec<(u64, u64)> = self.counters.iter().map(|(&i, &(c, _))| (i, c)).collect();
        v.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }

    /// Approximate heap footprint.
    pub fn state_bytes(&self) -> usize {
        self.counters.capacity() * (std::mem::size_of::<(u64, (u64, u64))>() + 1)
            + self.heap.len() * std::mem::size_of::<Reverse<(u64, u64)>>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::collections::HashMap;

    #[test]
    fn never_underestimates_monitored_items() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..20 {
            let k = rng.gen_range(2..10usize);
            let n = rng.gen_range(20..400usize);
            let stream: Vec<u64> = (0..n).map(|_| rng.gen_range(0..12u64)).collect();
            let mut ss = SpaceSaving::new(k);
            let mut truth: HashMap<u64, u64> = HashMap::new();
            for &x in &stream {
                ss.insert(x);
                *truth.entry(x).or_insert(0) += 1;
            }
            for (item, est) in ss.items() {
                let f = truth[&item];
                assert!(est >= f, "item {item}: est {est} < true {f}");
                assert!(est - ss.error(item) <= f, "error bound violated");
            }
            // heavy-hitter guarantee: freq > N/k must be monitored
            for (&item, &f) in &truth {
                if f > (n / k) as u64 {
                    assert!(ss.estimate(item) > 0, "heavy item {item} lost");
                }
            }
        }
    }

    #[test]
    fn exact_when_distinct_fit() {
        let mut ss = SpaceSaving::new(5);
        for x in [1u64, 1, 2, 3, 1] {
            ss.insert(x);
        }
        assert_eq!(ss.estimate(1), 3);
        assert_eq!(ss.error(1), 0);
        assert_eq!(ss.items()[0], (1, 3));
    }

    #[test]
    fn eviction_inherits_min_plus_one() {
        let mut ss = SpaceSaving::new(1);
        ss.insert(1);
        ss.insert(1);
        ss.insert(2); // evicts 1 (count 2), inherits 3
        assert_eq!(ss.estimate(2), 3);
        assert_eq!(ss.error(2), 2);
        assert_eq!(ss.estimate(1), 0);
    }

    #[test]
    fn total_count_conservation() {
        // Σ counts = processed when k = 1 (each step increments exactly one counter)
        let mut ss = SpaceSaving::new(1);
        for x in 0..50u64 {
            ss.insert(x % 3);
        }
        let total: u64 = ss.items().iter().map(|&(_, c)| c).sum();
        assert_eq!(total, 50);
    }
}
