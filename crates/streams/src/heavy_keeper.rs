//! HeavyKeeper (Yang et al., IEEE/ACM ToN 2019; paper reference \[24\]).
//!
//! The "count-with-exponential-decay" sketch: each bucket stores a
//! fingerprint and a counter. A matching item increments its counter
//! (count-all); a colliding item decays the counter with probability
//! `b^{-count}` and takes the bucket over when it hits zero. On top of
//! the sketch sits a min-heap summary (`ssummary`) of the `k`
//! highest-estimated items — the structure `SubstringHK` reuses.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use usi_strings::FxHashMap;

#[derive(Debug, Clone, Copy, Default)]
struct Bucket {
    fingerprint: u64,
    count: u32,
}

/// HeavyKeeper sketch plus top-`k` summary over `u64` items.
///
/// ```
/// use usi_streams::HeavyKeeper;
/// let mut hk = HeavyKeeper::new(4, 128, 2, 1.08, 7);
/// for _ in 0..50 { hk.insert(1); }
/// for x in 0..30u64 { hk.insert(100 + x); }
/// let top = hk.top_k();
/// assert_eq!(top[0].0, 1);
/// ```
#[derive(Debug, Clone)]
pub struct HeavyKeeper {
    k: usize,
    width: usize,
    depth: usize,
    decay_base: f64,
    buckets: Vec<Bucket>,
    seeds: Vec<u64>,
    /// ssummary: item → estimated count.
    summary: FxHashMap<u64, u64>,
    /// lazy min-heap over summary estimates.
    heap: BinaryHeap<Reverse<(u64, u64)>>,
    rng: SmallRng,
    processed: u64,
}

impl HeavyKeeper {
    /// `k` summary slots, `width × depth` sketch, decay base `b > 1`.
    pub fn new(k: usize, width: usize, depth: usize, decay_base: f64, seed: u64) -> Self {
        assert!(k >= 1 && width >= 1 && depth >= 1);
        assert!(decay_base > 1.0, "decay base must exceed 1");
        let width = width.next_power_of_two();
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            (z ^ (z >> 31)) | 1
        };
        let seeds: Vec<u64> = (0..depth).map(|_| next()).collect();
        Self {
            k,
            width,
            depth,
            decay_base,
            buckets: vec![Bucket::default(); width * depth],
            seeds,
            summary: FxHashMap::default(),
            heap: BinaryHeap::new(),
            rng: SmallRng::seed_from_u64(seed ^ 0xdead_beef),
            processed: 0,
        }
    }

    /// Sensible defaults for a stream expected to hold `k` heavy items.
    pub fn with_k(k: usize, seed: u64) -> Self {
        Self::new(k, (8 * k).max(64), 2, 1.08, seed)
    }

    #[inline]
    fn cell(&self, row: usize, item: u64) -> usize {
        let h = self.seeds[row].wrapping_mul(item);
        let col = (h >> (64 - self.width.trailing_zeros())) as usize;
        row * self.width + col
    }

    /// Sketch-only estimate: max over rows of matching-fingerprint counts.
    pub fn sketch_estimate(&self, item: u64) -> u64 {
        (0..self.depth)
            .map(|row| {
                let b = &self.buckets[self.cell(row, item)];
                if b.fingerprint == item {
                    b.count as u64
                } else {
                    0
                }
            })
            .max()
            .unwrap_or(0)
    }

    fn summary_min(&mut self) -> Option<(u64, u64)> {
        while let Some(&Reverse((count, item))) = self.heap.peek() {
            match self.summary.get(&item) {
                Some(&current) if current == count => return Some((count, item)),
                _ => {
                    self.heap.pop();
                }
            }
        }
        None
    }

    /// Feeds one item; returns `true` if the item is now in `ssummary`
    /// (the membership signal `SubstringHK`'s extension rule gates on).
    pub fn insert(&mut self, item: u64) -> bool {
        self.processed += 1;
        // --- sketch update ---
        for row in 0..self.depth {
            let decay_base = self.decay_base;
            let idx = self.cell(row, item);
            let b = &mut self.buckets[idx];
            if b.count == 0 {
                b.fingerprint = item;
                b.count = 1;
            } else if b.fingerprint == item {
                b.count = b.count.saturating_add(1);
            } else {
                let p = decay_base.powi(-(b.count as i32));
                if self.rng.gen_bool(p.clamp(0.0, 1.0)) {
                    b.count -= 1;
                    if b.count == 0 {
                        b.fingerprint = item;
                        b.count = 1;
                    }
                }
            }
        }
        let est = self.sketch_estimate(item);

        // --- summary update ---
        if let Some(c) = self.summary.get_mut(&item) {
            if est > *c {
                *c = est;
                self.heap.push(Reverse((est, item)));
            }
            return true;
        }
        if self.summary.len() < self.k {
            self.summary.insert(item, est.max(1));
            self.heap.push(Reverse((est.max(1), item)));
            return true;
        }
        let (min_count, min_item) =
            self.summary_min().expect("non-empty summary has a live heap entry");
        if est > min_count {
            self.heap.pop();
            self.summary.remove(&min_item);
            self.summary.insert(item, est);
            self.heap.push(Reverse((est, item)));
            return true;
        }
        false
    }

    /// Whether `item` currently sits in `ssummary`.
    pub fn contains(&self, item: u64) -> bool {
        self.summary.contains_key(&item)
    }

    /// The summary, sorted by estimate descending.
    pub fn top_k(&self) -> Vec<(u64, u64)> {
        let mut v: Vec<(u64, u64)> = self.summary.iter().map(|(&i, &c)| (i, c)).collect();
        v.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }

    /// Total insertions.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Approximate heap footprint.
    pub fn state_bytes(&self) -> usize {
        self.buckets.capacity() * std::mem::size_of::<Bucket>()
            + self.summary.capacity() * (std::mem::size_of::<(u64, u64)>() + 1)
            + self.heap.len() * std::mem::size_of::<Reverse<(u64, u64)>>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;

    #[test]
    fn finds_elephants_among_mice() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut hk = HeavyKeeper::with_k(5, 11);
        // 5 elephants with ~500 occurrences, 2000 mice with 1-2
        let mut stream = Vec::new();
        for e in 0..5u64 {
            for _ in 0..500 {
                stream.push(e);
            }
        }
        for m in 0..2000u64 {
            stream.push(1000 + m);
        }
        use rand::seq::SliceRandom;
        stream.shuffle(&mut rng);
        for &x in &stream {
            hk.insert(x);
        }
        let top: Vec<u64> = hk.top_k().iter().map(|&(i, _)| i).collect();
        for e in 0..5u64 {
            assert!(top.contains(&e), "elephant {e} missing from {top:?}");
        }
    }

    #[test]
    fn estimates_close_to_truth_for_heavy_items() {
        let mut hk = HeavyKeeper::with_k(3, 13);
        for _ in 0..1000 {
            hk.insert(42);
        }
        let est = hk.top_k()[0].1;
        assert!(est >= 900, "estimate {est} too low for 1000 inserts");
        assert!(est <= 1000, "HeavyKeeper must not overestimate a clean stream");
    }

    #[test]
    fn membership_signal() {
        let mut hk = HeavyKeeper::with_k(2, 17);
        assert!(hk.insert(1)); // room available
        assert!(hk.insert(2));
        assert!(hk.contains(1) && hk.contains(2));
        // a one-shot newcomer against established items is rejected
        for _ in 0..50 {
            hk.insert(1);
            hk.insert(2);
        }
        assert!(!hk.insert(3));
        assert!(!hk.contains(3));
    }

    #[test]
    fn summary_never_exceeds_k() {
        let mut hk = HeavyKeeper::with_k(4, 19);
        for x in 0..500u64 {
            hk.insert(x % 50);
        }
        assert!(hk.top_k().len() <= 4);
    }
}
