//! The count-min sketch of Cormode and Muthukrishnan (paper reference
//! \[23\]); also the frequency store of the BSL4 query baseline.
//!
//! A `depth × width` table of counters; an item increments one counter
//! per row (chosen by per-row hashing) and is estimated by the minimum
//! over its row counters — an over-estimate with error `≤ εN` w.p.
//! `1 − δ` for `width = ⌈e/ε⌉`, `depth = ⌈ln 1/δ⌉`.

use usi_strings::FxHashMap;

/// Count-min sketch over `u64` items.
///
/// ```
/// use usi_streams::CmSketch;
/// let mut cm = CmSketch::new(256, 4, 0xfeed);
/// for _ in 0..10 { cm.insert(42); }
/// assert!(cm.estimate(42) >= 10); // one-sided error
/// ```
#[derive(Debug, Clone)]
pub struct CmSketch {
    width: usize,
    depth: usize,
    table: Vec<u64>,
    /// Per-row hash seeds (odd multipliers for multiply-shift hashing).
    seeds: Vec<u64>,
    processed: u64,
}

impl CmSketch {
    /// A sketch of `depth` rows of `width` counters each; `seed` makes
    /// the row hash functions deterministic.
    pub fn new(width: usize, depth: usize, seed: u64) -> Self {
        assert!(width >= 1 && depth >= 1, "sketch dimensions must be positive");
        let width = width.next_power_of_two();
        // Odd multipliers derived from a splitmix64 walk.
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            (z ^ (z >> 31)) | 1
        };
        let seeds: Vec<u64> = (0..depth).map(|_| next()).collect();
        Self { width, depth, table: vec![0; width * depth], seeds, processed: 0 }
    }

    /// Sketch sized for error `ε` and failure probability `δ`.
    pub fn with_error(epsilon: f64, delta: f64, seed: u64) -> Self {
        let width = (std::f64::consts::E / epsilon).ceil() as usize;
        let depth = (1.0 / delta).ln().ceil().max(1.0) as usize;
        Self::new(width, depth, seed)
    }

    #[inline]
    fn cell(&self, row: usize, item: u64) -> usize {
        // multiply-shift: high bits of seed*item select the column
        let h = self.seeds[row].wrapping_mul(item);
        let col = (h >> (64 - self.width.trailing_zeros())) as usize;
        row * self.width + col
    }

    /// Adds `count` occurrences of `item`.
    pub fn insert_many(&mut self, item: u64, count: u64) {
        self.processed += count;
        for row in 0..self.depth {
            let c = self.cell(row, item);
            self.table[c] += count;
        }
    }

    /// Adds one occurrence of `item`.
    pub fn insert(&mut self, item: u64) {
        self.insert_many(item, 1);
    }

    /// Estimated count: the row minimum (never under-estimates).
    pub fn estimate(&self, item: u64) -> u64 {
        (0..self.depth).map(|row| self.table[self.cell(row, item)]).min().unwrap_or(0)
    }

    /// Total insertions.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Approximate heap footprint.
    pub fn state_bytes(&self) -> usize {
        self.table.capacity() * std::mem::size_of::<u64>()
            + self.seeds.capacity() * std::mem::size_of::<u64>()
    }
}

/// A convenience exact counter with the same interface, for tests that
/// quantify sketch error.
#[derive(Debug, Default, Clone)]
pub struct ExactCounter {
    counts: FxHashMap<u64, u64>,
}

impl ExactCounter {
    /// Empty counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one occurrence.
    pub fn insert(&mut self, item: u64) {
        *self.counts.entry(item).or_insert(0) += 1;
    }

    /// True count.
    pub fn estimate(&self, item: u64) -> u64 {
        self.counts.get(&item).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn one_sided_error() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut cm = CmSketch::new(64, 4, 77);
        let mut exact = ExactCounter::new();
        for _ in 0..5000 {
            let item = rng.gen_range(0..200u64);
            cm.insert(item);
            exact.insert(item);
        }
        for item in 0..200u64 {
            assert!(cm.estimate(item) >= exact.estimate(item), "item {item}");
        }
    }

    #[test]
    fn error_bound_holds_on_average() {
        let mut rng = StdRng::seed_from_u64(4);
        let n = 20_000u64;
        let mut cm = CmSketch::with_error(0.01, 0.01, 5);
        let mut exact = ExactCounter::new();
        for _ in 0..n {
            // Zipf-ish: many light items, few heavy
            let item = (rng.gen_range(0.0f64..1.0).powi(3) * 1000.0) as u64;
            cm.insert(item);
            exact.insert(item);
        }
        let bad = (0..1000u64)
            .filter(|&i| cm.estimate(i) > exact.estimate(i) + (0.01 * n as f64) as u64)
            .count();
        assert!(bad < 20, "{bad} items exceed the εN bound");
    }

    #[test]
    fn insert_many_equals_repeated_insert() {
        let mut a = CmSketch::new(32, 3, 9);
        let mut b = CmSketch::new(32, 3, 9);
        a.insert_many(5, 10);
        for _ in 0..10 {
            b.insert(5);
        }
        assert_eq!(a.estimate(5), b.estimate(5));
        assert_eq!(a.processed(), b.processed());
    }

    #[test]
    fn width_rounds_to_power_of_two() {
        let cm = CmSketch::new(100, 2, 1);
        assert_eq!(cm.width, 128);
    }
}
