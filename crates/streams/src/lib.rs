//! Streaming heavy-hitter algorithms and their substring adaptations
//! (paper, Section VII and the Section-IX comparisons).
//!
//! The paper demonstrates — theoretically and experimentally — that
//! state-of-the-art top-K *item* mining strategies do not smoothly
//! translate to top-K *substring* mining. This crate implements both the
//! item-level building blocks and the two substring adaptations used as
//! competitors in the evaluation:
//!
//! * [`misra_gries`] — the deterministic `K`-counter scheme of Misra and
//!   Gries (1982);
//! * [`space_saving`] — the SpaceSaving counter scheme of Metwally et al.
//!   (ICDT 2005);
//! * [`cm_sketch`] — the count-min sketch of Cormode and Muthukrishnan
//!   (also used by the BSL4 query baseline);
//! * [`heavy_keeper`] — HeavyKeeper (Yang et al., ToN 2019): count-with-
//!   exponential-decay buckets plus a top-K summary;
//! * [`substring_hk`] — `SubstringHK`: the paper's adaptation of
//!   HeavyKeeper to the substrings of a single string;
//! * [`topk_trie`] — `Top-K Trie`: a Misra–Gries-style trie over
//!   substrings in `O(K)` space (after Dinklage, Fischer and Prezza,
//!   SEA 2024).
//!
//! Both substring adaptations are *expected to be inaccurate* on inputs
//! with long frequent substrings — that is the point of Section VII; the
//! `(AB)^{n/2}` failure instance appears in the tests.

pub mod cm_sketch;
pub mod heavy_keeper;
pub mod misra_gries;
pub mod space_saving;
pub mod substring_hk;
pub mod topk_trie;

pub use cm_sketch::CmSketch;
pub use heavy_keeper::HeavyKeeper;
pub use misra_gries::MisraGries;
pub use space_saving::SpaceSaving;
pub use substring_hk::{SubstringHk, SubstringHkConfig};
pub use topk_trie::TopKTrie;

/// A substring reported by a streaming miner, with its estimated
/// frequency. Owned bytes: streaming structures spell strings out of
/// their own state rather than referencing the text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MinedString {
    /// The substring.
    pub bytes: Vec<u8>,
    /// The miner's frequency estimate.
    pub freq: u64,
}

/// Common interface of the substring miners, used by the experiment
/// harness to sweep competitors uniformly.
pub trait SubstringMiner {
    /// Short identifier used in reports (`"SH"`, `"TT"`, …).
    fn name(&self) -> &'static str;

    /// Mines (an estimate of) the top-`k` frequent substrings of `text`.
    fn mine(&mut self, text: &[u8], k: usize) -> Vec<MinedString>;

    /// Approximate heap footprint of the miner state after `mine`.
    fn state_bytes(&self) -> usize;
}
