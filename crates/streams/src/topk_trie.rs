//! `Top-K Trie`: a Misra–Gries-style trie over substrings in `O(K)`
//! space, after Dinklage, Fischer and Prezza (SEA 2024; paper reference
//! \[25\], discussed in Section VII).
//!
//! The structure keeps at most `K` trie nodes (each spelling one
//! substring). For every text position the trie is walked as deep as it
//! matches, incrementing counts along the path; at the first mismatch one
//! new node is created if the budget allows — so deep paths are built one
//! node per visit — and otherwise a Misra–Gries decrement-all step fires
//! (implemented with a global debt counter and lazy pruning).
//!
//! Like `SubstringHK`, this is *expected* to fail on long frequent
//! substrings: building a depth-`d` path needs `d` visits that all
//! survive the decrements (the paper's Section VII argument; their IOT
//! experiment shows TT capping out at length 546 vs the true 11,816).

use crate::{MinedString, SubstringMiner};
use usi_strings::FxHashMap;

const NIL: u32 = u32::MAX;
const ROOT: u32 = 0;

#[derive(Debug, Clone)]
struct Node {
    children: FxHashMap<u8, u32>,
    parent: u32,
    letter: u8,
    /// Stored count; effective count = `count − debt`.
    count: i64,
    alive: bool,
}

/// The Top-K Trie miner.
#[derive(Debug, Clone)]
pub struct TopKTrie {
    /// Debt threshold between full sweeps (amortises decrement-all).
    sweep_interval: i64,
    last_state_bytes: usize,
}

impl Default for TopKTrie {
    fn default() -> Self {
        Self::new()
    }
}

impl TopKTrie {
    /// A miner with the default sweep interval.
    pub fn new() -> Self {
        Self { sweep_interval: 16, last_state_bytes: 0 }
    }
}

struct TrieState {
    nodes: Vec<Node>,
    live: usize,
    budget: usize,
    debt: i64,
    last_sweep_debt: i64,
}

impl TrieState {
    fn new(budget: usize) -> Self {
        let root = Node {
            children: FxHashMap::default(),
            parent: NIL,
            letter: 0,
            count: i64::MAX / 2, // the root (empty string) never dies
            alive: true,
        };
        Self { nodes: vec![root], live: 0, budget, debt: 0, last_sweep_debt: 0 }
    }

    #[inline]
    fn effective(&self, v: u32) -> i64 {
        self.nodes[v as usize].count - self.debt
    }

    /// Removes dead subtrees (effective count ≤ 0). Children of a dead
    /// node die with it (their counts are never larger than an ancestor's
    /// by construction — increments flow along root-to-node paths).
    fn sweep(&mut self) {
        let mut stack: Vec<u32> = vec![ROOT];
        while let Some(v) = stack.pop() {
            let dead: Vec<(u8, u32)> = self.nodes[v as usize]
                .children
                .iter()
                .filter(|&(_, &c)| self.effective(c) <= 0)
                .map(|(&l, &c)| (l, c))
                .collect();
            for (letter, child) in dead {
                self.nodes[v as usize].children.remove(&letter);
                self.kill_subtree(child);
            }
            stack.extend(self.nodes[v as usize].children.values().copied());
        }
        self.last_sweep_debt = self.debt;
    }

    fn kill_subtree(&mut self, v: u32) {
        let mut stack = vec![v];
        while let Some(u) = stack.pop() {
            if self.nodes[u as usize].alive {
                self.nodes[u as usize].alive = false;
                self.live -= 1;
            }
            stack.extend(self.nodes[u as usize].children.values().copied());
            self.nodes[u as usize].children.clear();
        }
    }

    fn spell(&self, mut v: u32) -> Vec<u8> {
        let mut out = Vec::new();
        while v != ROOT {
            out.push(self.nodes[v as usize].letter);
            v = self.nodes[v as usize].parent;
        }
        out.reverse();
        out
    }
}

impl SubstringMiner for TopKTrie {
    fn name(&self) -> &'static str {
        "TT"
    }

    fn mine(&mut self, text: &[u8], k: usize) -> Vec<MinedString> {
        let n = text.len();
        if n == 0 || k == 0 {
            return Vec::new();
        }
        let mut st = TrieState::new(k);

        for i in 0..n {
            let mut v = ROOT;
            let mut depth = 0usize;
            loop {
                if i + depth >= n {
                    break;
                }
                let c = text[i + depth];
                let child = st.nodes[v as usize].children.get(&c).copied();
                match child {
                    Some(u) if st.effective(u) > 0 => {
                        st.nodes[u as usize].count += 1;
                        v = u;
                        depth += 1;
                    }
                    Some(u) => {
                        // lazily prune the dead child and retry as missing
                        st.nodes[v as usize].children.remove(&c);
                        st.kill_subtree(u);
                        continue;
                    }
                    None => {
                        if st.live < st.budget {
                            // grow the path by exactly one node
                            let idx = st.nodes.len() as u32;
                            st.nodes.push(Node {
                                children: FxHashMap::default(),
                                parent: v,
                                letter: c,
                                count: st.debt + 1,
                                alive: true,
                            });
                            st.nodes[v as usize].children.insert(c, idx);
                            st.live += 1;
                        } else {
                            // Misra–Gries decrement-all via global debt
                            st.debt += 1;
                            if st.debt - st.last_sweep_debt >= self.sweep_interval {
                                st.sweep();
                            }
                        }
                        break;
                    }
                }
            }
        }

        // Report the k highest effective counts among live nodes.
        let mut items: Vec<(u32, i64)> = (1..st.nodes.len() as u32)
            .filter(|&v| st.nodes[v as usize].alive && st.effective(v) > 0)
            .map(|v| (v, st.effective(v)))
            .collect();
        items.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        items.truncate(k);
        self.last_state_bytes = st.nodes.capacity() * std::mem::size_of::<Node>()
            + st.nodes
                .iter()
                .map(|nd| nd.children.capacity() * (std::mem::size_of::<(u8, u32)>() + 1))
                .sum::<usize>();
        items
            .into_iter()
            .map(|(v, count)| MinedString { bytes: st.spell(v), freq: count as u64 })
            .collect()
    }

    fn state_bytes(&self) -> usize {
        self.last_state_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grow_one_node_per_visit_semantics() {
        // "abab" with ample budget: single letters are exact (their nodes
        // appear on first visit), but deeper nodes only count occurrences
        // *after* their creation — "ab" is created at its second
        // occurrence and therefore reports 1, and "aba"/"abab" are never
        // materialised. This under-counting of deep paths is precisely
        // the Section-VII failure mode.
        let mut tt = TopKTrie::new();
        let out = tt.mine(b"abab", 100);
        let freq_of = |s: &[u8]| out.iter().find(|m| m.bytes == s).map(|m| m.freq);
        assert_eq!(freq_of(b"a"), Some(2));
        assert_eq!(freq_of(b"b"), Some(2));
        assert_eq!(freq_of(b"ab"), Some(1));
        assert_eq!(freq_of(b"aba"), None);
        assert_eq!(freq_of(b"abab"), None);
    }

    #[test]
    fn respects_budget() {
        let text = b"the quick brown fox jumps over the lazy dog".repeat(5);
        let mut tt = TopKTrie::new();
        let out = tt.mine(&text, 10);
        assert!(out.len() <= 10);
    }

    #[test]
    fn degenerate_inputs() {
        let mut tt = TopKTrie::new();
        assert!(tt.mine(b"", 5).is_empty());
        assert!(tt.mine(b"abc", 0).is_empty());
    }

    #[test]
    fn counts_never_exceed_truth_with_ample_budget() {
        let text = b"banana".repeat(4);
        let mut tt = TopKTrie::new();
        let out = tt.mine(&text, 10_000);
        for m in &out {
            let truth = text.windows(m.bytes.len()).filter(|w| *w == &m.bytes[..]).count() as u64;
            assert!(m.freq <= truth, "{:?}: {} > {truth}", m.bytes, m.freq);
        }
    }

    #[test]
    fn struggles_on_alternating_text() {
        // Section VII failure instance: S = (AB)^{n/2}, n/2 ≥ K > 4.
        // The exact top-K contains long alternating substrings with high
        // frequency; the K-node trie cannot hold and grow them.
        let k = 16;
        let text = b"AB".repeat(512); // n/2 = 512 ≥ K
        let mut tt = TopKTrie::new();
        let out = tt.mine(&text, k);
        // exact: substring of length ℓ occurs n − ℓ + 1 times; the top-16
        // are lengths 1..=8 with frequencies ≥ 1017.
        let exact_hits = out
            .iter()
            .filter(|m| {
                let truth =
                    text.windows(m.bytes.len()).filter(|w| *w == &m.bytes[..]).count() as u64;
                m.freq == truth && truth >= 1017
            })
            .count();
        assert!(
            exact_hits <= k / 2,
            "TT unexpectedly recovered {exact_hits}/{k} of the top-K exactly"
        );
    }
}
