//! The Misra–Gries frequent-items algorithm (paper reference \[21\]).
//!
//! Keeps at most `k` counters. Every item with true frequency
//! `> N / (k + 1)` is guaranteed to survive; reported counts
//! under-estimate by at most `N / (k + 1)`.

use usi_strings::FxHashMap;

/// `K`-counter Misra–Gries summary over `u64` items.
///
/// ```
/// use usi_streams::MisraGries;
/// let mut mg = MisraGries::new(2);
/// for x in [1u64, 1, 1, 2, 3, 1, 2] { mg.insert(x); }
/// let top = mg.items();
/// assert_eq!(top[0].0, 1); // the heavy hitter survives
/// ```
#[derive(Debug, Clone)]
pub struct MisraGries {
    k: usize,
    counters: FxHashMap<u64, u64>,
    processed: u64,
}

impl MisraGries {
    /// A summary with `k ≥ 1` counters.
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "Misra-Gries needs at least one counter");
        Self { k, counters: FxHashMap::default(), processed: 0 }
    }

    /// Number of counters.
    pub fn capacity(&self) -> usize {
        self.k
    }

    /// Number of stream items processed.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Feeds one item.
    pub fn insert(&mut self, item: u64) {
        self.processed += 1;
        if let Some(c) = self.counters.get_mut(&item) {
            *c += 1;
            return;
        }
        if self.counters.len() < self.k {
            self.counters.insert(item, 1);
            return;
        }
        // Decrement-all step; drop exhausted counters.
        self.counters.retain(|_, c| {
            *c -= 1;
            *c > 0
        });
    }

    /// Estimated count of `item` (a lower bound on its true frequency).
    pub fn estimate(&self, item: u64) -> u64 {
        self.counters.get(&item).copied().unwrap_or(0)
    }

    /// Surviving items, sorted by estimated count descending.
    pub fn items(&self) -> Vec<(u64, u64)> {
        let mut v: Vec<(u64, u64)> = self.counters.iter().map(|(&i, &c)| (i, c)).collect();
        v.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }

    /// Approximate heap footprint.
    pub fn state_bytes(&self) -> usize {
        self.counters.capacity() * (std::mem::size_of::<(u64, u64)>() + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::collections::HashMap;

    #[test]
    fn heavy_hitter_guarantee() {
        // any item with frequency > N/(k+1) must survive
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..20 {
            let k = rng.gen_range(1..8usize);
            let n = rng.gen_range(20..300usize);
            let stream: Vec<u64> = (0..n).map(|_| rng.gen_range(0..10u64)).collect();
            let mut mg = MisraGries::new(k);
            let mut truth: HashMap<u64, u64> = HashMap::new();
            for &x in &stream {
                mg.insert(x);
                *truth.entry(x).or_insert(0) += 1;
            }
            let threshold = n as u64 / (k as u64 + 1);
            for (&item, &f) in &truth {
                if f > threshold {
                    assert!(
                        mg.estimate(item) > 0,
                        "item {item} freq {f} > {threshold} evicted (k={k}, n={n})"
                    );
                }
                // estimates never exceed the truth and undershoot ≤ threshold
                assert!(mg.estimate(item) <= f);
                if mg.estimate(item) > 0 {
                    assert!(f - mg.estimate(item) <= threshold);
                }
            }
        }
    }

    #[test]
    fn exact_when_distinct_fit() {
        let mut mg = MisraGries::new(10);
        for x in [1u64, 2, 3, 1, 2, 1] {
            mg.insert(x);
        }
        assert_eq!(mg.estimate(1), 3);
        assert_eq!(mg.estimate(2), 2);
        assert_eq!(mg.estimate(3), 1);
        assert_eq!(mg.items()[0], (1, 3));
    }

    #[test]
    fn adversarial_distinct_stream_empties_counters() {
        // k=1 with all-distinct items: every second item cancels the counter
        let mut mg = MisraGries::new(1);
        for x in 0..100u64 {
            mg.insert(x);
        }
        assert!(mg.items().len() <= 1);
        assert_eq!(mg.processed(), 100);
    }
}
