//! Section VII of the paper: item-stream top-K strategies do not smoothly
//! translate to substrings. These tests reproduce the adversarial
//! `(AB)^{n/2}` argument quantitatively, measuring each adaptation with
//! the paper's Accuracy metric against the exact top-K.

use usi_core::metrics::evaluate;
use usi_core::oracle::exact_top_k;
use usi_core::{approximate_top_k, ApproxConfig, SubstringRef};
use usi_streams::{MinedString, SubstringHk, SubstringMiner, TopKTrie};

fn as_reported(mined: &[MinedString]) -> Vec<(SubstringRef, u64)> {
    mined.iter().map(|m| (SubstringRef::Owned(m.bytes.clone()), m.freq)).collect()
}

fn accuracy_of(miner: &mut dyn SubstringMiner, text: &[u8], k: usize) -> f64 {
    let (exact, sa) = exact_top_k(text, k);
    let mined = miner.mine(text, k);
    evaluate(text, &sa, &exact, &as_reported(&mined)).accuracy
}

#[test]
fn adversarial_alternating_text_defeats_substring_hk() {
    // S = (AB)^{n/2}, n/2 ≥ K > 4, K even, |Σ| = 2 — the instance from
    // Section VII where "SubstringHK fails to report half of the output".
    let k = 16;
    let text = b"AB".repeat(512);
    let acc = accuracy_of(&mut SubstringHk::with_seed(99), &text, k);
    assert!(acc <= 0.5, "SubstringHK accuracy {acc} > 0.5 on (AB)^n/2");
}

#[test]
fn adversarial_alternating_text_defeats_topk_trie() {
    let k = 16;
    let text = b"AB".repeat(512);
    let acc = accuracy_of(&mut TopKTrie::new(), &text, k);
    assert!(acc <= 0.5, "TopKTrie accuracy {acc} > 0.5 on (AB)^n/2");
}

#[test]
fn approximate_top_k_handles_the_adversarial_instance() {
    // The paper's own sampler has no trouble here: the top-K substrings
    // occur at (almost) every position, so every sample sees them.
    let k = 16;
    let text = b"AB".repeat(512);
    let (exact, sa) = exact_top_k(&text, k);
    let res = approximate_top_k(&text, &ApproxConfig::new(k, 4));
    let reported: Vec<(SubstringRef, u64)> = res
        .items
        .iter()
        .map(|e| (SubstringRef::Witness { pos: e.witness, len: e.len }, e.freq))
        .collect();
    let r = evaluate(&text, &sa, &exact, &reported);
    assert!(r.accuracy >= 0.9, "AT accuracy only {}", r.accuracy);
    assert!(r.ndcg >= 0.99, "AT NDCG only {}", r.ndcg);
}

#[test]
fn miners_on_highly_repetitive_text() {
    // IOT-like regime: a periodic text whose top-K contains *long*
    // frequent substrings (7 distinct substrings per length, so the
    // top-70 spans lengths 1..=10). TT under-counts deep paths (nodes
    // only count occurrences after creation) and SH rarely even offers
    // long windows; the paper's own sampler handles the instance.
    let text = b"abcdefg".repeat(300);
    let k = 70;
    let (exact, sa) = exact_top_k(&text, k);
    let longest_exact = exact.iter().map(|t| t.len).max().unwrap();
    assert!(longest_exact >= 9, "test premise: top-K spans 10 lengths");

    let tt_out = TopKTrie::new().mine(&text, k);
    let sh_out = SubstringHk::with_seed(7).mine(&text, k);
    let at = approximate_top_k(&text, &ApproxConfig::new(k, 4));

    let at_reported: Vec<(SubstringRef, u64)> = at
        .items
        .iter()
        .map(|e| (SubstringRef::Witness { pos: e.witness, len: e.len }, e.freq))
        .collect();
    let at_r = evaluate(&text, &sa, &exact, &at_reported);
    let tt_r = evaluate(&text, &sa, &exact, &as_reported(&tt_out));
    let sh_r = evaluate(&text, &sa, &exact, &as_reported(&sh_out));
    // Note: *all* 70 exact frequencies here lie within 300 ± 1, so the
    // strict equal-frequency Accuracy metric churns at the boundary for
    // any estimator; the paper-shaped claims are about ranking quality
    // (NDCG) and covered mass (RE), where AT is near-perfect and the
    // item-stream adaptations are not.
    assert!(at_r.ndcg >= 0.999, "AT NDCG {}", at_r.ndcg);
    assert!(at_r.relative_error.abs() <= 0.02, "AT RE {}", at_r.relative_error);
    assert!(tt_r.accuracy <= 0.5, "TT accuracy {}", tt_r.accuracy);
    assert!(sh_r.accuracy <= 0.5, "SH accuracy {}", sh_r.accuracy);
    assert!(at_r.accuracy >= tt_r.accuracy && at_r.accuracy >= sh_r.accuracy);
    assert!(at_r.ndcg >= tt_r.ndcg && at_r.ndcg >= sh_r.ndcg);
}
