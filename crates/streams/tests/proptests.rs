//! Property-based tests for the streaming structures: the classical
//! guarantees must hold on arbitrary streams.

use proptest::prelude::*;
use std::collections::HashMap;
use usi_streams::{CmSketch, HeavyKeeper, MisraGries, SpaceSaving, SubstringMiner, TopKTrie};

fn stream_strategy() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(0u64..30, 1..400)
}

proptest! {
    /// Misra–Gries: estimates are lower bounds with error ≤ N/(k+1), and
    /// every item with frequency > N/(k+1) survives.
    #[test]
    fn misra_gries_guarantees(stream in stream_strategy(), k in 1usize..10) {
        let mut mg = MisraGries::new(k);
        let mut truth: HashMap<u64, u64> = HashMap::new();
        for &x in &stream {
            mg.insert(x);
            *truth.entry(x).or_insert(0) += 1;
        }
        let bound = stream.len() as u64 / (k as u64 + 1);
        for (&item, &f) in &truth {
            let est = mg.estimate(item);
            prop_assert!(est <= f);
            if est > 0 {
                prop_assert!(f - est <= bound);
            }
            if f > bound {
                prop_assert!(est > 0, "heavy item {item} lost");
            }
        }
    }

    /// SpaceSaving: estimates are upper bounds; est − err is a lower bound.
    #[test]
    fn space_saving_guarantees(stream in stream_strategy(), k in 1usize..10) {
        let mut ss = SpaceSaving::new(k);
        let mut truth: HashMap<u64, u64> = HashMap::new();
        for &x in &stream {
            ss.insert(x);
            *truth.entry(x).or_insert(0) += 1;
        }
        for (item, est) in ss.items() {
            let f = truth[&item];
            prop_assert!(est >= f, "item {item}: {est} < {f}");
            prop_assert!(est - ss.error(item) <= f);
        }
        // counter conservation: Σ estimates ≥ N/k · k? weaker: total ≥ N·min(1, k/|distinct|)
        let total: u64 = ss.items().iter().map(|&(_, c)| c).sum();
        prop_assert!(total as usize >= stream.len().min(stream.len() * k / 30));
    }

    /// Count-min: never under-estimates.
    #[test]
    fn cm_sketch_one_sided(stream in stream_strategy(), seed in any::<u64>()) {
        let mut cm = CmSketch::new(64, 3, seed);
        let mut truth: HashMap<u64, u64> = HashMap::new();
        for &x in &stream {
            cm.insert(x);
            *truth.entry(x).or_insert(0) += 1;
        }
        for (&item, &f) in &truth {
            prop_assert!(cm.estimate(item) >= f);
        }
    }

    /// HeavyKeeper: the summary never exceeds k entries and estimates of
    /// a clean (single-item) stream are never inflated.
    #[test]
    fn heavy_keeper_summary_bounded(stream in stream_strategy(), k in 1usize..8) {
        let mut hk = HeavyKeeper::with_k(k, 7);
        for &x in &stream {
            hk.insert(x);
        }
        prop_assert!(hk.top_k().len() <= k);
    }

    /// Top-K Trie reports at most k strings, all non-empty substrings of
    /// the text with counts bounded by their true frequencies.
    #[test]
    fn topk_trie_reports_valid_substrings(
        text in proptest::collection::vec(prop_oneof![Just(b'a'), Just(b'b'), Just(b'c')], 1..200),
        k in 1usize..40,
    ) {
        let mut tt = TopKTrie::new();
        let out = tt.mine(&text, k);
        prop_assert!(out.len() <= k);
        for m in &out {
            prop_assert!(!m.bytes.is_empty());
            let truth = text.windows(m.bytes.len()).filter(|w| *w == &m.bytes[..]).count() as u64;
            prop_assert!(truth >= 1, "{:?} not a substring", m.bytes);
            prop_assert!(m.freq <= truth, "{:?}: {} > {truth}", m.bytes, m.freq);
        }
    }
}
