//! [`RemoteDoc`]: a [`QueryEngine`] whose index lives in another
//! process, reached over the JSON HTTP API.
//!
//! A front end registers one `RemoteDoc` per shard (via
//! `usi_server::Catalog::insert_engine`) and the catalog's existing
//! `"doc": "*"` fan-out merges their per-shard accumulators through
//! `usi_core::merge` — the same associative merge a single process uses
//! across local documents. Each `RemoteDoc` targets `"*"` on its shard
//! by default, so a shard may itself hold many documents.
//!
//! The client is deliberately small: one kept-alive HTTP/1.1 connection
//! per `RemoteDoc` (queries from the server's worker pool serialize on
//! it; the pool fans out across shards, not within one), a per-request
//! deadline via socket timeouts, and a single retry on a fresh
//! connection when a reused one turns out to be stale. After the retry,
//! a failed shard degrades to empty accumulators — a fan-out answer
//! then under-counts rather than erroring, which the staleness-tolerant
//! read path already accepts (and the error is logged).

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::Mutex;
use std::time::Duration;
use usi_core::index::IndexSize;
use usi_core::{QueryEngine, QuerySource, UsiQuery};
use usi_server::json::{acc_from_json, pattern_string, utility_from_json, Json};
use usi_strings::{GlobalUtility, UtilityAccumulator};

/// A remote shard behind the JSON HTTP API, usable anywhere a local
/// index is.
pub struct RemoteDoc {
    /// `host:port` of the remote server.
    addr: String,
    /// The `"doc"` member sent with every query (`"*"` = whole shard).
    target: String,
    /// Per-request deadline (connect, send, and receive each get it).
    timeout: Duration,
    /// The kept-alive connection, replaced when it goes stale.
    conn: Mutex<Option<TcpStream>>,
    utility: GlobalUtility,
    indexed_len: usize,
    cached_substrings: usize,
}

impl RemoteDoc {
    /// Connects to `addr` and probes it: fails fast when the server is
    /// unreachable or does not serve `target`, and learns the shard's
    /// utility function and sizes for the local `/v1/docs` listing.
    pub fn connect(
        addr: impl Into<String>,
        target: impl Into<String>,
        timeout: Duration,
    ) -> io::Result<Self> {
        let doc = Self {
            addr: addr.into(),
            target: target.into(),
            timeout,
            conn: Mutex::new(None),
            utility: GlobalUtility::default(),
            indexed_len: 0,
            cached_substrings: 0,
        };
        // sizes (and target existence for "*") from the docs listing
        let (status, body) = doc.request("GET", "/v1/docs", None)?;
        let listing = parse_body(status, &body, "/v1/docs")?;
        let docs = listing
            .get("docs")
            .and_then(Json::as_array)
            .ok_or_else(|| bad(format!("{}: /v1/docs returned no docs array", doc.addr)))?;
        let mine = |d: &&Json| {
            doc.target == "*" || d.get("id").and_then(Json::as_str) == Some(&doc.target)
        };
        let indexed_len = docs
            .iter()
            .filter(mine)
            .map(|d| d.get("n").and_then(Json::as_f64).unwrap_or(0.0) as usize)
            .sum();
        let cached_substrings = docs
            .iter()
            .filter(mine)
            .map(|d| d.get("cached_substrings").and_then(Json::as_f64).unwrap_or(0.0) as usize)
            .sum();
        if doc.target != "*" && !docs.iter().any(|d| mine(&d)) {
            return Err(bad(format!("{} does not serve doc {:?}", doc.addr, doc.target)));
        }
        // the utility function from a probe query (the response carries
        // it whenever the shard's documents agree; a mixed "*" shard
        // degrades to the default and is reported)
        let probe = doc.query_request(&[b"\x01".as_slice()])?;
        let utility = probe.get("utility").and_then(utility_from_json).unwrap_or_else(|| {
            eprintln!(
                "usi-repl: shard {} target {:?} has no single utility function; \
                 merged values may be null",
                doc.addr, doc.target
            );
            GlobalUtility::default()
        });
        Ok(Self { utility, indexed_len, cached_substrings, ..doc })
    }

    /// The remote address this doc proxies to.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Issues one `POST /v1/query` with `"acc": true` and returns the
    /// parsed response object.
    fn query_request(&self, patterns: &[&[u8]]) -> io::Result<Json> {
        let body = Json::Obj(vec![
            ("doc".into(), Json::str(self.target.clone())),
            (
                "patterns".into(),
                Json::Arr(patterns.iter().map(|p| Json::Str(pattern_string(p))).collect()),
            ),
            ("acc".into(), Json::Bool(true)),
        ])
        .encode();
        let (status, body) = self.request("POST", "/v1/query", Some(&body))?;
        parse_body(status, &body, "/v1/query")
    }

    /// One HTTP exchange over the kept-alive connection, retried once on
    /// a fresh connection if the reused one fails mid-flight (the server
    /// may have idle-closed it between our requests).
    fn request(&self, method: &str, path: &str, body: Option<&str>) -> io::Result<(u16, String)> {
        let mut conn = self.conn.lock().expect("remote conn poisoned");
        let reused = conn.is_some();
        if conn.is_none() {
            *conn = Some(self.dial()?);
        }
        match exchange(conn.as_mut().expect("just dialed"), &self.addr, method, path, body) {
            Ok((status, body, keep)) => {
                if !keep {
                    *conn = None;
                }
                Ok((status, body))
            }
            Err(first) => {
                *conn = None;
                if !reused {
                    return Err(first);
                }
                let mut fresh = self.dial()?;
                let (status, body, keep) = exchange(&mut fresh, &self.addr, method, path, body)?;
                if keep {
                    *conn = Some(fresh);
                }
                Ok((status, body))
            }
        }
    }

    fn dial(&self) -> io::Result<TcpStream> {
        use std::net::ToSocketAddrs;
        let mut last = io::Error::other(format!("no addresses resolved for {:?}", self.addr));
        for resolved in self.addr.to_socket_addrs()? {
            match TcpStream::connect_timeout(&resolved, self.timeout) {
                Ok(conn) => {
                    conn.set_read_timeout(Some(self.timeout))?;
                    conn.set_write_timeout(Some(self.timeout))?;
                    conn.set_nodelay(true)?;
                    return Ok(conn);
                }
                Err(e) => last = e,
            }
        }
        Err(last)
    }

    /// The accumulator batch, degrading to empty answers (logged) when
    /// the shard stays unreachable through the retry.
    fn try_accumulator_batch(
        &self,
        patterns: &[&[u8]],
    ) -> io::Result<Vec<(UtilityAccumulator, QuerySource)>> {
        let response = self.query_request(patterns)?;
        let results = response
            .get("results")
            .and_then(Json::as_array)
            .ok_or_else(|| bad(format!("{}: query response has no results", self.addr)))?;
        if results.len() != patterns.len() {
            return Err(bad(format!(
                "{}: asked {} patterns, got {} results",
                self.addr,
                patterns.len(),
                results.len()
            )));
        }
        results
            .iter()
            .map(|r| {
                let acc = r
                    .get("acc")
                    .and_then(acc_from_json)
                    .ok_or_else(|| bad(format!("{}: result carries no accumulator", self.addr)))?;
                // fan-out results carry no per-shard source; count the
                // remote hop as the computed path
                let source = match r.get("source").and_then(Json::as_str) {
                    Some("cached") => QuerySource::HashTable,
                    _ => QuerySource::TextIndex,
                };
                Ok((acc, source))
            })
            .collect()
    }
}

impl std::fmt::Debug for RemoteDoc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RemoteDoc")
            .field("addr", &self.addr)
            .field("target", &self.target)
            .field("timeout", &self.timeout)
            .finish_non_exhaustive()
    }
}

impl QueryEngine for RemoteDoc {
    fn query(&self, pattern: &[u8]) -> UsiQuery {
        let (acc, source) = self.query_accumulator(pattern);
        UsiQuery { value: acc.finish(self.utility.aggregator), occurrences: acc.count(), source }
    }

    fn query_accumulator(&self, pattern: &[u8]) -> (UtilityAccumulator, QuerySource) {
        self.query_accumulator_batch(&[pattern]).pop().expect("one answer per pattern")
    }

    fn query_accumulator_batch(
        &self,
        patterns: &[&[u8]],
    ) -> Vec<(UtilityAccumulator, QuerySource)> {
        match self.try_accumulator_batch(patterns) {
            Ok(answers) => answers,
            Err(e) => {
                eprintln!(
                    "usi-repl: shard {} failed ({e}); answering {} patterns empty",
                    self.addr,
                    patterns.len()
                );
                patterns
                    .iter()
                    .map(|_| (UtilityAccumulator::new(), QuerySource::TextIndex))
                    .collect()
            }
        }
    }

    fn utility(&self) -> GlobalUtility {
        self.utility
    }

    fn indexed_len(&self) -> usize {
        self.indexed_len
    }

    fn cached_substrings(&self) -> usize {
        self.cached_substrings
    }

    fn size_breakdown(&self) -> IndexSize {
        // the bytes live in the remote process; report nothing local
        IndexSize::default()
    }
}

fn bad(message: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message)
}

/// Checks the status and parses the JSON body.
fn parse_body(status: u16, body: &str, what: &str) -> io::Result<Json> {
    if status != 200 {
        return Err(bad(format!("{what} returned HTTP {status}: {}", body.trim())));
    }
    Json::parse(body).map_err(|e| bad(format!("{what} returned unparseable JSON: {e}")))
}

/// Writes one request and reads one response on `conn`. Returns
/// `(status, body, keep_alive)`. Responses must carry `Content-Length`
/// (the server's always do).
fn exchange(
    conn: &mut TcpStream,
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> io::Result<(u16, String, bool)> {
    let body = body.unwrap_or("");
    write!(
        conn,
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: keep-alive\r\n\
         Content-Type: application/json\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )?;
    conn.flush()?;

    let mut reader = BufReader::new(conn);
    let mut line = String::new();
    reader.read_line(&mut line)?;
    let status: u16 = line
        .strip_prefix("HTTP/1.1 ")
        .or_else(|| line.strip_prefix("HTTP/1.0 "))
        .and_then(|rest| rest.split_whitespace().next())
        .and_then(|code| code.parse().ok())
        .ok_or_else(|| bad(format!("bad status line {line:?} from {addr}")))?;

    let mut content_length: Option<usize> = None;
    let mut keep_alive = true;
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 {
            return Err(bad(format!("{addr} closed mid-headers")));
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            let value = value.trim();
            if name.eq_ignore_ascii_case("content-length") {
                content_length = Some(
                    value
                        .parse()
                        .map_err(|_| bad(format!("bad Content-Length {value:?} from {addr}")))?,
                );
            } else if name.eq_ignore_ascii_case("connection") && value.eq_ignore_ascii_case("close")
            {
                keep_alive = false;
            }
        }
    }
    let len = content_length
        .ok_or_else(|| bad(format!("{addr} sent no Content-Length; cannot reuse connection")))?;
    let mut body = vec![0u8; len];
    reader.read_exact(&mut body)?;
    let body = String::from_utf8(body)
        .map_err(|_| bad(format!("{addr} sent a non-UTF-8 response body")))?;
    Ok((status, body, keep_alive))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;
    use std::sync::Arc;
    use usi_core::UsiBuilder;
    use usi_server::{respond, Catalog};
    use usi_strings::WeightedString;

    /// A minimal HTTP/1.1 server over `usi_server::respond`, enough for
    /// the client under test (keep-alive, Content-Length framing).
    fn spawn_backend(catalog: Arc<Catalog>) -> String {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        std::thread::spawn(move || {
            for conn in listener.incoming() {
                let Ok(conn) = conn else { break };
                let catalog = Arc::clone(&catalog);
                std::thread::spawn(move || serve_conn(conn, &catalog));
            }
        });
        addr
    }

    fn serve_conn(conn: TcpStream, catalog: &Catalog) {
        let mut reader = BufReader::new(conn.try_clone().unwrap());
        let mut conn = conn;
        loop {
            let mut request_line = String::new();
            if reader.read_line(&mut request_line).unwrap_or(0) == 0 {
                return;
            }
            let mut parts = request_line.split_whitespace();
            let method = parts.next().unwrap_or("").to_string();
            let path = parts.next().unwrap_or("").to_string();
            let mut content_length = 0usize;
            loop {
                let mut header = String::new();
                if reader.read_line(&mut header).unwrap_or(0) == 0 {
                    return;
                }
                let header = header.trim_end();
                if header.is_empty() {
                    break;
                }
                if let Some((name, value)) = header.split_once(':') {
                    if name.eq_ignore_ascii_case("content-length") {
                        content_length = value.trim().parse().unwrap_or(0);
                    }
                }
            }
            let mut body = vec![0u8; content_length];
            if reader.read_exact(&mut body).is_err() {
                return;
            }
            let response = respond(catalog, &method, &path, &body);
            let payload = format!(
                "HTTP/1.1 {} X\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n{}",
                response.status,
                response.body.len(),
                response.body
            );
            if conn.write_all(payload.as_bytes()).is_err() {
                return;
            }
        }
    }

    fn catalog_with(text: &[u8], id: &str) -> Arc<Catalog> {
        let catalog = Arc::new(Catalog::new(4));
        let index = UsiBuilder::new()
            .with_k(8)
            .deterministic(7)
            .build(WeightedString::uniform(text.to_vec(), 1.0));
        catalog.insert(id.to_string(), index);
        catalog
    }

    #[test]
    fn remote_doc_answers_match_the_local_index() {
        let catalog = catalog_with(b"abracadabra", "d");
        let addr = spawn_backend(Arc::clone(&catalog));
        let remote = RemoteDoc::connect(&addr, "d", Duration::from_secs(5)).unwrap();

        let local = catalog.get("d").unwrap();
        assert_eq!(remote.utility(), local.utility());
        assert_eq!(remote.indexed_len(), 11);
        for pattern in [b"abra".as_slice(), b"a", b"cad", b"zzz"] {
            let want = local.engine().query(pattern);
            let got = remote.query(pattern);
            assert_eq!(got.occurrences, want.occurrences, "pattern {pattern:?}");
            assert_eq!(got.value, want.value, "pattern {pattern:?}");
        }
        // batches reuse the same kept-alive connection
        let patterns: Vec<&[u8]> = vec![b"ab", b"ra"];
        let batch = remote.query_accumulator_batch(&patterns);
        assert_eq!(batch.len(), 2);
        assert_eq!(batch[0].0.count(), local.engine().query(b"ab").occurrences);
    }

    #[test]
    fn connect_fails_fast_on_missing_doc_and_dead_server() {
        let catalog = catalog_with(b"abc", "d");
        let addr = spawn_backend(catalog);
        assert!(RemoteDoc::connect(&addr, "nope", Duration::from_secs(5)).is_err());
        // a dead address: bind-then-drop guarantees nothing listens
        let dead = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().to_string()
        };
        assert!(RemoteDoc::connect(&dead, "d", Duration::from_millis(300)).is_err());
    }

    #[test]
    fn unreachable_shard_degrades_to_empty_answers() {
        let catalog = catalog_with(b"abc", "d");
        let addr = spawn_backend(catalog);
        let remote = RemoteDoc::connect(&addr, "d", Duration::from_millis(300)).unwrap();
        // swap in a dead connection target by poisoning the cached conn:
        // drop the backend's listener is not possible here, so instead
        // verify the degraded path directly with a bogus remote
        let bogus = RemoteDoc {
            addr: "127.0.0.1:1".into(),
            target: "d".into(),
            timeout: Duration::from_millis(200),
            conn: Mutex::new(None),
            utility: remote.utility,
            indexed_len: 0,
            cached_substrings: 0,
        };
        let answers = bogus.query_accumulator_batch(&[b"ab".as_slice(), b"c"]);
        assert_eq!(answers.len(), 2);
        assert_eq!(answers[0].0.count(), 0);
        assert_eq!(answers[1].0.count(), 0);
    }
}
