//! `usi_repl` — log-shipping replication for the Useful String Indexing
//! serving layer: one writable primary, any number of read-only
//! followers, and a remote backend that lets a front end fan queries
//! over them.
//!
//! The design is the classic primary/standby WAL-streaming scheme
//! applied to the paper's weighted-substring indexes. Three staged
//! seams made it possible without touching the query path:
//!
//! * the `.usil` WAL (`usi_ingest::wal`) is self-delimiting — every
//!   record is length-prefixed and CRC'd, so raw record bytes can be
//!   shipped as-is and **re-verified on the follower**;
//! * the `QueryEngine` trait (`usi_core::engine`) lets a follower's
//!   replaying index and a remote HTTP proxy slot into
//!   `usi_server::Doc` like any local index;
//! * `usi_core::merge` gives per-shard accumulators one associative
//!   merge, so a fan-out front end combines remote shards exactly as a
//!   single process combines local documents.
//!
//! Modules:
//!
//! * [`proto`] — the length-prefixed replication wire protocol
//!   (hello/ack handshake, record frames, heartbeats);
//! * [`ship`] — the primary-side shipper: one TCP listener, a stream
//!   per follower, tailing each document's WAL by committed offset;
//! * [`follow`] — the follower: replays received records into per-doc
//!   [`usi_ingest::IngestIndex`]es with reconnect/backoff (or watches a
//!   shipped-WAL directory), serving reads the whole time with bounded,
//!   observable staleness (`usi_repl_lag_records` /
//!   `usi_repl_lag_seconds`);
//! * [`remote`] — [`remote::RemoteDoc`], a `QueryEngine` speaking the
//!   JSON HTTP API with connection reuse and per-request deadlines.
//!
//! Everything is std-only, like the rest of the workspace.

pub mod follow;
pub(crate) mod metrics;
pub mod proto;
pub mod remote;
pub mod ship;

pub use follow::{FollowSource, Follower, FollowerConfig, FollowerDoc, FollowerStatus};
pub use proto::{Ack, AckStatus, Frame, Hello};
pub use remote::RemoteDoc;
pub use ship::{Shipper, ShipperConfig, WalSource};
