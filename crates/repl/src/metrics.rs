//! Replication telemetry, pre-registered once (the same handle-caching
//! pattern as `usi_server::metrics`): per-doc staleness gauges the CI
//! smoke polls to zero, plus shipping counters for capacity planning.

use std::sync::OnceLock;
use usi_obs::{Counter, Gauge, GaugeVec};

/// Every handle the replication paths record into.
pub(crate) struct ReplMetrics {
    /// `usi_repl_lag_records{doc}` — shipped-but-unapplied records.
    pub lag_records: GaugeVec,
    /// `usi_repl_lag_seconds{doc}` — seconds since this doc was last
    /// fully caught up (0 while caught up).
    pub lag_seconds: GaugeVec,
    /// `usi_repl_connected{doc}` — 1 while the replication stream (or
    /// watched directory) is live.
    pub connected: GaugeVec,
    /// Raw WAL bytes shipped to followers (primary side).
    pub shipped_bytes_total: std::sync::Arc<Counter>,
    /// Records shipped to followers (primary side).
    pub shipped_records_total: std::sync::Arc<Counter>,
    /// Records replayed into follower indexes (follower side).
    pub applied_records_total: std::sync::Arc<Counter>,
    /// Reconnect attempts after a broken replication stream.
    pub reconnects_total: std::sync::Arc<Counter>,
    /// Follower connections currently streaming (primary side).
    pub followers: std::sync::Arc<Gauge>,
}

impl ReplMetrics {
    fn new() -> Self {
        let registry = usi_obs::global();
        Self {
            lag_records: registry.gauge_vec(
                "usi_repl_lag_records",
                "Records shipped by the primary but not yet applied, by document",
                &["doc"],
            ),
            lag_seconds: registry.gauge_vec(
                "usi_repl_lag_seconds",
                "Seconds since the document was last fully caught up (0 while caught up)",
                &["doc"],
            ),
            connected: registry.gauge_vec(
                "usi_repl_connected",
                "1 while the document's replication stream is connected",
                &["doc"],
            ),
            shipped_bytes_total: registry
                .counter("usi_repl_shipped_bytes_total", "Raw WAL bytes shipped to followers"),
            shipped_records_total: registry
                .counter("usi_repl_shipped_records_total", "WAL records shipped to followers"),
            applied_records_total: registry.counter(
                "usi_repl_applied_records_total",
                "WAL records replayed into follower indexes",
            ),
            reconnects_total: registry.counter(
                "usi_repl_reconnects_total",
                "Reconnect attempts after a broken replication stream",
            ),
            followers: registry
                .gauge("usi_repl_followers", "Follower connections currently streaming"),
        }
    }
}

/// The process-global handle set, registered on first touch.
pub(crate) fn repl() -> &'static ReplMetrics {
    static METRICS: OnceLock<ReplMetrics> = OnceLock::new();
    METRICS.get_or_init(ReplMetrics::new)
}
