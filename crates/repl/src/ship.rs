//! The primary-side WAL shipper.
//!
//! One TCP listener accepts follower connections; each connection
//! replicates one document, driven by a dedicated thread that tails the
//! document's `.usil` WAL:
//!
//! * behind → read the next chunk of **whole records** from the
//!   committed prefix ([`usi_ingest::read_tail`] never splits a record)
//!   and send it verbatim in a `Records` frame;
//! * caught up → send a `Heartbeat` with the committed state and sleep
//!   one poll interval.
//!
//! The shipper never blocks the write path: it reads the WAL file
//! independently of the appending pipeline, which only has to reveal
//! `(path, committed length)` through the [`WalSource`] seam. Committed
//! record *counts* (for acks, heartbeats and lag gauges) are maintained
//! incrementally per document — each committed byte is parsed once per
//! process, not once per follower poll.

use crate::metrics;
use crate::proto::{self, Ack, AckStatus, Frame, MAX_DOC_ID};
use std::collections::HashMap;
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;
use usi_ingest::wal;

/// Where the shipper finds a document's WAL. Implemented for
/// [`usi_server::Catalog`], so `Arc<Catalog>` coerces straight into the
/// shipper; tests implement it over a bare path map.
pub trait WalSource: Send + Sync {
    /// The WAL path and committed clean length for `doc`, or `None`
    /// when the document is unknown or not ingest-enabled.
    fn wal(&self, doc: &str) -> Option<(PathBuf, u64)>;
}

impl WalSource for usi_server::Catalog {
    fn wal(&self, doc: &str) -> Option<(PathBuf, u64)> {
        self.get(doc)?.wal_view()
    }
}

/// Shipper tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct ShipperConfig {
    /// How often a caught-up stream re-checks the WAL (and heartbeats).
    pub poll_interval: Duration,
    /// Target bytes per `Records` frame (grows transparently when a
    /// single record is larger).
    pub max_chunk: usize,
}

impl Default for ShipperConfig {
    fn default() -> Self {
        Self { poll_interval: Duration::from_millis(50), max_chunk: 1024 * 1024 }
    }
}

/// Incremental committed-record counter: remembers `(offset, records)`
/// per document and only parses the bytes added since the last look.
#[derive(Default)]
struct RecordCounter {
    parsed: Mutex<HashMap<String, (u64, u64)>>,
}

impl RecordCounter {
    /// Records in the committed prefix `[0, committed)` of `doc`'s WAL.
    fn records_at(
        &self,
        doc: &str,
        path: &std::path::Path,
        committed: u64,
    ) -> Result<u64, wal::WalError> {
        let mut parsed = self.parsed.lock().expect("record counter lock poisoned");
        let entry = parsed.entry(doc.to_string()).or_insert((wal::MAGIC.len() as u64, 0));
        // a shrunk WAL (torn-tail truncation on primary restart) resets
        // the incremental scan
        if entry.0 > committed {
            *entry = (wal::MAGIC.len() as u64, 0);
        }
        while entry.0 < committed {
            let chunk = wal::read_tail(path, entry.0, committed, 1024 * 1024)?;
            if chunk.records == 0 {
                break;
            }
            *entry = (chunk.end, entry.1 + chunk.records);
        }
        Ok(entry.1)
    }
}

/// A running primary-side shipper; [`Shipper::shutdown`] stops the
/// accept loop and joins every streaming thread.
pub struct Shipper {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    streams: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl Shipper {
    /// Starts shipping `source`'s WALs to whoever connects to
    /// `listener`.
    pub fn start(
        listener: TcpListener,
        source: Arc<dyn WalSource>,
        config: ShipperConfig,
    ) -> io::Result<Self> {
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let streams: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::default();
        let counter = Arc::new(RecordCounter::default());
        let accept = {
            let stop = Arc::clone(&stop);
            let streams = Arc::clone(&streams);
            std::thread::Builder::new().name("usi-repl-accept".into()).spawn(move || {
                for conn in listener.incoming() {
                    if stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(conn) = conn else { continue };
                    let source = Arc::clone(&source);
                    let counter = Arc::clone(&counter);
                    let stop = Arc::clone(&stop);
                    let handle = std::thread::Builder::new()
                        .name("usi-repl-stream".into())
                        .spawn(move || {
                            metrics::repl().followers.inc();
                            let _ = stream_to_follower(conn, &*source, &counter, &stop, config);
                            metrics::repl().followers.dec();
                        })
                        .expect("spawn replication stream thread");
                    streams.lock().expect("stream registry poisoned").push(handle);
                }
            })?
        };
        Ok(Self { addr, stop, accept: Some(accept), streams })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, disconnects streams and joins every thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // wake the blocking accept() with a throwaway connection
        let mut wake = self.addr;
        if wake.ip().is_unspecified() {
            wake.set_ip(match wake.ip() {
                std::net::IpAddr::V4(_) => std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST),
                std::net::IpAddr::V6(_) => std::net::IpAddr::V6(std::net::Ipv6Addr::LOCALHOST),
            });
        }
        let _ = TcpStream::connect_timeout(&wake, Duration::from_secs(1));
        if let Some(thread) = self.accept.take() {
            let _ = thread.join();
        }
        let streams = std::mem::take(&mut *self.streams.lock().expect("stream registry poisoned"));
        for handle in streams {
            let _ = handle.join();
        }
    }
}

impl Drop for Shipper {
    fn drop(&mut self) {
        if self.accept.is_some() {
            self.stop_and_join();
        }
    }
}

/// Serves one follower connection: handshake, then tail the WAL until
/// the socket drops or the shipper stops.
fn stream_to_follower(
    conn: TcpStream,
    source: &dyn WalSource,
    counter: &RecordCounter,
    stop: &AtomicBool,
    config: ShipperConfig,
) -> io::Result<()> {
    conn.set_write_timeout(Some(Duration::from_secs(10)))?;
    conn.set_read_timeout(Some(Duration::from_secs(10)))?;
    let mut reader = BufReader::new(conn.try_clone()?);
    let mut writer = BufWriter::new(conn);
    let hello = proto::read_hello(&mut reader)?;
    if hello.doc.len() > MAX_DOC_ID {
        return Ok(());
    }
    let Some((path, committed)) = source.wal(&hello.doc) else {
        proto::write_ack(
            &mut writer,
            &Ack { status: AckStatus::UnknownDoc, committed_bytes: 0, committed_records: 0 },
        )?;
        return Ok(());
    };
    let committed_records = counter
        .records_at(&hello.doc, &path, committed)
        .map_err(|e| io::Error::other(format!("counting WAL records: {e}")))?;
    let header = wal::MAGIC.len() as u64;
    // 0 means "from the start"; anything else must be a record boundary
    // inside the committed prefix (read_tail re-validates alignment)
    let mut offset = if hello.offset == 0 { header } else { hello.offset };
    if offset < header || offset > committed {
        proto::write_ack(
            &mut writer,
            &Ack { status: AckStatus::BadOffset, committed_bytes: committed, committed_records },
        )?;
        return Ok(());
    }
    proto::write_ack(
        &mut writer,
        &Ack { status: AckStatus::Ok, committed_bytes: committed, committed_records },
    )?;

    while !stop.load(Ordering::SeqCst) {
        let Some((path, committed)) = source.wal(&hello.doc) else {
            // the document vanished (catalog remove); end the stream
            return Ok(());
        };
        if offset < committed {
            let chunk = wal::read_tail(&path, offset, committed, config.max_chunk)
                .map_err(|e| io::Error::other(format!("tailing WAL: {e}")))?;
            if chunk.records > 0 {
                proto::write_frame(
                    &mut writer,
                    &Frame::Records {
                        start: offset,
                        records: chunk.records as u32,
                        bytes: chunk.bytes,
                    },
                )?;
                metrics::repl().shipped_records_total.add(chunk.records);
                metrics::repl().shipped_bytes_total.add(chunk.end - offset);
                offset = chunk.end;
                continue;
            }
        }
        let committed_records = counter
            .records_at(&hello.doc, &path, committed)
            .map_err(|e| io::Error::other(format!("counting WAL records: {e}")))?;
        proto::write_frame(
            &mut writer,
            &Frame::Heartbeat { committed_bytes: committed, committed_records },
        )?;
        writer.flush()?;
        std::thread::sleep(config.poll_interval);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use usi_ingest::Wal;

    struct OneDoc {
        path: PathBuf,
        committed: Mutex<u64>,
    }

    impl WalSource for OneDoc {
        fn wal(&self, doc: &str) -> Option<(PathBuf, u64)> {
            (doc == "d").then(|| (self.path.clone(), *self.committed.lock().unwrap()))
        }
    }

    fn temp_wal(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("usi-repl-ship-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        let _ = std::fs::remove_file(&path);
        path
    }

    #[test]
    fn ships_records_heartbeats_and_resumes_by_offset() {
        let path = temp_wal("ship.usil");
        let (mut w, _) = Wal::open(&path, false).unwrap();
        w.append(b"abc", &[1.0, 2.0, 3.0]).unwrap();
        w.append(b"de", &[4.0, 5.0]).unwrap();
        let committed = w.bytes();

        let source = Arc::new(OneDoc { path: path.clone(), committed: Mutex::new(committed) });
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let shipper = Shipper::start(
            listener,
            source.clone() as Arc<dyn WalSource>,
            ShipperConfig { poll_interval: Duration::from_millis(5), ..ShipperConfig::default() },
        )
        .unwrap();

        // unknown docs are refused in the ack
        let conn = TcpStream::connect(shipper.addr()).unwrap();
        let mut r = BufReader::new(conn.try_clone().unwrap());
        let mut wtr = BufWriter::new(conn);
        proto::write_hello(&mut wtr, &proto::Hello { doc: "nope".into(), offset: 0 }).unwrap();
        assert_eq!(proto::read_ack(&mut r).unwrap().status, AckStatus::UnknownDoc);

        // offsets past the committed prefix are refused
        let conn = TcpStream::connect(shipper.addr()).unwrap();
        let mut r = BufReader::new(conn.try_clone().unwrap());
        let mut wtr = BufWriter::new(conn);
        proto::write_hello(&mut wtr, &proto::Hello { doc: "d".into(), offset: committed + 1 })
            .unwrap();
        assert_eq!(proto::read_ack(&mut r).unwrap().status, AckStatus::BadOffset);

        // a from-scratch follower gets both records, then heartbeats
        let conn = TcpStream::connect(shipper.addr()).unwrap();
        let mut r = BufReader::new(conn.try_clone().unwrap());
        let mut wtr = BufWriter::new(conn);
        proto::write_hello(&mut wtr, &proto::Hello { doc: "d".into(), offset: 0 }).unwrap();
        let ack = proto::read_ack(&mut r).unwrap();
        assert_eq!(ack.status, AckStatus::Ok);
        assert_eq!(ack.committed_bytes, committed);
        assert_eq!(ack.committed_records, 2);
        let Frame::Records { start, records, bytes } = proto::read_frame(&mut r).unwrap() else {
            panic!("expected a records frame first");
        };
        assert_eq!(start, wal::MAGIC.len() as u64);
        assert_eq!(records, 2);
        // the shipped bytes re-parse with the WAL's own record parser
        let (rec, next) = wal::parse_record_at(&bytes, 0).unwrap();
        assert_eq!(rec.text, b"abc");
        let (rec, end) = wal::parse_record_at(&bytes, next).unwrap();
        assert_eq!(rec.text, b"de");
        assert_eq!(end, bytes.len());
        assert!(matches!(proto::read_frame(&mut r).unwrap(), Frame::Heartbeat { .. }));

        // append more on the "primary": the stream picks it up
        w.append(b"xyz", &[1.0; 3]).unwrap();
        *source.committed.lock().unwrap() = w.bytes();
        let frame = loop {
            match proto::read_frame(&mut r).unwrap() {
                Frame::Heartbeat { .. } => continue,
                frame => break frame,
            }
        };
        let Frame::Records { start, records, .. } = frame else {
            panic!("expected the appended record");
        };
        assert_eq!(start, committed);
        assert_eq!(records, 1);

        // a resuming follower starts exactly at its offset
        let conn = TcpStream::connect(shipper.addr()).unwrap();
        let mut r2 = BufReader::new(conn.try_clone().unwrap());
        let mut wtr2 = BufWriter::new(conn);
        proto::write_hello(&mut wtr2, &proto::Hello { doc: "d".into(), offset: committed })
            .unwrap();
        let ack = proto::read_ack(&mut r2).unwrap();
        assert_eq!(ack.status, AckStatus::Ok);
        assert_eq!(ack.committed_records, 3);
        let Frame::Records { start, records, .. } = proto::read_frame(&mut r2).unwrap() else {
            panic!("expected the tail record");
        };
        assert_eq!(start, committed);
        assert_eq!(records, 1);

        shipper.shutdown();
    }
}
