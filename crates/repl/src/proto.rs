//! The replication wire protocol: a thin, length-prefixed binary
//! framing over TCP, little-endian throughout (matching the `.usil`
//! WAL encoding it carries).
//!
//! One connection replicates one document:
//!
//! ```text
//! follower → primary   Hello  { magic, doc id, resume offset }
//! primary  → follower  Ack    { status, committed bytes, committed records }
//! primary  → follower  Frame… { Records | Heartbeat }   (forever)
//! ```
//!
//! A `Records` frame carries **raw WAL record bytes** — the exact
//! length-prefixed, CRC'd encoding `usi_ingest::wal` wrote on the
//! primary — so the follower re-verifies every record with the same
//! parser the primary's crash recovery uses. The resume offset is a
//! byte offset into the WAL file, which makes reconnect idempotent:
//! a follower that applied through byte `b` asks for `b` and the
//! stream continues exactly there.

use std::io::{self, Read, Write};

/// Handshake magic: protocol name + version, one bump per breaking
/// change (mirrors the WAL's own `USIL` magic).
pub const HELLO_MAGIC: [u8; 8] = *b"USIR\x01\x00\x00\x00";

/// Longest accepted document id in a hello.
pub const MAX_DOC_ID: usize = 256;

/// Longest accepted `Records` frame payload; matches the WAL's own
/// per-record cap so any single record always fits.
pub const MAX_FRAME_BYTES: usize = 64 * 1024 * 1024;

/// Frame tags.
const TAG_RECORDS: u8 = 1;
const TAG_HEARTBEAT: u8 = 2;

/// The follower's opening message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hello {
    /// The document to replicate.
    pub doc: String,
    /// WAL byte offset to resume from (`0` means "from the start").
    pub offset: u64,
}

/// The primary's verdict on a hello.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AckStatus {
    /// Streaming begins after the ack.
    Ok,
    /// The primary does not serve (or cannot ship) that document.
    UnknownDoc,
    /// The requested offset is beyond the committed WAL or inside the
    /// file header — the follower must restart from scratch.
    BadOffset,
}

impl AckStatus {
    fn to_byte(self) -> u8 {
        match self {
            Self::Ok => 0,
            Self::UnknownDoc => 1,
            Self::BadOffset => 2,
        }
    }

    fn from_byte(b: u8) -> Option<Self> {
        Some(match b {
            0 => Self::Ok,
            1 => Self::UnknownDoc,
            2 => Self::BadOffset,
            _ => return None,
        })
    }
}

/// The primary's reply to a [`Hello`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ack {
    /// Whether streaming will follow.
    pub status: AckStatus,
    /// Committed WAL bytes on the primary at ack time.
    pub committed_bytes: u64,
    /// Committed WAL records on the primary at ack time.
    pub committed_records: u64,
}

/// One primary → follower message.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Whole WAL records, framing and CRCs intact, starting at byte
    /// `start` of the WAL file.
    Records {
        /// WAL byte offset of the first record in `bytes`.
        start: u64,
        /// How many records `bytes` holds.
        records: u32,
        /// The raw record bytes as written by the primary.
        bytes: Vec<u8>,
    },
    /// No new records; carries the primary's current committed state so
    /// the follower's lag gauges stay fresh while idle.
    Heartbeat {
        /// Committed WAL bytes on the primary.
        committed_bytes: u64,
        /// Committed WAL records on the primary.
        committed_records: u64,
    },
}

fn bad(message: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message)
}

fn read_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

fn read_u64(r: &mut impl Read) -> io::Result<u64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

/// Writes a [`Hello`] (follower side).
pub fn write_hello(w: &mut impl Write, hello: &Hello) -> io::Result<()> {
    debug_assert!(hello.doc.len() <= MAX_DOC_ID);
    w.write_all(&HELLO_MAGIC)?;
    w.write_all(&(hello.doc.len() as u32).to_le_bytes())?;
    w.write_all(hello.doc.as_bytes())?;
    w.write_all(&hello.offset.to_le_bytes())?;
    w.flush()
}

/// Reads a [`Hello`] (primary side), validating magic and id length.
pub fn read_hello(r: &mut impl Read) -> io::Result<Hello> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if magic != HELLO_MAGIC {
        return Err(bad(format!("bad replication hello magic {magic:02x?}")));
    }
    let id_len = read_u32(r)? as usize;
    if id_len > MAX_DOC_ID {
        return Err(bad(format!("doc id length {id_len} exceeds {MAX_DOC_ID}")));
    }
    let mut id = vec![0u8; id_len];
    r.read_exact(&mut id)?;
    let doc = String::from_utf8(id).map_err(|_| bad("doc id is not UTF-8".into()))?;
    let offset = read_u64(r)?;
    Ok(Hello { doc, offset })
}

/// Writes an [`Ack`] (primary side).
pub fn write_ack(w: &mut impl Write, ack: &Ack) -> io::Result<()> {
    w.write_all(&[ack.status.to_byte()])?;
    w.write_all(&ack.committed_bytes.to_le_bytes())?;
    w.write_all(&ack.committed_records.to_le_bytes())?;
    w.flush()
}

/// Reads an [`Ack`] (follower side).
pub fn read_ack(r: &mut impl Read) -> io::Result<Ack> {
    let mut status = [0u8; 1];
    r.read_exact(&mut status)?;
    let status = AckStatus::from_byte(status[0])
        .ok_or_else(|| bad(format!("unknown ack status {}", status[0])))?;
    let committed_bytes = read_u64(r)?;
    let committed_records = read_u64(r)?;
    Ok(Ack { status, committed_bytes, committed_records })
}

/// Writes one [`Frame`] (primary side).
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> io::Result<()> {
    match frame {
        Frame::Records { start, records, bytes } => {
            debug_assert!(bytes.len() <= MAX_FRAME_BYTES);
            w.write_all(&[TAG_RECORDS])?;
            w.write_all(&start.to_le_bytes())?;
            w.write_all(&records.to_le_bytes())?;
            w.write_all(&(bytes.len() as u32).to_le_bytes())?;
            w.write_all(bytes)?;
        }
        Frame::Heartbeat { committed_bytes, committed_records } => {
            w.write_all(&[TAG_HEARTBEAT])?;
            w.write_all(&committed_bytes.to_le_bytes())?;
            w.write_all(&committed_records.to_le_bytes())?;
        }
    }
    w.flush()
}

/// Reads one [`Frame`] (follower side), enforcing the payload cap.
pub fn read_frame(r: &mut impl Read) -> io::Result<Frame> {
    let mut tag = [0u8; 1];
    r.read_exact(&mut tag)?;
    match tag[0] {
        TAG_RECORDS => {
            let start = read_u64(r)?;
            let records = read_u32(r)?;
            let len = read_u32(r)? as usize;
            if len > MAX_FRAME_BYTES {
                return Err(bad(format!("records frame of {len} bytes exceeds cap")));
            }
            let mut bytes = vec![0u8; len];
            r.read_exact(&mut bytes)?;
            Ok(Frame::Records { start, records, bytes })
        }
        TAG_HEARTBEAT => {
            let committed_bytes = read_u64(r)?;
            let committed_records = read_u64(r)?;
            Ok(Frame::Heartbeat { committed_bytes, committed_records })
        }
        t => Err(bad(format!("unknown replication frame tag {t}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hello_ack_and_frames_round_trip() {
        let hello = Hello { doc: "docs/1".into(), offset: 4096 };
        let mut buf = Vec::new();
        write_hello(&mut buf, &hello).unwrap();
        assert_eq!(read_hello(&mut &buf[..]).unwrap(), hello);

        for status in [AckStatus::Ok, AckStatus::UnknownDoc, AckStatus::BadOffset] {
            let ack = Ack { status, committed_bytes: 99, committed_records: 7 };
            let mut buf = Vec::new();
            write_ack(&mut buf, &ack).unwrap();
            assert_eq!(read_ack(&mut &buf[..]).unwrap(), ack);
        }

        let frames = [
            Frame::Records { start: 8, records: 3, bytes: vec![1, 2, 3, 4] },
            Frame::Heartbeat { committed_bytes: 1234, committed_records: 56 },
        ];
        let mut buf = Vec::new();
        for frame in &frames {
            write_frame(&mut buf, frame).unwrap();
        }
        let mut r = &buf[..];
        for frame in &frames {
            assert_eq!(&read_frame(&mut r).unwrap(), frame);
        }
        // the stream is fully consumed
        assert!(r.is_empty());
    }

    #[test]
    fn malformed_input_is_rejected() {
        // wrong magic
        let mut buf = Vec::new();
        write_hello(&mut buf, &Hello { doc: "d".into(), offset: 0 }).unwrap();
        buf[0] = b'X';
        assert!(read_hello(&mut &buf[..]).is_err());
        // oversized doc id length
        let mut buf = Vec::new();
        buf.extend_from_slice(&HELLO_MAGIC);
        buf.extend_from_slice(&(u32::MAX).to_le_bytes());
        assert!(read_hello(&mut &buf[..]).is_err());
        // unknown frame tag
        assert!(read_frame(&mut &[9u8, 0, 0][..]).is_err());
        // truncated frame
        let mut buf = Vec::new();
        write_frame(&mut buf, &Frame::Records { start: 8, records: 1, bytes: vec![0; 16] })
            .unwrap();
        buf.truncate(buf.len() - 1);
        assert!(read_frame(&mut &buf[..]).is_err());
        // oversized records frame is refused before allocation
        let mut buf = vec![1u8];
        buf.extend_from_slice(&8u64.to_le_bytes());
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.extend_from_slice(&(MAX_FRAME_BYTES as u32 + 1).to_le_bytes());
        assert!(read_frame(&mut &buf[..]).is_err());
        // unknown ack status
        let mut buf = vec![7u8];
        buf.extend_from_slice(&[0u8; 16]);
        assert!(read_ack(&mut &buf[..]).is_err());
    }
}
