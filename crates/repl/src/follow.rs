//! The follower: replays shipped WAL records into per-document
//! [`IngestIndex`]es while serving reads the whole time.
//!
//! Each followed document is a [`FollowerDoc`]: an `RwLock`'d
//! [`IngestIndex`] (queries take the read lock, replay takes the write
//! lock briefly per frame) plus the applied/committed bookkeeping that
//! feeds the staleness gauges. Replay re-verifies every record with the
//! WAL's own parser — a flipped bit on the wire fails the CRC and drops
//! the connection rather than corrupting the replica — and compacts to
//! quiescence after each frame, so a follower's structure converges to
//! the same deterministic quiescent state regardless of how records
//! were batched in flight.
//!
//! Two transports share all of that:
//!
//! * [`FollowSource::Tcp`] — the streaming protocol of [`crate::ship`],
//!   with reconnect/backoff (100 ms doubling to 5 s) and byte-offset
//!   resume;
//! * [`FollowSource::Dir`] — a directory watcher for air-gapped setups:
//!   polls `<dir>/<doc>.usil` (rsync'd, scp'd, …) and applies whatever
//!   complete records have appeared past the applied offset; a torn
//!   tail mid-copy is simply retried next poll.

use crate::metrics;
use crate::proto::{self, AckStatus, Frame};
use std::io::{self, BufReader, BufWriter};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use usi_core::index::IndexSize;
use usi_core::{QueryEngine, QuerySource, UsiIndex, UsiQuery};
use usi_ingest::wal;
use usi_ingest::{IngestIndex, IngestOptions};
use usi_strings::{GlobalUtility, UtilityAccumulator};

/// Where a follower's records come from.
#[derive(Debug, Clone)]
pub enum FollowSource {
    /// Stream from a primary's `--repl-listen` address.
    Tcp(String),
    /// Watch `<dir>/<doc>.usil` files shipped by other means.
    Dir(PathBuf),
}

/// Follower tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct FollowerConfig {
    /// Directory-watch poll interval (TCP streams are push-driven).
    pub poll_interval: Duration,
    /// First reconnect delay after a broken stream (doubles per retry).
    pub backoff_initial: Duration,
    /// Reconnect delay cap.
    pub backoff_max: Duration,
}

impl Default for FollowerConfig {
    fn default() -> Self {
        Self {
            poll_interval: Duration::from_millis(100),
            backoff_initial: Duration::from_millis(100),
            backoff_max: Duration::from_secs(5),
        }
    }
}

/// One replicated document: a replaying index behind a read-write lock,
/// served as a [`QueryEngine`] (register it with
/// `usi_server::Catalog::insert_engine`) while replication feeds it.
pub struct FollowerDoc {
    id: String,
    state: RwLock<IngestIndex>,
    /// Next WAL byte to apply (replication resume offset).
    applied_bytes: AtomicU64,
    applied_records: AtomicU64,
    committed_bytes: AtomicU64,
    committed_records: AtomicU64,
    connected: AtomicBool,
    /// When the doc last fell behind; `None` while caught up.
    behind_since: Mutex<Option<Instant>>,
    lag_records_gauge: Arc<usi_obs::Gauge>,
    lag_seconds_gauge: Arc<usi_obs::Gauge>,
    connected_gauge: Arc<usi_obs::Gauge>,
}

impl FollowerDoc {
    /// Wraps a loaded base index for following. The base must be the
    /// same `.usix` the primary serves (ship the file); records then
    /// replay on top exactly as the primary applied them.
    pub fn new(id: impl Into<String>, base: UsiIndex, opts: IngestOptions) -> Self {
        let id = id.into();
        let m = metrics::repl();
        Self {
            state: RwLock::new(IngestIndex::new(base, opts)),
            applied_bytes: AtomicU64::new(wal::MAGIC.len() as u64),
            applied_records: AtomicU64::new(0),
            committed_bytes: AtomicU64::new(wal::MAGIC.len() as u64),
            committed_records: AtomicU64::new(0),
            connected: AtomicBool::new(false),
            behind_since: Mutex::new(None),
            lag_records_gauge: m.lag_records.with(&[&id]),
            lag_seconds_gauge: m.lag_seconds.with(&[&id]),
            connected_gauge: m.connected.with(&[&id]),
            id,
        }
    }

    /// The document id.
    pub fn id(&self) -> &str {
        &self.id
    }

    /// Next WAL byte offset to apply (the resume offset).
    pub fn applied_bytes(&self) -> u64 {
        self.applied_bytes.load(Ordering::SeqCst)
    }

    /// Records applied so far.
    pub fn applied_records(&self) -> u64 {
        self.applied_records.load(Ordering::SeqCst)
    }

    /// Shipped-but-unapplied records (the primary's committed count
    /// minus what replayed here).
    pub fn lag_records(&self) -> u64 {
        self.committed_records.load(Ordering::SeqCst).saturating_sub(self.applied_records())
    }

    /// Whether the replication stream (or watched file) is live.
    pub fn is_connected(&self) -> bool {
        self.connected.load(Ordering::SeqCst)
    }

    /// Runs `f` on the replaying index under the read lock.
    pub fn with_state<T>(&self, f: impl FnOnce(&IngestIndex) -> T) -> T {
        f(&self.state.read().expect("follower state poisoned"))
    }

    fn set_connected(&self, connected: bool) {
        self.connected.store(connected, Ordering::SeqCst);
        self.connected_gauge.set(connected as i64);
    }

    /// Records the primary's committed state and refreshes the lag
    /// gauges.
    fn note_committed(&self, committed_bytes: u64, committed_records: u64) {
        self.committed_bytes.store(committed_bytes, Ordering::SeqCst);
        self.committed_records.store(committed_records, Ordering::SeqCst);
        self.refresh_lag();
    }

    fn refresh_lag(&self) {
        let lag = self.lag_records();
        self.lag_records_gauge.set(lag as i64);
        let mut behind = self.behind_since.lock().expect("behind_since poisoned");
        if lag == 0 {
            *behind = None;
            self.lag_seconds_gauge.set(0);
        } else {
            let since = behind.get_or_insert_with(Instant::now);
            self.lag_seconds_gauge.set(since.elapsed().as_secs() as i64);
        }
    }

    /// Applies a chunk of raw WAL record bytes starting at WAL offset
    /// `start`. Every record is re-parsed (and CRC-verified) with the
    /// WAL's own parser; the chunk must continue exactly at the applied
    /// offset and contain only whole records.
    pub fn apply_records(&self, start: u64, bytes: &[u8]) -> io::Result<u64> {
        let applied = self.applied_bytes.load(Ordering::SeqCst);
        if start != applied {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("records start at WAL byte {start} but {applied} is next to apply"),
            ));
        }
        let mut records = Vec::new();
        let mut pos = 0;
        while pos < bytes.len() {
            let Some((record, next)) = wal::parse_record_at(bytes, pos) else {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("corrupt shipped record at chunk byte {pos} (CRC or framing)"),
                ));
            };
            records.push(record);
            pos = next;
        }
        let applied_now = records.len() as u64;
        {
            let mut state = self.state.write().expect("follower state poisoned");
            for record in &records {
                state.append(&record.text, &record.weights);
            }
            // converge to the deterministic quiescent structure — the
            // same state the primary's compactor reaches — so answers
            // are reproducible regardless of frame batching
            state.compact_to_quiescence();
        }
        self.applied_bytes.store(start + bytes.len() as u64, Ordering::SeqCst);
        self.applied_records.fetch_add(applied_now, Ordering::SeqCst);
        metrics::repl().applied_records_total.add(applied_now);
        self.refresh_lag();
        Ok(applied_now)
    }
}

impl std::fmt::Debug for FollowerDoc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FollowerDoc")
            .field("id", &self.id)
            .field("applied_bytes", &self.applied_bytes())
            .field("applied_records", &self.applied_records())
            .field("lag_records", &self.lag_records())
            .field("connected", &self.is_connected())
            .finish_non_exhaustive()
    }
}

impl QueryEngine for FollowerDoc {
    fn query(&self, pattern: &[u8]) -> UsiQuery {
        self.with_state(|s| s.query(pattern))
    }

    fn query_accumulator(&self, pattern: &[u8]) -> (UtilityAccumulator, QuerySource) {
        self.with_state(|s| s.query_accumulator(pattern))
    }

    fn query_batch(&self, patterns: &[&[u8]]) -> Vec<UsiQuery> {
        self.with_state(|s| s.query_batch(patterns))
    }

    fn query_accumulator_batch(
        &self,
        patterns: &[&[u8]],
    ) -> Vec<(UtilityAccumulator, QuerySource)> {
        self.with_state(|s| s.query_accumulator_batch(patterns))
    }

    fn utility(&self) -> GlobalUtility {
        self.with_state(IngestIndex::utility)
    }

    fn indexed_len(&self) -> usize {
        self.with_state(IngestIndex::len)
    }

    fn cached_substrings(&self) -> usize {
        self.with_state(QueryEngine::cached_substrings)
    }

    fn size_breakdown(&self) -> IndexSize {
        self.with_state(QueryEngine::size_breakdown)
    }
}

/// The follower-side replication status `/healthz` reports; implements
/// `usi_server::ReplicationStatus` over all followed documents.
pub struct FollowerStatus {
    docs: Vec<Arc<FollowerDoc>>,
}

impl usi_server::ReplicationStatus for FollowerStatus {
    fn connected(&self) -> bool {
        !self.docs.is_empty() && self.docs.iter().all(|d| d.is_connected())
    }

    fn lag_records(&self) -> u64 {
        self.docs.iter().map(|d| d.lag_records()).sum()
    }
}

/// A running follower: one replication thread per document.
pub struct Follower {
    docs: Vec<Arc<FollowerDoc>>,
    stop: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
}

impl Follower {
    /// Starts following `source` for every doc in `docs`.
    pub fn start(
        docs: Vec<Arc<FollowerDoc>>,
        source: &FollowSource,
        config: FollowerConfig,
    ) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let threads = docs
            .iter()
            .map(|doc| {
                let doc = Arc::clone(doc);
                let stop = Arc::clone(&stop);
                let source = source.clone();
                std::thread::Builder::new()
                    .name(format!("usi-repl-follow-{}", doc.id()))
                    .spawn(move || match source {
                        FollowSource::Tcp(addr) => follow_tcp(&doc, &addr, &stop, config),
                        FollowSource::Dir(dir) => follow_dir(&doc, &dir, &stop, config),
                    })
                    .expect("spawn follower thread")
            })
            .collect();
        Self { docs, stop, threads }
    }

    /// The followed documents.
    pub fn docs(&self) -> &[Arc<FollowerDoc>] {
        &self.docs
    }

    /// A status handle for `usi_server::Catalog::set_replication`.
    pub fn status(&self) -> Arc<FollowerStatus> {
        Arc::new(FollowerStatus { docs: self.docs.clone() })
    }

    /// Stops every replication thread and joins them.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        for thread in self.threads.drain(..) {
            let _ = thread.join();
        }
    }
}

impl Drop for Follower {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        for thread in self.threads.drain(..) {
            let _ = thread.join();
        }
    }
}

/// Streams one document from a primary, reconnecting with exponential
/// backoff on any error. Read timeouts double as liveness checks: the
/// primary heartbeats every poll interval, so a silent stream means a
/// dead peer.
fn follow_tcp(doc: &FollowerDoc, addr: &str, stop: &AtomicBool, config: FollowerConfig) {
    let mut backoff = config.backoff_initial;
    while !stop.load(Ordering::SeqCst) {
        match stream_once(doc, addr, stop) {
            Ok(()) => return, // clean stop
            Err(_) => {
                doc.set_connected(false);
                metrics::repl().reconnects_total.inc();
                // sleep in small slices so shutdown stays prompt
                let deadline = Instant::now() + backoff;
                while Instant::now() < deadline && !stop.load(Ordering::SeqCst) {
                    std::thread::sleep(Duration::from_millis(20));
                }
                backoff = (backoff * 2).min(config.backoff_max);
            }
        }
    }
}

/// One connection lifetime: handshake at the applied offset, then apply
/// frames until error or stop.
fn stream_once(doc: &FollowerDoc, addr: &str, stop: &AtomicBool) -> io::Result<()> {
    let conn = connect(addr, Duration::from_secs(5))?;
    conn.set_read_timeout(Some(Duration::from_secs(10)))?;
    conn.set_write_timeout(Some(Duration::from_secs(10)))?;
    let mut reader = BufReader::new(conn.try_clone()?);
    let mut writer = BufWriter::new(conn);
    proto::write_hello(
        &mut writer,
        &proto::Hello { doc: doc.id().to_string(), offset: doc.applied_bytes() },
    )?;
    let ack = proto::read_ack(&mut reader)?;
    match ack.status {
        AckStatus::Ok => {}
        AckStatus::UnknownDoc => {
            return Err(io::Error::other(format!("primary does not ship doc {:?}", doc.id())))
        }
        AckStatus::BadOffset => {
            return Err(io::Error::other(format!(
                "primary rejected resume offset {} (its WAL has {} committed bytes — \
                 was it recreated?)",
                doc.applied_bytes(),
                ack.committed_bytes,
            )))
        }
    }
    doc.note_committed(ack.committed_bytes, ack.committed_records);
    doc.set_connected(true);
    while !stop.load(Ordering::SeqCst) {
        match proto::read_frame(&mut reader)? {
            Frame::Records { start, records: _, bytes } => {
                doc.apply_records(start, &bytes)
                    .map_err(|e| io::Error::other(format!("applying shipped records: {e}")))?;
            }
            Frame::Heartbeat { committed_bytes, committed_records } => {
                doc.note_committed(committed_bytes, committed_records);
            }
        }
    }
    Ok(())
}

/// `TcpStream::connect` with a timeout across every resolved address.
fn connect(addr: &str, timeout: Duration) -> io::Result<TcpStream> {
    use std::net::ToSocketAddrs;
    let mut last = io::Error::other(format!("no addresses resolved for {addr:?}"));
    for resolved in addr.to_socket_addrs()? {
        match TcpStream::connect_timeout(&resolved, timeout) {
            Ok(conn) => return Ok(conn),
            Err(e) => last = e,
        }
    }
    Err(last)
}

/// The air-gapped fallback: polls `<dir>/<doc>.usil` and applies the
/// complete records past the applied offset. A torn tail (a copy in
/// progress) parses to a record boundary and the rest is retried next
/// poll — exactly the WAL's own crash-recovery discipline.
fn follow_dir(doc: &FollowerDoc, dir: &std::path::Path, stop: &AtomicBool, config: FollowerConfig) {
    let path = dir.join(format!("{}.usil", doc.id()));
    while !stop.load(Ordering::SeqCst) {
        match std::fs::metadata(&path) {
            Err(_) => doc.set_connected(false),
            Ok(meta) => {
                doc.set_connected(true);
                let len = meta.len();
                let applied = doc.applied_bytes();
                if len > applied {
                    // `len` may end mid-record; read_tail trims to the
                    // last complete boundary and errors only when not
                    // even one whole record is readable — wait, retry
                    if let Ok(chunk) = wal::read_tail(&path, applied, len, 4 * 1024 * 1024) {
                        if chunk.records > 0 && doc.apply_records(applied, &chunk.bytes).is_ok() {
                            // committed == what we can see in the file
                            doc.note_committed(doc.applied_bytes(), doc.applied_records());
                            continue; // immediately look for more
                        }
                    }
                } else {
                    doc.note_committed(doc.applied_bytes(), doc.applied_records());
                }
            }
        }
        std::thread::sleep(config.poll_interval);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use usi_core::UsiBuilder;
    use usi_strings::WeightedString;

    fn base(seed: u64) -> UsiIndex {
        UsiBuilder::new()
            .with_k(8)
            .deterministic(seed)
            .build(WeightedString::uniform(b"abcabc".to_vec(), 1.0))
    }

    fn opts() -> IngestOptions {
        IngestOptions { seal_threshold: 16, compact_fanout: 2, ..IngestOptions::default() }
    }

    /// Encodes WAL records byte-identically to the primary by writing
    /// through a real `Wal` and reading the file back.
    fn wal_bytes(records: &[(&[u8], Vec<f64>)]) -> Vec<u8> {
        let dir = std::env::temp_dir().join("usi-repl-follow-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("enc-{}.usil", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let (mut w, _) = usi_ingest::Wal::open(&path, false).unwrap();
        for (text, weights) in records {
            w.append(text, weights).unwrap();
        }
        let bytes = std::fs::read(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        bytes[wal::MAGIC.len()..].to_vec()
    }

    #[test]
    fn applies_records_and_tracks_lag() {
        let doc = FollowerDoc::new("d", base(1), opts());
        assert_eq!(doc.query(b"abc").occurrences, 2);

        let bytes = wal_bytes(&[(b"abcabc", vec![1.0; 6])]);
        doc.note_committed(wal::MAGIC.len() as u64 + bytes.len() as u64, 1);
        assert_eq!(doc.lag_records(), 1);

        let start = doc.applied_bytes();
        assert_eq!(doc.apply_records(start, &bytes).unwrap(), 1);
        assert_eq!(doc.lag_records(), 0);
        assert_eq!(doc.applied_records(), 1);
        // the replayed doc answers like a from-scratch build over the
        // concatenated text
        let scratch = UsiBuilder::new()
            .with_k(8)
            .deterministic(1)
            .build(WeightedString::uniform(b"abcabcabcabc".to_vec(), 1.0));
        assert_eq!(doc.query(b"abc").occurrences, scratch.query(b"abc").occurrences);
        assert_eq!(doc.query(b"abc").value, scratch.query(b"abc").value);

        // a chunk that does not continue at the applied offset is refused
        assert!(doc.apply_records(start, &bytes).is_err());
        // corrupt bytes fail the CRC re-verification and nothing applies
        let mut corrupt = wal_bytes(&[(b"xy", vec![1.0; 2])]);
        let last = corrupt.len() - 1;
        corrupt[last] ^= 0xff;
        let n_before = doc.indexed_len();
        assert!(doc.apply_records(doc.applied_bytes(), &corrupt).is_err());
        assert_eq!(doc.indexed_len(), n_before);
    }

    #[test]
    fn batching_does_not_change_the_converged_state() {
        // one record at a time vs all at once: same quiescent answers
        let one = FollowerDoc::new("one", base(2), opts());
        let all = FollowerDoc::new("all", base(2), opts());
        let records: Vec<(&[u8], Vec<f64>)> =
            vec![(b"abc", vec![1.0; 3]), (b"cab", vec![0.5; 3]), (b"bca", vec![2.0; 3])];
        for record in &records {
            let bytes = wal_bytes(std::slice::from_ref(record));
            one.apply_records(one.applied_bytes(), &bytes).unwrap();
        }
        let bytes = wal_bytes(&records);
        all.apply_records(all.applied_bytes(), &bytes).unwrap();
        for pattern in [b"abc".as_slice(), b"ca", b"b", b"bcab"] {
            assert_eq!(one.query(pattern), all.query(pattern), "pattern {pattern:?}");
        }
    }

    #[test]
    fn dir_watcher_applies_shipped_wal_and_tolerates_torn_tails() {
        let dir = std::env::temp_dir().join(format!("usi-repl-dirwatch-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();

        // "ship" a WAL with two records, the second torn mid-copy
        let full = {
            let path = dir.join("enc.usil");
            let (mut w, _) = usi_ingest::Wal::open(&path, false).unwrap();
            w.append(b"abcabc", &[1.0; 6]).unwrap();
            w.append(b"cba", &[1.0; 3]).unwrap();
            let bytes = std::fs::read(&path).unwrap();
            let _ = std::fs::remove_file(&path);
            bytes
        };
        std::fs::write(dir.join("d.usil"), &full[..full.len() - 2]).unwrap();

        let doc = Arc::new(FollowerDoc::new("d", base(3), opts()));
        let follower = Follower::start(
            vec![Arc::clone(&doc)],
            &FollowSource::Dir(dir.clone()),
            FollowerConfig { poll_interval: Duration::from_millis(5), ..FollowerConfig::default() },
        );
        // the first (complete) record lands; the torn one waits
        let deadline = Instant::now() + Duration::from_secs(10);
        while doc.applied_records() < 1 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(doc.applied_records(), 1);
        // the copy completes: the second record lands too
        std::fs::write(dir.join("d.usil"), &full).unwrap();
        while doc.applied_records() < 2 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(doc.applied_records(), 2);
        assert!(doc.is_connected());
        assert_eq!(doc.lag_records(), 0);
        follower.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
