//! Property-based tests for the suffix structures.

use proptest::prelude::*;
use usi_strings::Fingerprinter;
use usi_suffix::naive::{lcp_array_naive, occurrences_naive, suffix_array_naive};
use usi_suffix::{
    lcp_array, lcp_array_threads, lcp_intervals, sparse_suffix_array, suffix_array,
    suffix_array_induced_threads, suffix_array_sharded, suffix_array_threads, EsaSearcher,
    FingerprintLce, LceOracle, NaiveLce, RmqLce, SuffixArraySearcher, SuffixTree,
};

fn text_strategy(max_len: usize) -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(prop_oneof![Just(b'a'), Just(b'b'), Just(b'c')], 0..max_len)
}

proptest! {
    #[test]
    fn sais_matches_naive(text in text_strategy(300)) {
        prop_assert_eq!(suffix_array(&text), suffix_array_naive(&text));
    }

    #[test]
    fn sais_wide_alphabet(text in proptest::collection::vec(any::<u8>(), 0..200)) {
        prop_assert_eq!(suffix_array(&text), suffix_array_naive(&text));
    }

    #[test]
    fn kasai_matches_naive(text in text_strategy(200)) {
        let sa = suffix_array(&text);
        prop_assert_eq!(lcp_array(&text, &sa), lcp_array_naive(&text, &sa));
    }

    #[test]
    fn parallel_sa_equals_serial(text in proptest::collection::vec(any::<u8>(), 0..400)) {
        // the determinism invariant: every construction path, at every
        // thread count, produces the one true suffix array
        let want = suffix_array(&text);
        for threads in [2usize, 3, 8] {
            prop_assert_eq!(&suffix_array_sharded(&text, threads), &want);
            prop_assert_eq!(&suffix_array_threads(&text, threads), &want);
            prop_assert_eq!(&suffix_array_induced_threads(&text, threads), &want);
        }
    }

    #[test]
    fn parallel_lcp_equals_serial(text in text_strategy(300)) {
        let sa = suffix_array(&text);
        let want = lcp_array(&text, &sa);
        for threads in [2usize, 3, 8] {
            prop_assert_eq!(&lcp_array_threads(&text, &sa, threads), &want);
        }
    }

    #[test]
    fn lce_oracles_agree(text in text_strategy(120), seed in any::<u64>()) {
        prop_assume!(!text.is_empty());
        let naive = NaiveLce::new(&text);
        let fp = FingerprintLce::new(&text, Fingerprinter::with_base(seed));
        let rmq = RmqLce::new(&text);
        let n = text.len();
        for i in (0..n).step_by(1 + n / 12) {
            for j in (0..n).step_by(1 + n / 12) {
                let want = naive.lce(i, j);
                prop_assert_eq!(fp.lce(i, j), want);
                prop_assert_eq!(rmq.lce(i, j), want);
            }
        }
    }

    #[test]
    fn searcher_matches_naive(text in text_strategy(200), pat in text_strategy(6)) {
        prop_assume!(!pat.is_empty());
        let sa = suffix_array(&text);
        let s = SuffixArraySearcher::new(&text, &sa);
        let mut got: Vec<u32> = s.occurrences(&pat).to_vec();
        got.sort_unstable();
        prop_assert_eq!(got, occurrences_naive(&text, &pat));
        prop_assert_eq!(s.interval(&pat), s.interval_accelerated(&pat));
    }

    #[test]
    fn lcp_interval_frequencies_are_exact(text in text_strategy(60)) {
        prop_assume!(!text.is_empty());
        let sa = suffix_array(&text);
        let lcp = lcp_array(&text, &sa);
        let nodes = lcp_intervals(&lcp, |i| (text.len() - sa[i] as usize) as u32, true);
        // Σ q(v) = number of distinct substrings; each node's frequency is
        // the true frequency of its witness substring.
        let freqs = usi_suffix::naive::substring_frequencies_naive(&text);
        let covered: usize = nodes.iter().map(|n| n.q() as usize).sum();
        prop_assert_eq!(covered, freqs.len());
        for node in &nodes {
            let start = sa[node.lb as usize] as usize;
            let sub = &text[start..start + node.depth as usize];
            prop_assert_eq!(freqs[sub], node.freq());
        }
    }

    #[test]
    fn sparse_sample_is_suffix_sorted(text in text_strategy(150), step in 1usize..5) {
        prop_assume!(!text.is_empty());
        let positions: Vec<u32> = (0..text.len()).step_by(step).map(|p| p as u32).collect();
        let idx = sparse_suffix_array(&text, positions, &NaiveLce::new(&text));
        for w in idx.ssa.windows(2) {
            prop_assert!(text[w[0] as usize..] < text[w[1] as usize..]);
        }
    }

    #[test]
    fn suffix_tree_counts_match_naive(text in text_strategy(80), pat in text_strategy(4)) {
        prop_assume!(!pat.is_empty());
        let st = SuffixTree::from_text(&text);
        prop_assert_eq!(st.count(&pat), occurrences_naive(&text, &pat).len());
    }

    #[test]
    fn interval_tree_matches_binary_search(text in text_strategy(150), pat in text_strategy(6)) {
        prop_assume!(!pat.is_empty() && !text.is_empty());
        let esa = EsaSearcher::new(&text);
        let sa = suffix_array(&text);
        let bin = SuffixArraySearcher::new(&text, &sa);
        prop_assert_eq!(esa.interval(&pat), bin.interval(&pat));
    }
}
