//! Pattern location over the suffix array.
//!
//! The paper answers infrequent queries by finding `occ_S(P)` with the
//! suffix tree in `O(m + occ)`; we locate the suffix-array interval with
//! binary search in `O(m log n)` and read the occurrences off `SA[lb..rb]`
//! (see DESIGN.md §3 for why this substitution is faithful). An
//! LCP-accelerated variant is provided for the ablation bench.

use std::cmp::Ordering;

/// Read access to a suffix array, however its ranks are stored.
///
/// The canonical backing is a `&[u32]` slice; storage-backed indexes
/// (e.g. a memory-mapped `.usix` file whose suffix-array section is not
/// 4-byte aligned) implement this over raw little-endian bytes instead,
/// decoding one rank per access.
pub trait SaAccess {
    /// Number of ranks (`n`).
    fn len(&self) -> usize;

    /// The suffix start position at `rank`.
    ///
    /// # Panics
    /// Panics if `rank >= len()`.
    fn at(&self, rank: usize) -> u32;

    /// Whether the array is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl SaAccess for &[u32] {
    #[inline]
    fn len(&self) -> usize {
        <[u32]>::len(self)
    }

    #[inline]
    fn at(&self, rank: usize) -> u32 {
        self[rank]
    }
}

/// Searches patterns in a text through its suffix array.
///
/// Generic over the suffix array's backing via [`SaAccess`]; the
/// default is a borrowed `&[u32]` slice (constructed with
/// [`SuffixArraySearcher::new`]), and storage views plug in through
/// [`SuffixArraySearcher::with_access`].
///
/// ```
/// use usi_suffix::{suffix_array, SuffixArraySearcher};
/// let text = b"banana";
/// let sa = suffix_array(text);
/// let s = SuffixArraySearcher::new(text, &sa);
/// let range = s.interval(b"ana").unwrap();
/// let mut occ: Vec<u32> = s.occurrences(b"ana").to_vec();
/// occ.sort_unstable();
/// assert_eq!(occ, vec![1, 3]);
/// assert_eq!(range.len(), 2);
/// assert!(s.interval(b"nab").is_none());
/// ```
#[derive(Debug, Clone, Copy)]
pub struct SuffixArraySearcher<'a, A: SaAccess = &'a [u32]> {
    text: &'a [u8],
    sa: A,
}

impl<'a> SuffixArraySearcher<'a> {
    /// Wraps a text and its suffix array (borrowed; the searcher is a
    /// lightweight view).
    pub fn new(text: &'a [u8], sa: &'a [u32]) -> Self {
        Self::with_access(text, sa)
    }

    /// The underlying suffix array.
    #[inline]
    pub fn suffix_array(&self) -> &'a [u32] {
        self.sa
    }

    /// The starting positions of `pattern` in the text, as the slice
    /// `SA[lb..rb]` (unsorted: suffix-array order). Empty if absent.
    pub fn occurrences(&self, pattern: &[u8]) -> &'a [u32] {
        match self.interval(pattern) {
            Some(r) => &self.sa[r],
            None => &[],
        }
    }
}

impl<'a, A: SaAccess> SuffixArraySearcher<'a, A> {
    /// Wraps a text and any [`SaAccess`] backing of its suffix array.
    pub fn with_access(text: &'a [u8], sa: A) -> Self {
        debug_assert_eq!(text.len(), sa.len());
        Self { text, sa }
    }

    /// The underlying text.
    #[inline]
    pub fn text(&self) -> &'a [u8] {
        self.text
    }

    /// The suffix-array backing.
    #[inline]
    pub fn access(&self) -> &A {
        &self.sa
    }

    /// Compares the length-`|pattern|` prefix of the suffix at `pos`
    /// against `pattern`; a shorter suffix that is a prefix of `pattern`
    /// compares `Less`.
    #[inline]
    fn cmp_prefix(&self, pos: u32, pattern: &[u8]) -> Ordering {
        let start = pos as usize;
        let end = (start + pattern.len()).min(self.text.len());
        self.text[start..end].cmp(pattern)
    }

    /// Suffix-array interval `lb..rb` (half-open ranks) of all suffixes
    /// with `pattern` as prefix, or `None` if the pattern does not occur.
    /// The empty pattern matches everywhere. `O(m log n)`.
    pub fn interval(&self, pattern: &[u8]) -> Option<std::ops::Range<usize>> {
        if pattern.is_empty() {
            return if self.sa.is_empty() { None } else { Some(0..self.sa.len()) };
        }
        let lb = partition_point(self.sa.len(), |i| {
            self.cmp_prefix(self.sa.at(i), pattern) == Ordering::Less
        });
        let rb = partition_point(self.sa.len(), |i| {
            self.cmp_prefix(self.sa.at(i), pattern) != Ordering::Greater
        });
        if lb < rb {
            Some(lb..rb)
        } else {
            None
        }
    }

    /// Number of occurrences of `pattern`.
    pub fn count(&self, pattern: &[u8]) -> usize {
        self.interval(pattern).map_or(0, |r| r.len())
    }

    /// LCP-accelerated interval search: remembers how many pattern
    /// letters already matched at both binary-search boundaries and skips
    /// them. Examines fewer letters than [`SuffixArraySearcher::interval`]
    /// on texts with long repeats, but its byte-at-a-time comparisons
    /// lose to the plain search's vectorised slice compare in practice
    /// (see the `ablation_sa_search` bench) — kept as the textbook
    /// algorithm and for alphabets/platforms where memcmp is not
    /// available.
    pub fn interval_accelerated(&self, pattern: &[u8]) -> Option<std::ops::Range<usize>> {
        if pattern.is_empty() {
            return if self.sa.is_empty() { None } else { Some(0..self.sa.len()) };
        }
        let n = self.sa.len();
        let m = pattern.len();

        // Matched-prefix-length-aware comparison.
        let cmp_from = |pos: u32, skip: usize| -> (Ordering, usize) {
            let start = pos as usize + skip;
            let mut k = skip;
            while k < m && start + (k - skip) < self.text.len() {
                match self.text[start + (k - skip)].cmp(&pattern[k]) {
                    Ordering::Equal => k += 1,
                    ord => return (ord, k),
                }
            }
            if k == m {
                (Ordering::Equal, k)
            } else {
                (Ordering::Less, k) // suffix exhausted: it is a proper prefix
            }
        };

        // Lower bound with boundary match lengths (llcp/rlcp scheme,
        // simplified: carry the smaller of the two boundary matches).
        let lower = {
            let (mut lo, mut hi) = (0usize, n);
            let (mut mlo, mut mhi) = (0usize, 0usize);
            while lo < hi {
                let mid = (lo + hi) / 2;
                let skip = mlo.min(mhi);
                let (ord, matched) = cmp_from(self.sa.at(mid), skip);
                if ord == Ordering::Less {
                    lo = mid + 1;
                    mlo = matched.min(m);
                } else {
                    hi = mid;
                    mhi = matched.min(m);
                }
            }
            lo
        };
        let upper = {
            let (mut lo, mut hi) = (0usize, n);
            let (mut mlo, mut mhi) = (0usize, 0usize);
            while lo < hi {
                let mid = (lo + hi) / 2;
                let skip = mlo.min(mhi);
                let (ord, matched) = cmp_from(self.sa.at(mid), skip);
                if ord != Ordering::Greater {
                    lo = mid + 1;
                    mlo = matched.min(m);
                } else {
                    hi = mid;
                    mhi = matched.min(m);
                }
            }
            lo
        };
        if lower < upper {
            Some(lower..upper)
        } else {
            None
        }
    }
}

/// `std`-style partition point over indices `0..n`.
fn partition_point(n: usize, pred: impl Fn(usize) -> bool) -> usize {
    let (mut lo, mut hi) = (0usize, n);
    while lo < hi {
        let mid = (lo + hi) / 2;
        if pred(mid) {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::occurrences_naive;
    use crate::sais::suffix_array;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn check_pattern(text: &[u8], pattern: &[u8]) {
        let sa = suffix_array(text);
        let s = SuffixArraySearcher::new(text, &sa);
        let mut got: Vec<u32> = s.occurrences(pattern).to_vec();
        got.sort_unstable();
        assert_eq!(got, occurrences_naive(text, pattern), "{text:?} / {pattern:?}");
        assert_eq!(s.interval(pattern), s.interval_accelerated(pattern));
    }

    #[test]
    fn fixtures() {
        let text = b"abracadabra";
        for pat in [
            &b"a"[..],
            b"ab",
            b"abra",
            b"abracadabra",
            b"bra",
            b"cad",
            b"d",
            b"x",
            b"abx",
            b"raa",
            b"ra",
        ] {
            check_pattern(text, pat);
        }
    }

    #[test]
    fn empty_pattern_matches_all() {
        let text = b"abc";
        let sa = suffix_array(text);
        let s = SuffixArraySearcher::new(text, &sa);
        assert_eq!(s.interval(b""), Some(0..3));
        assert_eq!(s.count(b""), 3);
    }

    #[test]
    fn empty_text() {
        let s = SuffixArraySearcher::new(b"", &[]);
        assert_eq!(s.interval(b""), None);
        assert_eq!(s.interval(b"a"), None);
        assert_eq!(s.count(b"a"), 0);
    }

    #[test]
    fn pattern_longer_than_text() {
        check_pattern(b"ab", b"abc");
    }

    #[test]
    fn overlapping_occurrences() {
        check_pattern(b"aaaaaa", b"aa");
        check_pattern(b"aaaaaa", b"aaa");
    }

    #[test]
    fn random_cross_check() {
        let mut rng = StdRng::seed_from_u64(21);
        for _ in 0..30 {
            let n = rng.gen_range(1..200);
            let text: Vec<u8> = (0..n).map(|_| b'a' + rng.gen_range(0..3u8)).collect();
            for _ in 0..20 {
                let m = rng.gen_range(1..8usize);
                let pat: Vec<u8> = (0..m).map(|_| b'a' + rng.gen_range(0..3u8)).collect();
                check_pattern(&text, &pat);
            }
            // also existing substrings
            for _ in 0..10 {
                let i = rng.gen_range(0..text.len());
                let m = rng.gen_range(1..=(text.len() - i).min(10));
                let pat = text[i..i + m].to_vec();
                check_pattern(&text, &pat);
            }
        }
    }
}
