//! Suffix structures for Useful String Indexing.
//!
//! The paper's data structures are stated over the suffix tree `ST(S)`;
//! following standard practice (and the paper's own storage of ST leaves
//! as `SA(S)`), this crate provides the *enhanced suffix array* toolkit
//! that simulates every suffix-tree operation USI needs:
//!
//! * [`sais`] — linear-time suffix array construction (SA-IS), with the
//!   top-level classification/bucket phases optionally chunked over
//!   scoped threads;
//! * [`parallel`] — block-sharded parallel suffix-array construction
//!   (per-block seed sort + doubling merge) behind a thread-count-aware
//!   policy entry point;
//! * [`lcp`] — Kasai's linear-time LCP array, serial or blockwise
//!   parallel;
//! * [`rmq`] — sparse-table range-minimum queries;
//! * [`lce`] — longest-common-extension oracles (naive / Karp–Rabin /
//!   RMQ-based), the substitute for Prezza's in-place LCE structure;
//! * [`esa`] — bottom-up lcp-interval enumeration (Abouelhoda et al.,
//!   Algorithm 4.4): the explicit suffix-tree nodes with frequencies;
//! * [`search`] — pattern location over the suffix array;
//! * [`sparse`] — sparse suffix/LCP arrays over sampled positions, built
//!   with LCE comparisons (Section VI, Step 2);
//! * [`ukkonen`] — an online (appendable) suffix tree for the dynamic
//!   extension of Section X;
//! * [`naive`] — quadratic reference implementations used by tests.

pub mod esa;
pub mod interval_tree;
pub mod lce;
pub mod lcp;
pub mod naive;
pub mod parallel;
pub mod rmq;
pub mod sais;
pub mod search;
pub mod sparse;
pub mod ukkonen;

pub use esa::{lcp_intervals, LcpInterval};
pub use interval_tree::EsaSearcher;
pub use lce::{FingerprintLce, LceBackend, LceOracle, NaiveLce, RmqLce};
pub use lcp::{lcp_array, lcp_array_threads};
pub use parallel::{suffix_array_sharded, suffix_array_threads};
pub use rmq::SparseTableRmq;
pub use sais::{suffix_array, suffix_array_induced_threads, suffix_array_ints};
pub use search::{SaAccess, SuffixArraySearcher};
pub use sparse::{sparse_suffix_array, SparseIndex};
pub use ukkonen::SuffixTree;
