//! Ukkonen's online suffix tree (paper, Sections VII and X, \[39\]).
//!
//! The paper uses an online suffix tree in two places: as the exact
//! `K ≥ N` solution in the streaming discussion (Section VII) and as the
//! substrate of the dynamic-USI sketch (Section X), where letters are
//! appended one at a time. This module implements the classic `O(n)`
//! amortised construction with suffix links and an active point.
//!
//! Internally the alphabet is `u16`: bytes `0..=255` plus a reserved
//! sentinel `256` appended by [`SuffixTree::finalize`], which turns the
//! implicit tree into an explicit one where every text suffix is a leaf —
//! the precondition for exact occurrence counting.

use usi_strings::{FxHashMap, HeapSize};

const ROOT: u32 = 0;
/// "Grows with the text": open end of a leaf edge.
const OPEN: u32 = u32::MAX;
const SENTINEL: u16 = 256;

#[derive(Debug, Clone)]
struct Node {
    /// Start of the edge label (index into `text`) from the parent.
    start: u32,
    /// Exclusive end of the edge label, or [`OPEN`] for leaves.
    end: u32,
    /// Suffix link (only meaningful for internal nodes).
    link: u32,
    children: FxHashMap<u16, u32>,
}

/// An appendable suffix tree over a byte text.
///
/// ```
/// use usi_suffix::SuffixTree;
/// let mut st = SuffixTree::new();
/// st.extend_from(b"banana");
/// assert!(st.contains(b"nan"));
/// assert!(!st.contains(b"nab"));
/// st.finalize();
/// assert_eq!(st.count(b"ana"), 2);
/// let mut occ = st.occurrences(b"ana");
/// occ.sort_unstable();
/// assert_eq!(occ, vec![1, 3]);
/// ```
#[derive(Debug, Clone)]
pub struct SuffixTree {
    text: Vec<u16>,
    nodes: Vec<Node>,
    active_node: u32,
    /// Index into `text` of the first letter of the active edge.
    active_edge: usize,
    active_len: u32,
    remainder: u32,
    /// Node awaiting a suffix link from the current extension.
    need_link: u32,
    finalized: bool,
}

impl Default for SuffixTree {
    fn default() -> Self {
        Self::new()
    }
}

impl SuffixTree {
    /// An empty tree.
    pub fn new() -> Self {
        let root = Node { start: 0, end: 0, link: ROOT, children: FxHashMap::default() };
        Self {
            text: Vec::new(),
            nodes: vec![root],
            active_node: ROOT,
            active_edge: 0,
            active_len: 0,
            remainder: 0,
            need_link: ROOT,
            finalized: false,
        }
    }

    /// Builds the tree of `text` and finalizes it.
    pub fn from_text(text: &[u8]) -> Self {
        let mut st = Self::new();
        st.extend_from(text);
        st.finalize();
        st
    }

    /// Length of the (byte) text inserted so far, excluding the sentinel.
    pub fn len(&self) -> usize {
        self.text.len() - usize::from(self.finalized)
    }

    /// Whether no byte has been inserted.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of tree nodes (root, internal, leaves).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Whether [`SuffixTree::finalize`] has run.
    pub fn is_finalized(&self) -> bool {
        self.finalized
    }

    /// Appends one byte. Amortised `O(1)` (for constant alphabets).
    ///
    /// # Panics
    /// Panics if the tree was already finalized.
    pub fn push(&mut self, b: u8) {
        assert!(!self.finalized, "cannot append to a finalized suffix tree");
        self.push_symbol(b as u16);
    }

    /// Appends a byte slice.
    pub fn extend_from(&mut self, text: &[u8]) {
        for &b in text {
            self.push(b);
        }
    }

    /// Appends the sentinel, making every suffix an explicit leaf.
    /// Idempotent. Required before [`SuffixTree::count`] /
    /// [`SuffixTree::occurrences`].
    pub fn finalize(&mut self) {
        if !self.finalized {
            self.push_symbol(SENTINEL);
            self.finalized = true;
        }
    }

    #[inline]
    fn edge_len(&self, v: u32) -> u32 {
        let n = &self.nodes[v as usize];
        let end = if n.end == OPEN { self.text.len() as u32 } else { n.end };
        end - n.start
    }

    fn new_node(&mut self, start: u32, end: u32) -> u32 {
        self.nodes.push(Node { start, end, link: ROOT, children: FxHashMap::default() });
        (self.nodes.len() - 1) as u32
    }

    #[inline]
    fn add_suffix_link(&mut self, node: u32) {
        if self.need_link != ROOT {
            self.nodes[self.need_link as usize].link = node;
        }
        self.need_link = node;
    }

    /// Ukkonen extension for the symbol at position `text.len() − 1`.
    fn push_symbol(&mut self, sym: u16) {
        self.text.push(sym);
        let pos = self.text.len() - 1;
        self.need_link = ROOT;
        self.remainder += 1;
        while self.remainder > 0 {
            if self.active_len == 0 {
                self.active_edge = pos;
            }
            let edge_first = self.text[self.active_edge];
            let next = self.nodes[self.active_node as usize].children.get(&edge_first).copied();
            match next {
                None => {
                    let leaf = self.new_node(pos as u32, OPEN);
                    self.nodes[self.active_node as usize].children.insert(edge_first, leaf);
                    let an = self.active_node;
                    self.add_suffix_link(an);
                }
                Some(next) => {
                    // Walk down if the active length spans the whole edge.
                    let el = self.edge_len(next);
                    if self.active_len >= el {
                        self.active_edge += el as usize;
                        self.active_len -= el;
                        self.active_node = next;
                        continue;
                    }
                    let mid = self.nodes[next as usize].start + self.active_len;
                    if self.text[mid as usize] == sym {
                        // Rule 3: the symbol is already on the edge.
                        self.active_len += 1;
                        let an = self.active_node;
                        self.add_suffix_link(an);
                        break;
                    }
                    // Split the edge.
                    let split_start = self.nodes[next as usize].start;
                    let split = self.new_node(split_start, mid);
                    self.nodes[self.active_node as usize].children.insert(edge_first, split);
                    let leaf = self.new_node(pos as u32, OPEN);
                    self.nodes[split as usize].children.insert(sym, leaf);
                    self.nodes[next as usize].start = mid;
                    let next_first = self.text[mid as usize];
                    self.nodes[split as usize].children.insert(next_first, next);
                    self.add_suffix_link(split);
                }
            }
            self.remainder -= 1;
            if self.active_node == ROOT && self.active_len > 0 {
                self.active_len -= 1;
                self.active_edge = pos - self.remainder as usize + 1;
            } else if self.active_node != ROOT {
                self.active_node = self.nodes[self.active_node as usize].link;
            }
        }
    }

    /// Walks `pattern` from the root; returns the node whose subtree
    /// contains all suffixes prefixed by `pattern` (its "locus"), or
    /// `None` if `pattern` is not a substring.
    fn locate(&self, pattern: &[u8]) -> Option<u32> {
        let mut v = ROOT;
        let mut i = 0usize; // matched pattern letters
        while i < pattern.len() {
            let sym = pattern[i] as u16;
            let &child = self.nodes[v as usize].children.get(&sym)?;
            let el = self.edge_len(child) as usize;
            let start = self.nodes[child as usize].start as usize;
            let take = el.min(pattern.len() - i);
            for k in 0..take {
                if self.text[start + k] != pattern[i + k] as u16 {
                    return None;
                }
            }
            i += take;
            v = child;
        }
        Some(v)
    }

    /// Whether `pattern` occurs in the inserted text. Works on implicit
    /// (non-finalized) trees too. `O(m)` for constant alphabets.
    pub fn contains(&self, pattern: &[u8]) -> bool {
        if pattern.is_empty() {
            return true;
        }
        self.locate(pattern).is_some()
    }

    /// Number of occurrences of `pattern`.
    ///
    /// # Panics
    /// Panics if the tree is not finalized.
    pub fn count(&self, pattern: &[u8]) -> usize {
        self.occurrences(pattern).len()
    }

    /// Starting positions of `pattern` (unsorted).
    ///
    /// # Panics
    /// Panics if the tree is not finalized.
    pub fn occurrences(&self, pattern: &[u8]) -> Vec<u32> {
        assert!(self.finalized, "finalize() before counting occurrences");
        let n = self.len();
        if pattern.is_empty() || pattern.len() > n {
            return Vec::new();
        }
        let Some(locus) = self.locate(pattern) else {
            return Vec::new();
        };
        // Depth of the locus top: matched letters up to the locus node are
        // not needed; each leaf's suffix start = total_len − leaf_depth.
        let total = self.text.len();
        let mut out = Vec::new();
        // Iterative DFS carrying the string depth *above* each node.
        let mut stack = vec![(locus, self.depth_above(locus))];
        while let Some((v, above)) = stack.pop() {
            let depth = above + self.edge_len(v) as usize;
            let node = &self.nodes[v as usize];
            if node.children.is_empty() {
                let start = total - depth;
                if start < n {
                    out.push(start as u32);
                }
            } else {
                for &c in node.children.values() {
                    stack.push((c, depth));
                }
            }
        }
        out
    }

    /// String depth of the path from the root to the *parent side* of
    /// `v`'s edge, computed by re-walking from the root (`O(depth)`;
    /// only used once per query).
    fn depth_above(&self, target: u32) -> usize {
        if target == ROOT {
            return 0;
        }
        // Re-derive by DFS; the tree has no parent pointers. `above` is
        // the string depth of the path ending at v's parent, so v's own
        // depth is `above + edge_len(v)`, which is exactly the depth
        // above any child of v.
        let mut stack = vec![(ROOT, 0usize)];
        while let Some((v, above)) = stack.pop() {
            let depth = above + self.edge_len(v) as usize;
            for &c in self.nodes[v as usize].children.values() {
                if c == target {
                    return depth;
                }
                stack.push((c, depth));
            }
        }
        unreachable!("node {target} not reachable from root");
    }
}

impl HeapSize for SuffixTree {
    fn heap_bytes(&self) -> usize {
        let node_bytes: usize = self
            .nodes
            .iter()
            .map(|n| {
                std::mem::size_of::<Node>()
                    + n.children.capacity() * (std::mem::size_of::<(u16, u32)>() + 1)
            })
            .sum();
        self.text.heap_bytes() + node_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::occurrences_naive;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn check_counts(text: &[u8]) {
        let st = SuffixTree::from_text(text);
        // all substrings up to length 6 plus some absent patterns
        let n = text.len();
        for i in 0..n {
            for len in 1..=(n - i).min(6) {
                let pat = &text[i..i + len];
                let mut got = st.occurrences(pat);
                got.sort_unstable();
                assert_eq!(got, occurrences_naive(text, pat), "{text:?} / {pat:?}");
            }
        }
        assert!(!st.contains(b"\xff\xfe\xfd"));
    }

    #[test]
    fn fixtures() {
        check_counts(b"banana");
        check_counts(b"mississippi");
        check_counts(b"aaaa");
        check_counts(b"abcabx");
        check_counts(b"a");
        check_counts(b"ab");
    }

    #[test]
    fn contains_before_finalize() {
        let mut st = SuffixTree::new();
        st.extend_from(b"abcab");
        assert!(st.contains(b"abc"));
        assert!(st.contains(b"bcab"));
        assert!(st.contains(b"b"));
        assert!(!st.contains(b"abca_"));
        assert!(!st.is_finalized());
    }

    #[test]
    fn online_appends_match_batch() {
        let text = b"abracadabra";
        let mut online = SuffixTree::new();
        for &b in text.iter() {
            online.push(b);
        }
        online.finalize();
        let batch = SuffixTree::from_text(text);
        for i in 0..text.len() {
            for len in 1..=(text.len() - i).min(5) {
                let pat = &text[i..i + len];
                assert_eq!(online.count(pat), batch.count(pat));
            }
        }
    }

    #[test]
    #[should_panic(expected = "finalize")]
    fn count_requires_finalize() {
        let mut st = SuffixTree::new();
        st.extend_from(b"ab");
        st.count(b"a");
    }

    #[test]
    #[should_panic(expected = "cannot append")]
    fn push_after_finalize_panics() {
        let mut st = SuffixTree::from_text(b"ab");
        st.push(b'c');
    }

    #[test]
    fn random_texts() {
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..15 {
            let n = rng.gen_range(1..80);
            let text: Vec<u8> = (0..n).map(|_| b'a' + rng.gen_range(0..3u8)).collect();
            check_counts(&text);
        }
    }

    #[test]
    fn node_count_is_linear() {
        let text: Vec<u8> = b"ab".repeat(200);
        let st = SuffixTree::from_text(&text);
        // ≤ 2n nodes for a finalized tree of length n (+ sentinel)
        assert!(st.num_nodes() <= 2 * (text.len() + 1) + 1);
    }

    #[test]
    fn empty_tree() {
        let mut st = SuffixTree::new();
        assert!(st.is_empty());
        assert!(st.contains(b""));
        assert!(!st.contains(b"a"));
        st.finalize();
        assert_eq!(st.count(b"a"), 0);
        assert_eq!(st.len(), 0);
    }
}
