//! Linear-time suffix array construction (SA-IS).
//!
//! Implementation of the induced-sorting algorithm of Nong, Zhang and Chan
//! (DCC 2009), the `O(n)` construction the paper cites for `SA(S)` over
//! integer alphabets. We append an internal sentinel (letter 0 after
//! shifting the alphabet by one) so every recursion level enjoys the
//! unique-smallest-last-character invariant, then drop it from the result.
//!
//! The induced-sorting sweeps are inherently sequential (every placement
//! depends on earlier placements), but the two `O(n)` preparatory phases
//! of the *top-level* call — suffix-type classification and the bucket
//! histogram — are embarrassingly parallel over text blocks and are
//! chunked across `std::thread::scope` workers by
//! [`suffix_array_induced_threads`]. Recursion levels stay serial: the
//! reduced strings are already a fraction of `n`. For the block-sharded
//! construction that parallelises the sort itself, see
//! [`crate::parallel`].

/// Marker for an empty SA slot during induced sorting.
const EMPTY: u32 = u32::MAX;

/// Below this length the scoped-thread phases cost more than they save.
const PARALLEL_PHASE_MIN_LEN: usize = 1 << 14;

/// Builds the suffix array of `text`: the permutation `sa` of `[0, n)`
/// such that `sa[i]` is the start of the `i`-th lexicographically smallest
/// suffix. `O(n)` time and `O(n)` words of space.
///
/// ```
/// use usi_suffix::suffix_array;
/// assert_eq!(suffix_array(b"banana"), vec![5, 3, 1, 0, 4, 2]);
/// assert_eq!(suffix_array(b""), Vec::<u32>::new());
/// ```
pub fn suffix_array(text: &[u8]) -> Vec<u32> {
    suffix_array_induced_threads(text, 1)
}

/// [`suffix_array`] with the top-level classification and bucket-counting
/// phases chunked over up to `threads` scoped workers. The induced sort
/// itself stays sequential, so this is the right tool when the text is
/// too repetitive for the block-sharded path of [`crate::parallel`] (the
/// output is identical either way: the suffix array is unique).
pub fn suffix_array_induced_threads(text: &[u8], threads: usize) -> Vec<u32> {
    if text.is_empty() {
        return Vec::new();
    }
    assert!(text.len() < u32::MAX as usize - 1, "texts must fit in u32 index space");
    // Shift the alphabet by one and append the sentinel 0.
    let mut s: Vec<u32> = Vec::with_capacity(text.len() + 1);
    s.extend(text.iter().map(|&b| b as u32 + 1));
    s.push(0);
    let sa = sais_impl(&s, 257, threads.max(1));
    // sa[0] is the sentinel suffix; drop it.
    sa[1..].to_vec()
}

/// Builds the suffix array of an *integer* string over the alphabet
/// `[0, sigma)` — the paper's general setting `Σ = [0, n^{O(1)})`.
/// Same `O(n + sigma)` algorithm as [`suffix_array`].
///
/// ```
/// use usi_suffix::sais::suffix_array_ints;
/// // 2 0 1 0 — suffixes sorted: [0,...]@1? compare: s=[2,0,1,0]
/// let sa = suffix_array_ints(&[2, 0, 1, 0], 3);
/// assert_eq!(sa, vec![3, 1, 2, 0]);
/// ```
///
/// # Panics
/// Panics if any letter is ≥ `sigma` or `sigma + 1` overflows `u32`.
pub fn suffix_array_ints(text: &[u32], sigma: usize) -> Vec<u32> {
    if text.is_empty() {
        return Vec::new();
    }
    assert!(
        (sigma as u64) < u32::MAX as u64,
        "alphabet too large for the shifted sentinel encoding"
    );
    assert!(text.iter().all(|&c| (c as usize) < sigma), "letter out of the declared alphabet");
    let mut s: Vec<u32> = Vec::with_capacity(text.len() + 1);
    s.extend(text.iter().map(|&c| c + 1));
    s.push(0);
    let sa = sais(&s, sigma + 2);
    sa[1..].to_vec()
}

/// Suffix-type classification: S-type (true) or L-type (false).
///
/// The right-to-left recurrence only chains through runs of equal
/// letters, so with `threads > 1` the text is cut into blocks that are
/// classified concurrently: inside a block every position whose letter
/// differs from its successor is decided locally, and the one maximal
/// equal-letter run touching the block's right edge is left pending.
/// A serial right-to-left fix-up then fills each pending run with the
/// type of the first position after it — exactly what the sequential
/// recurrence would have propagated.
fn classify(s: &[u32], threads: usize) -> Vec<bool> {
    let n = s.len();
    let mut stype = vec![false; n];
    stype[n - 1] = true;
    if threads <= 1 || n < PARALLEL_PHASE_MIN_LEN {
        for i in (0..n - 1).rev() {
            stype[i] = s[i] < s[i + 1] || (s[i] == s[i + 1] && stype[i + 1]);
        }
        return stype;
    }

    // Chunk positions 0..n-1 (stype[n-1] is fixed above).
    let chunk = (n - 1).div_ceil(threads);
    let (body, _sentinel) = stype.split_at_mut(n - 1);
    // pending[c] = start of chunk c's unresolved equal-letter tail run
    let pending: Vec<usize> = std::thread::scope(|scope| {
        let handles: Vec<_> = body
            .chunks_mut(chunk)
            .enumerate()
            .map(|(ci, slice)| {
                scope.spawn(move || {
                    let lo = ci * chunk;
                    let hi = lo + slice.len();
                    // the maximal run s[run_lo ..= hi] of equal letters
                    let mut run_lo = hi;
                    while run_lo > lo && s[run_lo - 1] == s[run_lo] {
                        run_lo -= 1;
                    }
                    // below the run every type resolves locally: a
                    // position with s[i] == s[i + 1] always has its
                    // successor inside the resolved part of this chunk
                    for i in (lo..run_lo).rev() {
                        slice[i - lo] = s[i] < s[i + 1] || (s[i] == s[i + 1] && slice[i + 1 - lo]);
                    }
                    run_lo
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("classify worker panicked")).collect()
    });
    // serial fix-up, right to left: each pending run copies the type of
    // the position just past the chunk (already final)
    for (ci, &run_lo) in pending.iter().enumerate().rev() {
        let hi = ((ci + 1) * chunk).min(n - 1);
        let t = stype[hi];
        stype[run_lo..hi].fill(t);
    }
    stype
}

/// Letter histogram (bucket sizes), chunked over scoped workers when
/// `threads > 1` and the merge of per-block counts is worth it.
fn histogram(s: &[u32], sigma: usize, threads: usize) -> Vec<u32> {
    let mut bkt = vec![0u32; sigma];
    if threads <= 1 || s.len() < PARALLEL_PHASE_MIN_LEN {
        for &c in s {
            bkt[c as usize] += 1;
        }
        return bkt;
    }
    let chunk = s.len().div_ceil(threads);
    let partials: Vec<Vec<u32>> = std::thread::scope(|scope| {
        let handles: Vec<_> = s
            .chunks(chunk)
            .map(|block| {
                scope.spawn(move || {
                    let mut local = vec![0u32; sigma];
                    for &c in block {
                        local[c as usize] += 1;
                    }
                    local
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("histogram worker panicked")).collect()
    });
    for local in partials {
        for (b, l) in bkt.iter_mut().zip(local) {
            *b += l;
        }
    }
    bkt
}

/// SA-IS over an integer string whose last character is the unique
/// smallest (the sentinel invariant). `sigma` bounds the letter values.
fn sais(s: &[u32], sigma: usize) -> Vec<u32> {
    sais_impl(s, sigma, 1)
}

/// [`sais`] with the classification and bucket phases parallelised at
/// this level; recursion levels run serially on their reduced strings.
fn sais_impl(s: &[u32], sigma: usize, threads: usize) -> Vec<u32> {
    let n = s.len();
    debug_assert!(n >= 1);
    if n == 1 {
        return vec![0];
    }
    if n == 2 {
        // sentinel invariant: s[1] < s[0]
        return vec![1, 0];
    }

    // --- classify suffixes: S-type (true) or L-type (false) ---
    let stype = classify(s, threads);
    let is_lms = |i: usize| i > 0 && stype[i] && !stype[i - 1];

    // --- bucket sizes ---
    let bkt = histogram(s, sigma, threads);
    let bucket_heads = |bkt: &[u32]| {
        let mut heads = vec![0u32; bkt.len()];
        let mut acc = 0u32;
        for (h, &c) in heads.iter_mut().zip(bkt) {
            *h = acc;
            acc += c;
        }
        heads
    };
    let bucket_tails = |bkt: &[u32]| {
        let mut tails = vec![0u32; bkt.len()];
        let mut acc = 0u32;
        for (t, &c) in tails.iter_mut().zip(bkt) {
            acc += c;
            *t = acc;
        }
        tails
    };

    let induce = |sa: &mut [u32]| {
        // Induce L-type suffixes left to right.
        let mut heads = bucket_heads(&bkt);
        for i in 0..n {
            let j = sa[i];
            if j != EMPTY && j > 0 && !stype[j as usize - 1] {
                let c = s[j as usize - 1] as usize;
                sa[heads[c] as usize] = j - 1;
                heads[c] += 1;
            }
        }
        // Induce S-type suffixes right to left.
        let mut tails = bucket_tails(&bkt);
        for i in (0..n).rev() {
            let j = sa[i];
            if j != EMPTY && j > 0 && stype[j as usize - 1] {
                let c = s[j as usize - 1] as usize;
                tails[c] -= 1;
                sa[tails[c] as usize] = j - 1;
            }
        }
    };

    // --- stage 1: approximately sort LMS suffixes by induced sorting ---
    let mut sa = vec![EMPTY; n];
    {
        let mut tails = bucket_tails(&bkt);
        for i in (1..n).rev() {
            if is_lms(i) {
                let c = s[i] as usize;
                tails[c] -= 1;
                sa[tails[c] as usize] = i as u32;
            }
        }
        induce(&mut sa);
    }

    // --- name sorted LMS substrings ---
    // Two LMS positions are ≥ 2 apart, so indexing names by p/2 is injective.
    let mut name_of = vec![EMPTY; n / 2 + 1];
    let mut name: u32 = 0;
    let mut prev: u32 = EMPTY;
    for &p in sa.iter().take(n) {
        if p == EMPTY || !is_lms(p as usize) {
            continue;
        }
        if prev != EMPTY && !lms_substrings_equal(s, &stype, prev as usize, p as usize) {
            name += 1;
        }
        name_of[p as usize / 2] = name;
        prev = p;
    }
    let num_names = name as usize + 1;

    // --- reduced string over LMS positions in text order ---
    let lms_positions: Vec<u32> = (1..n).filter(|&i| is_lms(i)).map(|i| i as u32).collect();
    let s1: Vec<u32> = lms_positions.iter().map(|&p| name_of[p as usize / 2]).collect();

    let sa1: Vec<u32> = if num_names == s1.len() {
        // All names distinct: the order is the inverse permutation.
        let mut sa1 = vec![0u32; s1.len()];
        for (i, &nm) in s1.iter().enumerate() {
            sa1[nm as usize] = i as u32;
        }
        sa1
    } else {
        sais(&s1, num_names)
    };

    // --- stage 2: place LMS suffixes in their true order, induce again ---
    sa.fill(EMPTY);
    {
        let mut tails = bucket_tails(&bkt);
        for &i1 in sa1.iter().rev() {
            let p = lms_positions[i1 as usize];
            let c = s[p as usize] as usize;
            tails[c] -= 1;
            sa[tails[c] as usize] = p;
        }
        induce(&mut sa);
    }
    sa
}

/// Compares the LMS substrings starting at `a` and `b` (letters and types
/// up to and including the next LMS position).
fn lms_substrings_equal(s: &[u32], stype: &[bool], a: usize, b: usize) -> bool {
    let n = s.len();
    if a == b {
        return true;
    }
    // The sentinel LMS substring (at n−1) is unique.
    if a == n - 1 || b == n - 1 {
        return false;
    }
    let is_lms = |i: usize| i > 0 && stype[i] && !stype[i - 1];
    let mut k = 0usize;
    loop {
        let a_end = k > 0 && is_lms(a + k);
        let b_end = k > 0 && is_lms(b + k);
        if a_end && b_end {
            return true;
        }
        if a_end != b_end {
            return false;
        }
        if s[a + k] != s[b + k] || stype[a + k] != stype[b + k] {
            return false;
        }
        k += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::suffix_array_naive;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn check(text: &[u8]) {
        assert_eq!(suffix_array(text), suffix_array_naive(text), "text {text:?}");
    }

    #[test]
    fn classic_fixtures() {
        check(b"");
        check(b"a");
        check(b"aa");
        check(b"ab");
        check(b"ba");
        check(b"banana");
        check(b"mississippi");
        check(b"abracadabra");
        check(b"GATTACA");
    }

    #[test]
    fn unary_and_periodic_texts() {
        check(&[b'a'; 1]);
        check(&[b'a'; 2]);
        check(&[b'a'; 100]);
        check(&b"ab".repeat(50));
        check(&b"aab".repeat(33));
        check(&b"abcabcabc".repeat(10));
    }

    #[test]
    fn boundary_byte_values() {
        check(&[0]);
        check(&[0, 0, 0]);
        check(&[255, 0, 255, 0]);
        check(&[255; 10]);
        check(&[0, 255, 0, 255, 255, 0]);
    }

    #[test]
    fn exhaustive_short_binary_strings() {
        for len in 1..=12usize {
            for bits in 0..(1u32 << len) {
                let text: Vec<u8> =
                    (0..len).map(|i| if bits >> i & 1 == 1 { b'b' } else { b'a' }).collect();
                check(&text);
            }
        }
    }

    #[test]
    fn random_texts_various_alphabets() {
        let mut rng = StdRng::seed_from_u64(7);
        for sigma in [2usize, 3, 4, 16, 256] {
            for len in [10usize, 50, 200, 1000] {
                let text: Vec<u8> = (0..len).map(|_| rng.gen_range(0..sigma) as u8).collect();
                check(&text);
            }
        }
    }

    #[test]
    fn deep_recursion_text() {
        // Fibonacci-like strings force many SA-IS recursion levels.
        let (mut a, mut b) = (b"a".to_vec(), b"ab".to_vec());
        for _ in 0..15 {
            let next = [b.clone(), a.clone()].concat();
            a = b;
            b = next;
        }
        check(&b);
    }

    #[test]
    fn integer_alphabet_matches_byte_path() {
        let text = b"mississippi";
        let as_ints: Vec<u32> = text.iter().map(|&b| b as u32).collect();
        assert_eq!(suffix_array_ints(&as_ints, 256), suffix_array(text));
    }

    #[test]
    fn large_integer_alphabet() {
        // letters far beyond u8: ranks of a shuffled dictionary
        let mut rng = StdRng::seed_from_u64(12);
        let text: Vec<u32> = (0..400).map(|_| rng.gen_range(0..50_000u32)).collect();
        let sa = suffix_array_ints(&text, 50_000);
        // verify sortedness directly
        for w in sa.windows(2) {
            assert!(text[w[0] as usize..] < text[w[1] as usize..]);
        }
        let mut seen = vec![false; text.len()];
        for &p in &sa {
            assert!(!seen[p as usize]);
            seen[p as usize] = true;
        }
    }

    #[test]
    #[should_panic(expected = "out of the declared alphabet")]
    fn integer_alphabet_validates_letters() {
        suffix_array_ints(&[0, 5], 3);
    }

    #[test]
    fn sa_is_permutation() {
        let text = b"the quick brown fox jumps over the lazy dog";
        let sa = suffix_array(text);
        let mut seen = vec![false; text.len()];
        for &p in &sa {
            assert!(!seen[p as usize]);
            seen[p as usize] = true;
        }
        assert!(seen.iter().all(|&x| x));
    }
}
