//! Sparse-table range-minimum queries.
//!
//! `O(n log n)` construction, `O(1)` query. Used by [`crate::lce::RmqLce`]
//! to answer LCE queries as range minima over the LCP array, and available
//! for LCP-accelerated suffix-array search.

use usi_strings::HeapSize;

/// Immutable RMQ structure over a `u32` array.
///
/// ```
/// use usi_suffix::SparseTableRmq;
/// let rmq = SparseTableRmq::new(&[3, 1, 4, 1, 5, 9, 2, 6]);
/// assert_eq!(rmq.min(0, 8), 1);
/// assert_eq!(rmq.min(4, 6), 5);
/// assert_eq!(rmq.min(6, 7), 2);
/// ```
#[derive(Debug, Clone)]
pub struct SparseTableRmq {
    /// `table[k][i]` = min of `data[i .. i + 2^k)`; row 0 is the data.
    table: Vec<Vec<u32>>,
    len: usize,
}

impl SparseTableRmq {
    /// Builds the table. `O(n log n)` time and space.
    pub fn new(data: &[u32]) -> Self {
        let n = data.len();
        let levels = if n <= 1 { 1 } else { n.ilog2() as usize + 1 };
        let mut table = Vec::with_capacity(levels);
        table.push(data.to_vec());
        for k in 1..levels {
            let half = 1usize << (k - 1);
            let prev = &table[k - 1];
            let row_len = n + 1 - (1 << k);
            let mut row = Vec::with_capacity(row_len);
            for i in 0..row_len {
                row.push(prev[i].min(prev[i + half]));
            }
            table.push(row);
        }
        Self { table, len: n }
    }

    /// Number of elements covered.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the underlying array was empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Minimum of `data[l..r)` in `O(1)`.
    ///
    /// # Panics
    /// Panics if `l >= r` or `r > len` — an empty range has no minimum.
    #[inline]
    pub fn min(&self, l: usize, r: usize) -> u32 {
        assert!(l < r && r <= self.len, "invalid RMQ range {l}..{r}");
        let k = (r - l).ilog2() as usize;
        let row = &self.table[k];
        row[l].min(row[r - (1 << k)])
    }
}

impl HeapSize for SparseTableRmq {
    fn heap_bytes(&self) -> usize {
        self.table.iter().map(|row| row.heap_bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn matches_naive_scan() {
        let mut rng = StdRng::seed_from_u64(3);
        for len in [1usize, 2, 3, 17, 100] {
            let data: Vec<u32> = (0..len).map(|_| rng.gen_range(0..50)).collect();
            let rmq = SparseTableRmq::new(&data);
            for l in 0..len {
                for r in (l + 1)..=len {
                    let naive = *data[l..r].iter().min().unwrap();
                    assert_eq!(rmq.min(l, r), naive, "{l}..{r} of {data:?}");
                }
            }
        }
    }

    #[test]
    fn singleton() {
        let rmq = SparseTableRmq::new(&[42]);
        assert_eq!(rmq.min(0, 1), 42);
        assert_eq!(rmq.len(), 1);
    }

    #[test]
    #[should_panic(expected = "invalid RMQ range")]
    fn empty_range_panics() {
        SparseTableRmq::new(&[1, 2, 3]).min(1, 1);
    }

    #[test]
    #[should_panic(expected = "invalid RMQ range")]
    fn out_of_bounds_panics() {
        SparseTableRmq::new(&[1, 2, 3]).min(0, 4);
    }
}
