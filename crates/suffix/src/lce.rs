//! Longest-common-extension (LCE) oracles.
//!
//! `lce(i, j)` is the length of the longest common prefix of the suffixes
//! `S[i..]` and `S[j..]`. Approximate-Top-K (paper, Section VI) drives all
//! of its suffix comparisons through such an oracle; the paper uses
//! Prezza's in-place structure (`O(1)` extra space, `polylog` query).
//!
//! We substitute a pluggable trait with three backends (see DESIGN.md §3):
//!
//! * [`NaiveLce`] — `O(1)` space, `O(lce)` query: the right default for
//!   texts without pathological repeats;
//! * [`FingerprintLce`] — Karp–Rabin prefix table (`O(n)` space shared
//!   with the index) + exponential/binary search, `O(log n)` query,
//!   correct w.h.p.;
//! * [`RmqLce`] — SA + rank + LCP + sparse-table RMQ, `O(1)` query,
//!   `O(n log n)` space: the fastest when the structures already exist.

use crate::lcp::{lcp_array, rank_array};
use crate::rmq::SparseTableRmq;
use crate::sais::suffix_array;
use usi_strings::{FingerprintTable, Fingerprinter, HeapSize};

/// An oracle answering longest-common-extension queries on a fixed text.
pub trait LceOracle {
    /// Length of the text the oracle covers.
    fn text_len(&self) -> usize;

    /// Length of the longest common prefix of `S[i..]` and `S[j..]`.
    fn lce(&self, i: usize, j: usize) -> usize;

    /// Compares the suffixes `S[i..]` and `S[j..]` lexicographically,
    /// using one LCE query plus one letter comparison.
    fn compare_suffixes(&self, text: &[u8], i: usize, j: usize) -> std::cmp::Ordering {
        use std::cmp::Ordering;
        if i == j {
            return Ordering::Equal;
        }
        let l = self.lce(i, j);
        let (ri, rj) = (i + l, j + l);
        match (ri >= text.len(), rj >= text.len()) {
            (true, true) => Ordering::Equal,
            (true, false) => Ordering::Less, // shorter suffix is a prefix
            (false, true) => Ordering::Greater,
            (false, false) => text[ri].cmp(&text[rj]),
        }
    }
}

/// Which LCE backend to use; plumbed through `ApproximateTopK` options.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LceBackend {
    /// Scan letters directly.
    #[default]
    Naive,
    /// Karp–Rabin fingerprint binary search.
    Fingerprint,
    /// Range-minimum over the LCP array.
    Rmq,
}

/// Letter-by-letter scanning oracle. Zero extra space.
#[derive(Debug, Clone)]
pub struct NaiveLce<'t> {
    text: &'t [u8],
}

impl<'t> NaiveLce<'t> {
    /// Wraps a text.
    pub fn new(text: &'t [u8]) -> Self {
        Self { text }
    }
}

impl LceOracle for NaiveLce<'_> {
    fn text_len(&self) -> usize {
        self.text.len()
    }

    fn lce(&self, i: usize, j: usize) -> usize {
        let n = self.text.len();
        debug_assert!(i <= n && j <= n);
        if i == j {
            return n - i;
        }
        let mut l = 0usize;
        while i + l < n && j + l < n && self.text[i + l] == self.text[j + l] {
            l += 1;
        }
        l
    }
}

/// Karp–Rabin oracle: binary search for the longest equal-fingerprint
/// prefix. Correct with high probability (collision odds `≤ n²·log n / p`
/// with `p = 2^61 − 1`).
#[derive(Debug, Clone)]
pub struct FingerprintLce {
    table: FingerprintTable,
}

impl FingerprintLce {
    /// Builds the `O(n)` prefix table for `text`.
    pub fn new(text: &[u8], fingerprinter: Fingerprinter) -> Self {
        Self { table: fingerprinter.table(text) }
    }

    /// Reuses an existing prefix table (shared with the USI index).
    pub fn from_table(table: FingerprintTable) -> Self {
        Self { table }
    }
}

impl LceOracle for FingerprintLce {
    fn text_len(&self) -> usize {
        self.table.len()
    }

    fn lce(&self, i: usize, j: usize) -> usize {
        let n = self.table.len();
        debug_assert!(i <= n && j <= n);
        if i == j {
            return n - i;
        }
        let max = (n - i).min(n - j);
        // Invariant: prefix of length `lo` matches, `hi + 1` does not.
        if max == 0 || self.table.substring(i, i + 1) != self.table.substring(j, j + 1) {
            return 0;
        }
        let (mut lo, mut hi) = (1usize, max);
        while lo < hi {
            let mid = lo + (hi - lo).div_ceil(2);
            if self.table.substring(i, i + mid) == self.table.substring(j, j + mid) {
                lo = mid;
            } else {
                hi = mid - 1;
            }
        }
        lo
    }
}

impl HeapSize for FingerprintLce {
    fn heap_bytes(&self) -> usize {
        self.table.heap_bytes()
    }
}

/// SA/LCP/RMQ oracle: `lce(i, j)` is the minimum of the LCP array between
/// the ranks of the two suffixes. `O(1)` query after `O(n log n)` setup.
#[derive(Debug, Clone)]
pub struct RmqLce {
    rank: Vec<u32>,
    rmq: SparseTableRmq,
    text_len: usize,
}

impl RmqLce {
    /// Builds SA, LCP and the sparse table from scratch.
    pub fn new(text: &[u8]) -> Self {
        let sa = suffix_array(text);
        let lcp = lcp_array(text, &sa);
        Self::from_parts(text.len(), &sa, &lcp)
    }

    /// Builds from precomputed SA and LCP arrays (shared with the index).
    pub fn from_parts(text_len: usize, sa: &[u32], lcp: &[u32]) -> Self {
        Self { rank: rank_array(sa), rmq: SparseTableRmq::new(lcp), text_len }
    }
}

impl LceOracle for RmqLce {
    fn text_len(&self) -> usize {
        self.text_len
    }

    fn lce(&self, i: usize, j: usize) -> usize {
        let n = self.text_len;
        debug_assert!(i <= n && j <= n);
        if i == j {
            return n - i;
        }
        if i == n || j == n {
            return 0;
        }
        let (mut a, mut b) = (self.rank[i] as usize, self.rank[j] as usize);
        if a > b {
            std::mem::swap(&mut a, &mut b);
        }
        self.rmq.min(a + 1, b + 1) as usize
    }
}

impl HeapSize for RmqLce {
    fn heap_bytes(&self) -> usize {
        self.rank.heap_bytes() + self.rmq.heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::lce_naive;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn check_all(text: &[u8]) {
        let naive = NaiveLce::new(text);
        let fp = FingerprintLce::new(text, Fingerprinter::with_base(0xACE));
        let rmq = RmqLce::new(text);
        let n = text.len();
        for i in 0..=n {
            for j in 0..=n {
                let want = if i == j {
                    n - i
                } else if i == n || j == n {
                    0
                } else {
                    lce_naive(text, i, j)
                };
                assert_eq!(naive.lce(i, j), want, "naive {i},{j} on {text:?}");
                assert_eq!(fp.lce(i, j), want, "fp {i},{j} on {text:?}");
                assert_eq!(rmq.lce(i, j), want, "rmq {i},{j} on {text:?}");
            }
        }
    }

    #[test]
    fn fixtures() {
        check_all(b"");
        check_all(b"a");
        check_all(b"aaaaaaa");
        check_all(b"banana");
        check_all(b"abcabcabc");
        check_all(b"mississippi");
    }

    #[test]
    fn random_texts() {
        let mut rng = StdRng::seed_from_u64(11);
        for sigma in [2usize, 4] {
            for len in [10usize, 60] {
                let text: Vec<u8> =
                    (0..len).map(|_| b'a' + rng.gen_range(0..sigma) as u8).collect();
                check_all(&text);
            }
        }
    }

    #[test]
    fn compare_suffixes_orders_like_slices() {
        use std::cmp::Ordering;
        let text = b"abaabab";
        let oracle = RmqLce::new(text);
        for i in 0..text.len() {
            for j in 0..text.len() {
                let want = text[i..].cmp(&text[j..]);
                assert_eq!(oracle.compare_suffixes(text, i, j), want, "{i} {j}");
            }
        }
        assert_eq!(NaiveLce::new(text).compare_suffixes(text, 2, 2), Ordering::Equal);
    }
}
