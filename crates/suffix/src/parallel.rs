//! Block-sharded parallel suffix-array construction.
//!
//! [`suffix_array_threads`] is the thread-count-aware entry point used by
//! the index builder. The suffix array of a text is *unique*, so every
//! path below returns bytes identical to [`crate::suffix_array`] — the
//! determinism invariant the CI gate enforces — and the only question is
//! which path is fastest for the input at hand:
//!
//! * **Sharded sort + doubling merge** ([`suffix_array_sharded`]): the
//!   text is cut into `threads` blocks, each overlapping its successor by
//!   [`SEED_BYTES`] − 1 bytes; per block a worker builds the block's seed
//!   structure (its suffixes sorted by their [`SEED_BYTES`]-byte prefix,
//!   packed into one `u64` key) concurrently; the per-block runs are then
//!   merged into a global seed order, and prefix-doubling rounds — each a
//!   parallel sort over position blocks — refine it to the full
//!   lexicographic order (Manber–Myers over a block-sorted seed). The
//!   worst case is `O(n log n)`, but typical texts resolve in one or two
//!   rounds because the 7-byte seed already separates almost all
//!   suffixes.
//! * **Induced sorting with parallel phases**
//!   ([`crate::sais::suffix_array_induced_threads`]): sharding does not
//!   help highly repetitive texts (few distinct seed groups ⇒ many
//!   doubling rounds), so when the seed pass detects one the wrapper
//!   falls back to SA-IS with its classification and bucket-histogram
//!   phases chunked over the same scoped worker pool.
//!
//! Everything runs on `std::thread::scope` — no rayon, by design: the
//! build environment is registry-free (see `vendor/README.md`).

use crate::sais::{suffix_array, suffix_array_induced_threads};

/// Seed prefix length: 7 bytes packed as 9-bit letters (value `b + 1`,
/// `0` padding past the end of the text) fit one `u64` and make the key
/// order exactly the lexicographic order of truncated suffixes.
pub const SEED_BYTES: usize = 7;

/// Below this length serial SA-IS wins outright; the policy wrapper does
/// not even spawn workers.
const PARALLEL_MIN_LEN: usize = 1 << 16;

/// If the seed pass leaves fewer than `n / REPETITIVE_FRACTION` distinct
/// groups, the text is repetitive enough that doubling would need many
/// rounds; the wrapper falls back to induced sorting instead.
const REPETITIVE_FRACTION: usize = 1024;

/// Builds the suffix array of `text` using up to `threads` workers,
/// picking the fastest exact strategy for the input (see the module
/// docs). Output is byte-identical to [`crate::suffix_array`] for every
/// input and thread count — the suffix array is unique.
///
/// ```
/// use usi_suffix::parallel::suffix_array_threads;
/// use usi_suffix::suffix_array;
/// let text = b"banana".repeat(30);
/// assert_eq!(suffix_array_threads(&text, 4), suffix_array(&text));
/// ```
pub fn suffix_array_threads(text: &[u8], threads: usize) -> Vec<u32> {
    let threads = threads.max(1);
    if threads == 1 || text.len() < PARALLEL_MIN_LEN {
        return suffix_array(text);
    }
    match sharded_impl(text, threads, true) {
        Some(sa) => sa,
        // repetitive seed groups: sharding does not apply, so use the
        // induced-sorting path with parallel bucket/classify phases
        None => suffix_array_induced_threads(text, threads),
    }
}

/// The sharded construction itself, with no size gate or repetitiveness
/// fallback: always runs the per-block seed sort, the merge and the
/// doubling rounds. Exact for every input (just slow on degenerate ones);
/// exposed so the equivalence property tests can drive the parallel
/// machinery on small texts.
pub fn suffix_array_sharded(text: &[u8], threads: usize) -> Vec<u32> {
    sharded_impl(text, threads, false).expect("sharded path never bails without the guard")
}

/// Packs `text[i .. i + SEED_BYTES)` into a `u64`: 9 bits per letter,
/// letter value `b + 1`, `0` for positions past the end. Key order equals
/// lexicographic order of the (end-terminated) truncated suffixes, and
/// two keys are equal only if both suffixes run to `SEED_BYTES` full
/// bytes with the same content — the invariant the doubling rounds need.
#[inline]
fn seed_key(text: &[u8], i: usize) -> u64 {
    let mut k = 0u64;
    for j in 0..SEED_BYTES {
        k <<= 9;
        if let Some(&b) = text.get(i + j) {
            k |= b as u64 + 1;
        }
    }
    k
}

fn sharded_impl(text: &[u8], threads: usize, bail_when_repetitive: bool) -> Option<Vec<u32>> {
    let n = text.len();
    if n == 0 {
        return Some(Vec::new());
    }
    assert!(n < u32::MAX as usize - 1, "texts must fit in u32 index space");
    let threads = threads.max(1).min(n);
    let chunk = n.div_ceil(threads);

    // --- per-block seed structures, built concurrently ---
    // Each block sorts its own suffix starts by the packed seed prefix
    // (reading up to SEED_BYTES - 1 bytes past its right edge: the
    // overlap). (key, pos) pairs make the order a strict total order.
    let runs: Vec<Vec<(u64, u32)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                scope.spawn(move || {
                    let lo = t * chunk;
                    let hi = (lo + chunk).min(n);
                    let mut run: Vec<(u64, u32)> =
                        (lo..hi).map(|i| (seed_key(text, i), i as u32)).collect();
                    run.sort_unstable();
                    run
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("seed worker panicked")).collect()
    });

    // --- merge the per-block runs into the global seed order ---
    let mut keyed = merge_runs(runs);

    // --- rank by seed group; bail out if the text is too repetitive ---
    let mut rank = vec![0u32; n];
    let mut groups = assign_ranks(&keyed, &mut rank);
    if bail_when_repetitive && groups.saturating_mul(REPETITIVE_FRACTION) < n {
        return None;
    }

    // --- prefix-doubling rounds (Manber–Myers over the seed order) ---
    // Invariant: `rank` orders suffixes by their first `h` bytes (with
    // end-of-text comparing smallest), and equal ranks imply both
    // suffixes have at least `h` real bytes.
    let mut h = SEED_BYTES;
    while groups < n {
        let combine = |i: usize| -> u64 {
            let tail = if i + h < n { rank[i + h] as u64 + 1 } else { 0 };
            ((rank[i] as u64) << 32) | tail
        };
        // re-sort by the doubled key, sharded over position blocks again
        let next: Vec<Vec<(u64, u32)>> = std::thread::scope(|scope| {
            let combine = &combine;
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    scope.spawn(move || {
                        let lo = t * chunk;
                        let hi = (lo + chunk).min(n);
                        let mut run: Vec<(u64, u32)> =
                            (lo..hi).map(|i| (combine(i), i as u32)).collect();
                        run.sort_unstable();
                        run
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("doubling worker panicked")).collect()
        });
        keyed = merge_runs(next);
        groups = assign_ranks(&keyed, &mut rank);
        h *= 2;
    }

    Some(keyed.into_iter().map(|(_, p)| p).collect())
}

/// Ranks every position by its group in the sorted key order: the rank is
/// the index of the group's first element, so equal keys share a rank and
/// ranks are strictly ordered across groups. Returns the group count.
fn assign_ranks(keyed: &[(u64, u32)], rank: &mut [u32]) -> usize {
    let mut groups = 0usize;
    let mut head = 0u32;
    for (idx, &(key, pos)) in keyed.iter().enumerate() {
        if idx == 0 || key != keyed[idx - 1].0 {
            head = idx as u32;
            groups += 1;
        }
        rank[pos as usize] = head;
    }
    groups
}

/// Merges sorted runs pairwise; each round merges its pairs on scoped
/// workers, so the merge tree is parallel except for the final pass.
fn merge_runs(mut runs: Vec<Vec<(u64, u32)>>) -> Vec<(u64, u32)> {
    if runs.is_empty() {
        return Vec::new();
    }
    while runs.len() > 1 {
        runs = std::thread::scope(|scope| {
            let handles: Vec<_> = runs
                .chunks_mut(2)
                .map(|pair| {
                    let (a, b) = match pair {
                        [a, b] => (std::mem::take(a), std::mem::take(b)),
                        [a] => (std::mem::take(a), Vec::new()),
                        _ => unreachable!("chunks of 2"),
                    };
                    scope.spawn(move || merge_two(a, b))
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("merge worker panicked")).collect()
        });
    }
    runs.pop().expect("one run left")
}

fn merge_two(a: Vec<(u64, u32)>, b: Vec<(u64, u32)>) -> Vec<(u64, u32)> {
    if a.is_empty() {
        return b;
    }
    if b.is_empty() {
        return a;
    }
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        if a[i] <= b[j] {
            out.push(a[i]);
            i += 1;
        } else {
            out.push(b[j]);
            j += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn check(text: &[u8], threads: usize) {
        let want = suffix_array(text);
        assert_eq!(suffix_array_sharded(text, threads), want, "sharded t={threads}");
        assert_eq!(suffix_array_threads(text, threads), want, "policy t={threads}");
        assert_eq!(suffix_array_induced_threads(text, threads), want, "induced t={threads}");
    }

    #[test]
    fn fixtures_across_thread_counts() {
        for threads in [1usize, 2, 3, 8] {
            check(b"", threads);
            check(b"a", threads);
            check(b"ab", threads);
            check(b"banana", threads);
            check(b"mississippi", threads);
            check(&b"abracadabra".repeat(10), threads);
        }
    }

    #[test]
    fn degenerate_texts() {
        for threads in [2usize, 3, 8] {
            check(&[b'a'; 500], threads); // all-equal: one seed group
            check(&[0u8; 64], threads); // zero bytes vs key padding
            check(&[255u8; 40], threads);
            check(&b"ab".repeat(300), threads); // period 2 < SEED_BYTES
            check(&b"abcdefgh".repeat(100), threads); // period > SEED_BYTES
        }
    }

    #[test]
    fn block_boundaries_are_respected() {
        // lengths around the chunking math: n % threads edge cases
        let mut rng = StdRng::seed_from_u64(41);
        for n in [5usize, 7, 8, 9, 15, 16, 17, 100, 101] {
            let text: Vec<u8> = (0..n).map(|_| b'a' + rng.gen_range(0..3u8)).collect();
            for threads in [2usize, 3, 4, 7, 16] {
                check(&text, threads);
            }
        }
    }

    #[test]
    fn random_texts_various_alphabets() {
        let mut rng = StdRng::seed_from_u64(43);
        for sigma in [2usize, 4, 26, 256] {
            for len in [50usize, 500, 2000] {
                let text: Vec<u8> = (0..len).map(|_| rng.gen_range(0..sigma) as u8).collect();
                for threads in [2usize, 4] {
                    check(&text, threads);
                }
            }
        }
    }

    #[test]
    fn large_text_crosses_the_parallel_gate() {
        // long enough that suffix_array_threads takes the sharded path
        // and sais_impl takes the parallel classify/histogram phases
        let mut rng = StdRng::seed_from_u64(47);
        let text: Vec<u8> =
            (0..(PARALLEL_MIN_LEN + 1234)).map(|_| b"acgt"[rng.gen_range(0..4usize)]).collect();
        check(&text, 4);
    }

    #[test]
    fn repetitive_large_text_takes_the_fallback() {
        // periodic text with few distinct 7-byte windows: the policy
        // wrapper must bail to induced sorting and still be exact
        let text = b"ab".repeat(PARALLEL_MIN_LEN);
        let got = suffix_array_threads(&text, 4);
        assert_eq!(got, suffix_array(&text));
    }
}
