//! Top-down lcp-interval tree search: the suffix-tree-style `O(m + occ)`
//! pattern location the paper's query analysis assumes.
//!
//! [`crate::SuffixArraySearcher`] answers in `O(m log n)` by binary
//! search; this module materialises the lcp-interval tree (the explicit
//! suffix-tree topology over `SA`/`LCP`, after Abouelhoda, Kurtz and
//! Ohlebusch's child-table traversal) and descends edges by first
//! letter, giving `O(m)` matching for constant alphabets — the
//! `bench_sa_search`/`query` ablations compare the two.

use crate::esa::{lcp_intervals, LcpInterval};
use crate::lcp::lcp_array;
use crate::sais::suffix_array;
use usi_strings::{FxHashMap, HeapSize};

/// One node of the interval tree.
#[derive(Debug, Clone)]
struct Node {
    /// The lcp-interval (depth, parent depth, SA bounds).
    iv: LcpInterval,
    /// Children keyed by the first letter *below this node's depth*.
    children: FxHashMap<u8, u32>,
}

/// A searchable lcp-interval tree over a text's suffix array.
///
/// ```
/// use usi_suffix::interval_tree::EsaSearcher;
/// let text = b"banana";
/// let searcher = EsaSearcher::new(text);
/// let mut occ = searcher.occurrences(b"ana").to_vec();
/// occ.sort_unstable();
/// assert_eq!(occ, vec![1, 3]);
/// assert!(searcher.interval(b"nab").is_none());
/// ```
#[derive(Debug, Clone)]
pub struct EsaSearcher {
    text: Vec<u8>,
    sa: Vec<u32>,
    nodes: Vec<Node>,
    /// Children of the (virtual) root, keyed by first letter.
    root_children: FxHashMap<u8, u32>,
}

impl EsaSearcher {
    /// Builds SA, LCP and the interval tree. `O(n)` nodes.
    pub fn new(text: &[u8]) -> Self {
        let sa = suffix_array(text);
        let lcp = lcp_array(text, &sa);
        Self::from_parts(text.to_vec(), sa, &lcp)
    }

    /// Builds the tree from precomputed arrays (shared with an index).
    pub fn from_parts(text: Vec<u8>, sa: Vec<u32>, lcp: &[u32]) -> Self {
        let n = text.len();
        let mut intervals = lcp_intervals(lcp, |i| (n - sa[i] as usize) as u32, true);
        // Parent linking: process nodes in order of increasing depth so
        // parents exist before children; identify a node's parent as the
        // smallest enclosing interval with depth == node.parent_depth.
        // Sorting by (lb, -depth) gives a preorder where each node's
        // parent is the nearest previous node enclosing it.
        intervals.sort_unstable_by(|a, b| {
            a.lb.cmp(&b.lb).then(b.rb.cmp(&a.rb)).then(a.depth.cmp(&b.depth))
        });
        let mut nodes: Vec<Node> =
            intervals.iter().map(|&iv| Node { iv, children: FxHashMap::default() }).collect();
        let mut root_children: FxHashMap<u8, u32> = FxHashMap::default();
        // Stack of enclosing intervals (indices into `nodes`).
        let mut stack: Vec<u32> = Vec::new();
        for i in 0..nodes.len() {
            let iv = nodes[i].iv;
            while let Some(&top) = stack.last() {
                let t = nodes[top as usize].iv;
                if t.lb <= iv.lb && iv.rb <= t.rb && !(t.lb == iv.lb && t.rb == iv.rb) {
                    break; // strictly enclosing → parent candidate
                }
                if t.lb == iv.lb && t.rb == iv.rb && t.depth < iv.depth {
                    break; // same interval, shallower depth → parent
                }
                stack.pop();
            }
            // The branching letter: the letter of the child's path at the
            // parent's depth.
            let parent_depth = iv.parent_depth as usize;
            let first_pos = sa[iv.lb as usize] as usize + parent_depth;
            debug_assert!(first_pos < n, "edge letter out of bounds");
            let letter = text[first_pos];
            match stack.last() {
                Some(&p) => {
                    nodes[p as usize].children.insert(letter, i as u32);
                }
                None => {
                    root_children.insert(letter, i as u32);
                }
            }
            stack.push(i as u32);
        }
        Self { text, sa, nodes, root_children }
    }

    /// The suffix array.
    pub fn suffix_array(&self) -> &[u32] {
        &self.sa
    }

    /// Number of tree nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// SA interval (half-open ranks) of suffixes prefixed by `pattern`,
    /// by top-down descent: `O(m)` expected for hash-map children.
    pub fn interval(&self, pattern: &[u8]) -> Option<std::ops::Range<usize>> {
        if pattern.is_empty() {
            return if self.sa.is_empty() { None } else { Some(0..self.sa.len()) };
        }
        let mut matched = 0usize; // pattern letters confirmed
        let mut node: Option<u32> = None;
        loop {
            let children = match node {
                None => &self.root_children,
                Some(v) => &self.nodes[v as usize].children,
            };
            let &child = children.get(&pattern[matched])?;
            let iv = self.nodes[child as usize].iv;
            // verify the edge letters (parent_depth..depth) against the
            // pattern, up to the pattern end
            let start = self.sa[iv.lb as usize] as usize;
            let edge_end = (iv.depth as usize).min(pattern.len());
            let from = iv.parent_depth as usize;
            if self.text[start + from..start + edge_end] != pattern[from..edge_end] {
                return None;
            }
            matched = edge_end;
            if matched == pattern.len() {
                return Some(iv.lb as usize..iv.rb as usize + 1);
            }
            node = Some(child);
        }
    }

    /// All starting positions of `pattern` (unsorted, SA order).
    pub fn occurrences(&self, pattern: &[u8]) -> &[u32] {
        match self.interval(pattern) {
            Some(r) => &self.sa[r],
            None => &[],
        }
    }

    /// Number of occurrences.
    pub fn count(&self, pattern: &[u8]) -> usize {
        self.interval(pattern).map_or(0, |r| r.len())
    }
}

impl HeapSize for EsaSearcher {
    fn heap_bytes(&self) -> usize {
        self.text.heap_bytes()
            + self.sa.heap_bytes()
            + self.nodes.capacity() * std::mem::size_of::<Node>()
            + self
                .nodes
                .iter()
                .map(|nd| nd.children.capacity() * (std::mem::size_of::<(u8, u32)>() + 1))
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::occurrences_naive;
    use crate::search::SuffixArraySearcher;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn check(text: &[u8], pattern: &[u8]) {
        let esa = EsaSearcher::new(text);
        let mut got: Vec<u32> = esa.occurrences(pattern).to_vec();
        got.sort_unstable();
        assert_eq!(got, occurrences_naive(text, pattern), "{text:?} / {pattern:?}");
        // agrees with the binary-search searcher
        let sa = crate::sais::suffix_array(text);
        let bin = SuffixArraySearcher::new(text, &sa);
        assert_eq!(esa.count(pattern), bin.count(pattern));
    }

    #[test]
    fn fixtures() {
        let text = b"abracadabra";
        for pat in [&b"a"[..], b"ab", b"abra", b"abracadabra", b"bra", b"cad", b"x", b"ra", b"raa"]
        {
            check(text, pat);
        }
    }

    #[test]
    fn degenerate_inputs() {
        let esa = EsaSearcher::new(b"");
        assert!(esa.interval(b"").is_none());
        assert!(esa.interval(b"a").is_none());
        let esa = EsaSearcher::new(b"x");
        assert_eq!(esa.count(b"x"), 1);
        assert_eq!(esa.count(b""), 1);
        assert_eq!(esa.count(b"xx"), 0);
    }

    #[test]
    fn unary_and_periodic() {
        check(b"aaaaaa", b"aa");
        check(b"aaaaaa", b"aaaaaa");
        check(&b"ab".repeat(30), b"abab");
        check(&b"abc".repeat(20), b"cabc");
    }

    #[test]
    fn random_cross_check() {
        let mut rng = StdRng::seed_from_u64(61);
        for _ in 0..25 {
            let n = rng.gen_range(1..250);
            let text: Vec<u8> = (0..n).map(|_| b'a' + rng.gen_range(0..3u8)).collect();
            let esa = EsaSearcher::new(&text);
            let sa = crate::sais::suffix_array(&text);
            let bin = SuffixArraySearcher::new(&text, &sa);
            for _ in 0..30 {
                let m = rng.gen_range(1..10usize);
                let pat: Vec<u8> = if rng.gen_bool(0.7) && m <= text.len() {
                    let i = rng.gen_range(0..=text.len() - m);
                    text[i..i + m].to_vec()
                } else {
                    (0..m).map(|_| b'a' + rng.gen_range(0..4u8)).collect()
                };
                assert_eq!(esa.interval(&pat), bin.interval(&pat), "{text:?} / {pat:?}");
            }
        }
    }

    #[test]
    fn node_count_is_linear() {
        let text: Vec<u8> = b"mississippi".repeat(50);
        let esa = EsaSearcher::new(&text);
        assert!(esa.num_nodes() <= 2 * text.len());
        assert!(esa.heap_bytes() > 0);
    }
}
