//! Kasai's linear-time LCP array construction.
//!
//! `LCP[0] = 0` and, for `j > 0`, `LCP[j]` is the length of the longest
//! common prefix of the suffixes starting at `SA[j−1]` and `SA[j]`
//! (paper, Section III, \[30\]).

/// Computes the LCP array of `text` given its suffix array, in `O(n)`.
///
/// ```
/// use usi_suffix::{suffix_array, lcp_array};
/// let text = b"banana";
/// let sa = suffix_array(text);
/// assert_eq!(lcp_array(text, &sa), vec![0, 1, 3, 0, 0, 2]);
/// ```
pub fn lcp_array(text: &[u8], sa: &[u32]) -> Vec<u32> {
    let n = text.len();
    assert_eq!(sa.len(), n, "suffix array length must match text length");
    let mut lcp = vec![0u32; n];
    if n == 0 {
        return lcp;
    }
    // rank[i] = position of suffix i in the suffix array
    let mut rank = vec![0u32; n];
    for (r, &p) in sa.iter().enumerate() {
        rank[p as usize] = r as u32;
    }
    let mut h = 0usize;
    for i in 0..n {
        let r = rank[i] as usize;
        if r > 0 {
            let j = sa[r - 1] as usize;
            while i + h < n && j + h < n && text[i + h] == text[j + h] {
                h += 1;
            }
            lcp[r] = h as u32;
            h = h.saturating_sub(1);
        } else {
            h = 0;
        }
    }
    lcp
}

/// [`lcp_array`] chunked over up to `threads` scoped workers, with
/// output identical to the serial pass for every input and thread count.
///
/// Kasai's invariant is per *text position*: `PLCP[i]` (the LCP of
/// suffix `i` with its suffix-array predecessor) never drops by more
/// than one from `PLCP[i − 1]`, which the serial algorithm exploits by
/// carrying the matched length `h` from one position to the next. The
/// carry is only a lower-bound hint, so each worker can restart it at
/// zero on its own text block and still compute the exact values; the
/// only cost is one un-amortised re-scan per block boundary. Per-block
/// `PLCP` slices are disjoint (`chunks_mut`), and a final `O(n)` pass
/// permutes `PLCP` into SA order.
pub fn lcp_array_threads(text: &[u8], sa: &[u32], threads: usize) -> Vec<u32> {
    /// Below this length the pass is microseconds; spawning loses.
    const PARALLEL_MIN_LEN: usize = 1 << 14;
    let n = text.len();
    assert_eq!(sa.len(), n, "suffix array length must match text length");
    if threads <= 1 || n < PARALLEL_MIN_LEN {
        return lcp_array(text, sa);
    }
    let threads = threads.min(n);
    let rank = rank_array(sa);
    let mut plcp = vec![0u32; n];
    let chunk = n.div_ceil(threads);
    std::thread::scope(|scope| {
        for (ci, slice) in plcp.chunks_mut(chunk).enumerate() {
            let rank = &rank;
            scope.spawn(move || {
                let lo = ci * chunk;
                let mut h = 0usize;
                for (off, out) in slice.iter_mut().enumerate() {
                    let i = lo + off;
                    let r = rank[i] as usize;
                    if r == 0 {
                        h = 0;
                        *out = 0;
                        continue;
                    }
                    let j = sa[r - 1] as usize;
                    while i + h < n && j + h < n && text[i + h] == text[j + h] {
                        h += 1;
                    }
                    *out = h as u32;
                    h = h.saturating_sub(1);
                }
            });
        }
    });
    let mut lcp = vec![0u32; n];
    for (i, &v) in plcp.iter().enumerate() {
        lcp[rank[i] as usize] = v;
    }
    lcp
}

/// Computes the rank (inverse suffix array): `rank[sa[i]] = i`.
pub fn rank_array(sa: &[u32]) -> Vec<u32> {
    let mut rank = vec![0u32; sa.len()];
    for (r, &p) in sa.iter().enumerate() {
        rank[p as usize] = r as u32;
    }
    rank
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::{lcp_array_naive, suffix_array_naive};
    use crate::sais::suffix_array;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn check(text: &[u8]) {
        let sa = suffix_array(text);
        assert_eq!(lcp_array(text, &sa), lcp_array_naive(text, &sa), "text {text:?}");
    }

    #[test]
    fn fixtures() {
        check(b"");
        check(b"a");
        check(b"aaaa");
        check(b"banana");
        check(b"mississippi");
        check(&b"ab".repeat(20));
    }

    #[test]
    fn random_texts() {
        let mut rng = StdRng::seed_from_u64(99);
        for sigma in [2usize, 4, 26] {
            for len in [5usize, 64, 500] {
                let text: Vec<u8> =
                    (0..len).map(|_| b'a' + rng.gen_range(0..sigma) as u8).collect();
                check(&text);
            }
        }
    }

    #[test]
    fn threaded_kasai_matches_serial() {
        let mut rng = StdRng::seed_from_u64(101);
        let mut texts: Vec<Vec<u8>> = vec![
            Vec::new(),
            b"a".to_vec(),
            vec![b'a'; 300],
            b"ab".repeat(100),
            b"mississippi".repeat(30),
        ];
        // 20_000 crosses the parallel gate; the rest pin the fallback
        for len in [10usize, 257, 5000, 20_000] {
            texts.push((0..len).map(|_| b'a' + rng.gen_range(0..3u8)).collect());
        }
        // an equal-byte run spanning chunk boundaries at the gate size
        texts.push(vec![b'a'; 20_000]);
        for text in &texts {
            let sa = suffix_array(text);
            let want = lcp_array(text, &sa);
            for threads in [1usize, 2, 3, 8, 64] {
                assert_eq!(lcp_array_threads(text, &sa, threads), want, "threads {threads}");
            }
        }
    }

    #[test]
    fn rank_is_inverse() {
        let text = b"abracadabra";
        let sa = suffix_array_naive(text);
        let rank = rank_array(&sa);
        for (r, &p) in sa.iter().enumerate() {
            assert_eq!(rank[p as usize] as usize, r);
        }
    }
}
