//! Enhanced-suffix-array lcp-interval enumeration.
//!
//! The bottom-up traversal of Abouelhoda, Kurtz and Ohlebusch (Algorithm
//! 4.4, cited by the paper in Section VI Step 3) enumerates the
//! *lcp-intervals* of an (S)LCP array — exactly the explicit internal
//! nodes of the (sparse) suffix tree — without materialising the tree.
//! Together with the leaves, these intervals carry everything the top-K
//! oracle of Section V needs: for each node `v`, its string depth
//! `sd(v)`, its parent's string depth (hence the edge letter count
//! `q(v) = sd(v) − sd(parent)`), and its frequency `f(v) = rb − lb + 1`.

/// One explicit node of the (sparse) suffix tree, as an interval of the
/// (sparse) suffix array.
///
/// The node represents the `q() = depth − parent_depth` distinct
/// substrings of lengths `parent_depth + 1 ..= depth` that share the SA
/// interval `[lb, rb]`; each occurs exactly `freq() = rb − lb + 1` times
/// (in the sample, for sparse arrays).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LcpInterval {
    /// String depth `sd(v)`: the longest substring this node represents.
    pub depth: u32,
    /// String depth of the parent node (`0` for children of the root).
    pub parent_depth: u32,
    /// Left boundary in the suffix array (inclusive).
    pub lb: u32,
    /// Right boundary in the suffix array (inclusive).
    pub rb: u32,
}

impl LcpInterval {
    /// Frequency `f(v)`: number of suffixes in the interval.
    #[inline]
    pub fn freq(&self) -> u32 {
        self.rb - self.lb + 1
    }

    /// Edge letter count `q(v)`: number of distinct substrings (one per
    /// implicit node on the edge, plus the explicit endpoint).
    #[inline]
    pub fn q(&self) -> u32 {
        self.depth - self.parent_depth
    }

    /// Whether this node is a suffix-tree leaf (a single suffix).
    #[inline]
    pub fn is_leaf(&self) -> bool {
        self.lb == self.rb
    }
}

/// Enumerates all explicit suffix-tree nodes (internal lcp-intervals and,
/// when `include_leaves`, the leaves) from an LCP array.
///
/// * `lcp` — the (sparse) LCP array; `lcp[0] = 0`, `lcp[j]` = LCP of the
///   suffixes ranked `j−1` and `j`.
/// * `suffix_len(i)` — length of the suffix ranked `i` (for a full text
///   `n − sa[i]`; the same formula with full-text lengths for a sparse
///   sample).
///
/// Runs in `O(n)` with a single stack pass; the root (empty string) is
/// never reported. Leaves with `depth == parent_depth` (suffixes that are
/// prefixes of a neighbouring suffix, representing no extra substring)
/// are skipped.
pub fn lcp_intervals(
    lcp: &[u32],
    suffix_len: impl Fn(usize) -> u32,
    include_leaves: bool,
) -> Vec<LcpInterval> {
    let n = lcp.len();
    let mut out = Vec::new();
    if n == 0 {
        return out;
    }
    // Internal nodes: classic bottom-up stack of (lcp value, left bound).
    let mut stack: Vec<(u32, u32)> = vec![(0, 0)];
    #[allow(clippy::needless_range_loop)]
    for i in 1..=n {
        let l = if i < n { lcp[i] } else { 0 };
        let mut lb = (i - 1) as u32;
        while stack.last().unwrap().0 > l {
            let (top_depth, top_lb) = stack.pop().unwrap();
            let rb = (i - 1) as u32;
            let parent_depth = stack.last().unwrap().0.max(l);
            out.push(LcpInterval { depth: top_depth, parent_depth, lb: top_lb, rb });
            lb = top_lb;
        }
        if stack.last().unwrap().0 < l {
            stack.push((l, lb));
        }
    }
    debug_assert_eq!(stack.len(), 1, "only the root sentinel may remain");

    if include_leaves {
        for i in 0..n {
            let left = lcp[i];
            let right = if i + 1 < n { lcp[i + 1] } else { 0 };
            let parent_depth = left.max(right);
            let depth = suffix_len(i);
            if depth > parent_depth {
                out.push(LcpInterval { depth, parent_depth, lb: i as u32, rb: i as u32 });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lcp::lcp_array;
    use crate::naive::substring_frequencies_naive;
    use crate::sais::suffix_array;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Cross-checks every reported node against brute-force substring
    /// frequencies, and verifies the node set covers each distinct
    /// substring exactly once.
    fn check(text: &[u8]) {
        let n = text.len();
        let sa = suffix_array(text);
        let lcp = lcp_array(text, &sa);
        let nodes = lcp_intervals(&lcp, |i| (n - sa[i] as usize) as u32, true);
        let freqs = substring_frequencies_naive(text);

        let mut covered = 0usize;
        for node in &nodes {
            assert!(node.depth > node.parent_depth, "empty node {node:?}");
            assert!(node.lb <= node.rb);
            covered += node.q() as usize;
            // every substring length on the edge has the node's frequency
            for len in (node.parent_depth + 1)..=node.depth {
                let start = sa[node.lb as usize] as usize;
                let sub = &text[start..start + len as usize];
                assert_eq!(freqs[sub], node.freq(), "substring {sub:?} freq mismatch in {text:?}");
                // and the SA interval contains exactly the occurrences
                for r in node.lb..=node.rb {
                    let p = sa[r as usize] as usize;
                    assert_eq!(&text[p..p + len as usize], sub);
                }
            }
        }
        assert_eq!(covered, freqs.len(), "distinct substring count in {text:?}");
    }

    #[test]
    fn fixtures() {
        check(b"a");
        check(b"ab");
        check(b"aa");
        check(b"aaaa");
        check(b"banana");
        check(b"abab");
        check(b"mississippi");
        check(&b"ab".repeat(8));
    }

    #[test]
    fn empty_text_no_nodes() {
        assert!(lcp_intervals(&[], |_| 0, true).is_empty());
    }

    #[test]
    fn random_texts() {
        let mut rng = StdRng::seed_from_u64(5);
        for sigma in [2usize, 3, 5] {
            for len in [4usize, 9, 20, 40] {
                let text: Vec<u8> =
                    (0..len).map(|_| b'a' + rng.gen_range(0..sigma) as u8).collect();
                check(&text);
            }
        }
    }

    #[test]
    fn banana_internal_nodes() {
        let text = b"banana";
        let sa = suffix_array(text);
        let lcp = lcp_array(text, &sa);
        let mut internal: Vec<LcpInterval> =
            lcp_intervals(&lcp, |i| (text.len() - sa[i] as usize) as u32, false);
        internal.sort_by_key(|n| (n.depth, n.lb));
        // "banana": internal nodes are "a" [0,2], "na" [4,5], "ana" [1,2]
        assert_eq!(
            internal,
            vec![
                LcpInterval { depth: 1, parent_depth: 0, lb: 0, rb: 2 },
                LcpInterval { depth: 2, parent_depth: 0, lb: 4, rb: 5 },
                LcpInterval { depth: 3, parent_depth: 1, lb: 1, rb: 2 },
            ]
        );
    }

    #[test]
    fn unary_text_chain() {
        // "aaaa": internal nodes "a"(f4), "aa"(f3), "aaa"(f2), each q=1.
        let text = b"aaaa";
        let sa = suffix_array(text);
        let lcp = lcp_array(text, &sa);
        let internal = lcp_intervals(&lcp, |i| (text.len() - sa[i] as usize) as u32, false);
        let mut freqs: Vec<u32> = internal.iter().map(|n| n.freq()).collect();
        freqs.sort_unstable();
        assert_eq!(freqs, vec![2, 3, 4]);
        for n in &internal {
            assert_eq!(n.q(), 1);
        }
    }

    #[test]
    fn leaf_flag() {
        let text = b"ab";
        let sa = suffix_array(text);
        let lcp = lcp_array(text, &sa);
        let nodes = lcp_intervals(&lcp, |i| (text.len() - sa[i] as usize) as u32, true);
        assert!(nodes.iter().all(|n| n.is_leaf()));
        assert_eq!(nodes.len(), 2);
    }
}
