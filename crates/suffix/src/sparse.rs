//! Sparse suffix and LCP arrays (paper, Section VI, Step 2).
//!
//! Round `i` of Approximate-Top-K samples the positions `i + r·s` of `S`
//! and builds an index of just those suffixes: the sparse suffix array
//! `SSA_i` (sampled suffixes in lexicographic order) and the sparse LCP
//! array `SLCP_i` (longest common prefixes of adjacent sampled suffixes).
//! Both are driven entirely by an [`LceOracle`]: sorting compares two
//! suffixes with one LCE query plus one letter comparison, and `SLCP` is
//! one LCE query per adjacent pair.
//!
//! The paper sorts with in-place mergesort to avoid extra space; we use
//! `slice::sort_unstable_by` (in-place pattern-defeating quicksort), which
//! has the same no-allocation property and better constants.

use crate::lce::LceOracle;
use usi_strings::HeapSize;

/// A sparse index over a sample of text positions: the sorted sample and
/// the LCPs of adjacent sampled suffixes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SparseIndex {
    /// Sampled positions in lexicographic suffix order (`SSA_i`).
    pub ssa: Vec<u32>,
    /// `slcp[0] = 0`; `slcp[j]` = LCE of `ssa[j−1]` and `ssa[j]` (`SLCP_i`).
    pub slcp: Vec<u32>,
}

impl SparseIndex {
    /// Number of sampled suffixes.
    #[inline]
    pub fn len(&self) -> usize {
        self.ssa.len()
    }

    /// Whether the sample is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ssa.is_empty()
    }
}

impl HeapSize for SparseIndex {
    fn heap_bytes(&self) -> usize {
        self.ssa.heap_bytes() + self.slcp.heap_bytes()
    }
}

/// Sorts `positions` into suffix order and computes the sparse LCP array,
/// using `oracle` for all string comparisons.
///
/// `O((n/s) log(n/s))` comparisons, each one LCE query.
pub fn sparse_suffix_array(
    text: &[u8],
    mut positions: Vec<u32>,
    oracle: &impl LceOracle,
) -> SparseIndex {
    debug_assert!(positions.iter().all(|&p| (p as usize) < text.len() || text.is_empty()));
    positions.sort_unstable_by(|&a, &b| oracle.compare_suffixes(text, a as usize, b as usize));
    let mut slcp = Vec::with_capacity(positions.len());
    if !positions.is_empty() {
        slcp.push(0);
        for w in positions.windows(2) {
            slcp.push(oracle.lce(w[0] as usize, w[1] as usize) as u32);
        }
    }
    SparseIndex { ssa: positions, slcp }
}

/// The arithmetic sample `{offset + r·step : r ≥ 0} ∩ [0, n)` used by
/// round `offset` of Approximate-Top-K.
pub fn arithmetic_sample(n: usize, offset: usize, step: usize) -> Vec<u32> {
    debug_assert!(step > 0);
    (offset..n).step_by(step).map(|p| p as u32).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lce::{FingerprintLce, NaiveLce, RmqLce};
    use crate::naive::lce_naive;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use usi_strings::Fingerprinter;

    fn check(text: &[u8], positions: Vec<u32>) {
        let naive = NaiveLce::new(text);
        let got = sparse_suffix_array(text, positions.clone(), &naive);
        // expected: direct suffix sort
        let mut want = positions.clone();
        want.sort_by(|&a, &b| text[a as usize..].cmp(&text[b as usize..]));
        assert_eq!(got.ssa, want, "{text:?} {positions:?}");
        for j in 1..got.ssa.len() {
            assert_eq!(
                got.slcp[j] as usize,
                lce_naive(text, got.ssa[j - 1] as usize, got.ssa[j] as usize)
            );
        }
        // all oracles agree
        let fp = FingerprintLce::new(text, Fingerprinter::with_base(99));
        let rmq = RmqLce::new(text);
        assert_eq!(sparse_suffix_array(text, positions.clone(), &fp), got);
        assert_eq!(sparse_suffix_array(text, positions, &rmq), got);
    }

    #[test]
    fn full_sample_equals_suffix_array() {
        let text = b"mississippi";
        let all: Vec<u32> = (0..text.len() as u32).collect();
        let idx = sparse_suffix_array(text, all, &NaiveLce::new(text));
        assert_eq!(idx.ssa, crate::sais::suffix_array(text));
        assert_eq!(idx.slcp, crate::lcp::lcp_array(text, &idx.ssa));
    }

    #[test]
    fn arithmetic_samples_partition_text() {
        let n = 17;
        let s = 4;
        let mut all: Vec<u32> = Vec::new();
        for off in 0..s {
            all.extend(arithmetic_sample(n, off, s));
        }
        all.sort_unstable();
        assert_eq!(all, (0..n as u32).collect::<Vec<_>>());
    }

    #[test]
    fn sparse_samples_random() {
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..20 {
            let n = rng.gen_range(2..120);
            let text: Vec<u8> = (0..n).map(|_| b'a' + rng.gen_range(0..3u8)).collect();
            let step = rng.gen_range(1..6usize);
            let off = rng.gen_range(0..step);
            check(&text, arithmetic_sample(n, off, step));
        }
    }

    #[test]
    fn empty_sample() {
        let idx = sparse_suffix_array(b"abc", vec![], &NaiveLce::new(b"abc"));
        assert!(idx.is_empty());
        assert!(idx.slcp.is_empty());
    }

    #[test]
    fn unary_text_sample() {
        // all suffixes are prefixes of each other: order by decreasing start
        let text = b"aaaaaa";
        check(text, vec![0, 2, 4]);
    }
}
