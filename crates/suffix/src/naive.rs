//! Quadratic reference implementations.
//!
//! These are the ground truth the fast structures are tested against.
//! They are exported (not `cfg(test)`) because downstream crates' tests
//! and the experiment harness's self-checks use them too.

use std::collections::HashMap;

/// Suffix array by direct suffix sorting. `O(n² log n)` worst case.
pub fn suffix_array_naive(text: &[u8]) -> Vec<u32> {
    let mut sa: Vec<u32> = (0..text.len() as u32).collect();
    sa.sort_by(|&a, &b| text[a as usize..].cmp(&text[b as usize..]));
    sa
}

/// LCP array by direct comparison: `lcp[0] = 0`,
/// `lcp[i] = |lcp(S[sa[i-1]..], S[sa[i]..])|`.
pub fn lcp_array_naive(text: &[u8], sa: &[u32]) -> Vec<u32> {
    let mut lcp = vec![0u32; sa.len()];
    for i in 1..sa.len() {
        let (a, b) = (sa[i - 1] as usize, sa[i] as usize);
        let mut l = 0usize;
        while a + l < text.len() && b + l < text.len() && text[a + l] == text[b + l] {
            l += 1;
        }
        lcp[i] = l as u32;
    }
    lcp
}

/// All starting positions of `pattern` in `text`, in increasing order.
pub fn occurrences_naive(text: &[u8], pattern: &[u8]) -> Vec<u32> {
    if pattern.is_empty() || pattern.len() > text.len() {
        return Vec::new();
    }
    text.windows(pattern.len())
        .enumerate()
        .filter(|(_, w)| *w == pattern)
        .map(|(i, _)| i as u32)
        .collect()
}

/// Frequency of every distinct substring of `text`. `O(n²)` entries —
/// only for small test inputs.
pub fn substring_frequencies_naive(text: &[u8]) -> HashMap<Vec<u8>, u32> {
    let mut freq = HashMap::new();
    let n = text.len();
    for i in 0..n {
        for j in (i + 1)..=n {
            *freq.entry(text[i..j].to_vec()).or_insert(0u32) += 1;
        }
    }
    freq
}

/// The exact top-`k` most frequent substrings, ties broken by
/// (frequency desc, length asc, lexicographic) for determinism. Returns
/// `(substring, frequency)` pairs. Only for small test inputs.
pub fn top_k_naive(text: &[u8], k: usize) -> Vec<(Vec<u8>, u32)> {
    let mut all: Vec<(Vec<u8>, u32)> = substring_frequencies_naive(text).into_iter().collect();
    all.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.len().cmp(&b.0.len())).then(a.0.cmp(&b.0)));
    all.truncate(k);
    all
}

/// Longest common extension of the suffixes at `i` and `j` by scanning.
pub fn lce_naive(text: &[u8], i: usize, j: usize) -> usize {
    let n = text.len();
    let mut l = 0;
    while i + l < n && j + l < n && text[i + l] == text[j + l] {
        l += 1;
    }
    l
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn banana_suffix_array() {
        // suffixes of "banana" sorted: a, ana, anana, banana, na, nana
        assert_eq!(suffix_array_naive(b"banana"), vec![5, 3, 1, 0, 4, 2]);
    }

    #[test]
    fn banana_lcp() {
        let sa = suffix_array_naive(b"banana");
        assert_eq!(lcp_array_naive(b"banana", &sa), vec![0, 1, 3, 0, 0, 2]);
    }

    #[test]
    fn occurrences_overlapping() {
        assert_eq!(occurrences_naive(b"aaaa", b"aa"), vec![0, 1, 2]);
        assert_eq!(occurrences_naive(b"abc", b"d"), Vec::<u32>::new());
        assert_eq!(occurrences_naive(b"abc", b""), Vec::<u32>::new());
    }

    #[test]
    fn frequency_table_counts_every_window() {
        let f = substring_frequencies_naive(b"abab");
        assert_eq!(f[&b"ab"[..].to_vec()], 2);
        assert_eq!(f[&b"aba"[..].to_vec()], 1);
        assert_eq!(f[&b"a"[..].to_vec()], 2);
        // distinct substrings of "abab": a, b, ab, ba, aba, bab, abab, baba? no
        // a b ab ba aba bab abab bab? enumerate: 4+3+2+1 windows, distinct = 7
        assert_eq!(f.len(), 7);
    }

    #[test]
    fn top_k_ordering() {
        let top = top_k_naive(b"abab", 3);
        // freq 2: "a", "b", "ab" (shortest first, then lexicographic)
        assert_eq!(top[0], (b"a".to_vec(), 2));
        assert_eq!(top[1], (b"b".to_vec(), 2));
        assert_eq!(top[2], (b"ab".to_vec(), 2));
    }

    #[test]
    fn lce_scan() {
        assert_eq!(lce_naive(b"abcabd", 0, 3), 2);
        assert_eq!(lce_naive(b"aaaa", 0, 1), 3);
        assert_eq!(lce_naive(b"ab", 0, 0), 2);
    }
}
