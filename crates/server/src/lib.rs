//! `usi_server` — the serving layer for Useful String Indexing: many
//! [`UsiIndex`](usi_core::UsiIndex)es behind one long-running process.
//!
//! The crate is dependency-free (std only, like the rest of the
//! workspace) and splits into three layers:
//!
//! * [`catalog`] — a sharded multi-index registry ([`Catalog`]): loads
//!   `.usix` files or in-process builds, hosts live ingest-enabled
//!   documents (`usi_ingest::IngestPipeline` behind
//!   `POST /v1/docs/{id}/append`), routes queries by document id with a
//!   per-document pattern → answer LRU cache, fans out across every
//!   document, and spreads batches over `std::thread::scope` workers;
//! * [`json`] — a hand-rolled JSON value/parser/encoder plus the API
//!   encodings shared by the server, the CLI's `--json` mode and the
//!   end-to-end tests;
//! * [`http`] / [`pool`] — a minimal HTTP/1.1 front end on
//!   `std::net::TcpListener` with a fixed-size worker pool and graceful
//!   shutdown.
//!
//! ```no_run
//! use std::net::TcpListener;
//! use std::sync::Arc;
//! use usi_server::{serve, Catalog, ServerConfig};
//!
//! let catalog = Arc::new(Catalog::new(8));
//! catalog.load_path(std::path::Path::new("indexes/")).unwrap();
//! let listener = TcpListener::bind("127.0.0.1:7878").unwrap();
//! let handle = serve(catalog, listener, ServerConfig::with_workers(4)).unwrap();
//! println!("listening on {}", handle.addr());
//! // … handle.shutdown() stops accepting and joins every thread
//! ```

pub mod catalog;
pub mod http;
pub mod json;
pub(crate) mod metrics;
pub mod pool;
pub(crate) mod reactor;

pub use catalog::{
    AppendError, Catalog, CatalogError, Doc, FanOut, LoadOptions, ReloadError, ReplicationStatus,
    Role,
};
pub use http::{respond, serve, AccessLog, Response, ServerConfig, ServerHandle};
pub use json::{Json, JsonError};
pub use pool::WorkerPool;
