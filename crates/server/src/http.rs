//! A minimal HTTP/1.1 front end over `std::net::TcpListener`.
//!
//! Endpoints (all responses are JSON):
//!
//! | route | answer |
//! |---|---|
//! | `GET /healthz` | `{"status":"ok","docs":N}` |
//! | `GET /v1/docs` | the loaded documents with per-doc summaries |
//! | `GET /v1/docs/{id}/stats` | size breakdown, build, cache and ingest stats of one document |
//! | `POST /v1/docs/{id}/append` | durable append to an ingest-enabled document: body `{"text":"…","weight":w}` or `{"text":"…","weights":[…]}` |
//! | `POST /v1/docs/{id}/reload` | re-open the document's `.usix` file and atomically swap the new view in |
//! | `POST /v1/query` | batch utilities: body `{"doc":"<id>"` or `"*","patterns":[…]}`; add `"acc":true` for raw accumulators |
//!
//! The implementation is deliberately small: request parsing handles
//! exactly what the API needs (request line, headers, `Content-Length`
//! bodies), every response carries `Content-Length`, and a fixed-size
//! [`WorkerPool`] bounds concurrency. Shutdown is graceful:
//! [`ServerHandle::shutdown`] stops the accept loop, lets queued
//! connections finish, and joins every thread.
//!
//! Connections are **persistent** (HTTP/1.1 keep-alive): each accepted
//! socket is answered until the client asks for `Connection: close` (or
//! is HTTP/1.0 without `keep-alive`), the configured idle timeout
//! passes between requests, or
//! [`ServerConfig::max_requests_per_connection`] is reached — so hot
//! clients pay TCP setup once, not per query. Pipelining is supported
//! and bounded: bytes a client sends ahead of the current request stay
//! in the per-connection buffer (at most one head + one body ahead)
//! and are answered in order.
//!
//! **Idle connections do not occupy workers.** On Linux a readiness
//! reactor (the private `reactor` module) parks every idle socket in an epoll
//! set; a pool worker is borrowed only while a request is actually
//! being parsed and answered, then the socket is re-armed with the
//! reactor — tens of thousands of idle keep-alive connections are
//! served from a handful of workers, with [`ServerConfig::max_connections`]
//! bounding the total (over-capacity connects get `503` and a close).
//! On other platforms (or with [`ServerConfig::reactor`] off) the
//! original thread-per-connection fallback runs: an open connection
//! occupies its worker until it closes or idles out, so there size
//! [`ServerConfig::workers`] to the expected number of concurrently
//! connected clients, not requests.

use crate::catalog::{AppendError, Catalog, ReloadError};
use crate::json::{
    fan_out_acc_response_json, fan_out_response_json, query_acc_response_json, query_response_json,
    Json,
};
use crate::metrics;
use crate::pool::{ConnVerdict, WorkerPool};
use crate::reactor;
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use usi_ingest::IngestError;
use usi_obs::{FlightRecord, Span, SpanGuard, TraceId};

/// Longest accepted request head (request line + headers).
const MAX_HEAD: usize = 16 * 1024;
/// Longest accepted request body.
const MAX_BODY: usize = 4 * 1024 * 1024;
/// Most patterns per `POST /v1/query` request.
const MAX_PATTERNS: usize = 10_000;
/// Write-side socket timeout (reads use the configured idle timeout).
const SOCKET_TIMEOUT: Duration = Duration::from_secs(10);

/// How (and whether) the server logs each request to stderr.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AccessLog {
    /// No per-request logging (the default).
    #[default]
    Off,
    /// One human-readable line per request.
    Text,
    /// One JSON object per request (machine-parseable stream).
    Json,
}

impl AccessLog {
    /// Parses a `--access-log` CLI value.
    pub fn parse(value: &str) -> Option<Self> {
        match value {
            "off" => Some(Self::Off),
            "text" => Some(Self::Text),
            "json" => Some(Self::Json),
            _ => None,
        }
    }
}

/// Server tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Connection-handling worker threads.
    pub workers: usize,
    /// Scoped threads a single batch/fan-out query may spread over.
    pub batch_threads: usize,
    /// Honour HTTP keep-alive (persistent connections). When `false`
    /// every response carries `Connection: close` and the socket shuts
    /// after one exchange, the pre-keep-alive behaviour.
    pub keep_alive: bool,
    /// How long a persistent connection may sit idle (and how long a
    /// single read may stall) before the server closes it. Bounds the
    /// time an idle client can hold a pool worker.
    pub idle_timeout: Duration,
    /// Requests served on one connection before the server closes it
    /// (`Connection: close` on the last response) — an upper bound on
    /// per-connection resource pinning under pipelining floods.
    pub max_requests_per_connection: usize,
    /// Requests slower than this are logged to stderr (and counted in
    /// `usi_http_slow_requests_total`); `None` disables the slow log.
    pub slow_query_ms: Option<u64>,
    /// Requests whose **whole lifetime** (queue wait through response
    /// write) exceeds this are captured in the flight recorder with
    /// their full stage tree (`GET /debug/requests`). Defaults to
    /// [`ServerConfig::slow_query_ms`] when `None`; errored requests
    /// (status ≥ 400) are always captured.
    pub flight_slow_ms: Option<u64>,
    /// Per-request access logging to stderr.
    pub access_log: AccessLog,
    /// Most connections held open at once. A connect past the limit is
    /// answered with `503` (the uniform JSON error body) and closed
    /// immediately, protecting the reactor's descriptor budget.
    pub max_connections: usize,
    /// Serve idle connections from the epoll reactor (Linux). When
    /// `false` — or on platforms without epoll — every connection pins
    /// a pool worker for its whole lifetime, the pre-reactor behaviour.
    pub reactor: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        let cores = std::thread::available_parallelism().map_or(4, usize::from);
        Self {
            workers: 4,
            batch_threads: cores.clamp(1, 8),
            keep_alive: true,
            idle_timeout: Duration::from_secs(5),
            max_requests_per_connection: 1000,
            slow_query_ms: None,
            flight_slow_ms: None,
            access_log: AccessLog::Off,
            max_connections: 100_000,
            reactor: true,
        }
    }
}

impl ServerConfig {
    /// A config with `workers` connection workers and default batching.
    pub fn with_workers(workers: usize) -> Self {
        Self { workers: workers.max(1), ..Self::default() }
    }
}

/// How [`ServerHandle::shutdown`] interrupts the serving thread's
/// blocking wait.
pub(crate) enum WakeStrategy {
    /// Wake a blocking `accept()` with a throwaway loopback connection
    /// (the thread-per-connection fallback has nothing better to poke).
    Connect,
    /// Write the reactor's eventfd, which is registered in its epoll
    /// set — no artificial connection, works even at the descriptor
    /// limit.
    #[cfg(target_os = "linux")]
    Eventfd(Arc<std::fs::File>),
}

/// A running server; dropping it (or calling
/// [`ServerHandle::shutdown`]) stops the accept loop and joins every
/// worker.
pub struct ServerHandle {
    pub(crate) addr: SocketAddr,
    pub(crate) stop: Arc<AtomicBool>,
    pub(crate) thread: Option<JoinHandle<()>>,
    pub(crate) waker: WakeStrategy,
    pub(crate) open: Arc<AtomicUsize>,
}

impl ServerHandle {
    /// The bound address (resolves ephemeral ports: bind to port 0 and
    /// read the actual port here).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Connections this server currently holds open (accepted and not
    /// yet closed). Unlike the process-global `usi_http_connections_open`
    /// gauge this counts one server instance, so tests and embedders
    /// running several servers in one process can observe each alone.
    pub fn open_connections(&self) -> usize {
        self.open.load(Ordering::SeqCst)
    }

    /// Stops accepting, drains queued connections and joins all threads.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        match &self.waker {
            WakeStrategy::Connect => {
                // wake the blocking accept() with a throwaway connection;
                // a wildcard bind (0.0.0.0 / ::) is not connectable
                // everywhere, so aim at the loopback of the same family
                let mut wake = self.addr;
                if wake.ip().is_unspecified() {
                    wake.set_ip(match wake.ip() {
                        std::net::IpAddr::V4(_) => {
                            std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST)
                        }
                        std::net::IpAddr::V6(_) => {
                            std::net::IpAddr::V6(std::net::Ipv6Addr::LOCALHOST)
                        }
                    });
                }
                let _ = TcpStream::connect_timeout(&wake, Duration::from_secs(1));
            }
            #[cfg(target_os = "linux")]
            WakeStrategy::Eventfd(fd) => {
                let _ = (&**fd).write_all(&1u64.to_ne_bytes());
            }
        }
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if self.thread.is_some() {
            self.stop_and_join();
        }
    }
}

/// Starts serving `catalog` on `listener`. Returns immediately; serving
/// runs on its own thread(s) until the handle shuts down. On Linux with
/// [`ServerConfig::reactor`] on (the default) connections are parked in
/// an epoll reactor between requests; otherwise each connection pins a
/// worker from the fixed pool for its lifetime.
pub fn serve(
    catalog: Arc<Catalog>,
    listener: TcpListener,
    config: ServerConfig,
) -> io::Result<ServerHandle> {
    // pin the uptime epoch: /healthz reports seconds of serving time
    usi_obs::process_start();
    if config.reactor && reactor::SUPPORTED {
        return reactor::serve(catalog, listener, config);
    }
    serve_threaded(catalog, listener, config)
}

/// The portable thread-per-connection path: a blocking accept loop
/// hands each connection to the pool, which owns it until it closes.
fn serve_threaded(
    catalog: Arc<Catalog>,
    listener: TcpListener,
    config: ServerConfig,
) -> io::Result<ServerHandle> {
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop_flag = Arc::clone(&stop);
    let open = Arc::new(AtomicUsize::new(0));
    let open_count = Arc::clone(&open);
    let accept = std::thread::Builder::new().name("usi-accept".into()).spawn(move || {
        let pool = WorkerPool::new(config.workers);
        loop {
            let stream = match listener.accept() {
                Ok((stream, _)) => stream,
                Err(_) if stop_flag.load(Ordering::SeqCst) => break,
                Err(_) => {
                    // transient failure (EMFILE under flood, ECONNABORTED):
                    // back off instead of hot-spinning, letting in-flight
                    // requests finish and release descriptors
                    std::thread::sleep(Duration::from_millis(50));
                    continue;
                }
            };
            if stop_flag.load(Ordering::SeqCst) {
                break; // the wake-up connection (or a race with it)
            }
            // answers are single writes; never let Nagle hold one back
            let _ = stream.set_nodelay(true);
            if open_count.load(Ordering::SeqCst) >= config.max_connections.max(1) {
                reject_over_capacity(stream);
                continue;
            }
            open_count.fetch_add(1, Ordering::SeqCst);
            let catalog = Arc::clone(&catalog);
            let open_count = Arc::clone(&open_count);
            pool.execute(move |queue_wait| {
                handle_connection(stream, &catalog, config, queue_wait);
                open_count.fetch_sub(1, Ordering::SeqCst);
                ConnVerdict::Close
            });
        }
        // pool drops here: queued connections drain, workers join
    })?;
    Ok(ServerHandle { addr, stop, thread: Some(accept), waker: WakeStrategy::Connect, open })
}

/// Per-connection parse/serve state shared by the thread-per-connection
/// path and the reactor: the socket, the pipelining carry-over buffer,
/// and how many requests this connection has answered (the budget
/// counter).
pub(crate) struct ConnState {
    stream: TcpStream,
    buf: Vec<u8>,
    served: u64,
    /// How long this connection's current pool job waited in the queue
    /// — charged to the **first** request the job serves (its `queue`
    /// stage), then cleared; pipelined follow-ups never waited.
    pending_wait: Option<Duration>,
}

impl ConnState {
    pub(crate) fn new(stream: TcpStream) -> Self {
        Self { stream, buf: Vec::with_capacity(1024), served: 0, pending_wait: None }
    }

    pub(crate) fn stream(&self) -> &TcpStream {
        &self.stream
    }

    /// Whether the carry-over buffer already holds one complete
    /// pipelined request (head + body) — servable without reading the
    /// socket, so the reactor must not park the connection yet.
    pub(crate) fn has_buffered_request(&self) -> bool {
        has_complete_request(&self.buf)
    }
}

/// Outcome of serving a single request on a connection.
pub(crate) enum Exchange {
    /// Response written, connection stays open for the next request.
    KeepAlive,
    /// The connection is done: client closed/asked to close, idle or
    /// budget limit hit, or the transport failed.
    Close,
}

/// A [`Read`] wrapper that remembers when the first byte of the current
/// request arrived — so the `parse` stage measures parsing, not the
/// keep-alive idle wait the threaded path spends blocked in `read`.
struct TimedReader<'s> {
    stream: &'s mut TcpStream,
    first_byte: Option<Instant>,
}

impl Read for TimedReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let got = self.stream.read(buf)?;
        if got > 0 && self.first_byte.is_none() {
            self.first_byte = Some(Instant::now());
        }
        Ok(got)
    }
}

/// Serves exactly one request off `conn`: read (through the carry-over
/// buffer), route, respond. `count_idle` tracks the read wait in the
/// `usi_http_connections_idle` gauge — the threaded path waits here,
/// while the reactor accounts idleness in its epoll set instead.
///
/// Every request gets a fresh [`TraceId`]: it rides the response as
/// `X-Request-Id` (with a `Server-Timing` stage breakdown), tags every
/// span the request records down the stack, and keys the flight
/// recorder entry when the request turns out slow or errored.
pub(crate) fn serve_one(
    conn: &mut ConnState,
    catalog: &Catalog,
    config: ServerConfig,
    count_idle: bool,
) -> Exchange {
    let m = metrics::server();
    let budget = config.max_requests_per_connection.max(1) as u64;
    if count_idle {
        // idle: between responses, waiting on the client's next request
        m.connections_idle.inc();
    }
    let entry = Instant::now();
    let had_buffered = !conn.buf.is_empty();
    let mut reader = TimedReader { stream: &mut conn.stream, first_byte: None };
    let parsed = read_request(&mut reader, &mut conn.buf);
    let first_byte = reader.first_byte;
    if count_idle {
        m.connections_idle.dec();
    }
    if let Err(HttpError::Io(_)) = parsed {
        return Exchange::Close; // client went away or idled out
    }

    // a request arrived (even if malformed): give it an identity and
    // open its stage collector, so everything from here — engine spans,
    // error bodies, logs — carries the same id
    let trace_id = TraceId::generate();
    usi_obs::begin_request(trace_id);
    let queue_wait = conn.pending_wait.take();
    // parse began when this request's bytes first showed up: carried
    // over from the previous read, or at the first byte off the socket
    let parse_start = if had_buffered { entry } else { first_byte.unwrap_or(entry) };
    // the request's clock starts when its pool job left the queue (the
    // wait is part of what the client experienced), else at parse
    let root_start = match queue_wait {
        Some(wait) => entry.checked_sub(wait).unwrap_or(entry),
        None => parse_start,
    };
    if usi_obs::enabled() {
        if let Some(wait) = queue_wait {
            usi_obs::record_stage(
                SpanGuard::since("queue", root_start).parent("http.request").finish_with(wait),
            );
        }
        usi_obs::record_stage(
            SpanGuard::since("parse", parse_start)
                .parent("http.request")
                .finish_with(parse_start.elapsed()),
        );
    }

    let (response, close, routed) = match parsed {
        Ok(request) => {
            conn.served += 1;
            let close = request.close || !config.keep_alive || conn.served >= budget;
            m.requests_in_flight.inc();
            let started = Instant::now();
            let response = route(catalog, &request, config.batch_threads);
            let elapsed = started.elapsed();
            m.requests_in_flight.dec();
            (response, close, Some((request, elapsed)))
        }
        // framing gone: answer if possible, then always close
        Err(HttpError::TooLarge) => (error_response(413, "request too large"), true, None),
        Err(HttpError::Bad(what)) => (error_response(400, what), true, None),
        Err(HttpError::Io(_)) => unreachable!("handled above"),
    };

    let extra_headers = trace_headers(trace_id);
    let write_start = Instant::now();
    let io = write_response(&mut conn.stream, &response, !close, &extra_headers);
    if usi_obs::enabled() {
        usi_obs::record_stage(
            SpanGuard::since("write", write_start)
                .parent("http.request")
                .finish_with(write_start.elapsed()),
        );
    }
    finish_request(trace_id, routed, &response, root_start, config);
    if io.is_err() || close {
        return Exchange::Close;
    }
    Exchange::KeepAlive
}

/// Renders the per-request response headers: the request's id, plus a
/// `Server-Timing` breakdown of the stages recorded so far (the `write`
/// stage is still in progress when headers go out, so it is absent).
fn trace_headers(trace_id: TraceId) -> String {
    use std::fmt::Write;
    let mut out = String::with_capacity(160);
    let _ = write!(out, "X-Request-Id: {trace_id}\r\n");
    usi_obs::with_stages(|stages| {
        for (i, stage) in stages.iter().enumerate() {
            out.push_str(if i == 0 { "Server-Timing: " } else { ", " });
            let us = stage.duration_us;
            let _ = write!(out, "{};dur={}.{:03}", stage.name, us / 1000, us % 1000);
        }
        if !stages.is_empty() {
            out.push_str("\r\n");
        }
    });
    out
}

/// The reactor's job body: serve the request that epoll reported plus
/// any complete requests the client pipelined behind it, then report
/// whether the connection should be re-armed (`true`) or closed.
/// `queue_wait` is how long this job sat in the pool queue — charged to
/// the first request's trace as its `queue` stage.
pub(crate) fn serve_ready(
    conn: &mut ConnState,
    catalog: &Catalog,
    config: ServerConfig,
    queue_wait: Duration,
) -> bool {
    conn.pending_wait = Some(queue_wait);
    loop {
        match serve_one(conn, catalog, config, false) {
            Exchange::Close => return false,
            // more buffered bytes form a full request: epoll would never
            // fire for them (they already left the socket), serve now
            Exchange::KeepAlive if conn.has_buffered_request() => {}
            Exchange::KeepAlive => return true,
        }
    }
}

/// Final accounting for a connection: the per-connection histogram, the
/// open-connections gauge, and the socket teardown.
pub(crate) fn close_connection(conn: ConnState) {
    let m = metrics::server();
    if conn.served > 0 {
        m.requests_per_connection.observe(conn.served as f64);
    }
    m.connections_open.dec();
    let _ = conn.stream.shutdown(Shutdown::Both);
}

/// Answers an over-capacity connect with the uniform JSON `503` body
/// and closes it — never enters the pool or the reactor set.
pub(crate) fn reject_over_capacity(mut stream: TcpStream) {
    metrics::server().observe_request("other", 503, 0.0);
    let _ = stream.set_write_timeout(Some(SOCKET_TIMEOUT));
    let response = error_response(503, "connection limit reached (max_connections)");
    let _ = write_response(&mut stream, &response, false, "");
    let _ = stream.shutdown(Shutdown::Both);
}

/// One connection's request loop (thread-per-connection path): answer
/// until the client closes, asks to close, idles past the timeout,
/// errors, or exhausts the per-connection request budget. Bytes the
/// client pipelined ahead of the current request stay in the carry-over
/// buffer and feed the next iteration. `queue_wait` is how long the
/// connection's job sat in the pool queue — the first request's `queue`
/// stage.
fn handle_connection(
    stream: TcpStream,
    catalog: &Catalog,
    config: ServerConfig,
    queue_wait: Duration,
) {
    metrics::server().connections_open.inc();
    let _ = stream.set_read_timeout(Some(config.idle_timeout.max(Duration::from_millis(1))));
    let _ = stream.set_write_timeout(Some(SOCKET_TIMEOUT));
    let mut conn = ConnState::new(stream);
    conn.pending_wait = Some(queue_wait);
    while let Exchange::KeepAlive = serve_one(&mut conn, catalog, config, true) {}
    close_connection(conn);
}

/// Post-request accounting: metrics, the span ring, the flight
/// recorder, the slow-request log and the access log. Runs once per
/// request (routed or parse-failed) with the response already written —
/// the cost is a few atomics, one ring lock, and (when enabled) one
/// stderr line.
///
/// `routed` carries the parsed request plus the router-only elapsed
/// time for requests that made it past parsing; parse failures pass
/// `None` and are accounted under the `other` route. The root
/// `http.request` span spans `root_start` (queue entry or first byte)
/// through now — response write included — so its stage children always
/// sum to at most its duration.
fn finish_request(
    trace_id: TraceId,
    routed: Option<(Request, Duration)>,
    response: &Response,
    root_start: Instant,
    config: ServerConfig,
) {
    let m = metrics::server();
    let root_elapsed = root_start.elapsed();
    let (route_label, route_seconds) = match &routed {
        Some((request, elapsed)) => (metrics::route_label(&request.path), elapsed.as_secs_f64()),
        None => ("other", 0.0),
    };
    m.observe_request(route_label, response.status, route_seconds);

    let (method, path): (&str, &str) = match &routed {
        Some((request, _)) => (&request.method, &request.path),
        None => ("-", "-"),
    };
    let mut root = Span::with_duration(
        "http.request",
        root_start,
        root_elapsed,
        vec![
            ("method".into(), method.to_string()),
            ("path".into(), path.to_string()),
            ("status".into(), response.status.to_string()),
        ],
    );
    root.trace_id = Some(trace_id);
    let stages = usi_obs::end_request().map(|(_, stages)| stages).unwrap_or_default();
    // the root's lifetime is the flight-recorder admission test: it is
    // what the client experienced (queue wait and write included)
    let root_millis = root_elapsed.as_secs_f64() * 1e3;
    let flight_slow = config.flight_slow_ms.or(config.slow_query_ms);
    if response.status >= 400 || flight_slow.is_some_and(|t| root_millis >= t as f64) {
        usi_obs::flight().record(FlightRecord {
            trace_id,
            root: root.clone(),
            stages: stages.clone(),
        });
    }
    usi_obs::tracer().record_all(std::iter::once(root).chain(stages));

    let millis = route_seconds * 1e3;
    if let Some(threshold) = config.slow_query_ms {
        if routed.is_some() && millis >= threshold as f64 {
            m.slow_requests_total.inc();
            eprintln!(
                "[slow] {method} {path} status={} duration_ms={millis:.3} \
                 threshold_ms={threshold} request_id={trace_id}",
                response.status
            );
        }
    }
    if routed.is_none() {
        return; // no request line to log
    }
    match config.access_log {
        AccessLog::Off => {}
        AccessLog::Text => eprintln!(
            "{method} {path} status={} bytes={} duration_ms={millis:.3} request_id={trace_id}",
            response.status,
            response.body.len()
        ),
        AccessLog::Json => {
            let line = Json::Obj(vec![
                ("method".into(), Json::str(method)),
                ("path".into(), Json::str(path)),
                ("status".into(), Json::Num(f64::from(response.status))),
                ("bytes".into(), Json::Num(response.body.len() as f64)),
                ("duration_ms".into(), Json::Num(millis)),
                ("request_id".into(), Json::Str(trace_id.to_string())),
            ]);
            eprintln!("{}", line.encode());
        }
    }
}

/// A parsed request: exactly what the router needs.
#[derive(Debug)]
struct Request {
    method: String,
    /// Path component of the request target (query string split off).
    path: String,
    /// Raw query string (bytes after `?`, empty when absent) — the
    /// `/v1/trace` filters parse it.
    query: String,
    body: Vec<u8>,
    /// Whether the client asked this to be the final request on the
    /// connection (`Connection: close`, or HTTP/1.0 without an
    /// explicit `keep-alive`).
    close: bool,
}

#[derive(Debug)]
enum HttpError {
    Bad(&'static str),
    TooLarge,
    /// The payload is only surfaced through `Debug` (tests, future logging).
    Io(#[allow(dead_code)] io::Error),
}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

/// Whether a `Connection` header value contains `token` (the value is
/// a comma-separated token list, compared case-insensitively).
fn connection_has_token(value: Option<&str>, token: &str) -> bool {
    value.is_some_and(|v| v.split(',').any(|t| t.trim().eq_ignore_ascii_case(token)))
}

/// Reads one request (head + `Content-Length` body) from `r`, feeding
/// and consuming the connection's carry-over buffer `buf`: bytes a
/// pipelining client sent ahead of this request are left in `buf` for
/// the next call, so persistent connections parse every request
/// exactly once. The server never reads further ahead than the current
/// head needs (1 KiB granularity), which keeps pipelined buffering
/// bounded by `MAX_HEAD` + one chunk.
fn read_request<R: Read>(r: &mut R, buf: &mut Vec<u8>) -> Result<Request, HttpError> {
    // read until the blank line ending the head
    let head_end = loop {
        // RFC 7230 §3.5: skip CRLFs before the request line — naive
        // clients send a trailing CRLF after a body, which would
        // otherwise poison the next request on a persistent connection
        while buf.starts_with(b"\r\n") {
            buf.drain(..2);
        }
        if let Some(pos) = find_head_end(buf) {
            break pos;
        }
        if buf.len() > MAX_HEAD {
            return Err(HttpError::TooLarge);
        }
        let mut chunk = [0u8; 1024];
        let got = r.read(&mut chunk)?;
        if got == 0 {
            return Err(if buf.is_empty() {
                HttpError::Io(io::ErrorKind::UnexpectedEof.into())
            } else {
                HttpError::Bad("truncated request head")
            });
        }
        buf.extend_from_slice(&chunk[..got]);
    };

    // Everything borrowed from the head is copied out before the body
    // read below mutates `buf`.
    let (method, path, query, content_length, close) = {
        let head = std::str::from_utf8(&buf[..head_end])
            .map_err(|_| HttpError::Bad("request head is not UTF-8"))?;
        let mut lines = head.split("\r\n");
        let request_line = lines.next().unwrap_or("");
        let mut parts = request_line.split(' ');
        let (method, target, version) =
            match (parts.next(), parts.next(), parts.next(), parts.next()) {
                (Some(m), Some(t), Some(v), None) if !m.is_empty() && t.starts_with('/') => {
                    (m, t, v)
                }
                _ => return Err(HttpError::Bad("malformed request line")),
            };
        if version != "HTTP/1.1" && version != "HTTP/1.0" {
            return Err(HttpError::Bad("unsupported HTTP version"));
        }

        let mut content_length = 0usize;
        let mut connection: Option<&str> = None;
        for line in lines {
            let Some((name, value)) = line.split_once(':') else { continue };
            let name = name.trim();
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| HttpError::Bad("unparseable Content-Length"))?;
            } else if name.eq_ignore_ascii_case("connection") {
                connection = Some(value.trim());
            } else if name.eq_ignore_ascii_case("transfer-encoding") {
                // only Content-Length framing is implemented; silently
                // treating a chunked body as length 0 would let its
                // bytes be parsed as the next pipelined request —
                // request smuggling. Refuse loudly (the loop closes
                // the connection after an error response).
                return Err(HttpError::Bad("Transfer-Encoding is not supported"));
            }
        }
        if content_length > MAX_BODY {
            return Err(HttpError::TooLarge);
        }
        // HTTP/1.1 defaults to keep-alive unless told `close`;
        // HTTP/1.0 defaults to close unless told `keep-alive`.
        let close = if version == "HTTP/1.1" {
            connection_has_token(connection, "close")
        } else {
            !connection_has_token(connection, "keep-alive")
        };
        let (path, query) = match target.split_once('?') {
            Some((path, query)) => (path.to_string(), query.to_string()),
            None => (target.to_string(), String::new()),
        };
        (method.to_string(), path, query, content_length, close)
    };

    // body: whatever followed the head in the buffer, then exactly the
    // missing bytes from the stream — never more, so pipelined bytes
    // beyond this request stay buffered for the next call.
    let body_start = head_end + 4;
    let body_end = body_start + content_length;
    if buf.len() < body_end {
        let already = buf.len();
        buf.resize(body_end, 0);
        if let Err(e) = r.read_exact(&mut buf[already..]) {
            buf.truncate(already);
            return Err(HttpError::Io(e));
        }
    }
    let body = buf[body_start..body_end].to_vec();
    buf.drain(..body_end);
    // a large body grows the carry-over buffer up to MAX_BODY; don't
    // pin that per connection for the rest of its lifetime
    if buf.capacity() > MAX_HEAD {
        buf.shrink_to(MAX_HEAD);
    }

    Ok(Request { method, path, query, body, close })
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Whether `buf` already holds one complete request — the reactor's
/// "serve now vs re-arm" test, mirroring [`read_request`]'s framing
/// (leading-CRLF skip, head, `Content-Length` body) without consuming
/// anything. Unparseable heads count as complete: serving them now
/// yields the error response and a close without waiting for bytes
/// that may never come.
fn has_complete_request(buf: &[u8]) -> bool {
    let mut b = buf;
    while b.starts_with(b"\r\n") {
        b = &b[2..];
    }
    let Some(head_end) = find_head_end(b) else {
        // an over-long head is "complete": it parses to 413 right away
        return b.len() > MAX_HEAD;
    };
    let mut content_length = 0usize;
    for line in b[..head_end].split(|&byte| byte == b'\n') {
        let Some(colon) = line.iter().position(|&byte| byte == b':') else { continue };
        if line[..colon].trim_ascii().eq_ignore_ascii_case(b"content-length") {
            match std::str::from_utf8(&line[colon + 1..]).map(|v| v.trim().parse::<usize>()) {
                Ok(Ok(length)) if length <= MAX_BODY => content_length = length,
                // bad or oversized length: parses straight to an error
                _ => return true,
            }
        }
    }
    b.len() >= head_end + 4 + content_length
}

/// A response about to be written: status, content type and body.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value. Everything the API serves is JSON
    /// except `GET /metrics`, which is Prometheus text.
    pub content_type: &'static str,
    /// Response body.
    pub body: String,
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

/// Writes `response` with the connection disposition decided by the
/// request loop. Connection lifetime is transport state, not part of
/// [`Response`]: `respond()` consumers and tests deal in status + body
/// only.
///
/// Head and body go out in **one** write: split across two segments,
/// Nagle on the server side would hold the body until the client ACKs
/// the head — a ~40 ms delayed-ACK stall per keep-alive exchange (the
/// `metrics_overhead` bench caught exactly this).
///
/// `extra_headers` is a pre-rendered block of `Name: value\r\n` lines
/// (the per-request `X-Request-Id` / `Server-Timing` pair), or `""`.
fn write_response<W: Write>(
    w: &mut W,
    response: &Response,
    keep_alive: bool,
    extra_headers: &str,
) -> io::Result<()> {
    let mut out = Vec::with_capacity(192 + response.body.len());
    write!(
        out,
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n{extra_headers}\r\n",
        response.status,
        reason(response.status),
        response.content_type,
        response.body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    )?;
    out.extend_from_slice(response.body.as_bytes());
    w.write_all(&out)?;
    w.flush()
}

/// The content type of every JSON response.
const APPLICATION_JSON: &str = "application/json";
/// The Prometheus text exposition content type served by `/metrics`.
const PROMETHEUS_TEXT: &str = "text/plain; version=0.0.4";

fn ok(body: Json) -> Response {
    Response { status: 200, content_type: APPLICATION_JSON, body: body.encode() }
}

/// Every error the API produces goes through here, so all error bodies
/// share one JSON shape: `{"error":"…","status":N}` — plus a
/// `"request_id"` member when the error happens inside a traced request
/// (so a client can quote the id straight from the body).
fn error_response(status: u16, message: &str) -> Response {
    let mut members =
        vec![("error".into(), Json::str(message)), ("status".into(), Json::Num(f64::from(status)))];
    if let Some(id) = usi_obs::current_trace_id() {
        members.push(("request_id".into(), Json::Str(id.to_string())));
    }
    Response { status, content_type: APPLICATION_JSON, body: Json::Obj(members).encode() }
}

/// Routes one parsed request against the catalog. Public so tests (and
/// alternative transports) can exercise the API without sockets. A
/// query string in `path` is split off and fed to the handlers that
/// read one (`/v1/trace?name=…`).
pub fn respond(catalog: &Catalog, method: &str, path: &str, body: &[u8]) -> Response {
    let (path, query) = match path.split_once('?') {
        Some((path, query)) => (path, query),
        None => (path, ""),
    };
    let request = Request {
        method: method.into(),
        path: path.into(),
        query: query.into(),
        body: body.to_vec(),
        close: true,
    };
    route(catalog, &request, 1)
}

fn route(catalog: &Catalog, request: &Request, batch_threads: usize) -> Response {
    let path = request.path.as_str();
    match (request.method.as_str(), path) {
        ("GET", "/healthz") => healthz(catalog),
        ("GET", "/metrics") => Response {
            status: 200,
            content_type: PROMETHEUS_TEXT,
            body: usi_obs::global().encode(),
        },
        ("GET", "/v1/trace") => trace_snapshot(&request.query),
        ("GET", "/debug/requests") => debug_requests(),
        ("GET", _) if trace_sub_id(path).is_some() => {
            trace_tree(trace_sub_id(path).expect("checked by guard"))
        }
        ("GET", "/v1/docs") => list_docs(catalog),
        ("POST", "/v1/query") => query(catalog, &request.body, batch_threads),
        ("GET", _) if doc_sub_id(path, "stats").is_some() => {
            doc_stats(catalog, doc_sub_id(path, "stats").expect("checked by guard"))
        }
        ("POST", _) if doc_sub_id(path, "append").is_some() => doc_append(
            catalog,
            doc_sub_id(path, "append").expect("checked by guard"),
            &request.body,
        ),
        ("POST", _) if doc_sub_id(path, "reload").is_some() => {
            doc_reload(catalog, doc_sub_id(path, "reload").expect("checked by guard"))
        }
        (
            _,
            "/healthz" | "/v1/docs" | "/v1/query" | "/metrics" | "/v1/trace" | "/debug/requests",
        ) => error_response(405, "method not allowed"),
        (_, _)
            if trace_sub_id(path).is_some()
                || doc_sub_id(path, "stats").is_some()
                || doc_sub_id(path, "append").is_some()
                || doc_sub_id(path, "reload").is_some() =>
        {
            error_response(405, "method not allowed")
        }
        _ => error_response(404, "no such route"),
    }
}

/// Liveness plus cheap readiness facts. `status` and `docs` stay the
/// leading members: old probes matching on `"status":"ok"` (and the CI
/// greps on `"docs":N`) keep working unchanged.
fn healthz(catalog: &Catalog) -> Response {
    let mut members = vec![
        ("status".into(), Json::str("ok")),
        ("docs".into(), Json::Num(catalog.len() as f64)),
        ("version".into(), Json::str(env!("CARGO_PKG_VERSION"))),
        ("uptime_seconds".into(), Json::Num(usi_obs::uptime_seconds() as f64)),
        ("role".into(), Json::str(catalog.role().name())),
    ];
    if let Some(replication) = catalog.replication() {
        members.push((
            "replication".into(),
            Json::Obj(vec![
                ("connected".into(), Json::Bool(replication.connected())),
                ("lag_records".into(), Json::Num(replication.lag_records() as f64)),
            ]),
        ));
    }
    ok(Json::Obj(members))
}

/// One span as JSON, shared by `/v1/trace`, `/v1/trace/{id}` and
/// `/debug/requests`.
fn span_json(span: Span) -> Json {
    let fields =
        span.fields.into_iter().map(|(k, v)| (k.into_owned(), Json::Str(v))).collect::<Vec<_>>();
    let mut members = vec![("name".into(), Json::Str(span.name.into_owned()))];
    if let Some(id) = span.trace_id {
        members.push(("trace_id".into(), Json::Str(id.to_string())));
    }
    if let Some(parent) = span.parent {
        members.push(("parent".into(), Json::Str(parent.into_owned())));
    }
    members.push(("start_ms".into(), Json::Num(span.start_ms as f64)));
    members.push(("start_us".into(), Json::Num(span.start_us as f64)));
    members.push(("duration_us".into(), Json::Num(span.duration_us as f64)));
    members.push(("fields".into(), Json::Obj(fields)));
    Json::Obj(members)
}

/// One flight record (root + stages) as JSON.
fn flight_record_json(record: FlightRecord) -> Json {
    Json::Obj(vec![
        ("trace_id".into(), Json::Str(record.trace_id.to_string())),
        ("root".into(), span_json(record.root)),
        ("stages".into(), Json::Arr(record.stages.into_iter().map(span_json).collect())),
    ])
}

/// Reads one `name=value` pair out of a raw query string (no
/// percent-decoding: every value the trace endpoints accept — span
/// names, integers — is URL-safe as-is).
fn query_param<'q>(query: &'q str, name: &str) -> Option<&'q str> {
    query.split('&').find_map(|pair| {
        let (key, value) = pair.split_once('=')?;
        (key == name).then_some(value)
    })
}

/// The span ring as JSON, oldest first (non-destructive snapshot),
/// with server-side filters: `?name=` (exact span name), `?min_us=`
/// (minimum duration), `?limit=` (most recent N, default 256 — the cap
/// that keeps a large `--trace-capacity` from producing multi-MB
/// scrapes).
fn trace_snapshot(query: &str) -> Response {
    /// Default and implicit cap on spans per response.
    const DEFAULT_LIMIT: usize = 256;
    let name = query_param(query, "name");
    let min_us: u64 = match query_param(query, "min_us").map(str::parse) {
        Some(Ok(v)) => v,
        Some(Err(_)) => return error_response(400, "\"min_us\" must be an integer"),
        None => 0,
    };
    let limit: usize = match query_param(query, "limit").map(str::parse) {
        Some(Ok(v)) => v,
        Some(Err(_)) => return error_response(400, "\"limit\" must be an integer"),
        None => DEFAULT_LIMIT,
    };
    let tracer = usi_obs::tracer();
    let mut spans = tracer.snapshot();
    spans.retain(|span| span.duration_us >= min_us && name.is_none_or(|n| span.name == n));
    // keep the most recent `limit`, preserving oldest-first order
    let skip = spans.len().saturating_sub(limit);
    let matched = spans.len();
    let spans = spans.into_iter().skip(skip).map(span_json).collect();
    ok(Json::Obj(vec![
        ("spans".into(), Json::Arr(spans)),
        ("matched".into(), Json::Num(matched as f64)),
        ("dropped".into(), Json::Num(tracer.dropped() as f64)),
    ]))
}

/// One request's full stage tree by trace id: served from the flight
/// recorder when the request was slow/errored, else reassembled from
/// whatever of it is still in the span ring.
fn trace_tree(id: &str) -> Response {
    let Some(trace_id) = TraceId::parse(id) else {
        return error_response(400, "trace id must be up to 16 hex digits");
    };
    if let Some(record) = usi_obs::flight().find(trace_id) {
        return ok(flight_record_json(record));
    }
    let mut spans = usi_obs::tracer().find_trace(trace_id);
    if spans.is_empty() {
        return error_response(404, &format!("no such trace {id:?} (evicted or never recorded)"));
    }
    let root_at = spans.iter().position(|s| s.parent.is_none()).unwrap_or(0);
    let root = spans.remove(root_at);
    ok(flight_record_json(FlightRecord { trace_id, root, stages: spans }))
}

/// The flight recorder as JSON, most recent request first.
fn debug_requests() -> Response {
    let flight = usi_obs::flight();
    let requests = flight.snapshot().into_iter().rev().map(flight_record_json).collect();
    ok(Json::Obj(vec![
        ("requests".into(), Json::Arr(requests)),
        ("dropped".into(), Json::Num(flight.dropped() as f64)),
    ]))
}

/// Parses `/v1/trace/{trace_id}` into `{trace_id}` (the raw segment;
/// hex validation happens in the handler so a malformed id gets a 400,
/// not a 404).
pub(crate) fn trace_sub_id(path: &str) -> Option<&str> {
    let id = path.strip_prefix("/v1/trace/")?;
    if id.is_empty() || id.contains('/') {
        None
    } else {
        Some(id)
    }
}

/// Parses `/v1/docs/{id}/{action}` into `{id}`.
fn doc_sub_id<'p>(path: &'p str, action: &str) -> Option<&'p str> {
    let rest = path.strip_prefix("/v1/docs/")?;
    let id = rest.strip_suffix(action)?.strip_suffix('/')?;
    if id.is_empty() || id.contains('/') {
        None
    } else {
        Some(id)
    }
}

/// Whether `path` is a `/v1/docs/{id}/{action}` route (metric labels).
pub(crate) fn doc_sub_route(path: &str, action: &str) -> bool {
    doc_sub_id(path, action).is_some()
}

fn list_docs(catalog: &Catalog) -> Response {
    let docs = catalog
        .docs()
        .iter()
        .map(|doc| {
            Json::Obj(vec![
                ("id".into(), Json::str(doc.id())),
                ("n".into(), Json::Num(doc.n() as f64)),
                ("cached_substrings".into(), Json::Num(doc.cached_substrings() as f64)),
                ("aggregator".into(), Json::str(doc.utility().aggregator.name())),
                ("ingest".into(), Json::Bool(doc.is_ingest())),
            ])
        })
        .collect();
    ok(Json::Obj(vec![("docs".into(), Json::Arr(docs))]))
}

fn doc_stats(catalog: &Catalog, id: &str) -> Response {
    let Some(doc) = catalog.get(id) else {
        return error_response(404, &format!("no such document {id:?}"));
    };
    let size = doc.size_breakdown();
    let (cache_hits, cache_misses) = doc.cache_counters();
    let mut members = vec![
        ("id".into(), Json::str(doc.id())),
        ("n".into(), Json::Num(doc.n() as f64)),
        ("cached_substrings".into(), Json::Num(doc.cached_substrings() as f64)),
        ("tau".into(), doc.tau().map_or(Json::Null, |t| Json::Num(t as f64))),
        ("distinct_lengths".into(), Json::Num(doc.distinct_lengths() as f64)),
        ("aggregator".into(), Json::str(doc.utility().aggregator.name())),
        (
            "bytes".into(),
            Json::Obj(vec![
                ("text".into(), Json::Num(size.text as f64)),
                ("weights".into(), Json::Num(size.weights as f64)),
                ("suffix_array".into(), Json::Num(size.suffix_array as f64)),
                ("psw".into(), Json::Num(size.psw as f64)),
                ("hash_table".into(), Json::Num(size.hash_table as f64)),
                ("total".into(), Json::Num(size.total() as f64)),
            ]),
        ),
        (
            "cache".into(),
            Json::Obj(vec![
                ("hits".into(), Json::Num(cache_hits as f64)),
                ("misses".into(), Json::Num(cache_misses as f64)),
            ]),
        ),
    ];
    if let Some(ingest) = doc.ingest_stats() {
        // bounded-staleness stats: how far the segmented state lags a
        // fully compacted one, and how much WAL a replay would chew
        members.push((
            "ingest".into(),
            Json::Obj(vec![
                ("segments".into(), Json::Num(ingest.segments as f64)),
                ("tail".into(), Json::Num(ingest.tail_len as f64)),
                ("wal_bytes".into(), Json::Num(ingest.wal_bytes as f64)),
                ("seals".into(), Json::Num(ingest.seals as f64)),
                ("compactions".into(), Json::Num(ingest.compactions as f64)),
                (
                    "last_compaction_ms".into(),
                    ingest
                        .last_compaction
                        .map_or(Json::Null, |ago| Json::Num(ago.as_millis() as f64)),
                ),
            ]),
        ));
    }
    ok(Json::Obj(members))
}

fn doc_append(catalog: &Catalog, id: &str, body: &[u8]) -> Response {
    let Some(doc) = catalog.get(id) else {
        return error_response(404, &format!("no such document {id:?}"));
    };
    let text = match std::str::from_utf8(body) {
        Ok(text) => text,
        Err(_) => return error_response(400, "body is not UTF-8"),
    };
    let parsed = match Json::parse(text) {
        Ok(parsed) => parsed,
        Err(e) => return error_response(400, &format!("invalid JSON body: {e}")),
    };
    let Some(letters) = parsed.get("text").and_then(Json::as_str) else {
        return error_response(400, "missing string member \"text\"");
    };
    let letters = letters.as_bytes();
    let weights: Vec<f64> = match (parsed.get("weights"), parsed.get("weight")) {
        (Some(list), None) => {
            let Some(items) = list.as_array() else {
                return error_response(400, "\"weights\" must be an array of numbers");
            };
            let mut weights = Vec::with_capacity(items.len());
            for item in items {
                match item.as_f64() {
                    Some(w) => weights.push(w),
                    None => return error_response(400, "\"weights\" must be an array of numbers"),
                }
            }
            weights
        }
        (None, Some(w)) => match w.as_f64() {
            Some(w) => vec![w; letters.len()],
            None => return error_response(400, "\"weight\" must be a number"),
        },
        (None, None) => vec![1.0; letters.len()],
        (Some(_), Some(_)) => {
            return error_response(400, "\"weight\" and \"weights\" are mutually exclusive")
        }
    };
    match doc.append(letters, &weights) {
        Ok(()) => {
            let stats = doc.ingest_stats().expect("append succeeded on an ingest doc");
            ok(Json::Obj(vec![
                ("id".into(), Json::str(doc.id())),
                ("appended".into(), Json::Num(letters.len() as f64)),
                ("n".into(), Json::Num(stats.n as f64)),
                ("segments".into(), Json::Num(stats.segments as f64)),
                ("tail".into(), Json::Num(stats.tail_len as f64)),
                ("wal_bytes".into(), Json::Num(stats.wal_bytes as f64)),
            ]))
        }
        Err(AppendError::StaticDoc) => {
            error_response(409, &format!("document {id:?} is not ingest-enabled"))
        }
        Err(AppendError::Ingest(IngestError::Input(what))) => {
            error_response(400, &format!("invalid append: {what}"))
        }
        Err(e) => error_response(500, &format!("append failed: {e}")),
    }
}

fn doc_reload(catalog: &Catalog, id: &str) -> Response {
    match catalog.reload(id) {
        Ok(doc) => ok(Json::Obj(vec![
            ("id".into(), Json::str(doc.id())),
            ("reloaded".into(), Json::Bool(true)),
            ("n".into(), Json::Num(doc.n() as f64)),
        ])),
        Err(ReloadError::NoSuchDoc) => error_response(404, &format!("no such document {id:?}")),
        Err(ReloadError::NotReloadable) => error_response(
            409,
            &format!("document {id:?} was not loaded from a .usix file and cannot be reloaded"),
        ),
        Err(ReloadError::Load(e)) => {
            error_response(500, &format!("reload failed (old view keeps serving): {e}"))
        }
    }
}

fn query(catalog: &Catalog, body: &[u8], batch_threads: usize) -> Response {
    let text = match std::str::from_utf8(body) {
        Ok(text) => text,
        Err(_) => return error_response(400, "body is not UTF-8"),
    };
    let parsed = match Json::parse(text) {
        Ok(parsed) => parsed,
        Err(e) => return error_response(400, &format!("invalid JSON body: {e}")),
    };
    let Some(doc) = parsed.get("doc").and_then(Json::as_str) else {
        return error_response(400, "missing string member \"doc\" (a doc id, or \"*\")");
    };
    let Some(items) = parsed.get("patterns").and_then(Json::as_array) else {
        return error_response(400, "missing array member \"patterns\"");
    };
    if items.len() > MAX_PATTERNS {
        return error_response(413, "too many patterns");
    }
    let mut patterns: Vec<&[u8]> = Vec::with_capacity(items.len());
    for item in items {
        match item.as_str() {
            Some(s) => patterns.push(s.as_bytes()),
            None => return error_response(400, "patterns must be strings"),
        }
    }

    // "acc": true asks for raw accumulators (plus the utility function)
    // with each answer, so a remote merger can combine shards exactly
    // like local documents; absent or false keeps the classic shape
    let want_acc = match parsed.get("acc") {
        None => false,
        Some(v) => match v.as_bool() {
            Some(b) => b,
            None => return error_response(400, "\"acc\" must be a boolean"),
        },
    };

    if doc == "*" {
        let fans = catalog.query_all_batch(&patterns, batch_threads);
        return serialized(|| {
            ok(if want_acc {
                fan_out_acc_response_json(&patterns, &fans)
            } else {
                fan_out_response_json(&patterns, &fans)
            })
        });
    }
    if want_acc {
        let Some(handle) = catalog.get(doc) else {
            return error_response(404, &format!("no such document {doc:?}"));
        };
        let answers = handle.query_accumulator_batch(&patterns);
        return serialized(|| {
            ok(query_acc_response_json(doc, &patterns, &answers, handle.utility()))
        });
    }
    match catalog.query_batch(doc, &patterns, batch_threads) {
        Some(answers) => serialized(|| ok(query_response_json(doc, &patterns, &answers))),
        None => error_response(404, &format!("no such document {doc:?}")),
    }
}

/// Builds a response under a `serialize` stage span — how much of a
/// query's latency is JSON rendering rather than engine time.
fn serialized(build: impl FnOnce() -> Response) -> Response {
    let started = Instant::now();
    let response = build();
    if usi_obs::enabled() {
        usi_obs::record_stage(
            SpanGuard::since("serialize", started)
                .parent("http.request")
                .finish_with(started.elapsed()),
        );
    }
    response
}

#[cfg(test)]
mod tests {
    use super::*;
    use usi_core::UsiBuilder;
    use usi_strings::WeightedString;

    fn catalog() -> Catalog {
        let catalog = Catalog::new(2);
        let ws = WeightedString::new(b"abracadabra_abracadabra".to_vec(), vec![1.0; 23]).unwrap();
        let index = UsiBuilder::new().with_k(12).deterministic(42).build(ws);
        catalog.insert("abra", index);
        catalog
    }

    fn parse_bytes(bytes: &[u8]) -> Result<Request, HttpError> {
        read_request(&mut &bytes[..], &mut Vec::new())
    }

    #[test]
    fn parses_get_and_post() {
        let req = parse_bytes(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert!(req.body.is_empty());

        let req =
            parse_bytes(b"POST /v1/query HTTP/1.1\r\nContent-Length: 4\r\nHost: x\r\n\r\nbody")
                .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.body, b"body");

        // query strings are stripped from the path
        let req = parse_bytes(b"GET /v1/docs?page=2 HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.path, "/v1/docs");
    }

    #[test]
    fn connection_semantics_follow_the_http_version() {
        // HTTP/1.1 defaults to keep-alive…
        assert!(!parse_bytes(b"GET / HTTP/1.1\r\n\r\n").unwrap().close);
        // …unless the client says close (token list, any case)
        assert!(parse_bytes(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap().close);
        assert!(parse_bytes(b"GET / HTTP/1.1\r\nConnection: Close\r\n\r\n").unwrap().close);
        assert!(!parse_bytes(b"GET / HTTP/1.1\r\nConnection: keep-alive\r\n\r\n").unwrap().close);
        // HTTP/1.0 defaults to close unless it opts in
        assert!(parse_bytes(b"GET / HTTP/1.0\r\n\r\n").unwrap().close);
        assert!(!parse_bytes(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n").unwrap().close);
        assert!(
            !parse_bytes(b"GET / HTTP/1.0\r\nConnection: Keep-Alive, x\r\n\r\n").unwrap().close
        );
    }

    #[test]
    fn pipelined_requests_parse_in_order_from_one_buffer() {
        // an HTTP/1.1 client may legally pipeline; each call consumes
        // exactly one request and leaves the rest buffered
        let two = b"GET /healthz HTTP/1.1\r\n\r\nGET /v1/docs HTTP/1.1\r\n\r\n";
        let mut reader = &two[..];
        let mut buf = Vec::new();
        let req = read_request(&mut reader, &mut buf).unwrap();
        assert_eq!(req.path, "/healthz");
        assert!(req.body.is_empty());
        let req = read_request(&mut reader, &mut buf).unwrap();
        assert_eq!(req.path, "/v1/docs");
        assert!(buf.is_empty());
        assert!(matches!(read_request(&mut reader, &mut buf), Err(HttpError::Io(_))));

        let body_and_more =
            b"POST /v1/query HTTP/1.1\r\nContent-Length: 2\r\n\r\n{}GET /x HTTP/1.1\r\n\r\n";
        let mut reader = &body_and_more[..];
        let mut buf = Vec::new();
        let req = read_request(&mut reader, &mut buf).unwrap();
        assert_eq!(req.body, b"{}");
        let req = read_request(&mut reader, &mut buf).unwrap();
        assert_eq!(req.path, "/x");
    }

    #[test]
    fn leading_crlfs_are_skipped_and_chunked_framing_is_refused() {
        // RFC 7230 §3.5: CRLFs before the request line are skipped — a
        // naive client's trailing CRLF after a body must not poison
        // the next request on a persistent connection
        let req = parse_bytes(b"\r\n\r\nGET /healthz HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.path, "/healthz");
        let pipelined =
            b"POST /a HTTP/1.1\r\nContent-Length: 2\r\n\r\n{}\r\nGET /b HTTP/1.1\r\n\r\n";
        let mut reader = &pipelined[..];
        let mut buf = Vec::new();
        assert_eq!(read_request(&mut reader, &mut buf).unwrap().path, "/a");
        assert_eq!(read_request(&mut reader, &mut buf).unwrap().path, "/b");

        // chunked bodies are not implemented; treating one as length 0
        // would hand its bytes to the next request parse (smuggling)
        assert!(matches!(
            parse_bytes(b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n5\r\nhello\r\n"),
            Err(HttpError::Bad("Transfer-Encoding is not supported"))
        ));
    }

    #[test]
    fn rejects_malformed_requests() {
        // bare CRLFs then EOF: the leading-CRLF skip empties the buffer,
        // so this reads as a clean client departure, not a bad request
        assert!(matches!(parse_bytes(b"\r\n\r\n"), Err(HttpError::Io(_))));
        assert!(matches!(parse_bytes(b"GET\r\n\r\n"), Err(HttpError::Bad(_))));
        assert!(matches!(parse_bytes(b"GET /x SPDY/9\r\n\r\n"), Err(HttpError::Bad(_))));
        assert!(matches!(
            parse_bytes(b"POST /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n"),
            Err(HttpError::Bad(_))
        ));
        assert!(matches!(parse_bytes(b"GET /x HTTP/1.1\r\nno end"), Err(HttpError::Bad(_))));
        assert!(matches!(parse_bytes(b""), Err(HttpError::Io(_))));
        let huge = format!("POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n", MAX_BODY + 1);
        assert!(matches!(parse_bytes(huge.as_bytes()), Err(HttpError::TooLarge)));
    }

    #[test]
    fn healthz_and_docs() {
        let catalog = catalog();
        let r = respond(&catalog, "GET", "/healthz", b"");
        assert_eq!(r.status, 200);
        assert_eq!(r.content_type, APPLICATION_JSON);
        let parsed = Json::parse(&r.body).unwrap();
        assert_eq!(parsed.get("status").and_then(Json::as_str), Some("ok"));
        assert_eq!(parsed.get("docs").and_then(Json::as_f64), Some(1.0));
        assert_eq!(parsed.get("version").and_then(Json::as_str), Some(env!("CARGO_PKG_VERSION")));
        assert!(parsed.get("uptime_seconds").and_then(Json::as_f64).is_some());
        // the legacy probe contract: status and docs lead the body
        assert!(r.body.starts_with(r#"{"status":"ok","docs":1"#), "{}", r.body);

        let r = respond(&catalog, "GET", "/v1/docs", b"");
        assert_eq!(r.status, 200);
        let parsed = Json::parse(&r.body).unwrap();
        let docs = parsed.get("docs").and_then(Json::as_array).unwrap();
        assert_eq!(docs.len(), 1);
        assert_eq!(docs[0].get("id").and_then(Json::as_str), Some("abra"));
        assert_eq!(docs[0].get("n").and_then(Json::as_f64), Some(23.0));
    }

    #[test]
    fn doc_stats_route() {
        let catalog = catalog();
        let r = respond(&catalog, "GET", "/v1/docs/abra/stats", b"");
        assert_eq!(r.status, 200);
        let parsed = Json::parse(&r.body).unwrap();
        assert_eq!(parsed.get("n").and_then(Json::as_f64), Some(23.0));
        assert!(parsed.get("bytes").and_then(|b| b.get("total")).is_some());

        assert_eq!(respond(&catalog, "GET", "/v1/docs/none/stats", b"").status, 404);
        assert_eq!(respond(&catalog, "GET", "/v1/docs//stats", b"").status, 404);
        assert_eq!(respond(&catalog, "DELETE", "/v1/docs/abra/stats", b"").status, 405);
    }

    fn ingest_catalog(name: &str) -> Catalog {
        use usi_ingest::{IngestConfig, IngestPipeline};
        let catalog = Catalog::new(2);
        let ws = WeightedString::new(b"abcabcabc".to_vec(), vec![1.0; 9]).unwrap();
        let index = UsiBuilder::new().with_k(6).deterministic(7).build(ws);
        let dir = std::env::temp_dir().join("usi-http-ingest-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let wal = dir.join(format!("{name}.usil"));
        let _ = std::fs::remove_file(&wal);
        let (pipeline, _) = IngestPipeline::open(
            index,
            &wal,
            IngestConfig {
                seal_threshold: 4,
                compact_fanout: 2,
                sync_wal: false,
                ..IngestConfig::default()
            },
        )
        .unwrap();
        catalog.insert_ingest("live", pipeline);
        catalog
    }

    #[test]
    fn append_route_grows_an_ingest_doc() {
        let catalog = ingest_catalog("append-route");
        // before: "abc" occurs 3 times
        let r = respond(&catalog, "POST", "/v1/query", br#"{"doc":"live","patterns":["abc"]}"#);
        assert!(r.body.contains(r#""occurrences":3"#), "{}", r.body);

        let r = respond(&catalog, "POST", "/v1/docs/live/append", br#"{"text":"abcabc"}"#);
        assert_eq!(r.status, 200, "{}", r.body);
        let parsed = Json::parse(&r.body).unwrap();
        assert_eq!(parsed.get("appended").and_then(Json::as_f64), Some(6.0));
        assert_eq!(parsed.get("n").and_then(Json::as_f64), Some(15.0));

        // after: "abc" occurs 5 times, boundary occurrence included
        let r = respond(&catalog, "POST", "/v1/query", br#"{"doc":"live","patterns":["abc"]}"#);
        assert!(r.body.contains(r#""occurrences":5"#), "{}", r.body);

        // explicit weights must match the text length
        let r = respond(
            &catalog,
            "POST",
            "/v1/docs/live/append",
            br#"{"text":"ab","weights":[0.5,0.25]}"#,
        );
        assert_eq!(r.status, 200, "{}", r.body);
        let r =
            respond(&catalog, "POST", "/v1/docs/live/append", br#"{"text":"ab","weights":[1]}"#);
        assert_eq!(r.status, 400);

        // stats expose the bounded-staleness and cache counters
        let r = respond(&catalog, "GET", "/v1/docs/live/stats", b"");
        assert_eq!(r.status, 200);
        let parsed = Json::parse(&r.body).unwrap();
        let ingest = parsed.get("ingest").expect("ingest section for a live doc");
        assert!(ingest.get("segments").and_then(Json::as_f64).is_some());
        assert!(ingest.get("wal_bytes").and_then(Json::as_f64).unwrap() > 8.0);
        assert!(parsed.get("cache").and_then(|c| c.get("misses")).is_some());
    }

    #[test]
    fn append_route_errors() {
        let catalog = catalog(); // static-only
        let r = respond(&catalog, "POST", "/v1/docs/abra/append", br#"{"text":"x"}"#);
        assert_eq!(r.status, 409, "static docs must refuse appends: {}", r.body);
        let r = respond(&catalog, "POST", "/v1/docs/gone/append", br#"{"text":"x"}"#);
        assert_eq!(r.status, 404);
        let r = respond(&catalog, "POST", "/v1/docs/abra/append", b"not json");
        assert_eq!(r.status, 400);
        let r = respond(&catalog, "POST", "/v1/docs/abra/append", br#"{"weight":1}"#);
        assert_eq!(r.status, 400);
        let r = respond(&catalog, "GET", "/v1/docs/abra/append", b"");
        assert_eq!(r.status, 405);
    }

    #[test]
    fn query_route_single_and_fan_out() {
        let catalog = catalog();
        let body = br#"{"doc":"abra","patterns":["abra","zzz"]}"#;
        let r = respond(&catalog, "POST", "/v1/query", body);
        assert_eq!(r.status, 200);
        // "abra" occurs 4 times with unit weights: U = 4·4 = 16
        let parsed = Json::parse(&r.body).unwrap();
        let results = parsed.get("results").and_then(Json::as_array).unwrap();
        assert_eq!(results[0].get("occurrences").and_then(Json::as_f64), Some(4.0));
        assert_eq!(results[0].get("value").and_then(Json::as_f64), Some(16.0));
        assert_eq!(results[1].get("occurrences").and_then(Json::as_f64), Some(0.0));

        let r = respond(&catalog, "POST", "/v1/query", br#"{"doc":"*","patterns":["abra"]}"#);
        assert_eq!(r.status, 200);
        let parsed = Json::parse(&r.body).unwrap();
        let results = parsed.get("results").and_then(Json::as_array).unwrap();
        assert_eq!(results[0].get("occurrences").and_then(Json::as_f64), Some(4.0));
        assert_eq!(results[0].get("per_doc").and_then(Json::as_array).map(<[Json]>::len), Some(1));
    }

    #[test]
    fn query_route_errors() {
        let catalog = catalog();
        let bad = [
            &b"not json"[..],
            br#"{"patterns":["a"]}"#,
            br#"{"doc":"abra"}"#,
            br#"{"doc":"abra","patterns":[1]}"#,
            b"\xff\xfe",
        ];
        for body in bad {
            assert_eq!(respond(&catalog, "POST", "/v1/query", body).status, 400, "{body:?}");
        }
        let r = respond(&catalog, "POST", "/v1/query", br#"{"doc":"gone","patterns":["a"]}"#);
        assert_eq!(r.status, 404);
        assert_eq!(respond(&catalog, "GET", "/v1/query", b"").status, 405);
        assert_eq!(respond(&catalog, "GET", "/nope", b"").status, 404);
    }

    #[test]
    fn metrics_and_trace_endpoints() {
        let catalog = catalog();
        // drive a query so the catalog-level series exist
        let r = respond(&catalog, "POST", "/v1/query", br#"{"doc":"abra","patterns":["abra"]}"#);
        assert_eq!(r.status, 200);

        let r = respond(&catalog, "GET", "/metrics", b"");
        assert_eq!(r.status, 200);
        assert_eq!(r.content_type, PROMETHEUS_TEXT);
        assert!(r.body.contains("# TYPE usi_doc_queries_total counter"), "{}", r.body);
        assert!(r.body.contains(r#"usi_doc_queries_total{doc="abra"}"#), "{}", r.body);
        assert!(r.body.contains("# TYPE usi_query_batch_size histogram"), "{}", r.body);
        assert!(r.body.contains("usi_cache_misses_total"), "{}", r.body);

        let r = respond(&catalog, "GET", "/v1/trace", b"");
        assert_eq!(r.status, 200);
        let parsed = Json::parse(&r.body).unwrap();
        assert!(parsed.get("spans").and_then(Json::as_array).is_some());
        assert!(parsed.get("dropped").and_then(Json::as_f64).is_some());

        assert_eq!(respond(&catalog, "POST", "/metrics", b"").status, 405);
        assert_eq!(respond(&catalog, "DELETE", "/v1/trace", b"").status, 405);
    }

    #[test]
    fn error_bodies_share_one_json_shape() {
        let catalog = catalog();
        let errors = [
            respond(&catalog, "GET", "/nope", b""),
            respond(&catalog, "PUT", "/healthz", b""),
            respond(&catalog, "POST", "/v1/query", b"not json"),
            respond(&catalog, "POST", "/v1/docs/abra/append", br#"{"text":"x"}"#),
            respond(&catalog, "POST", "/v1/query", br#"{"doc":"gone","patterns":["a"]}"#),
        ];
        for r in errors {
            assert!(r.status >= 400, "{r:?}");
            assert_eq!(r.content_type, APPLICATION_JSON, "{r:?}");
            let parsed = Json::parse(&r.body).unwrap_or_else(|e| panic!("{e}: {}", r.body));
            assert!(parsed.get("error").and_then(Json::as_str).is_some(), "{}", r.body);
            assert_eq!(
                parsed.get("status").and_then(Json::as_f64),
                Some(f64::from(r.status)),
                "{}",
                r.body
            );
        }
    }

    #[test]
    fn responses_are_well_formed_http() {
        // the connection header is transport state the request loop
        // decides per response — not part of Response formatting
        let mut out = Vec::new();
        let response = Response { status: 200, content_type: APPLICATION_JSON, body: "{}".into() };
        write_response(&mut out, &response, false, "").unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Type: application/json\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));

        let mut out = Vec::new();
        write_response(&mut out, &response, true, "X-Request-Id: 00ff00ff00ff00ff\r\n").unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("Connection: keep-alive\r\n"));
        // extra headers land inside the head, before the blank line
        assert!(text.contains("X-Request-Id: 00ff00ff00ff00ff\r\n"), "{text}");
        let head_end = text.find("\r\n\r\n").unwrap();
        assert!(text.find("X-Request-Id").unwrap() < head_end, "{text}");
    }

    #[test]
    fn trace_filters_and_tree_endpoints() {
        let catalog = catalog();
        usi_obs::tracer().clear();
        usi_obs::set_enabled(true);
        // seed the ring with a traced request tree plus an untagged span
        let id = TraceId::generate();
        usi_obs::begin_request(id);
        usi_obs::record_stage(
            SpanGuard::start("engine")
                .parent("http.request")
                .finish_with(Duration::from_micros(800)),
        );
        let (_, stages) = usi_obs::end_request().unwrap();
        let mut root =
            SpanGuard::start("http.request").trace(id).finish_with(Duration::from_micros(1500));
        let root_span = {
            root.fields.push(("path".into(), "/seed".into()));
            root
        };
        usi_obs::tracer().record_all(std::iter::once(root_span).chain(stages));
        usi_obs::tracer()
            .record(SpanGuard::start("ingest.seal").finish_with(Duration::from_micros(50)));

        // name filter: every returned span is an engine stage, ours
        // among them (other tests share the global ring — filter, don't
        // count)
        let r = respond(&catalog, "GET", "/v1/trace?name=engine", b"");
        assert_eq!(r.status, 200);
        let parsed = Json::parse(&r.body).unwrap();
        let spans = parsed.get("spans").and_then(Json::as_array).unwrap();
        assert!(spans.iter().all(|s| s.get("name").and_then(Json::as_str) == Some("engine")));
        let mine = spans
            .iter()
            .find(|s| s.get("trace_id").and_then(Json::as_str) == Some(&*id.to_string()))
            .unwrap_or_else(|| panic!("our engine span in {}", r.body));
        assert_eq!(mine.get("parent").and_then(Json::as_str), Some("http.request"));

        // min_us filter: nothing in a unit-test run takes ≥ 10 s
        let r = respond(&catalog, "GET", "/v1/trace?min_us=10000000", b"");
        let parsed = Json::parse(&r.body).unwrap();
        assert_eq!(parsed.get("spans").and_then(Json::as_array).map(<[Json]>::len), Some(0));

        // limit caps the response server-side and reports the full
        // match count
        let r = respond(&catalog, "GET", "/v1/trace?limit=1", b"");
        let parsed = Json::parse(&r.body).unwrap();
        assert_eq!(parsed.get("spans").and_then(Json::as_array).map(<[Json]>::len), Some(1));
        assert!(parsed.get("matched").and_then(Json::as_f64).unwrap() >= 3.0, "{}", r.body);

        // bad filter values are refused, not ignored
        assert_eq!(respond(&catalog, "GET", "/v1/trace?min_us=abc", b"").status, 400);
        assert_eq!(respond(&catalog, "GET", "/v1/trace?limit=-1", b"").status, 400);

        // the tree endpoint reassembles root + stages from the ring
        let r = respond(&catalog, "GET", &format!("/v1/trace/{id}"), b"");
        assert_eq!(r.status, 200, "{}", r.body);
        let parsed = Json::parse(&r.body).unwrap();
        assert_eq!(parsed.get("trace_id").and_then(Json::as_str), Some(&*id.to_string()));
        assert_eq!(
            parsed.get("root").and_then(|r| r.get("name")).and_then(Json::as_str),
            Some("http.request")
        );
        let stages = parsed.get("stages").and_then(Json::as_array).unwrap();
        assert_eq!(stages.len(), 1);
        assert_eq!(stages[0].get("name").and_then(Json::as_str), Some("engine"));

        // unknown id: 404; malformed id: 400; wrong methods: 405
        assert_eq!(respond(&catalog, "GET", "/v1/trace/0000000000000000", b"").status, 404);
        assert_eq!(respond(&catalog, "GET", "/v1/trace/not-hex", b"").status, 400);
        assert_eq!(respond(&catalog, "POST", &format!("/v1/trace/{id}"), b"").status, 405);
        assert_eq!(respond(&catalog, "DELETE", "/debug/requests", b"").status, 405);
    }

    #[test]
    fn flight_recorder_serves_debug_requests() {
        let catalog = catalog();
        usi_obs::set_enabled(true);
        let id = TraceId::generate();
        usi_obs::flight().record(usi_obs::FlightRecord {
            trace_id: id,
            root: SpanGuard::start("http.request")
                .trace(id)
                .field("path", "/slow")
                .field("status", "200")
                .finish_with(Duration::from_millis(80)),
            stages: vec![SpanGuard::start("engine")
                .trace(id)
                .parent("http.request")
                .finish_with(Duration::from_millis(75))],
        });

        let r = respond(&catalog, "GET", "/debug/requests", b"");
        assert_eq!(r.status, 200);
        let parsed = Json::parse(&r.body).unwrap();
        let requests = parsed.get("requests").and_then(Json::as_array).unwrap();
        // most recent first: our record leads
        let first = &requests[0];
        assert_eq!(first.get("trace_id").and_then(Json::as_str), Some(&*id.to_string()));
        let stages = first.get("stages").and_then(Json::as_array).unwrap();
        assert_eq!(stages[0].get("name").and_then(Json::as_str), Some("engine"));
        assert!(parsed.get("dropped").and_then(Json::as_f64).is_some());

        // the tree endpoint prefers the flight recorder (full tree even
        // if the span ring has churned past this request)
        let r = respond(&catalog, "GET", &format!("/v1/trace/{id}"), b"");
        assert_eq!(r.status, 200);
        assert!(r.body.contains("\"engine\""), "{}", r.body);
    }

    #[test]
    fn end_to_end_over_a_socket() {
        let catalog = Arc::new(catalog());
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let handle = serve(Arc::clone(&catalog), listener, ServerConfig::with_workers(2)).unwrap();
        let addr = handle.addr();

        let fetch = |request: String| -> String {
            let mut stream = TcpStream::connect(addr).unwrap();
            stream.write_all(request.as_bytes()).unwrap();
            let mut response = String::new();
            stream.read_to_string(&mut response).unwrap();
            response
        };

        let response =
            fetch(format!("GET /healthz HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"));
        assert!(response.starts_with("HTTP/1.1 200"));
        assert!(response.contains(r#"{"status":"ok","docs":1"#), "{response}");

        let body = r#"{"doc":"abra","patterns":["abra"]}"#;
        let response = fetch(format!(
            "POST /v1/query HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        ));
        assert!(response.starts_with("HTTP/1.1 200"), "{response}");
        assert!(response.contains(r#""occurrences":4"#), "{response}");

        handle.shutdown();
        // the port is released: a fresh bind to the same address works
        assert!(TcpListener::bind(addr).is_ok());
    }

    /// Reads exactly one `Content-Length`-framed response off `stream`,
    /// returning `(head, body)` — the keep-alive framing a persistent
    /// client must use instead of read-to-EOF.
    fn read_one_response(stream: &mut TcpStream) -> (String, String) {
        let mut bytes = Vec::new();
        let head_end = loop {
            if let Some(pos) = bytes.windows(4).position(|w| w == b"\r\n\r\n") {
                break pos;
            }
            let mut chunk = [0u8; 512];
            let got = stream.read(&mut chunk).expect("response head");
            assert!(got > 0, "server closed mid-head: {:?}", String::from_utf8_lossy(&bytes));
            bytes.extend_from_slice(&chunk[..got]);
        };
        let head = String::from_utf8(bytes[..head_end].to_vec()).unwrap();
        let content_length: usize = head
            .lines()
            .find_map(|l| l.strip_prefix("Content-Length: "))
            .expect("Content-Length header")
            .trim()
            .parse()
            .unwrap();
        let mut body = bytes[head_end + 4..].to_vec();
        let already = body.len();
        body.resize(content_length, 0);
        stream.read_exact(&mut body[already..]).expect("response body");
        (head, String::from_utf8(body).unwrap())
    }

    #[test]
    fn keep_alive_serves_many_requests_on_one_connection() {
        let catalog = Arc::new(catalog());
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let handle = serve(Arc::clone(&catalog), listener, ServerConfig::with_workers(1)).unwrap();
        let addr = handle.addr();

        let mut stream = TcpStream::connect(addr).unwrap();
        for round in 0..3 {
            stream
                .write_all(format!("GET /healthz HTTP/1.1\r\nHost: {addr}\r\n\r\n").as_bytes())
                .unwrap();
            let (head, body) = read_one_response(&mut stream);
            assert!(head.starts_with("HTTP/1.1 200"), "round {round}: {head}");
            assert!(head.contains("Connection: keep-alive"), "round {round}: {head}");
            assert!(body.starts_with(r#"{"status":"ok","docs":1"#), "round {round}: {body}");
        }
        // asking to close gets a close header and a closed socket
        stream
            .write_all(
                format!("GET /healthz HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n")
                    .as_bytes(),
            )
            .unwrap();
        let (head, _) = read_one_response(&mut stream);
        assert!(head.contains("Connection: close"), "{head}");
        let mut rest = Vec::new();
        stream.read_to_end(&mut rest).unwrap();
        assert!(rest.is_empty(), "bytes after the final response");
        handle.shutdown();
    }

    #[test]
    fn request_budget_closes_the_connection() {
        let catalog = Arc::new(catalog());
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let config = ServerConfig { max_requests_per_connection: 2, ..ServerConfig::default() };
        let handle = serve(Arc::clone(&catalog), listener, config).unwrap();
        let addr = handle.addr();

        let mut stream = TcpStream::connect(addr).unwrap();
        let request = format!("GET /healthz HTTP/1.1\r\nHost: {addr}\r\n\r\n");
        stream.write_all(request.as_bytes()).unwrap();
        let (head, _) = read_one_response(&mut stream);
        assert!(head.contains("Connection: keep-alive"), "{head}");
        stream.write_all(request.as_bytes()).unwrap();
        let (head, _) = read_one_response(&mut stream);
        assert!(head.contains("Connection: close"), "budget exhausted: {head}");
        let mut rest = Vec::new();
        stream.read_to_end(&mut rest).unwrap();
        assert!(rest.is_empty());
        handle.shutdown();
    }

    #[test]
    fn keep_alive_disabled_closes_after_one_exchange() {
        let catalog = Arc::new(catalog());
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let config = ServerConfig { keep_alive: false, ..ServerConfig::default() };
        let handle = serve(Arc::clone(&catalog), listener, config).unwrap();
        let addr = handle.addr();

        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(format!("GET /healthz HTTP/1.1\r\nHost: {addr}\r\n\r\n").as_bytes())
            .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap(); // EOF: server closed
        assert!(response.contains("Connection: close"), "{response}");
        handle.shutdown();
    }
}
