//! A fixed-size worker pool over `std::sync::mpsc` (no external
//! dependencies): the accept loop hands each connection to the pool,
//! workers pull jobs off a shared channel.
//!
//! Shutdown is cooperative: dropping the pool drops the sender, each
//! worker drains the jobs already queued and exits when the channel
//! disconnects, and `Drop` joins them — so no in-flight request is cut
//! off mid-response.
//!
//! The pool is the serving path's saturation point, so it exports the
//! gauges capacity planning needs: `usi_pool_queue_depth` (submitted,
//! not yet picked up), `usi_pool_jobs_in_flight`, and
//! `usi_pool_saturation_total` (jobs submitted while every worker was
//! busy — each one waited). Each job is stamped at enqueue and its
//! wait measured when a worker picks it up
//! (`usi_pool_queue_wait_seconds`); the wait is passed into the job so
//! the request path can surface it as the `queue` stage of the
//! request's trace.

use crate::metrics;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// What a connection job decided about its socket. The job has already
/// **enacted** the decision by the time it returns — sent the connection
/// back to the reactor for re-arming, or closed it — so the return value
/// does not trigger any action in the pool. It exists to force every job
/// to state its outcome explicitly: a connection can never fall off the
/// end of a closure half-open.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnVerdict {
    /// The connection stays open; it was handed back to the reactor to
    /// wait for its next request.
    Rearm,
    /// The connection was closed (client asked, budget exhausted, error,
    /// or the transport has no reactor to re-arm with).
    Close,
}

/// A queued connection job. The [`Duration`] argument is how long the
/// job sat in the pool queue before a worker picked it up — the
/// request path records it as the `queue` stage of its trace.
type Job = Box<dyn FnOnce(Duration) -> ConnVerdict + Send + 'static>;

/// A fixed-size pool of named worker threads.
pub struct WorkerPool {
    sender: Option<Sender<(Instant, Job)>>,
    workers: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `size` workers (clamped to ≥ 1).
    pub fn new(size: usize) -> Self {
        let (sender, receiver) = channel::<(Instant, Job)>();
        let receiver = Arc::new(Mutex::new(receiver));
        let workers = (0..size.max(1))
            .map(|i| {
                let receiver = Arc::clone(&receiver);
                std::thread::Builder::new()
                    .name(format!("usi-worker-{i}"))
                    .spawn(move || worker_loop(&receiver))
                    .expect("spawning worker thread")
            })
            .collect();
        Self { sender: Some(sender), workers }
    }

    /// Number of worker threads.
    pub fn size(&self) -> usize {
        self.workers.len()
    }

    /// Queues one job; some idle worker will run it, passing the time
    /// the job waited in the queue. Jobs submitted after shutdown began
    /// are silently dropped.
    pub fn execute(&self, job: impl FnOnce(Duration) -> ConnVerdict + Send + 'static) {
        if let Some(sender) = &self.sender {
            let m = metrics::server();
            m.pool_jobs_total.inc();
            if m.pool_in_flight.get() >= self.workers.len() as i64 {
                m.pool_saturation_total.inc();
            }
            m.pool_queue_depth.inc();
            // send only fails when every worker is gone (shutdown race)
            if sender.send((Instant::now(), Box::new(job))).is_err() {
                m.pool_queue_depth.dec();
            }
        }
    }
}

fn worker_loop(receiver: &Mutex<Receiver<(Instant, Job)>>) {
    let m = metrics::server();
    loop {
        // hold the lock only to pull the next job, not to run it
        let job = match receiver.lock() {
            Ok(rx) => rx.recv(),
            Err(_) => return,
        };
        match job {
            Ok((enqueued, job)) => {
                let queue_wait = enqueued.elapsed();
                m.pool_queue_wait.observe(queue_wait.as_secs_f64());
                m.pool_queue_depth.dec();
                m.pool_in_flight.inc();
                // the verdict was enacted inside the job (see ConnVerdict)
                let _verdict = job(queue_wait);
                m.pool_in_flight.dec();
            }
            Err(_) => return, // channel disconnected: shutdown
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.sender = None; // disconnect the channel
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn runs_every_job_before_drop_returns() {
        let pool = WorkerPool::new(4);
        assert_eq!(pool.size(), 4);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..100 {
            let counter = Arc::clone(&counter);
            pool.execute(move |queue_wait| {
                assert!(queue_wait < Duration::from_secs(60), "wait is sane");
                counter.fetch_add(1, Ordering::SeqCst);
                ConnVerdict::Close
            });
        }
        drop(pool);
        assert_eq!(counter.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn zero_size_is_clamped() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.size(), 1);
        let ran = Arc::new(AtomicUsize::new(0));
        let flag = Arc::clone(&ran);
        pool.execute(move |_| {
            flag.store(7, Ordering::SeqCst);
            ConnVerdict::Close
        });
        drop(pool);
        assert_eq!(ran.load(Ordering::SeqCst), 7);
    }
}
