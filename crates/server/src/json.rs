//! A minimal JSON value, parser and encoder — just enough for the HTTP
//! API and the CLI's `--json` output, so the workspace stays free of
//! registry dependencies.
//!
//! Design points:
//!
//! * objects preserve insertion order (`Vec<(String, Json)>`), so every
//!   [`Json`] value has exactly one encoding and responses can be
//!   compared byte-for-byte in tests;
//! * numbers are `f64`; integral values in the exactly-representable
//!   range encode without a fractional part (`24`, not `24.0`), and
//!   non-finite values encode as `null`;
//! * the parser is a recursive-descent reader over UTF-8 with a depth
//!   limit, full string-escape handling (including `\uXXXX` surrogate
//!   pairs) and precise error offsets.

use crate::catalog::FanOut;
use std::fmt;
use usi_core::{QuerySource, UsiQuery};
use usi_strings::{GlobalAggregator, GlobalUtility, LocalWindow, UtilityAccumulator};

/// Maximum nesting depth the parser accepts (stack-overflow guard).
const MAX_DEPTH: usize = 64;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (integers included).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved and duplicate keys are
    /// kept as-is (lookups return the first).
    Obj(Vec<(String, Json)>),
}

/// A parse failure, with the byte offset where it occurred.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: &'static str,
    /// Byte offset into the input.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Convenience constructor: a string value.
    pub fn str(s: impl Into<String>) -> Self {
        Json::Str(s.into())
    }

    /// Convenience constructor: a number from any integer that fits in
    /// f64's exact range (callers in this crate stay far below 2^53).
    pub fn num(n: impl Into<f64>) -> Self {
        Json::Num(n.into())
    }

    /// Member lookup on objects; `None` for absent keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Parses one JSON document (trailing whitespace allowed, trailing
    /// garbage rejected).
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(value)
    }

    /// Encodes the value; the encoding is canonical per value (member
    /// order is the insertion order).
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_number(*n, out),
            Json::Str(s) => write_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(key, out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_number(n: f64, out: &mut String) {
    use fmt::Write;
    if !n.is_finite() {
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 9_007_199_254_740_992.0 {
        let _ = write!(out, "{}", n as i64);
    } else {
        // Rust's shortest-roundtrip Display is valid JSON for finite f64
        let _ = write!(out, "{n}");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                use fmt::Write;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// API encodings shared by the HTTP server, the CLI's `--json` mode and
// the end-to-end tests (one encoder → responses compare byte-for-byte).
// ---------------------------------------------------------------------

/// The wire name of a query source; matches the CLI's human output.
pub fn source_name(source: QuerySource) -> &'static str {
    match source {
        QuerySource::HashTable => "cached",
        QuerySource::TextIndex => "computed",
    }
}

/// Patterns travel as JSON strings; non-UTF-8 query bytes are replaced
/// lossily on the way out (they can still be queried byte-exactly).
pub fn pattern_string(pattern: &[u8]) -> String {
    String::from_utf8_lossy(pattern).into_owned()
}

/// One pattern's answer: `{"pattern","occurrences","value","source"}`.
pub fn query_result_json(pattern: &[u8], q: &UsiQuery) -> Json {
    Json::Obj(vec![
        ("pattern".into(), Json::Str(pattern_string(pattern))),
        ("occurrences".into(), Json::Num(q.occurrences as f64)),
        ("value".into(), q.value.map_or(Json::Null, Json::Num)),
        ("source".into(), Json::str(source_name(q.source))),
    ])
}

/// One pattern's fan-out answer: corpus-wide totals plus a `per_doc`
/// array of per-document answers.
pub fn fan_out_json(pattern: &[u8], fan: &FanOut) -> Json {
    let per_doc = fan
        .per_doc
        .iter()
        .map(|(doc, q)| {
            Json::Obj(vec![
                ("doc".into(), Json::str(doc.clone())),
                ("occurrences".into(), Json::Num(q.occurrences as f64)),
                ("value".into(), q.value.map_or(Json::Null, Json::Num)),
                ("source".into(), Json::str(source_name(q.source))),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("pattern".into(), Json::Str(pattern_string(pattern))),
        ("occurrences".into(), Json::Num(fan.total_occurrences as f64)),
        ("value".into(), fan.total_value.map_or(Json::Null, Json::Num)),
        ("per_doc".into(), Json::Arr(per_doc)),
    ])
}

/// The `POST /v1/query` response body for a single-document query.
pub fn query_response_json(doc: &str, patterns: &[&[u8]], answers: &[UsiQuery]) -> Json {
    let results =
        patterns.iter().zip(answers).map(|(p, q)| query_result_json(p, q)).collect::<Vec<_>>();
    Json::Obj(vec![("doc".into(), Json::str(doc)), ("results".into(), Json::Arr(results))])
}

/// The `POST /v1/query` response body for a `"doc": "*"` fan-out query.
pub fn fan_out_response_json(patterns: &[&[u8]], fans: &[FanOut]) -> Json {
    let results =
        patterns.iter().zip(fans).map(|(p, fan)| fan_out_json(p, fan)).collect::<Vec<_>>();
    Json::Obj(vec![("doc".into(), Json::str("*")), ("results".into(), Json::Arr(results))])
}

// ---------------------------------------------------------------------
// Accumulator-carrying variants (`"acc": true` requests): the raw
// `[sum, min, max, count]` components plus the utility function travel
// with each answer, so a fan-out front end can merge remote shards
// through `usi_core::merge` exactly as it merges local documents.
// ---------------------------------------------------------------------

/// A raw accumulator as `[sum, min, max, count]`. An *empty*
/// accumulator carries `min = +∞` / `max = −∞` (the fold identities),
/// which JSON cannot represent — it travels as `[0, null, null, 0]`.
pub fn acc_json(acc: &UtilityAccumulator) -> Json {
    let (sum, min, max, count) = acc.to_raw();
    if count == 0 {
        return Json::Arr(vec![Json::Num(0.0), Json::Null, Json::Null, Json::Num(0.0)]);
    }
    Json::Arr(vec![Json::Num(sum), Json::Num(min), Json::Num(max), Json::Num(count as f64)])
}

/// Parses [`acc_json`]'s encoding back into an accumulator.
pub fn acc_from_json(v: &Json) -> Option<UtilityAccumulator> {
    let items = v.as_array()?;
    let [sum, min, max, count] = items else { return None };
    let count = count.as_f64()?;
    if count < 0.0 || count.fract() != 0.0 {
        return None;
    }
    if count == 0.0 {
        return Some(UtilityAccumulator::new());
    }
    Some(UtilityAccumulator::from_raw(sum.as_f64()?, min.as_f64()?, max.as_f64()?, count as u64))
}

/// The wire name of a local window function.
pub fn local_window_name(local: LocalWindow) -> &'static str {
    match local {
        LocalWindow::Sum => "sum",
        LocalWindow::Product => "product",
    }
}

/// A utility function as `{"aggregator","local"}` wire names.
pub fn utility_json(utility: GlobalUtility) -> Json {
    Json::Obj(vec![
        ("aggregator".into(), Json::str(utility.aggregator.name())),
        ("local".into(), Json::str(local_window_name(utility.local))),
    ])
}

/// Parses [`utility_json`]'s encoding back into a utility function.
pub fn utility_from_json(v: &Json) -> Option<GlobalUtility> {
    let aggregator = match v.get("aggregator")?.as_str()? {
        "sum" => GlobalAggregator::Sum,
        "min" => GlobalAggregator::Min,
        "max" => GlobalAggregator::Max,
        "avg" => GlobalAggregator::Avg,
        "count" => GlobalAggregator::Count,
        _ => return None,
    };
    let local = match v.get("local")?.as_str()? {
        "sum" => LocalWindow::Sum,
        "product" => LocalWindow::Product,
        _ => return None,
    };
    Some(GlobalUtility::with_parts(aggregator, local))
}

/// The `POST /v1/query` response body for a single-document query with
/// `"acc": true`: each result carries its raw accumulator, and the
/// document's utility function rides along so the caller can finish or
/// merge the accumulators itself.
pub fn query_acc_response_json(
    doc: &str,
    patterns: &[&[u8]],
    answers: &[(UtilityAccumulator, QuerySource)],
    utility: GlobalUtility,
) -> Json {
    let results = patterns
        .iter()
        .zip(answers)
        .map(|(p, (acc, source))| {
            Json::Obj(vec![
                ("pattern".into(), Json::Str(pattern_string(p))),
                ("occurrences".into(), Json::Num(acc.count() as f64)),
                ("value".into(), acc.finish(utility.aggregator).map_or(Json::Null, Json::Num)),
                ("source".into(), Json::str(source_name(*source))),
                ("acc".into(), acc_json(acc)),
            ])
        })
        .collect::<Vec<_>>();
    Json::Obj(vec![
        ("doc".into(), Json::str(doc)),
        ("results".into(), Json::Arr(results)),
        ("utility".into(), utility_json(utility)),
    ])
}

/// The `"doc": "*"` fan-out response with `"acc": true`: each result
/// gains the catalog-wide merged accumulator, and the shared utility
/// function (or `null` when documents disagree) rides along.
pub fn fan_out_acc_response_json(patterns: &[&[u8]], fans: &[FanOut]) -> Json {
    let results = patterns
        .iter()
        .zip(fans)
        .map(|(p, fan)| {
            let Json::Obj(mut members) = fan_out_json(p, fan) else { unreachable!() };
            members.push(("acc".into(), acc_json(&fan.total_acc)));
            Json::Obj(members)
        })
        .collect::<Vec<_>>();
    let utility = fans.first().and_then(|f| f.utility).map_or(Json::Null, utility_json);
    Json::Obj(vec![
        ("doc".into(), Json::str("*")),
        ("results".into(), Json::Arr(results)),
        ("utility".into(), utility),
    ])
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &'static str) -> JsonError {
        JsonError { message, offset: self.pos }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8, message: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(message))
        }
    }

    fn literal(&mut self, word: &'static str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.pos += 1; // '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.pos += 1; // '{'
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.err("expected object key"));
            }
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected ':'")?;
            self.skip_ws();
            members.push((key, self.value(depth + 1)?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u16, JsonError> {
        let mut v: u16 = 0;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(b @ b'0'..=b'9') => b - b'0',
                Some(b @ b'a'..=b'f') => b - b'a' + 10,
                Some(b @ b'A'..=b'F') => b - b'A' + 10,
                _ => return Err(self.err("invalid \\u escape")),
            };
            v = v << 4 | d as u16;
            self.pos += 1;
        }
        Ok(v)
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.pos += 1; // opening quote
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{08}'),
                        Some(b'f') => s.push('\u{0c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // high surrogate: must be followed by \uDC00..DFFF
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 1;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                let cp =
                                    0x10000 + ((hi as u32 - 0xD800) << 10) + (lo as u32 - 0xDC00);
                                char::from_u32(cp).ok_or_else(|| self.err("invalid code point"))?
                            } else {
                                char::from_u32(hi as u32)
                                    .ok_or_else(|| self.err("unpaired surrogate"))?
                            };
                            s.push(c);
                            continue; // hex4 already advanced past the digits
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // copy one UTF-8 scalar (input is a &str: boundaries are valid)
                    let start = self.pos;
                    let mut end = start + 1;
                    while end < self.bytes.len() && self.bytes[end] & 0b1100_0000 == 0b1000_0000 {
                        end += 1;
                    }
                    s.push_str(std::str::from_utf8(&self.bytes[start..end]).unwrap());
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        match text.parse::<f64>() {
            Ok(n) if n.is_finite() => Ok(Json::Num(n)),
            _ => {
                self.pos = start;
                Err(self.err("invalid number"))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(src: &str) -> String {
        Json::parse(src).unwrap().encode()
    }

    #[test]
    fn scalars() {
        assert_eq!(roundtrip("null"), "null");
        assert_eq!(roundtrip("true"), "true");
        assert_eq!(roundtrip("false"), "false");
        assert_eq!(roundtrip("42"), "42");
        assert_eq!(roundtrip("-3.25"), "-3.25");
        assert_eq!(roundtrip("1e3"), "1000");
        assert_eq!(roundtrip("\"hi\""), "\"hi\"");
    }

    #[test]
    fn containers_preserve_order() {
        assert_eq!(roundtrip(r#"{"b":1,"a":[2,{"z":null}]}"#), r#"{"b":1,"a":[2,{"z":null}]}"#);
        assert_eq!(roundtrip("[]"), "[]");
        assert_eq!(roundtrip("{}"), "{}");
        assert_eq!(roundtrip(" [ 1 , 2 ] "), "[1,2]");
    }

    #[test]
    fn string_escapes() {
        assert_eq!(Json::parse(r#""a\nb\t\"\\A""#).unwrap(), Json::str("a\nb\t\"\\A"));
        assert_eq!(Json::str("a\nb").encode(), r#""a\nb""#);
        assert_eq!(Json::str("\u{1}").encode(), "\"\\u0001\"");
        // surrogate pair: 𝄞 (U+1D11E)
        assert_eq!(Json::parse(r#""𝄞""#).unwrap(), Json::str("\u{1D11E}"));
        assert!(Json::parse(r#""\uD834""#).is_err());
        // non-ASCII passes through unescaped
        assert_eq!(roundtrip("\"héllo\""), "\"héllo\"");
    }

    #[test]
    fn numbers_encode_integrally_when_integral() {
        assert_eq!(Json::Num(24.0).encode(), "24");
        assert_eq!(Json::Num(14.6).encode(), "14.6");
        assert_eq!(Json::Num(-0.5).encode(), "-0.5");
        assert_eq!(Json::Num(f64::NAN).encode(), "null");
        // huge magnitudes stay parseable and round-trip exactly
        assert_eq!(Json::parse(&Json::Num(1e300).encode()).unwrap(), Json::Num(1e300));
    }

    #[test]
    fn errors_carry_offsets() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{\"a\" 1}").is_err());
        assert!(Json::parse("tru").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("01a").is_err());
        let err = Json::parse("[nope]").unwrap_err();
        assert_eq!(err.offset, 1);
        // depth guard
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(Json::parse(&deep).is_err());
    }

    #[test]
    fn accessors() {
        let v = Json::parse(r#"{"doc":"*","patterns":["a","b"],"n":3}"#).unwrap();
        assert_eq!(v.get("doc").and_then(Json::as_str), Some("*"));
        assert_eq!(v.get("n").and_then(Json::as_f64), Some(3.0));
        assert_eq!(v.get("patterns").and_then(Json::as_array).map(<[Json]>::len), Some(2));
        assert_eq!(v.get("missing"), None);
        assert_eq!(Json::Null.get("doc"), None);
    }
}
