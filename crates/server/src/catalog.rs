//! A sharded multi-index registry: many documents — frozen
//! [`UsiIndex`]es or live [`IngestPipeline`]s — served from one
//! process.
//!
//! Documents are partitioned over a fixed number of shards by a hash of
//! their id. Each shard is an `RwLock<map>` whose values are
//! `Arc<Doc>`: a query takes the shard read-lock only long enough to
//! clone the `Arc`, then runs against the document with no shard lock
//! held — so long queries never block loads and loads never block
//! queries on other shards.
//!
//! Every document carries a small pattern → answer LRU cache
//! ([`usi_strings::LruCache`], the same implementation BSL2 uses) on
//! the single-document hot path, invalidated whenever an append makes
//! it stale; hit/miss counters surface in `/v1/docs/{id}/stats`.
//!
//! Query surface:
//!
//! * [`Catalog::query`] / [`Catalog::query_batch`] — one document,
//!   routed by id; batches are spread over `std::thread::scope` workers
//!   in contiguous chunks (answers stay in pattern order).
//! * [`Catalog::query_all`] / [`Catalog::query_all_batch`] — fan-out: a
//!   pattern's utility on every loaded document, plus the merged
//!   accumulator across documents (the whole-corpus answer), combined
//!   through the shared [`usi_core::merge`] helper — the same
//!   implementation the ingestion layer uses to merge per-segment
//!   answers.

use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;
use usi_core::index::IndexSize;
use usi_core::{
    merge_accumulators, merged_total, PersistError, QueryEngine, QuerySource, UsiIndex, UsiQuery,
};
use usi_ingest::{IngestError, IngestPipeline, IngestStats};
use usi_strings::{GlobalUtility, LruCache, UtilityAccumulator};

/// How a catalog materialises `.usix` files.
#[derive(Debug, Clone, Copy, Default)]
pub struct LoadOptions {
    /// Open files as zero-copy storage views
    /// ([`usi_core::persist::open_mmap`]) instead of copying every
    /// section onto the heap: cold-start and resident memory then
    /// scale with the number of documents, not their total bytes.
    pub mmap: bool,
    /// Worker threads for directory loads; `0` means
    /// `available_parallelism`.
    pub threads: usize,
}

/// Entries per document in the pattern → answer cache. Patterns are
/// short and answers are `Copy`, so this costs a few tens of KiB per
/// hot document.
const PATTERN_CACHE_CAPACITY: usize = 1024;

/// What answers a document's queries.
enum Backend {
    /// A frozen index loaded from a `.usix` file or built in-process.
    Static(UsiIndex),
    /// A live, append-able ingestion pipeline (WAL + segments + tail).
    Ingest(IngestPipeline),
    /// Any other [`QueryEngine`] — a replication follower's replaying
    /// index, a remote shard proxy, … The `Arc` lets the registrar keep
    /// a handle for feeding the engine (e.g. applying shipped records)
    /// while the catalog serves queries through it.
    Engine(Arc<dyn QueryEngine + Send + Sync>),
}

impl std::fmt::Debug for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Static(index) => f.debug_tuple("Static").field(index).finish(),
            Self::Ingest(pipeline) => f.debug_tuple("Ingest").field(pipeline).finish(),
            Self::Engine(_) => f.write_str("Engine(..)"),
        }
    }
}

/// This process's place in a replication topology, reported by
/// `/healthz` so probes and load balancers can tell writable primaries
/// from read-only followers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Role {
    /// No replication configured (the single-process default).
    #[default]
    Standalone,
    /// Accepts appends and ships its WALs to followers.
    Primary,
    /// Replays a primary's WALs; serves reads, refuses appends.
    Follower,
}

impl Role {
    /// The wire name `/healthz` reports.
    pub fn name(self) -> &'static str {
        match self {
            Self::Standalone => "standalone",
            Self::Primary => "primary",
            Self::Follower => "follower",
        }
    }
}

/// Live replication facts a follower surfaces through `/healthz`.
/// Implemented by `usi_repl`'s follower; the server only reads it.
pub trait ReplicationStatus: Send + Sync {
    /// Whether every replication stream is currently connected (or, for
    /// directory watchers, has a readable source).
    fn connected(&self) -> bool;
    /// Shipped-but-unapplied records summed over all documents.
    fn lag_records(&self) -> u64;
}

/// How to re-open a document for [`Catalog::reload`]: the `.usix` file
/// it was loaded from and the load mode.
#[derive(Debug, Clone)]
struct ReloadSpec {
    path: PathBuf,
    mmap: bool,
}

/// Errors from [`Catalog::reload`].
#[derive(Debug)]
pub enum ReloadError {
    /// The id is not loaded.
    NoSuchDoc,
    /// The document was not loaded from a `.usix` file (built
    /// in-process, ingest-enabled, or an engine backend), so there is
    /// nothing on disk to re-open.
    NotReloadable,
    /// Re-opening the file failed; the old document keeps serving.
    Load(CatalogError),
}

impl std::fmt::Display for ReloadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::NoSuchDoc => write!(f, "no such document"),
            Self::NotReloadable => write!(f, "document was not loaded from a .usix file"),
            Self::Load(e) => write!(f, "reload failed: {e}"),
        }
    }
}

impl std::error::Error for ReloadError {}

/// Errors from appending to a document.
#[derive(Debug)]
pub enum AppendError {
    /// The document is a frozen index, not an ingestion pipeline.
    StaticDoc,
    /// The pipeline rejected or failed the append.
    Ingest(IngestError),
}

impl std::fmt::Display for AppendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::StaticDoc => write!(f, "document is not ingest-enabled"),
            Self::Ingest(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for AppendError {}

/// A named, queryable document held by a [`Catalog`].
#[derive(Debug)]
pub struct Doc {
    id: String,
    backend: Backend,
    /// Where the document came from, when it can be re-opened for a
    /// live reload; `None` for in-process and ingest-enabled documents.
    source: Option<ReloadSpec>,
    /// Pattern → answer cache for the single-document hot path.
    cache: Mutex<LruCache<Vec<u8>, UsiQuery>>,
    /// Bumped (under the cache lock) on every append, so an in-flight
    /// query cannot insert a pre-append answer afterwards.
    generation: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    /// `usi_doc_queries_total{doc=<id>}`, resolved once at registration
    /// so the query path never touches the metric family lock.
    queries_total: Arc<usi_obs::Counter>,
}

impl Doc {
    fn new(id: String, backend: Backend, source: Option<ReloadSpec>) -> Self {
        let queries_total = crate::metrics::server().doc_queries.with(&[&id]);
        Self {
            id,
            backend,
            source,
            cache: Mutex::new(LruCache::new(PATTERN_CACHE_CAPACITY)),
            generation: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            queries_total,
        }
    }

    /// The document id (file stem for documents loaded from disk).
    pub fn id(&self) -> &str {
        &self.id
    }

    /// The underlying frozen index; `None` for ingest-enabled
    /// documents (whose state is segmented and changes under appends).
    pub fn index(&self) -> Option<&UsiIndex> {
        match &self.backend {
            Backend::Static(index) => Some(index),
            Backend::Ingest(_) | Backend::Engine(_) => None,
        }
    }

    /// The live ingestion pipeline; `None` for frozen documents.
    pub fn ingest(&self) -> Option<&IngestPipeline> {
        match &self.backend {
            Backend::Static(_) | Backend::Engine(_) => None,
            Backend::Ingest(pipeline) => Some(pipeline),
        }
    }

    /// Whether the document accepts appends.
    pub fn is_ingest(&self) -> bool {
        matches!(self.backend, Backend::Ingest(_))
    }

    /// The query engine behind this document. Every query-path and
    /// stats accessor dispatches through this one seam instead of
    /// matching on the backend — new backends only have to implement
    /// [`QueryEngine`].
    pub fn engine(&self) -> &dyn QueryEngine {
        match &self.backend {
            Backend::Static(index) => index,
            Backend::Ingest(pipeline) => pipeline,
            Backend::Engine(engine) => engine.as_ref(),
        }
    }

    /// Whether answers may be cached in the pattern LRU. Engine-backed
    /// documents (replication followers, remote shards) mutate without
    /// going through [`Doc::append`], so there is no invalidation hook
    /// — caching their answers would serve stale reads forever.
    fn cacheable(&self) -> bool {
        !matches!(self.backend, Backend::Engine(_))
    }

    /// The document's WAL file and its committed clean length, for
    /// replication shippers. `None` unless ingest-enabled.
    pub fn wal_view(&self) -> Option<(PathBuf, u64)> {
        self.ingest().map(IngestPipeline::wal_view)
    }

    /// Total indexed letters (for ingest documents: base + segments +
    /// tail).
    pub fn n(&self) -> usize {
        self.engine().indexed_len()
    }

    /// Cached substrings in the hash table(s) `H` (summed over base and
    /// segments for ingest documents).
    pub fn cached_substrings(&self) -> usize {
        self.engine().cached_substrings()
    }

    /// The utility function shared by every component of the document.
    pub fn utility(&self) -> GlobalUtility {
        self.engine().utility()
    }

    /// `τ_K` of the (base) index, when built exactly.
    pub fn tau(&self) -> Option<u32> {
        match &self.backend {
            Backend::Static(index) => index.stats().tau,
            Backend::Ingest(pipeline) => pipeline.with_state(|s| s.base().stats().tau),
            Backend::Engine(_) => None,
        }
    }

    /// `L_K` of the (base) index.
    pub fn distinct_lengths(&self) -> usize {
        match &self.backend {
            Backend::Static(index) => index.stats().distinct_lengths,
            Backend::Ingest(pipeline) => pipeline.with_state(|s| s.base().stats().distinct_lengths),
            Backend::Engine(_) => 0,
        }
    }

    /// Size breakdown (summed over base, segments and tail for ingest
    /// documents).
    pub fn size_breakdown(&self) -> IndexSize {
        self.engine().size_breakdown()
    }

    /// Bounded-staleness statistics; `None` for frozen documents.
    pub fn ingest_stats(&self) -> Option<IngestStats> {
        self.ingest().map(IngestPipeline::stats)
    }

    /// `(hits, misses)` of the pattern cache since load.
    pub fn cache_counters(&self) -> (u64, u64) {
        (self.cache_hits.load(Ordering::Relaxed), self.cache_misses.load(Ordering::Relaxed))
    }

    /// Appends weighted letters; only ingest-enabled documents accept.
    /// Invalidates the pattern cache before returning, so no later
    /// query can see a pre-append answer.
    pub fn append(&self, text: &[u8], weights: &[f64]) -> Result<(), AppendError> {
        let Backend::Ingest(pipeline) = &self.backend else {
            return Err(AppendError::StaticDoc);
        };
        pipeline.append(text, weights).map_err(AppendError::Ingest)?;
        let mut cache = self.cache.lock().expect("pattern cache lock poisoned");
        self.generation.fetch_add(1, Ordering::SeqCst);
        cache.clear();
        Ok(())
    }

    /// Computes answers for `patterns` straight from the backend,
    /// bypassing the cache. Both backends spread the batch over up to
    /// `threads` scoped workers in contiguous chunks — a pipeline's
    /// state lock is a read-write lock, so concurrent chunk readers
    /// don't exclude each other.
    fn compute_batch(&self, patterns: &[&[u8]], threads: usize) -> Vec<UsiQuery> {
        let run = |part: &[&[u8]]| self.engine().query_batch(part);
        let threads = threads.max(1).min(patterns.len().max(1));
        if threads == 1 {
            return run(patterns);
        }
        let chunk = patterns.len().div_ceil(threads);
        let answers: Vec<Vec<UsiQuery>> = std::thread::scope(|scope| {
            let run = &run;
            let handles: Vec<_> =
                patterns.chunks(chunk).map(|part| scope.spawn(move || run(part))).collect();
            handles.into_iter().map(|h| h.join().expect("query worker panicked")).collect()
        });
        answers.into_iter().flatten().collect()
    }

    /// Answers one pattern through the cache.
    pub fn query(&self, pattern: &[u8]) -> UsiQuery {
        self.query_batch(&[pattern], 1).pop().expect("one pattern in, one answer out")
    }

    /// Answers a pattern batch through the cache: cached patterns are
    /// served from the LRU, the misses go to the backend (threaded),
    /// and fresh answers are inserted unless an append invalidated the
    /// document meanwhile. Answers are in pattern order and identical
    /// to computing each pattern directly.
    pub fn query_batch(&self, patterns: &[&[u8]], threads: usize) -> Vec<UsiQuery> {
        let engine_start = Instant::now();
        let answers = if self.cacheable() {
            self.query_batch_cached(patterns, threads)
        } else {
            self.queries_total.add(patterns.len() as u64);
            crate::metrics::server().query_batch_size.observe(patterns.len() as f64);
            self.compute_batch(patterns, threads)
        };
        // the engine stage of the enclosing request's trace (a no-op
        // outside a request, where it lands in the global span ring)
        if usi_obs::enabled() {
            usi_obs::record_stage(
                usi_obs::SpanGuard::since("engine", engine_start)
                    .parent("http.request")
                    .field("doc", &*self.id)
                    .field("batch", patterns.len().to_string())
                    .finish(),
            );
        }
        answers
    }

    /// The cacheable-backend arm of [`Doc::query_batch`]: cached
    /// patterns are served from the LRU, misses go to the backend, and
    /// fresh answers are inserted unless an append invalidated the
    /// document meanwhile.
    fn query_batch_cached(&self, patterns: &[&[u8]], threads: usize) -> Vec<UsiQuery> {
        let mut answers: Vec<Option<UsiQuery>> = vec![None; patterns.len()];
        let mut miss_at: Vec<usize> = Vec::new();
        let generation = self.generation.load(Ordering::SeqCst);
        {
            let mut cache = self.cache.lock().expect("pattern cache lock poisoned");
            for (i, &pattern) in patterns.iter().enumerate() {
                match cache.get(pattern) {
                    Some(&answer) => answers[i] = Some(answer),
                    None => miss_at.push(i),
                }
            }
        }
        let hits = (patterns.len() - miss_at.len()) as u64;
        self.cache_hits.fetch_add(hits, Ordering::Relaxed);
        self.cache_misses.fetch_add(miss_at.len() as u64, Ordering::Relaxed);
        // global telemetry: pre-resolved handles, a few relaxed atomic
        // adds per *batch* — the per-pattern cost stays amortised
        let m = crate::metrics::server();
        self.queries_total.add(patterns.len() as u64);
        m.cache_hits_total.add(hits);
        m.cache_misses_total.add(miss_at.len() as u64);
        m.query_batch_size.observe(patterns.len() as f64);
        if !miss_at.is_empty() {
            let miss_patterns: Vec<&[u8]> = miss_at.iter().map(|&i| patterns[i]).collect();
            let computed = self.compute_batch(&miss_patterns, threads);
            let mut cache = self.cache.lock().expect("pattern cache lock poisoned");
            // an append bumps the generation under this lock before
            // clearing: equal generations mean these answers are current
            let fresh = self.generation.load(Ordering::SeqCst) == generation;
            for (&i, &answer) in miss_at.iter().zip(&computed) {
                if fresh {
                    cache.insert(patterns[i].to_vec(), answer);
                }
                answers[i] = Some(answer);
            }
        }
        answers.into_iter().map(|a| a.expect("every pattern answered")).collect()
    }

    /// Raw accumulators for a pattern batch, so fan-out callers can
    /// merge per-document occurrences before extracting aggregates.
    /// Bypasses the pattern cache (accumulators, not finished answers).
    pub fn query_accumulator_batch(
        &self,
        patterns: &[&[u8]],
    ) -> Vec<(UtilityAccumulator, QuerySource)> {
        self.engine().query_accumulator_batch(patterns)
    }
}

/// One pattern's fan-out answer: per-document results plus the merged
/// whole-corpus aggregate.
#[derive(Debug, Clone)]
pub struct FanOut {
    /// `(doc id, answer)` for every loaded document, sorted by id.
    pub per_doc: Vec<(String, UsiQuery)>,
    /// Total occurrences across all documents.
    pub total_occurrences: u64,
    /// The pattern's utility over the whole corpus: accumulators merged
    /// across documents, finished with the shared aggregator. `None`
    /// when the documents disagree on the aggregator (the merge would
    /// be meaningless) or the merged aggregate is undefined.
    pub total_value: Option<f64>,
    /// The raw merged accumulator, so remote callers (a fan-out front
    /// end proxying this catalog as one shard) can merge further
    /// without losing the min/max/sum components.
    pub total_acc: UtilityAccumulator,
    /// The utility function shared by every document, when they agree;
    /// `None` on an empty catalog or when aggregators are mixed.
    pub utility: Option<GlobalUtility>,
}

/// Errors raised while loading documents into a [`Catalog`].
#[derive(Debug)]
pub enum CatalogError {
    /// Filesystem-level failure (open, read dir, …), with the path.
    Io(String, io::Error),
    /// The file exists but is not a valid `.usix` index, with the path.
    Load(String, PersistError),
    /// The index loaded but its ingestion pipeline (WAL open/replay)
    /// failed, with the WAL path.
    Ingest(String, IngestError),
}

impl std::fmt::Display for CatalogError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(path, e) => write!(f, "{path}: {e}"),
            Self::Load(path, e) => write!(f, "{path}: {e}"),
            Self::Ingest(path, e) => write!(f, "{path}: {e}"),
        }
    }
}

impl std::error::Error for CatalogError {}

type Shard = RwLock<BTreeMap<String, Arc<Doc>>>;

/// The sharded registry. Cheap to share: wrap it in an `Arc` and hand
/// clones to server workers.
pub struct Catalog {
    shards: Vec<Shard>,
    /// This process's replication role, surfaced by `/healthz`.
    role: RwLock<Role>,
    /// Follower-side replication status, when this process follows a
    /// primary; read by `/healthz`.
    replication: RwLock<Option<Arc<dyn ReplicationStatus>>>,
}

impl std::fmt::Debug for Catalog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Catalog")
            .field("shards", &self.shards)
            .field("role", &self.role())
            .finish_non_exhaustive()
    }
}

/// FNV-1a over the id bytes: stable across processes, so shard
/// placement is deterministic for a given shard count.
fn shard_hash(id: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in id.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl Catalog {
    /// Creates a catalog with `shards` shards (clamped to ≥ 1).
    pub fn new(shards: usize) -> Self {
        Self {
            shards: (0..shards.max(1)).map(|_| RwLock::new(BTreeMap::new())).collect(),
            role: RwLock::new(Role::Standalone),
            replication: RwLock::new(None),
        }
    }

    /// Declares this process's replication role (default
    /// [`Role::Standalone`]).
    pub fn set_role(&self, role: Role) {
        *self.role.write().expect("role lock poisoned") = role;
    }

    /// This process's replication role.
    pub fn role(&self) -> Role {
        *self.role.read().expect("role lock poisoned")
    }

    /// Installs the follower-side replication status source `/healthz`
    /// reports from.
    pub fn set_replication(&self, status: Arc<dyn ReplicationStatus>) {
        *self.replication.write().expect("replication lock poisoned") = Some(status);
    }

    /// The installed replication status source, if any.
    pub fn replication(&self) -> Option<Arc<dyn ReplicationStatus>> {
        self.replication.read().expect("replication lock poisoned").clone()
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard_of(&self, id: &str) -> &Shard {
        &self.shards[(shard_hash(id) % self.shards.len() as u64) as usize]
    }

    fn register(&self, id: String, backend: Backend, source: Option<ReloadSpec>) -> Arc<Doc> {
        let doc = Arc::new(Doc::new(id.clone(), backend, source));
        self.shard_of(&id).write().expect("shard lock poisoned").insert(id, Arc::clone(&doc));
        doc
    }

    /// Inserts (or replaces) a frozen document built in-process from
    /// raw text + weights or loaded elsewhere. Returns the shared
    /// handle.
    pub fn insert(&self, id: impl Into<String>, index: UsiIndex) -> Arc<Doc> {
        self.register(id.into(), Backend::Static(index), None)
    }

    /// Inserts (or replaces) a live ingest-enabled document: queries
    /// see base + segments + tail, and `POST /v1/docs/{id}/append`
    /// (or [`Doc::append`]) grows it durably through the pipeline's
    /// write-ahead log.
    pub fn insert_ingest(&self, id: impl Into<String>, pipeline: IngestPipeline) -> Arc<Doc> {
        self.register(id.into(), Backend::Ingest(pipeline), None)
    }

    /// Inserts (or replaces) a document answered by an arbitrary
    /// [`QueryEngine`] — a replication follower's replaying index, a
    /// remote shard proxy. The caller keeps its own `Arc` to feed the
    /// engine; the catalog serves queries through it (bypassing the
    /// pattern cache, since such engines mutate without append
    /// notifications).
    pub fn insert_engine(
        &self,
        id: impl Into<String>,
        engine: Arc<dyn QueryEngine + Send + Sync>,
    ) -> Arc<Doc> {
        self.register(id.into(), Backend::Engine(engine), None)
    }

    /// Live reload: re-opens the `.usix` file a document was loaded
    /// from and atomically swaps the new view in under the same id.
    /// In-flight queries hold an `Arc` to the old document and complete
    /// against the old (immutable) view; the old mapping is unmapped
    /// when the last such query drops it. On any failure the old
    /// document keeps serving untouched.
    pub fn reload(&self, id: &str) -> Result<Arc<Doc>, ReloadError> {
        let doc = self.get(id).ok_or(ReloadError::NoSuchDoc)?;
        let spec = doc.source.clone().ok_or(ReloadError::NotReloadable)?;
        // parse fully before touching the registry: a corrupt or
        // half-written file must leave the serving doc in place
        let (_, index) = Self::parse_usix(&spec.path, spec.mmap).map_err(ReloadError::Load)?;
        crate::metrics::server().catalog_reloads_total.inc();
        Ok(self.register(id.to_string(), Backend::Static(index), Some(spec)))
    }

    /// Reads and validates one `.usix` file without touching the
    /// catalog; the document id is the file stem. With `mmap` the index
    /// is a zero-copy storage view; otherwise every section is copied
    /// onto the heap.
    fn parse_usix(path: &Path, mmap: bool) -> Result<(String, UsiIndex), CatalogError> {
        let display = path.display().to_string();
        let index = if mmap {
            usi_core::persist::open_mmap(path).map_err(|e| match e {
                PersistError::Io(e) => CatalogError::Io(display.clone(), e),
                e => CatalogError::Load(display.clone(), e),
            })?
        } else {
            let file =
                std::fs::File::open(path).map_err(|e| CatalogError::Io(display.clone(), e))?;
            let mut reader = io::BufReader::new(file);
            UsiIndex::read_from(&mut reader).map_err(|e| CatalogError::Load(display, e))?
        };
        let id = path.file_stem().map_or_else(String::new, |s| s.to_string_lossy().into_owned());
        Ok((id, index))
    }

    /// Loads one `.usix` file; the document id is the file stem.
    pub fn load_usix(&self, path: &Path) -> Result<Arc<Doc>, CatalogError> {
        self.load_usix_with(path, LoadOptions::default())
    }

    /// [`Catalog::load_usix`] with explicit [`LoadOptions`].
    pub fn load_usix_with(&self, path: &Path, opts: LoadOptions) -> Result<Arc<Doc>, CatalogError> {
        let (id, index) = Self::parse_usix(path, opts.mmap)?;
        let spec = ReloadSpec { path: path.to_path_buf(), mmap: opts.mmap };
        Ok(self.register(id, Backend::Static(index), Some(spec)))
    }

    /// Loads one `.usix` file straight into an ingest-enabled document
    /// with its write-ahead log at `wal_path` (created if absent,
    /// replayed — torn tail truncated — if present). The index is
    /// parsed exactly once and moves into the pipeline: no transient
    /// static copy is ever registered, so promoting a large corpus
    /// costs no extra peak memory. Returns the doc and the WAL replay
    /// report.
    pub fn load_usix_ingest(
        &self,
        path: &Path,
        wal_path: &Path,
        config: usi_ingest::IngestConfig,
    ) -> Result<(Arc<Doc>, usi_ingest::Replay), CatalogError> {
        self.load_usix_ingest_with(path, wal_path, config, LoadOptions::default())
    }

    /// [`Catalog::load_usix_ingest`] with explicit [`LoadOptions`]:
    /// with `mmap` the base index is a zero-copy storage view (sealed
    /// segments follow `config.segment_dir`).
    pub fn load_usix_ingest_with(
        &self,
        path: &Path,
        wal_path: &Path,
        config: usi_ingest::IngestConfig,
        opts: LoadOptions,
    ) -> Result<(Arc<Doc>, usi_ingest::Replay), CatalogError> {
        let (id, index) = Self::parse_usix(path, opts.mmap)?;
        let (pipeline, replay) = IngestPipeline::open(index, wal_path, config)
            .map_err(|e| CatalogError::Ingest(wal_path.display().to_string(), e))?;
        Ok((self.insert_ingest(id, pipeline), replay))
    }

    /// Loads a path that is either one `.usix` file or a directory whose
    /// `.usix` entries are all loaded, parsing directory entries on up
    /// to `available_parallelism` workers (each load is independent).
    /// Returns the ids loaded (sorted for directories: deterministic
    /// across filesystems). See [`Catalog::load_path_threads`].
    pub fn load_path(&self, path: &Path) -> Result<Vec<String>, CatalogError> {
        self.load_path_with(path, LoadOptions::default())
    }

    /// [`Catalog::load_path`] with an explicit worker count.
    pub fn load_path_threads(
        &self,
        path: &Path,
        threads: usize,
    ) -> Result<Vec<String>, CatalogError> {
        self.load_path_with(path, LoadOptions { threads, ..LoadOptions::default() })
    }

    /// [`Catalog::load_path`] with explicit [`LoadOptions`]. Files are
    /// read and validated concurrently on scoped threads; documents are
    /// then registered in sorted file order. On failure the error
    /// reported is the **first** failing file in that order (not
    /// whichever worker lost the race), and no document from the batch
    /// is registered — a failed load never leaves a half-loaded
    /// directory behind. Directory entries that are not regular
    /// `.usix` files — stray `.usil` WALs living next to their
    /// indexes, editor droppings, subdirectories — are skipped, not
    /// errors.
    pub fn load_path_with(
        &self,
        path: &Path,
        opts: LoadOptions,
    ) -> Result<Vec<String>, CatalogError> {
        let threads = match opts.threads {
            0 => std::thread::available_parallelism().map_or(1, |p| p.get()),
            t => t,
        };
        let display = path.display().to_string();
        let meta = std::fs::metadata(path).map_err(|e| CatalogError::Io(display.clone(), e))?;
        if !meta.is_dir() {
            return Ok(vec![self.load_usix_with(path, opts)?.id().to_string()]);
        }
        let mut files: Vec<_> = std::fs::read_dir(path)
            .map_err(|e| CatalogError::Io(display.clone(), e))?
            .filter_map(Result::ok)
            .map(|entry| entry.path())
            .filter(|p| p.extension().is_some_and(|ext| ext == "usix") && p.is_file())
            .collect();
        files.sort();
        let threads = threads.max(1).min(files.len().max(1));
        let parsed: Vec<Result<(String, UsiIndex), CatalogError>> = if threads == 1 {
            files.iter().map(|file| Self::parse_usix(file, opts.mmap)).collect()
        } else {
            let chunk = files.len().div_ceil(threads);
            let parts: Vec<Vec<Result<(String, UsiIndex), CatalogError>>> =
                std::thread::scope(|scope| {
                    let handles: Vec<_> = files
                        .chunks(chunk)
                        .map(|part| {
                            scope.spawn(move || {
                                part.iter()
                                    .map(|file| Self::parse_usix(file, opts.mmap))
                                    .collect::<Vec<_>>()
                            })
                        })
                        .collect();
                    handles.into_iter().map(|h| h.join().expect("load worker panicked")).collect()
                });
            parts.into_iter().flatten().collect()
        };
        // first error in file order wins; register nothing on failure
        let mut docs = Vec::with_capacity(parsed.len());
        for result in parsed {
            docs.push(result?);
        }
        let mut ids = Vec::with_capacity(docs.len());
        for ((id, index), file) in docs.into_iter().zip(&files) {
            let spec = ReloadSpec { path: file.clone(), mmap: opts.mmap };
            self.register(id.clone(), Backend::Static(index), Some(spec));
            ids.push(id);
        }
        Ok(ids)
    }

    /// Removes a document; `true` if it was present.
    pub fn remove(&self, id: &str) -> bool {
        self.shard_of(id).write().expect("shard lock poisoned").remove(id).is_some()
    }

    /// Looks up a document by id (clones the `Arc`; no lock is held
    /// afterwards).
    pub fn get(&self, id: &str) -> Option<Arc<Doc>> {
        self.shard_of(id).read().expect("shard lock poisoned").get(id).cloned()
    }

    /// Number of loaded documents.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().expect("shard lock poisoned").len()).sum()
    }

    /// Whether the catalog holds no documents.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A consistent-per-shard snapshot of all documents, sorted by id.
    pub fn docs(&self) -> Vec<Arc<Doc>> {
        let mut docs: Vec<Arc<Doc>> = self
            .shards
            .iter()
            .flat_map(|s| {
                s.read().expect("shard lock poisoned").values().cloned().collect::<Vec<_>>()
            })
            .collect();
        docs.sort_by(|a, b| a.id.cmp(&b.id));
        docs
    }

    /// The loaded document ids, sorted.
    pub fn doc_ids(&self) -> Vec<String> {
        self.docs().iter().map(|d| d.id.clone()).collect()
    }

    /// Queries one document; `None` if the id is not loaded.
    pub fn query(&self, id: &str, pattern: &[u8]) -> Option<UsiQuery> {
        self.get(id).map(|doc| doc.query(pattern))
    }

    /// Batch-queries one document, spreading cache misses over up to
    /// `threads` scoped workers in contiguous chunks. Answers are in
    /// pattern order and identical to the serial loop. `None` if the id
    /// is not loaded.
    pub fn query_batch(
        &self,
        id: &str,
        patterns: &[&[u8]],
        threads: usize,
    ) -> Option<Vec<UsiQuery>> {
        let doc = self.get(id)?;
        Some(doc.query_batch(patterns, threads))
    }

    /// Fan-out: one pattern's utility on every loaded document plus the
    /// merged whole-corpus aggregate.
    pub fn query_all(&self, pattern: &[u8]) -> FanOut {
        self.fan_out_batch(&[pattern], 1).pop().expect("one pattern in, one fan-out")
    }

    /// Batch fan-out: each pattern against every loaded document, the
    /// documents spread over up to `threads` scoped workers. One
    /// [`FanOut`] per pattern, in pattern order.
    pub fn query_all_batch(&self, patterns: &[&[u8]], threads: usize) -> Vec<FanOut> {
        self.fan_out_batch(patterns, threads)
    }

    fn fan_out_batch(&self, patterns: &[&[u8]], threads: usize) -> Vec<FanOut> {
        let engine_start = Instant::now();
        let docs = self.docs();
        crate::metrics::server().fan_out_width.observe(docs.len() as f64);
        let threads = threads.max(1).min(docs.len().max(1));
        // per document: the raw accumulators for every pattern
        let per_doc: Vec<Vec<(UtilityAccumulator, QuerySource)>> = if threads == 1 {
            docs.iter().map(|doc| doc.query_accumulator_batch(patterns)).collect()
        } else {
            let chunk = docs.len().div_ceil(threads);
            let parts: Vec<Vec<Vec<(UtilityAccumulator, QuerySource)>>> =
                std::thread::scope(|scope| {
                    let handles: Vec<_> = docs
                        .chunks(chunk)
                        .map(|part| {
                            scope.spawn(move || {
                                part.iter()
                                    .map(|doc| doc.query_accumulator_batch(patterns))
                                    .collect::<Vec<_>>()
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("fan-out worker panicked"))
                        .collect()
                });
            parts.into_iter().flatten().collect()
        };

        let utilities: Vec<GlobalUtility> = docs.iter().map(|d| d.utility()).collect();
        let shared_utility =
            utilities.first().copied().filter(|u| utilities.iter().all(|v| v == u));
        let fans = (0..patterns.len())
            .map(|pi| {
                let mut results = Vec::with_capacity(docs.len());
                let mut parts: Vec<(GlobalUtility, UtilityAccumulator)> =
                    Vec::with_capacity(docs.len());
                for ((doc, answers), &utility) in docs.iter().zip(&per_doc).zip(&utilities) {
                    let (acc, source) = answers[pi];
                    parts.push((utility, acc));
                    let value = acc.finish(utility.aggregator);
                    results.push((
                        doc.id().to_string(),
                        UsiQuery { value, occurrences: acc.count(), source },
                    ));
                }
                // merged through the shared helper the ingest layer
                // also uses — one implementation of the merge semantics
                let (total_occurrences, total_value) = merged_total(&parts);
                let total_acc = merge_accumulators(parts.iter().map(|(_, acc)| acc));
                FanOut {
                    per_doc: results,
                    total_occurrences,
                    total_value,
                    total_acc,
                    utility: shared_utility,
                }
            })
            .collect();
        // the fan-out engine stage: doc="*" plus how wide it spread (a
        // no-op outside a request, where it lands in the span ring)
        if usi_obs::enabled() {
            usi_obs::record_stage(
                usi_obs::SpanGuard::since("engine", engine_start)
                    .parent("http.request")
                    .field("doc", "*")
                    .field("batch", patterns.len().to_string())
                    .field("fan_out", docs.len().to_string())
                    .finish(),
            );
        }
        fans
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use usi_core::UsiBuilder;
    use usi_ingest::IngestConfig;
    use usi_strings::{GlobalAggregator, WeightedString};

    fn sample_ws(seed: u64, n: usize) -> WeightedString {
        let mut rng = StdRng::seed_from_u64(seed);
        let text: Vec<u8> = (0..n).map(|_| b'a' + rng.gen_range(0..3u8)).collect();
        let weights: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..2.0)).collect();
        WeightedString::new(text, weights).unwrap()
    }

    fn filled_catalog() -> (Catalog, Vec<String>) {
        let catalog = Catalog::new(4);
        let mut ids = Vec::new();
        for (i, seed) in [11u64, 22, 33].iter().enumerate() {
            let id = format!("doc{i}");
            let index =
                UsiBuilder::new().with_k(50).deterministic(*seed).build(sample_ws(*seed, 800));
            catalog.insert(&id, index);
            ids.push(id);
        }
        (catalog, ids)
    }

    fn ingest_doc(catalog: &Catalog, id: &str, seed: u64) -> Arc<Doc> {
        let dir = std::env::temp_dir().join("usi-catalog-ingest-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let wal = dir.join(format!("{id}-{seed}.usil"));
        let _ = std::fs::remove_file(&wal);
        let base = UsiBuilder::new().with_k(20).deterministic(seed).build(sample_ws(seed, 300));
        let (pipeline, _) = IngestPipeline::open(
            base,
            &wal,
            IngestConfig {
                seal_threshold: 8,
                compact_fanout: 2,
                sync_wal: false,
                ..IngestConfig::default()
            },
        )
        .unwrap();
        catalog.insert_ingest(id, pipeline)
    }

    #[test]
    fn routing_and_listing() {
        let (catalog, ids) = filled_catalog();
        assert_eq!(catalog.len(), 3);
        assert!(!catalog.is_empty());
        assert_eq!(catalog.doc_ids(), ids);
        for id in &ids {
            assert_eq!(catalog.get(id).unwrap().id(), id);
        }
        assert!(catalog.get("nope").is_none());
        assert!(catalog.remove("doc1"));
        assert!(!catalog.remove("doc1"));
        assert_eq!(catalog.len(), 2);
    }

    #[test]
    fn single_shard_still_serves_all() {
        let catalog = Catalog::new(1);
        let index = UsiBuilder::new().with_k(10).deterministic(5).build(sample_ws(5, 200));
        catalog.insert("only", index);
        assert_eq!(catalog.shard_count(), 1);
        assert!(catalog.query("only", b"a").is_some());
    }

    #[test]
    fn batch_matches_serial_across_thread_counts() {
        let (catalog, ids) = filled_catalog();
        let doc = catalog.get(&ids[0]).unwrap();
        let mut rng = StdRng::seed_from_u64(77);
        let text = doc.index().unwrap().text().to_vec();
        let patterns: Vec<Vec<u8>> = (0..100)
            .map(|_| {
                let m = rng.gen_range(1..8usize);
                let i = rng.gen_range(0..text.len() - m);
                text[i..i + m].to_vec()
            })
            .chain([b"zzz".to_vec(), Vec::new()])
            .collect();
        let refs: Vec<&[u8]> = patterns.iter().map(Vec::as_slice).collect();
        let serial: Vec<UsiQuery> = refs.iter().map(|p| doc.index().unwrap().query(p)).collect();
        assert_eq!(doc.index().unwrap().query_batch(&refs), serial);
        for threads in [1, 2, 3, 8, 64] {
            assert_eq!(catalog.query_batch(&ids[0], &refs, threads).unwrap(), serial);
        }
        assert!(catalog.query_batch("nope", &refs, 2).is_none());
    }

    #[test]
    fn pattern_cache_serves_hits_and_counts_them() {
        let (catalog, ids) = filled_catalog();
        let doc = catalog.get(&ids[0]).unwrap();
        assert_eq!(doc.cache_counters(), (0, 0));
        let direct = doc.index().unwrap().query(b"ab");
        assert_eq!(doc.query(b"ab"), direct);
        assert_eq!(doc.cache_counters(), (0, 1));
        // the second probe is a hit and still the same answer
        assert_eq!(doc.query(b"ab"), direct);
        assert_eq!(doc.cache_counters(), (1, 1));
        // a batch with one known and one new pattern: one hit, one miss
        let answers = doc.query_batch(&[b"ab", b"ba"], 4);
        assert_eq!(answers[0], direct);
        assert_eq!(answers[1], doc.index().unwrap().query(b"ba"));
        assert_eq!(doc.cache_counters(), (2, 2));
        // frozen documents refuse appends
        assert!(matches!(doc.append(b"a", &[1.0]), Err(AppendError::StaticDoc)));
    }

    #[test]
    fn ingest_docs_append_invalidate_and_serve() {
        let catalog = Catalog::new(2);
        let doc = ingest_doc(&catalog, "live", 91);
        assert!(doc.is_ingest());
        assert!(doc.index().is_none());
        let n0 = doc.n();
        let before = doc.query(b"abc");
        assert_eq!(doc.query(b"abc"), before); // cached now
        let (hits, _) = doc.cache_counters();
        assert_eq!(hits, 1);

        doc.append(b"abcabcabcabc", &[1.0; 12]).unwrap();
        assert_eq!(doc.n(), n0 + 12);
        let after = doc.query(b"abc");
        assert!(
            after.occurrences >= before.occurrences + 4,
            "append must be visible: {before:?} → {after:?}"
        );
        // the post-append answer agrees with a from-scratch build
        let pipeline = doc.ingest().unwrap();
        let full = WeightedString::new(
            pipeline.with_state(|s| s.text()),
            pipeline.with_state(|s| s.weights()),
        )
        .unwrap();
        let scratch = UsiBuilder::new().with_k(20).deterministic(91).build(full);
        assert_eq!(after.occurrences, scratch.query(b"abc").occurrences);
        let stats = doc.ingest_stats().unwrap();
        assert!(stats.seals >= 1);
        assert!(stats.wal_bytes > 8);
    }

    #[test]
    fn fan_out_merges_across_docs() {
        let (catalog, ids) = filled_catalog();
        let pattern = b"ab";
        let fan = catalog.query_all(pattern);
        assert_eq!(fan.per_doc.len(), 3);
        let mut expect_occ = 0;
        let mut expect_sum = 0.0;
        for (id, q) in &fan.per_doc {
            let direct = catalog.query(id, pattern).unwrap();
            assert_eq!(*q, direct);
            expect_occ += direct.occurrences;
            expect_sum += direct.value.unwrap_or(0.0);
        }
        assert!(ids.iter().eq(fan.per_doc.iter().map(|(id, _)| id)));
        assert_eq!(fan.total_occurrences, expect_occ);
        assert!((fan.total_value.unwrap() - expect_sum).abs() < 1e-9);

        // batched fan-out agrees with the one-pattern call, at any width
        let refs: Vec<&[u8]> = vec![b"ab", b"ba", b"zzz"];
        for threads in [1, 2, 7] {
            let fans = catalog.query_all_batch(&refs, threads);
            assert_eq!(fans.len(), 3);
            for (p, fan) in refs.iter().zip(&fans) {
                let single = catalog.query_all(p);
                assert_eq!(fan.per_doc, single.per_doc);
                assert_eq!(fan.total_occurrences, single.total_occurrences);
                assert_eq!(fan.total_value, single.total_value);
            }
        }
    }

    #[test]
    fn fan_out_includes_ingest_docs() {
        let (catalog, _) = filled_catalog();
        let doc = ingest_doc(&catalog, "live", 92);
        doc.append(b"ababab", &[0.5; 6]).unwrap();
        let fan = catalog.query_all(b"ab");
        assert_eq!(fan.per_doc.len(), 4);
        let live = fan.per_doc.iter().find(|(id, _)| id == "live").unwrap();
        assert_eq!(live.1, doc.query(b"ab"));
        let sum: u64 = fan.per_doc.iter().map(|(_, q)| q.occurrences).sum();
        assert_eq!(fan.total_occurrences, sum);
    }

    #[test]
    fn concurrent_directory_loads_match_serial() {
        let dir = std::env::temp_dir().join("usi-catalog-load-tests").join("ok");
        std::fs::create_dir_all(&dir).unwrap();
        for seed in 0..6u64 {
            let index =
                UsiBuilder::new().with_k(20).deterministic(seed).build(sample_ws(seed, 400));
            let mut f = std::fs::File::create(dir.join(format!("doc{seed}.usix"))).unwrap();
            index.write_to(&mut f).unwrap();
        }
        let serial = Catalog::new(4);
        let serial_ids = serial.load_path_threads(&dir, 1).unwrap();
        for threads in [2usize, 3, 16] {
            let parallel = Catalog::new(4);
            let ids = parallel.load_path_threads(&dir, threads).unwrap();
            assert_eq!(ids, serial_ids, "threads {threads}");
            assert_eq!(parallel.doc_ids(), serial.doc_ids());
            for id in &ids {
                assert_eq!(
                    parallel.query(id, b"ab").unwrap(),
                    serial.query(id, b"ab").unwrap(),
                    "doc {id}"
                );
            }
        }
    }

    #[test]
    fn directory_load_skips_stray_non_usix_entries() {
        let dir = std::env::temp_dir().join("usi-catalog-load-tests").join("mixed");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        for seed in 0..2u64 {
            let index =
                UsiBuilder::new().with_k(10).deterministic(seed).build(sample_ws(seed, 200));
            let mut f = std::fs::File::create(dir.join(format!("doc{seed}.usix"))).unwrap();
            index.write_to(&mut f).unwrap();
        }
        // the stray files an ingest-enabled corpus directory actually
        // accumulates: a WAL next to its index, notes, a subdirectory
        // whose name happens to end in .usix
        std::fs::write(dir.join("doc0.usil"), b"USIL\x01\x00\x00\x00garbage").unwrap();
        std::fs::write(dir.join("README.txt"), b"not an index").unwrap();
        std::fs::create_dir_all(dir.join("segments.usix")).unwrap();
        let catalog = Catalog::new(2);
        let ids = catalog.load_path(&dir).expect("stray entries must be skipped, not errors");
        assert_eq!(ids, vec!["doc0".to_string(), "doc1".to_string()]);
        assert_eq!(catalog.len(), 2);
    }

    #[test]
    fn mmap_loads_answer_identically_to_owned_loads() {
        let dir = std::env::temp_dir().join("usi-catalog-load-tests").join("mmap");
        std::fs::create_dir_all(&dir).unwrap();
        for seed in 0..3u64 {
            let index =
                UsiBuilder::new().with_k(25).deterministic(seed).build(sample_ws(seed, 500));
            let mut f = std::fs::File::create(dir.join(format!("doc{seed}.usix"))).unwrap();
            index.write_to(&mut f).unwrap();
        }
        let owned = Catalog::new(2);
        owned.load_path(&dir).unwrap();
        let mapped = Catalog::new(2);
        let ids = mapped.load_path_with(&dir, LoadOptions { mmap: true, threads: 2 }).unwrap();
        assert_eq!(ids, owned.doc_ids());
        #[cfg(all(unix, target_pointer_width = "64"))]
        for id in &ids {
            let doc = mapped.get(id).unwrap();
            assert!(doc.index().unwrap().is_memory_mapped(), "doc {id}");
        }
        let patterns: Vec<&[u8]> = vec![b"a", b"ab", b"abc", b"bca", b"zzz", b""];
        for id in &ids {
            assert_eq!(
                mapped.query_batch(id, &patterns, 2).unwrap(),
                owned.query_batch(id, &patterns, 2).unwrap(),
                "doc {id}"
            );
        }
        // fan-out across mapped docs merges the same totals
        let fan_mapped = mapped.query_all(b"ab");
        let fan_owned = owned.query_all(b"ab");
        assert_eq!(fan_mapped.total_occurrences, fan_owned.total_occurrences);
        assert_eq!(fan_mapped.total_value, fan_owned.total_value);
    }

    #[test]
    fn concurrent_load_failure_surfaces_first_bad_file_and_loads_nothing() {
        let dir = std::env::temp_dir().join("usi-catalog-load-tests").join("bad");
        std::fs::create_dir_all(&dir).unwrap();
        for seed in 0..4u64 {
            let index =
                UsiBuilder::new().with_k(10).deterministic(seed).build(sample_ws(seed, 200));
            let mut f = std::fs::File::create(dir.join(format!("doc{seed}.usix"))).unwrap();
            index.write_to(&mut f).unwrap();
        }
        // two corrupt files; "a-corrupt" sorts before every valid doc
        std::fs::write(dir.join("a-corrupt.usix"), b"not an index").unwrap();
        std::fs::write(dir.join("z-corrupt.usix"), b"also not an index").unwrap();
        for threads in [1usize, 2, 8] {
            let catalog = Catalog::new(2);
            let err = catalog.load_path_threads(&dir, threads).unwrap_err();
            assert!(
                err.to_string().contains("a-corrupt"),
                "threads {threads}: expected the first bad file, got: {err}"
            );
            assert!(catalog.is_empty(), "threads {threads}: partial load left documents behind");
        }
    }

    #[test]
    fn fan_out_with_mixed_aggregators_has_no_total() {
        let catalog = Catalog::new(2);
        let a = UsiBuilder::new().with_k(10).deterministic(1).build(sample_ws(1, 300));
        let b = UsiBuilder::new()
            .with_k(10)
            .with_aggregator(GlobalAggregator::Max)
            .deterministic(2)
            .build(sample_ws(2, 300));
        catalog.insert("a", a);
        catalog.insert("b", b);
        let fan = catalog.query_all(b"a");
        assert_eq!(fan.per_doc.len(), 2);
        assert!(fan.total_value.is_none());
        assert!(fan.total_occurrences > 0);
    }

    #[test]
    fn empty_catalog_fan_out() {
        let catalog = Catalog::new(3);
        let fan = catalog.query_all(b"a");
        assert!(fan.per_doc.is_empty());
        assert_eq!(fan.total_occurrences, 0);
        assert_eq!(fan.total_value, None);
    }
}
