//! A sharded multi-index registry: many [`UsiIndex`]es ("documents")
//! served from one process.
//!
//! Documents are partitioned over a fixed number of shards by a hash of
//! their id. Each shard is an `RwLock<map>` whose values are
//! `Arc<Doc>`: a query takes the shard read-lock only long enough to
//! clone the `Arc`, then runs against the immutable index with no lock
//! held — so long queries never block loads and loads never block
//! queries on other shards.
//!
//! Query surface:
//!
//! * [`Catalog::query`] / [`Catalog::query_batch`] — one document,
//!   routed by id; batches are spread over `std::thread::scope` workers
//!   in contiguous chunks (answers stay in pattern order).
//! * [`Catalog::query_all`] / [`Catalog::query_all_batch`] — fan-out: a
//!   pattern's utility on every loaded document, plus the merged
//!   accumulator across documents (the whole-corpus answer).

use std::collections::BTreeMap;
use std::io;
use std::path::Path;
use std::sync::{Arc, RwLock};
use usi_core::{PersistError, QuerySource, UsiIndex, UsiQuery};
use usi_strings::UtilityAccumulator;

/// A named, immutable, queryable index held by a [`Catalog`].
#[derive(Debug)]
pub struct Doc {
    id: String,
    index: UsiIndex,
}

impl Doc {
    /// The document id (file stem for documents loaded from disk).
    pub fn id(&self) -> &str {
        &self.id
    }

    /// The underlying index.
    pub fn index(&self) -> &UsiIndex {
        &self.index
    }
}

/// One pattern's fan-out answer: per-document results plus the merged
/// whole-corpus aggregate.
#[derive(Debug, Clone)]
pub struct FanOut {
    /// `(doc id, answer)` for every loaded document, sorted by id.
    pub per_doc: Vec<(String, UsiQuery)>,
    /// Total occurrences across all documents.
    pub total_occurrences: u64,
    /// The pattern's utility over the whole corpus: accumulators merged
    /// across documents, finished with the shared aggregator. `None`
    /// when the documents disagree on the aggregator (the merge would
    /// be meaningless) or the merged aggregate is undefined.
    pub total_value: Option<f64>,
}

/// Errors raised while loading documents into a [`Catalog`].
#[derive(Debug)]
pub enum CatalogError {
    /// Filesystem-level failure (open, read dir, …), with the path.
    Io(String, io::Error),
    /// The file exists but is not a valid `.usix` index, with the path.
    Load(String, PersistError),
}

impl std::fmt::Display for CatalogError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(path, e) => write!(f, "{path}: {e}"),
            Self::Load(path, e) => write!(f, "{path}: {e}"),
        }
    }
}

impl std::error::Error for CatalogError {}

type Shard = RwLock<BTreeMap<String, Arc<Doc>>>;

/// The sharded registry. Cheap to share: wrap it in an `Arc` and hand
/// clones to server workers.
#[derive(Debug)]
pub struct Catalog {
    shards: Vec<Shard>,
}

/// FNV-1a over the id bytes: stable across processes, so shard
/// placement is deterministic for a given shard count.
fn shard_hash(id: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in id.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl Catalog {
    /// Creates a catalog with `shards` shards (clamped to ≥ 1).
    pub fn new(shards: usize) -> Self {
        Self { shards: (0..shards.max(1)).map(|_| RwLock::new(BTreeMap::new())).collect() }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard_of(&self, id: &str) -> &Shard {
        &self.shards[(shard_hash(id) % self.shards.len() as u64) as usize]
    }

    /// Inserts (or replaces) a document built in-process from raw text +
    /// weights or loaded elsewhere. Returns the shared handle.
    pub fn insert(&self, id: impl Into<String>, index: UsiIndex) -> Arc<Doc> {
        let id = id.into();
        let doc = Arc::new(Doc { id: id.clone(), index });
        self.shard_of(&id).write().expect("shard lock poisoned").insert(id, Arc::clone(&doc));
        doc
    }

    /// Reads and validates one `.usix` file without touching the
    /// catalog; the document id is the file stem.
    fn parse_usix(path: &Path) -> Result<(String, UsiIndex), CatalogError> {
        let display = path.display().to_string();
        let file = std::fs::File::open(path).map_err(|e| CatalogError::Io(display.clone(), e))?;
        let mut reader = io::BufReader::new(file);
        let index = UsiIndex::read_from(&mut reader).map_err(|e| CatalogError::Load(display, e))?;
        let id = path.file_stem().map_or_else(String::new, |s| s.to_string_lossy().into_owned());
        Ok((id, index))
    }

    /// Loads one `.usix` file; the document id is the file stem.
    pub fn load_usix(&self, path: &Path) -> Result<Arc<Doc>, CatalogError> {
        let (id, index) = Self::parse_usix(path)?;
        Ok(self.insert(id, index))
    }

    /// Loads a path that is either one `.usix` file or a directory whose
    /// `.usix` entries are all loaded, parsing directory entries on up
    /// to `available_parallelism` workers (each load is independent).
    /// Returns the ids loaded (sorted for directories: deterministic
    /// across filesystems). See [`Catalog::load_path_threads`].
    pub fn load_path(&self, path: &Path) -> Result<Vec<String>, CatalogError> {
        let threads = std::thread::available_parallelism().map_or(1, |p| p.get());
        self.load_path_threads(path, threads)
    }

    /// [`Catalog::load_path`] with an explicit worker count. Files are
    /// read and validated concurrently on scoped threads; documents are
    /// then registered in sorted file order. On failure the error
    /// reported is the **first** failing file in that order (not
    /// whichever worker lost the race), and no document from the batch
    /// is registered — a failed load never leaves a half-loaded
    /// directory behind.
    pub fn load_path_threads(
        &self,
        path: &Path,
        threads: usize,
    ) -> Result<Vec<String>, CatalogError> {
        let display = path.display().to_string();
        let meta = std::fs::metadata(path).map_err(|e| CatalogError::Io(display.clone(), e))?;
        if !meta.is_dir() {
            return Ok(vec![self.load_usix(path)?.id().to_string()]);
        }
        let mut files: Vec<_> = std::fs::read_dir(path)
            .map_err(|e| CatalogError::Io(display.clone(), e))?
            .filter_map(Result::ok)
            .map(|entry| entry.path())
            .filter(|p| p.extension().is_some_and(|ext| ext == "usix"))
            .collect();
        files.sort();
        let threads = threads.max(1).min(files.len().max(1));
        let parsed: Vec<Result<(String, UsiIndex), CatalogError>> = if threads == 1 {
            files.iter().map(|file| Self::parse_usix(file)).collect()
        } else {
            let chunk = files.len().div_ceil(threads);
            let parts: Vec<Vec<Result<(String, UsiIndex), CatalogError>>> =
                std::thread::scope(|scope| {
                    let handles: Vec<_> = files
                        .chunks(chunk)
                        .map(|part| {
                            scope.spawn(move || {
                                part.iter().map(|file| Self::parse_usix(file)).collect::<Vec<_>>()
                            })
                        })
                        .collect();
                    handles.into_iter().map(|h| h.join().expect("load worker panicked")).collect()
                });
            parts.into_iter().flatten().collect()
        };
        // first error in file order wins; register nothing on failure
        let mut docs = Vec::with_capacity(parsed.len());
        for result in parsed {
            docs.push(result?);
        }
        let mut ids = Vec::with_capacity(docs.len());
        for (id, index) in docs {
            self.insert(&id, index);
            ids.push(id);
        }
        Ok(ids)
    }

    /// Removes a document; `true` if it was present.
    pub fn remove(&self, id: &str) -> bool {
        self.shard_of(id).write().expect("shard lock poisoned").remove(id).is_some()
    }

    /// Looks up a document by id (clones the `Arc`; no lock is held
    /// afterwards).
    pub fn get(&self, id: &str) -> Option<Arc<Doc>> {
        self.shard_of(id).read().expect("shard lock poisoned").get(id).cloned()
    }

    /// Number of loaded documents.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().expect("shard lock poisoned").len()).sum()
    }

    /// Whether the catalog holds no documents.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A consistent-per-shard snapshot of all documents, sorted by id.
    pub fn docs(&self) -> Vec<Arc<Doc>> {
        let mut docs: Vec<Arc<Doc>> = self
            .shards
            .iter()
            .flat_map(|s| {
                s.read().expect("shard lock poisoned").values().cloned().collect::<Vec<_>>()
            })
            .collect();
        docs.sort_by(|a, b| a.id.cmp(&b.id));
        docs
    }

    /// The loaded document ids, sorted.
    pub fn doc_ids(&self) -> Vec<String> {
        self.docs().iter().map(|d| d.id.clone()).collect()
    }

    /// Queries one document; `None` if the id is not loaded.
    pub fn query(&self, id: &str, pattern: &[u8]) -> Option<UsiQuery> {
        self.get(id).map(|doc| doc.index.query(pattern))
    }

    /// Batch-queries one document, spreading the patterns over up to
    /// `threads` scoped workers in contiguous chunks. Answers are in
    /// pattern order and identical to the serial loop. `None` if the id
    /// is not loaded.
    pub fn query_batch(
        &self,
        id: &str,
        patterns: &[&[u8]],
        threads: usize,
    ) -> Option<Vec<UsiQuery>> {
        let doc = self.get(id)?;
        Some(Self::batch_on(&doc.index, patterns, threads))
    }

    fn batch_on(index: &UsiIndex, patterns: &[&[u8]], threads: usize) -> Vec<UsiQuery> {
        let threads = threads.max(1).min(patterns.len().max(1));
        if threads == 1 {
            return index.query_batch(patterns);
        }
        let chunk = patterns.len().div_ceil(threads);
        let answers: Vec<Vec<UsiQuery>> = std::thread::scope(|scope| {
            let handles: Vec<_> = patterns
                .chunks(chunk)
                .map(|part| scope.spawn(move || index.query_batch(part)))
                .collect();
            handles.into_iter().map(|h| h.join().expect("query worker panicked")).collect()
        });
        answers.into_iter().flatten().collect()
    }

    /// Fan-out: one pattern's utility on every loaded document plus the
    /// merged whole-corpus aggregate.
    pub fn query_all(&self, pattern: &[u8]) -> FanOut {
        self.fan_out_batch(&[pattern], 1).pop().expect("one pattern in, one fan-out")
    }

    /// Batch fan-out: each pattern against every loaded document, the
    /// documents spread over up to `threads` scoped workers. One
    /// [`FanOut`] per pattern, in pattern order.
    pub fn query_all_batch(&self, patterns: &[&[u8]], threads: usize) -> Vec<FanOut> {
        self.fan_out_batch(patterns, threads)
    }

    fn fan_out_batch(&self, patterns: &[&[u8]], threads: usize) -> Vec<FanOut> {
        let docs = self.docs();
        let threads = threads.max(1).min(docs.len().max(1));
        // per document: the raw accumulators for every pattern
        let per_doc: Vec<Vec<(UtilityAccumulator, QuerySource)>> = if threads == 1 {
            docs.iter().map(|doc| doc.index().query_accumulator_batch(patterns)).collect()
        } else {
            let chunk = docs.len().div_ceil(threads);
            let parts: Vec<Vec<Vec<(UtilityAccumulator, QuerySource)>>> =
                std::thread::scope(|scope| {
                    let handles: Vec<_> = docs
                        .chunks(chunk)
                        .map(|part| {
                            scope.spawn(move || {
                                part.iter()
                                    .map(|doc| doc.index().query_accumulator_batch(patterns))
                                    .collect::<Vec<_>>()
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("fan-out worker panicked"))
                        .collect()
                });
            parts.into_iter().flatten().collect()
        };

        let shared_utility = docs.first().map(|d| d.index().utility());
        let uniform = docs.iter().all(|d| Some(d.index().utility()) == shared_utility);
        (0..patterns.len())
            .map(|pi| {
                let mut merged = UtilityAccumulator::new();
                let mut results = Vec::with_capacity(docs.len());
                for (doc, answers) in docs.iter().zip(&per_doc) {
                    let (acc, source) = answers[pi];
                    merged.merge(&acc);
                    let value = acc.finish(doc.index().utility().aggregator);
                    results.push((
                        doc.id().to_string(),
                        UsiQuery { value, occurrences: acc.count(), source },
                    ));
                }
                FanOut {
                    per_doc: results,
                    total_occurrences: merged.count(),
                    total_value: if uniform {
                        shared_utility.and_then(|u| merged.finish(u.aggregator))
                    } else {
                        None
                    },
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use usi_core::UsiBuilder;
    use usi_strings::{GlobalAggregator, WeightedString};

    fn sample_ws(seed: u64, n: usize) -> WeightedString {
        let mut rng = StdRng::seed_from_u64(seed);
        let text: Vec<u8> = (0..n).map(|_| b'a' + rng.gen_range(0..3u8)).collect();
        let weights: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..2.0)).collect();
        WeightedString::new(text, weights).unwrap()
    }

    fn filled_catalog() -> (Catalog, Vec<String>) {
        let catalog = Catalog::new(4);
        let mut ids = Vec::new();
        for (i, seed) in [11u64, 22, 33].iter().enumerate() {
            let id = format!("doc{i}");
            let index =
                UsiBuilder::new().with_k(50).deterministic(*seed).build(sample_ws(*seed, 800));
            catalog.insert(&id, index);
            ids.push(id);
        }
        (catalog, ids)
    }

    #[test]
    fn routing_and_listing() {
        let (catalog, ids) = filled_catalog();
        assert_eq!(catalog.len(), 3);
        assert!(!catalog.is_empty());
        assert_eq!(catalog.doc_ids(), ids);
        for id in &ids {
            assert_eq!(catalog.get(id).unwrap().id(), id);
        }
        assert!(catalog.get("nope").is_none());
        assert!(catalog.remove("doc1"));
        assert!(!catalog.remove("doc1"));
        assert_eq!(catalog.len(), 2);
    }

    #[test]
    fn single_shard_still_serves_all() {
        let catalog = Catalog::new(1);
        let index = UsiBuilder::new().with_k(10).deterministic(5).build(sample_ws(5, 200));
        catalog.insert("only", index);
        assert_eq!(catalog.shard_count(), 1);
        assert!(catalog.query("only", b"a").is_some());
    }

    #[test]
    fn batch_matches_serial_across_thread_counts() {
        let (catalog, ids) = filled_catalog();
        let doc = catalog.get(&ids[0]).unwrap();
        let mut rng = StdRng::seed_from_u64(77);
        let text = doc.index().text().to_vec();
        let patterns: Vec<Vec<u8>> = (0..100)
            .map(|_| {
                let m = rng.gen_range(1..8usize);
                let i = rng.gen_range(0..text.len() - m);
                text[i..i + m].to_vec()
            })
            .chain([b"zzz".to_vec(), Vec::new()])
            .collect();
        let refs: Vec<&[u8]> = patterns.iter().map(Vec::as_slice).collect();
        let serial: Vec<UsiQuery> = refs.iter().map(|p| doc.index().query(p)).collect();
        assert_eq!(doc.index().query_batch(&refs), serial);
        for threads in [1, 2, 3, 8, 64] {
            assert_eq!(catalog.query_batch(&ids[0], &refs, threads).unwrap(), serial);
        }
        assert!(catalog.query_batch("nope", &refs, 2).is_none());
    }

    #[test]
    fn fan_out_merges_across_docs() {
        let (catalog, ids) = filled_catalog();
        let pattern = b"ab";
        let fan = catalog.query_all(pattern);
        assert_eq!(fan.per_doc.len(), 3);
        let mut expect_occ = 0;
        let mut expect_sum = 0.0;
        for (id, q) in &fan.per_doc {
            let direct = catalog.query(id, pattern).unwrap();
            assert_eq!(*q, direct);
            expect_occ += direct.occurrences;
            expect_sum += direct.value.unwrap_or(0.0);
        }
        assert!(ids.iter().eq(fan.per_doc.iter().map(|(id, _)| id)));
        assert_eq!(fan.total_occurrences, expect_occ);
        assert!((fan.total_value.unwrap() - expect_sum).abs() < 1e-9);

        // batched fan-out agrees with the one-pattern call, at any width
        let refs: Vec<&[u8]> = vec![b"ab", b"ba", b"zzz"];
        for threads in [1, 2, 7] {
            let fans = catalog.query_all_batch(&refs, threads);
            assert_eq!(fans.len(), 3);
            for (p, fan) in refs.iter().zip(&fans) {
                let single = catalog.query_all(p);
                assert_eq!(fan.per_doc, single.per_doc);
                assert_eq!(fan.total_occurrences, single.total_occurrences);
                assert_eq!(fan.total_value, single.total_value);
            }
        }
    }

    #[test]
    fn concurrent_directory_loads_match_serial() {
        let dir = std::env::temp_dir().join("usi-catalog-load-tests").join("ok");
        std::fs::create_dir_all(&dir).unwrap();
        for seed in 0..6u64 {
            let index =
                UsiBuilder::new().with_k(20).deterministic(seed).build(sample_ws(seed, 400));
            let mut f = std::fs::File::create(dir.join(format!("doc{seed}.usix"))).unwrap();
            index.write_to(&mut f).unwrap();
        }
        let serial = Catalog::new(4);
        let serial_ids = serial.load_path_threads(&dir, 1).unwrap();
        for threads in [2usize, 3, 16] {
            let parallel = Catalog::new(4);
            let ids = parallel.load_path_threads(&dir, threads).unwrap();
            assert_eq!(ids, serial_ids, "threads {threads}");
            assert_eq!(parallel.doc_ids(), serial.doc_ids());
            for id in &ids {
                assert_eq!(
                    parallel.query(id, b"ab").unwrap(),
                    serial.query(id, b"ab").unwrap(),
                    "doc {id}"
                );
            }
        }
    }

    #[test]
    fn concurrent_load_failure_surfaces_first_bad_file_and_loads_nothing() {
        let dir = std::env::temp_dir().join("usi-catalog-load-tests").join("bad");
        std::fs::create_dir_all(&dir).unwrap();
        for seed in 0..4u64 {
            let index =
                UsiBuilder::new().with_k(10).deterministic(seed).build(sample_ws(seed, 200));
            let mut f = std::fs::File::create(dir.join(format!("doc{seed}.usix"))).unwrap();
            index.write_to(&mut f).unwrap();
        }
        // two corrupt files; "a-corrupt" sorts before every valid doc
        std::fs::write(dir.join("a-corrupt.usix"), b"not an index").unwrap();
        std::fs::write(dir.join("z-corrupt.usix"), b"also not an index").unwrap();
        for threads in [1usize, 2, 8] {
            let catalog = Catalog::new(2);
            let err = catalog.load_path_threads(&dir, threads).unwrap_err();
            assert!(
                err.to_string().contains("a-corrupt"),
                "threads {threads}: expected the first bad file, got: {err}"
            );
            assert!(catalog.is_empty(), "threads {threads}: partial load left documents behind");
        }
    }

    #[test]
    fn fan_out_with_mixed_aggregators_has_no_total() {
        let catalog = Catalog::new(2);
        let a = UsiBuilder::new().with_k(10).deterministic(1).build(sample_ws(1, 300));
        let b = UsiBuilder::new()
            .with_k(10)
            .with_aggregator(GlobalAggregator::Max)
            .deterministic(2)
            .build(sample_ws(2, 300));
        catalog.insert("a", a);
        catalog.insert("b", b);
        let fan = catalog.query_all(b"a");
        assert_eq!(fan.per_doc.len(), 2);
        assert!(fan.total_value.is_none());
        assert!(fan.total_occurrences > 0);
    }

    #[test]
    fn empty_catalog_fan_out() {
        let catalog = Catalog::new(3);
        let fan = catalog.query_all(b"a");
        assert!(fan.per_doc.is_empty());
        assert_eq!(fan.total_occurrences, 0);
        assert_eq!(fan.total_value, None);
    }
}
