//! The server's pre-registered telemetry handles.
//!
//! Everything the serving path observes is resolved **once**, here, at
//! first touch: route × status counter and per-route latency tables are
//! materialised up front so a request on the hot path never takes the
//! registry or family lock — recording is a few relaxed atomic ops on
//! handles this struct already holds. Per-document counters are the one
//! dynamic family ([`ServerMetrics::doc_queries`]); a [`crate::Doc`]
//! resolves its handle at registration time and keeps it.

use std::sync::{Arc, OnceLock};
use usi_obs::{
    default_latency_buckets, exponential_buckets, Counter, CounterVec, Gauge, Histogram,
};

/// Route labels for HTTP series, a closed set so series cardinality is
/// bounded no matter what paths clients probe. Parameterised routes use
/// the template (`/v1/docs/{id}/stats`), not the concrete id.
const ROUTES: &[&str] = &[
    "/healthz",
    "/v1/docs",
    "/v1/docs/{id}/stats",
    "/v1/docs/{id}/append",
    "/v1/docs/{id}/reload",
    "/v1/query",
    "/metrics",
    "/v1/trace",
    "/v1/trace/{trace_id}",
    "/debug/requests",
    "other",
];

/// Status labels actually produced by the router (plus the reactor's
/// over-capacity 503) and a catch-all.
const STATUSES: &[&str] = &["200", "400", "404", "405", "409", "413", "500", "503", "other"];

/// Every handle the serving path records into.
pub(crate) struct ServerMetrics {
    /// `usi_http_requests_total{route,status}`, indexed `[route][status]`.
    requests: Vec<Vec<Arc<Counter>>>,
    /// `usi_http_request_seconds{route}`, indexed `[route]`.
    request_seconds: Vec<Arc<Histogram>>,
    pub connections_open: Arc<Gauge>,
    pub connections_idle: Arc<Gauge>,
    pub requests_in_flight: Arc<Gauge>,
    pub requests_per_connection: Arc<Histogram>,
    pub slow_requests_total: Arc<Counter>,
    /// Connections dispatched by the reactor and not yet re-armed or
    /// closed — the reactor's run queue (queued + running pool jobs).
    pub reactor_runq: Arc<Gauge>,
    /// `epoll_wait` returns on the reactor thread (readiness, timer
    /// ticks and eventfd wakes all count — the reactor's duty cycle).
    pub reactor_wakeups_total: Arc<Counter>,
    pub pool_queue_depth: Arc<Gauge>,
    pub pool_in_flight: Arc<Gauge>,
    pub pool_jobs_total: Arc<Counter>,
    pub pool_saturation_total: Arc<Counter>,
    /// `usi_pool_queue_wait_seconds` — how long each job sat queued
    /// before a worker picked it up (the `queue` stage of a trace).
    pub pool_queue_wait: Arc<Histogram>,
    /// `usi_reactor_dispatch_seconds` — reactor dispatch of a readable
    /// connection to its job starting on a worker (queue wait plus
    /// submit overhead, as the reactor experiences it).
    pub reactor_dispatch_seconds: Arc<Histogram>,
    /// `usi_doc_queries_total{doc}` — resolved per [`crate::Doc`] at
    /// registration, not per query.
    pub doc_queries: CounterVec,
    pub cache_hits_total: Arc<Counter>,
    pub cache_misses_total: Arc<Counter>,
    pub query_batch_size: Arc<Histogram>,
    pub fan_out_width: Arc<Histogram>,
    /// `usi_catalog_reloads_total` — successful live `.usix` reloads.
    pub catalog_reloads_total: Arc<Counter>,
}

impl ServerMetrics {
    fn new() -> Self {
        let registry = usi_obs::global();
        let requests_vec = registry.counter_vec(
            "usi_http_requests_total",
            "HTTP requests served, by route template and status code",
            &["route", "status"],
        );
        let requests = ROUTES
            .iter()
            .map(|&route| {
                STATUSES.iter().map(|&status| requests_vec.with(&[route, status])).collect()
            })
            .collect();
        let seconds_vec = registry.histogram_vec(
            "usi_http_request_seconds",
            "Wall-clock time from parsed request to written response",
            &["route"],
            default_latency_buckets(),
        );
        let request_seconds = ROUTES.iter().map(|&route| seconds_vec.with(&[route])).collect();
        Self {
            requests,
            request_seconds,
            connections_open: registry
                .gauge("usi_http_connections_open", "Accepted connections currently being served"),
            connections_idle: registry.gauge(
                "usi_http_connections_idle",
                "Open keep-alive connections waiting for their next request",
            ),
            requests_in_flight: registry
                .gauge("usi_http_requests_in_flight", "Requests currently being routed"),
            requests_per_connection: registry.histogram(
                "usi_http_requests_per_connection",
                "Requests served on one connection before it closed",
                exponential_buckets(1.0, 2.0, 11),
            ),
            slow_requests_total: registry.counter(
                "usi_http_slow_requests_total",
                "Requests slower than the configured --slow-query-ms threshold",
            ),
            reactor_runq: registry.gauge(
                "usi_reactor_runq",
                "Connections the reactor has dispatched to the worker pool and \
                 not yet re-armed or closed",
            ),
            reactor_wakeups_total: registry.counter(
                "usi_reactor_wakeups_total",
                "Times the reactor's epoll_wait returned (events, timers, wakes)",
            ),
            pool_queue_depth: registry.gauge(
                "usi_pool_queue_depth",
                "Connections queued for a worker and not yet picked up",
            ),
            pool_in_flight: registry
                .gauge("usi_pool_jobs_in_flight", "Pool jobs currently running on a worker"),
            pool_jobs_total: registry
                .counter("usi_pool_jobs_total", "Jobs ever submitted to the worker pool"),
            pool_saturation_total: registry.counter(
                "usi_pool_saturation_total",
                "Jobs submitted while every pool worker was already busy",
            ),
            pool_queue_wait: registry.histogram(
                "usi_pool_queue_wait_seconds",
                "Time a job waited in the pool queue before a worker picked it up",
                default_latency_buckets(),
            ),
            reactor_dispatch_seconds: registry.histogram(
                "usi_reactor_dispatch_seconds",
                "Time from reactor dispatch of a readable connection to its \
                 job starting on a worker",
                default_latency_buckets(),
            ),
            doc_queries: registry.counter_vec(
                "usi_doc_queries_total",
                "Patterns answered, by document",
                &["doc"],
            ),
            cache_hits_total: registry
                .counter("usi_cache_hits_total", "Pattern-cache hits across all documents"),
            cache_misses_total: registry
                .counter("usi_cache_misses_total", "Pattern-cache misses across all documents"),
            query_batch_size: registry.histogram(
                "usi_query_batch_size",
                "Patterns per query batch",
                exponential_buckets(1.0, 2.0, 13),
            ),
            fan_out_width: registry.histogram(
                "usi_fan_out_width",
                "Documents touched by one fan-out query",
                exponential_buckets(1.0, 2.0, 11),
            ),
            catalog_reloads_total: registry
                .counter("usi_catalog_reloads_total", "Successful live reloads of .usix documents"),
        }
    }

    /// The closed-set index of a route label (`other` maps last).
    fn route_index(route: &str) -> usize {
        ROUTES.iter().position(|&r| r == route).unwrap_or(ROUTES.len() - 1)
    }

    /// Records one finished request: the `{route,status}` counter and
    /// the per-route latency histogram, both via pre-resolved handles.
    pub fn observe_request(&self, route: &str, status: u16, seconds: f64) {
        let ri = Self::route_index(route);
        let status_label = match status {
            200 => 0,
            400 => 1,
            404 => 2,
            405 => 3,
            409 => 4,
            413 => 5,
            500 => 6,
            503 => 7,
            _ => 8,
        };
        self.requests[ri][status_label].inc();
        self.request_seconds[ri].observe(seconds);
    }
}

/// The process-global handle set, registered on first touch.
pub(crate) fn server() -> &'static ServerMetrics {
    static METRICS: OnceLock<ServerMetrics> = OnceLock::new();
    METRICS.get_or_init(ServerMetrics::new)
}

/// Normalises a request to its bounded route label: known paths map to
/// their template, everything else to `other`.
pub(crate) fn route_label(path: &str) -> &'static str {
    match path {
        "/healthz" | "/v1/docs" | "/v1/query" | "/metrics" | "/v1/trace" | "/debug/requests" => {
            ROUTES[ServerMetrics::route_index(path)]
        }
        _ if crate::http::trace_sub_id(path).is_some() => "/v1/trace/{trace_id}",
        _ if crate::http::doc_sub_route(path, "stats") => "/v1/docs/{id}/stats",
        _ if crate::http::doc_sub_route(path, "append") => "/v1/docs/{id}/append",
        _ if crate::http::doc_sub_route(path, "reload") => "/v1/docs/{id}/reload",
        _ => "other",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn route_labels_are_a_closed_set() {
        assert_eq!(route_label("/healthz"), "/healthz");
        assert_eq!(route_label("/metrics"), "/metrics");
        assert_eq!(route_label("/v1/docs/abc/stats"), "/v1/docs/{id}/stats");
        assert_eq!(route_label("/v1/docs/abc/append"), "/v1/docs/{id}/append");
        assert_eq!(route_label("/v1/docs/abc/reload"), "/v1/docs/{id}/reload");
        assert_eq!(route_label("/v1/docs/a/b/stats"), "other");
        assert_eq!(route_label("/nope"), "other");
        assert_eq!(route_label("/v1/trace/00ff00ff00ff00ff"), "/v1/trace/{trace_id}");
        assert_eq!(route_label("/v1/trace/"), "other");
        assert_eq!(route_label("/debug/requests"), "/debug/requests");
        for path in ["/healthz", "/v1/docs/x/stats", "/weird", "/v1/trace/1234", "/debug/requests"]
        {
            assert!(ROUTES.contains(&route_label(path)));
        }
    }

    #[test]
    fn observe_request_accepts_unknown_statuses() {
        let m = server();
        m.observe_request("other", 999, 0.001);
        m.observe_request("/healthz", 200, 0.000_01);
        // handles resolve and record without panicking; exact values
        // are asserted end-to-end via /metrics in the e2e tests
    }
}
