//! A readiness-driven connection reactor: epoll parks idle keep-alive
//! sockets so they cost a file descriptor, not a worker thread.
//!
//! PR 5's keep-alive pinned one [`WorkerPool`] thread per open
//! connection — a handful of idle clients starved the pool. Here a
//! single reactor thread owns the listener plus every **idle** socket
//! in its epoll interest set; when a socket turns readable it is
//! deregistered and dispatched to the pool, whose job runs the ordinary
//! per-request parse/serve path ([`crate::http::serve_ready`]: the
//! carry-over buffer, pipelining bounds and `Connection` semantics are
//! exactly the threaded path's) and then hands the connection *back* to
//! the reactor instead of looping — so a worker is borrowed per
//! request, never per connection.
//!
//! The pieces, all std-only in the same locally-declared-FFI style
//! `usi_core::storage` uses for `mmap`:
//!
//! * [`ffi`] — `epoll_create1`/`epoll_ctl`/`epoll_wait` and `eventfd`,
//!   the four Linux calls a readiness loop needs (fds are closed by
//!   `OwnedFd`, so no `close` declaration);
//! * [`TimerWheel`] — coarse hashed-wheel idle timeouts, replacing the
//!   threaded path's per-socket `set_read_timeout` park: expiring ten
//!   thousand idle connections costs one wheel tick, not ten thousand
//!   blocked threads;
//! * an **eventfd** registered in the epoll set — worker jobs write it
//!   to hand finished connections back for re-arming, and
//!   [`crate::ServerHandle::shutdown`] writes it to stop the loop (the
//!   threaded path's throwaway wake-up connection is gone);
//! * `max_connections` admission control: a connect past the limit is
//!   answered `503` (uniform JSON error body) and closed before it can
//!   consume a slot.
//!
//! On non-Linux targets [`SUPPORTED`] is `false` and `http::serve`
//! falls back to the portable thread-per-connection path — the same
//! gating pattern as the mmap owned-bytes fallback.

/// Whether this build has the epoll reactor ([`serve`] may be called).
pub(crate) const SUPPORTED: bool = cfg!(target_os = "linux");

#[cfg(target_os = "linux")]
pub(crate) use imp::serve;

/// Stub for targets without epoll: `http::serve` checks [`SUPPORTED`]
/// first, so this is never reached — it exists so the crate compiles
/// identically everywhere.
#[cfg(not(target_os = "linux"))]
pub(crate) fn serve(
    _catalog: std::sync::Arc<crate::Catalog>,
    _listener: std::net::TcpListener,
    _config: crate::ServerConfig,
) -> std::io::Result<crate::ServerHandle> {
    Err(std::io::Error::new(
        std::io::ErrorKind::Unsupported,
        "the epoll reactor is Linux-only; http::serve falls back before calling this",
    ))
}

#[cfg(target_os = "linux")]
mod imp {
    use crate::catalog::Catalog;
    use crate::http::{
        close_connection, reject_over_capacity, serve_ready, ConnState, ServerConfig, ServerHandle,
        WakeStrategy,
    };
    use crate::metrics;
    use crate::pool::{ConnVerdict, WorkerPool};
    use std::collections::HashMap;
    use std::fs::File;
    use std::io::{self, Read};
    use std::net::TcpListener;
    use std::os::fd::{AsRawFd, FromRawFd, OwnedFd, RawFd};
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    use std::sync::mpsc::{channel, Receiver, Sender};
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    /// Write-side socket timeout for connections the reactor owns.
    const SOCKET_TIMEOUT: Duration = Duration::from_secs(10);

    mod ffi {
        //! The four Linux calls a readiness loop needs, declared locally
        //! because the workspace is std-only (no `libc` crate) — the
        //! same pattern as `usi_core::storage`'s mmap FFI. Constants
        //! match the kernel UAPI headers.

        use std::ffi::{c_int, c_uint};

        pub const EPOLL_CLOEXEC: c_int = 0o2000000;
        pub const EPOLL_CTL_ADD: c_int = 1;
        pub const EPOLL_CTL_DEL: c_int = 2;
        pub const EPOLLIN: u32 = 0x001;
        pub const EPOLLRDHUP: u32 = 0x2000;
        pub const EFD_CLOEXEC: c_int = 0o2000000;
        pub const EFD_NONBLOCK: c_int = 0o4000;

        /// Mirror of the kernel's `struct epoll_event`. x86-64 is the
        /// one ABI where the struct is packed (12 bytes); everywhere
        /// else it is naturally aligned (16 bytes).
        #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
        #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
        #[derive(Clone, Copy)]
        pub struct EpollEvent {
            pub events: u32,
            /// User cookie: the reactor stores its connection token here.
            pub data: u64,
        }

        extern "C" {
            pub fn epoll_create1(flags: c_int) -> c_int;
            pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
            pub fn epoll_wait(
                epfd: c_int,
                events: *mut EpollEvent,
                maxevents: c_int,
                timeout_ms: c_int,
            ) -> c_int;
            pub fn eventfd(initval: c_uint, flags: c_int) -> c_int;
        }
    }

    /// Thin safe wrapper over one epoll instance.
    struct Epoll {
        fd: OwnedFd,
    }

    impl Epoll {
        fn new() -> io::Result<Self> {
            // SAFETY: plain syscall; the kernel validates the flags and
            // reports failure as a negative return.
            let fd = unsafe { ffi::epoll_create1(ffi::EPOLL_CLOEXEC) };
            if fd < 0 {
                return Err(io::Error::last_os_error());
            }
            // SAFETY: `fd` is a freshly created, unowned epoll descriptor.
            Ok(Self { fd: unsafe { OwnedFd::from_raw_fd(fd) } })
        }

        /// Adds `fd` to the interest set, readable-or-peer-shutdown.
        /// (`EPOLLERR`/`EPOLLHUP` are always reported; they need no
        /// subscription.)
        fn add(&self, fd: RawFd, token: u64) -> io::Result<()> {
            let mut event = ffi::EpollEvent { events: ffi::EPOLLIN | ffi::EPOLLRDHUP, data: token };
            // SAFETY: `event` outlives the call; the kernel copies it.
            let rc =
                unsafe { ffi::epoll_ctl(self.fd.as_raw_fd(), ffi::EPOLL_CTL_ADD, fd, &mut event) };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        fn del(&self, fd: RawFd) {
            let mut event = ffi::EpollEvent { events: 0, data: 0 };
            // SAFETY: as in `add`; a failed DEL (fd already closed) is
            // harmless — the kernel removed it on close.
            let _ =
                unsafe { ffi::epoll_ctl(self.fd.as_raw_fd(), ffi::EPOLL_CTL_DEL, fd, &mut event) };
        }

        /// Blocks up to `timeout_ms` (-1 = forever) for events; EINTR
        /// reads as zero events, letting the caller loop.
        fn wait(&self, events: &mut [ffi::EpollEvent], timeout_ms: i32) -> io::Result<usize> {
            // SAFETY: `events` is a live, writable buffer of the length
            // passed; the kernel fills at most that many entries.
            let n = unsafe {
                ffi::epoll_wait(
                    self.fd.as_raw_fd(),
                    events.as_mut_ptr(),
                    events.len() as i32,
                    timeout_ms,
                )
            };
            if n < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    return Ok(0);
                }
                return Err(err);
            }
            Ok(n as usize)
        }
    }

    /// Creates the reactor's wake eventfd (non-blocking so draining the
    /// counter never stalls the loop).
    fn new_eventfd() -> io::Result<File> {
        // SAFETY: plain syscall; failure is a negative return.
        let fd = unsafe { ffi::eventfd(0, ffi::EFD_CLOEXEC | ffi::EFD_NONBLOCK) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        // SAFETY: `fd` is a freshly created, unowned eventfd.
        Ok(File::from(unsafe { OwnedFd::from_raw_fd(fd) }))
    }

    /// A coarse hashed timer wheel for idle-connection deadlines.
    ///
    /// Deadlines land in one of `slots.len()` buckets by tick number
    /// (ceil-rounded, so an entry never fires before its deadline);
    /// advancing the wheel to "now" drains every passed bucket. All
    /// entries share one horizon (the idle timeout), so the wheel never
    /// needs cascading — a token scheduled now always fits within one
    /// revolution. Entries are lazily validated against the connection
    /// map on expiry, so a token whose connection was dispatched (and
    /// re-registered under a fresh token) simply misses and is dropped.
    struct TimerWheel {
        slots: Vec<Vec<u64>>,
        granularity: Duration,
        /// The wheel's time origin; tick numbers count from here.
        start: Instant,
        /// Last tick whose bucket has been drained.
        cursor: u64,
        /// Live (scheduled, not yet drained) entries.
        entries: usize,
    }

    impl TimerWheel {
        fn new(horizon: Duration, now: Instant) -> Self {
            // granularity: ~1/16 of the horizon, clamped to sane bounds;
            // eviction precision is one granule late at worst
            let granularity =
                (horizon / 16).clamp(Duration::from_millis(20), Duration::from_secs(1));
            let slots = (horizon.as_nanos() / granularity.as_nanos()) as usize + 2;
            Self { slots: vec![Vec::new(); slots], granularity, start: now, cursor: 0, entries: 0 }
        }

        fn tick_of(&self, t: Instant) -> u64 {
            (t.saturating_duration_since(self.start).as_nanos() / self.granularity.as_nanos())
                as u64
        }

        /// Schedules `token` to fire at the first tick boundary at or
        /// after `deadline` (never early, at most one granule late).
        fn schedule(&mut self, token: u64, deadline: Instant) {
            let tick = (self.tick_of(deadline) + 1).max(self.cursor + 1);
            let slot = (tick % self.slots.len() as u64) as usize;
            self.slots[slot].push(token);
            self.entries += 1;
        }

        /// Advances the wheel to `now`, appending every due token to
        /// `out`.
        fn expire_into(&mut self, now: Instant, out: &mut Vec<u64>) {
            let now_tick = self.tick_of(now);
            while self.cursor < now_tick {
                self.cursor += 1;
                let slot = (self.cursor % self.slots.len() as u64) as usize;
                self.entries -= self.slots[slot].len();
                out.append(&mut self.slots[slot]);
            }
        }

        /// Milliseconds until the next tick boundary, or `None` when no
        /// entry is scheduled (the epoll wait may block forever).
        fn next_timeout_ms(&self, now: Instant) -> Option<i32> {
            if self.entries == 0 {
                return None;
            }
            let next = self.start
                + Duration::from_nanos(
                    (self.granularity.as_nanos() as u64).saturating_mul(self.cursor + 1),
                );
            let ms = next.saturating_duration_since(now).as_millis() as i32;
            Some(ms.max(1))
        }
    }

    /// State shared between the reactor thread and its pool jobs.
    struct Shared {
        catalog: Arc<Catalog>,
        config: ServerConfig,
        /// Per-server open-connection count (also the `max_connections`
        /// admission test); mirrors the process-global gauge.
        open: Arc<AtomicUsize>,
        /// Finished jobs hand connections back here for re-arming…
        completions: Sender<ConnState>,
        /// …then write the eventfd so the reactor notices.
        wake: Arc<File>,
    }

    impl Shared {
        fn wake(&self) {
            use std::io::Write;
            let _ = (&*self.wake).write_all(&1u64.to_ne_bytes());
        }

        /// Closes a reactor-owned connection, keeping both counts right.
        fn close(&self, conn: ConnState) {
            self.open.fetch_sub(1, Ordering::SeqCst);
            close_connection(conn);
        }
    }

    /// An idle connection parked in the epoll set.
    struct Parked {
        conn: ConnState,
        deadline: Instant,
    }

    const TOKEN_LISTENER: u64 = u64::MAX;
    const TOKEN_WAKE: u64 = u64::MAX - 1;

    struct Reactor {
        epoll: Epoll,
        listener: TcpListener,
        shared: Arc<Shared>,
        stop: Arc<AtomicBool>,
        completions: Receiver<ConnState>,
        pool: WorkerPool,
        /// Idle connections by token. Tokens are never reused, so a
        /// stale wheel entry can only miss, never hit the wrong socket.
        parked: HashMap<u64, Parked>,
        wheel: TimerWheel,
        next_token: u64,
    }

    impl Reactor {
        fn run(mut self) {
            let m = metrics::server();
            let mut events = vec![ffi::EpollEvent { events: 0, data: 0 }; 1024];
            let mut due = Vec::new();
            loop {
                let timeout = self.wheel.next_timeout_ms(Instant::now()).unwrap_or(-1);
                let n = match self.epoll.wait(&mut events, timeout) {
                    Ok(n) => n,
                    Err(e) => {
                        // an unusable epoll fd is unrecoverable; closing
                        // the loop lets shutdown proceed instead of
                        // spinning
                        eprintln!("usi-reactor: epoll_wait failed, stopping: {e}");
                        break;
                    }
                };
                m.reactor_wakeups_total.inc();
                if self.stop.load(Ordering::SeqCst) {
                    break;
                }
                for event in events.iter().take(n).copied() {
                    match event.data {
                        TOKEN_LISTENER => self.accept_ready(),
                        TOKEN_WAKE => self.drain_wake(),
                        token => self.dispatch(token),
                    }
                }
                // jobs finished since the last pass: park their
                // connections again (or serve the bytes that already
                // arrived — level-triggered epoll re-fires immediately)
                while let Ok(conn) = self.completions.try_recv() {
                    self.park(conn);
                }
                self.evict_expired(&mut due);
            }
            self.drain_on_shutdown();
        }

        /// Accepts until the listener runs dry (it is non-blocking).
        fn accept_ready(&mut self) {
            let m = metrics::server();
            loop {
                let stream = match self.listener.accept() {
                    Ok((stream, _)) => stream,
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(_) => {
                        // EMFILE/ECONNABORTED under flood: brief backoff;
                        // level-triggered epoll re-reports the listener
                        // if connections are still pending
                        std::thread::sleep(Duration::from_millis(10));
                        break;
                    }
                };
                // answers are single writes; never let Nagle hold one
                let _ = stream.set_nodelay(true);
                if self.shared.open.load(Ordering::SeqCst)
                    >= self.shared.config.max_connections.max(1)
                {
                    reject_over_capacity(stream);
                    continue;
                }
                // a blocking read in a worker job is bounded the same
                // way the threaded path bounds it
                let _ = stream.set_read_timeout(Some(
                    self.shared.config.idle_timeout.max(Duration::from_millis(1)),
                ));
                let _ = stream.set_write_timeout(Some(SOCKET_TIMEOUT));
                self.shared.open.fetch_add(1, Ordering::SeqCst);
                m.connections_open.inc();
                self.park(ConnState::new(stream));
            }
        }

        /// Registers a connection in the epoll set with a fresh token
        /// and idle deadline. A connection that came back from a job
        /// with a complete pipelined request already buffered is
        /// dispatched again instead (epoll cannot see bytes that left
        /// the socket).
        fn park(&mut self, conn: ConnState) {
            if self.stop.load(Ordering::SeqCst) {
                self.shared.close(conn);
                return;
            }
            if conn.has_buffered_request() {
                self.submit(conn);
                return;
            }
            let token = self.next_token;
            self.next_token += 1;
            if let Err(e) = self.epoll.add(conn.stream().as_raw_fd(), token) {
                // registration failure (EMFILE on the epoll side, bad
                // fd): the connection cannot be waited on — drop it
                eprintln!("usi-reactor: cannot register connection: {e}");
                self.shared.close(conn);
                return;
            }
            let deadline = Instant::now() + self.shared.config.idle_timeout;
            self.wheel.schedule(token, deadline);
            self.parked.insert(token, Parked { conn, deadline });
            metrics::server().connections_idle.inc();
        }

        /// A parked socket turned readable (or hung up): pull it out of
        /// the epoll set and hand it to the pool. Error'd/hung-up
        /// sockets take the same path — the job's read observes the
        /// EOF or reset and closes cleanly.
        fn dispatch(&mut self, token: u64) {
            let Some(parked) = self.parked.remove(&token) else {
                return; // already evicted this pass
            };
            self.epoll.del(parked.conn.stream().as_raw_fd());
            metrics::server().connections_idle.dec();
            self.submit(parked.conn);
        }

        /// Queues the serve job for a readable connection, stamping the
        /// dispatch time so the lag between the reactor seeing
        /// readiness and a worker picking the job up is measured
        /// (`usi_reactor_dispatch_seconds`).
        fn submit(&self, mut conn: ConnState) {
            let m = metrics::server();
            m.reactor_runq.inc();
            let shared = Arc::clone(&self.shared);
            let dispatched = Instant::now();
            self.pool.execute(move |queue_wait| {
                let m = metrics::server();
                m.reactor_dispatch_seconds.observe(dispatched.elapsed().as_secs_f64());
                let keep = serve_ready(&mut conn, &shared.catalog, shared.config, queue_wait);
                m.reactor_runq.dec();
                if keep {
                    match shared.completions.send(conn) {
                        Ok(()) => {
                            shared.wake();
                            return ConnVerdict::Rearm;
                        }
                        // reactor already gone (shutdown): close instead
                        Err(back) => shared.close(back.0),
                    }
                } else {
                    shared.close(conn);
                }
                ConnVerdict::Close
            });
        }

        fn drain_wake(&self) {
            let mut counter = [0u8; 8];
            // non-blocking eventfd: a WouldBlock here just means another
            // pass already consumed the counter
            let _ = (&*self.shared.wake).read(&mut counter);
        }

        /// Closes every parked connection whose idle deadline passed.
        /// The wheel hands tokens back in deadline order, so eviction
        /// order equals expiry order.
        fn evict_expired(&mut self, due: &mut Vec<u64>) {
            let now = Instant::now();
            self.wheel.expire_into(now, due);
            for token in due.drain(..) {
                let Some(parked) = self.parked.get(&token) else {
                    continue; // dispatched or closed since scheduling
                };
                if parked.deadline > now {
                    // only possible via clock coarseness; re-schedule
                    let deadline = parked.deadline;
                    self.wheel.schedule(token, deadline);
                    continue;
                }
                let parked = self.parked.remove(&token).expect("checked above");
                self.epoll.del(parked.conn.stream().as_raw_fd());
                metrics::server().connections_idle.dec();
                self.shared.close(parked.conn);
            }
        }

        /// Shutdown: let in-flight jobs finish (dropping the pool joins
        /// its workers), then close everything still open. Connections
        /// that turned readable mid-shutdown are simply closed — their
        /// events were never processed.
        fn drain_on_shutdown(self) {
            let Reactor { pool, completions, parked, shared, .. } = self;
            drop(pool); // queued + running jobs drain, workers join
            while let Ok(conn) = completions.try_recv() {
                shared.close(conn);
            }
            let m = metrics::server();
            for (_, parked) in parked {
                m.connections_idle.dec();
                shared.close(parked.conn);
            }
            // epoll fd and listener close on drop
        }
    }

    /// Starts the reactor thread serving `catalog` on `listener`.
    pub(crate) fn serve(
        catalog: Arc<Catalog>,
        listener: TcpListener,
        config: ServerConfig,
    ) -> io::Result<ServerHandle> {
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let epoll = Epoll::new()?;
        let wake = Arc::new(new_eventfd()?);
        epoll.add(listener.as_raw_fd(), TOKEN_LISTENER)?;
        epoll.add(wake.as_raw_fd(), TOKEN_WAKE)?;

        let stop = Arc::new(AtomicBool::new(false));
        let open = Arc::new(AtomicUsize::new(0));
        let (tx, rx) = channel();
        let shared = Arc::new(Shared {
            catalog,
            config,
            open: Arc::clone(&open),
            completions: tx,
            wake: Arc::clone(&wake),
        });
        let stop_flag = Arc::clone(&stop);
        let now = Instant::now();
        let thread = std::thread::Builder::new().name("usi-reactor".into()).spawn(move || {
            Reactor {
                epoll,
                listener,
                shared,
                stop: stop_flag,
                completions: rx,
                pool: WorkerPool::new(config.workers),
                parked: HashMap::new(),
                wheel: TimerWheel::new(config.idle_timeout.max(Duration::from_millis(1)), now),
                next_token: 0,
            }
            .run();
        })?;
        Ok(ServerHandle {
            addr,
            stop,
            thread: Some(thread),
            waker: WakeStrategy::Eventfd(wake),
            open,
        })
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn timer_wheel_fires_in_order_and_never_early() {
            let t0 = Instant::now();
            let mut wheel = TimerWheel::new(Duration::from_millis(320), t0);
            assert_eq!(wheel.next_timeout_ms(t0), None, "empty wheel blocks forever");

            wheel.schedule(1, t0 + Duration::from_millis(100));
            wheel.schedule(2, t0 + Duration::from_millis(300));
            wheel.schedule(3, t0 + Duration::from_millis(100));
            assert!(wheel.next_timeout_ms(t0).is_some());

            let mut due = Vec::new();
            // before the first deadline nothing may fire
            wheel.expire_into(t0 + Duration::from_millis(80), &mut due);
            assert!(due.is_empty(), "{due:?}");
            // one granule past 100ms: tokens 1 and 3, not 2
            wheel.expire_into(t0 + Duration::from_millis(160), &mut due);
            due.sort_unstable();
            assert_eq!(due, [1, 3]);
            due.clear();
            wheel.expire_into(t0 + Duration::from_millis(400), &mut due);
            assert_eq!(due, [2]);
            due.clear();
            assert_eq!(wheel.next_timeout_ms(t0), None, "drained wheel is idle again");
        }

        #[test]
        fn timer_wheel_deadline_past_means_next_tick() {
            // a deadline already in the past still fires on the next
            // tick after "now", never on a tick the cursor passed
            let t0 = Instant::now();
            let mut wheel = TimerWheel::new(Duration::from_millis(320), t0);
            let mut due = Vec::new();
            wheel.expire_into(t0 + Duration::from_millis(200), &mut due);
            assert!(due.is_empty());
            wheel.schedule(7, t0 + Duration::from_millis(100)); // before the cursor
            wheel.expire_into(t0 + Duration::from_millis(500), &mut due);
            assert_eq!(due, [7]);
        }
    }
}
