//! All baselines and the USI index agree on every query — they differ
//! only in speed, never in answers.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use usi_baselines::{Bsl1, Bsl2, Bsl3, Bsl4, QueryBaseline};
use usi_core::UsiBuilder;
use usi_strings::{GlobalUtility, WeightedString};

#[test]
fn baselines_agree_with_usi_index_on_random_workload() {
    let mut rng = StdRng::seed_from_u64(55);
    let n = 400;
    let text: Vec<u8> = (0..n).map(|_| b'a' + rng.gen_range(0..4u8)).collect();
    let weights: Vec<f64> = (0..n).map(|_| rng.gen_range(0.1..1.0)).collect();
    let ws = WeightedString::new(text.clone(), weights).unwrap();
    let u = GlobalUtility::sum_of_sums();
    let k = 16;

    let usi = UsiBuilder::new().with_k(k).deterministic(1).build(ws.clone());
    let mut baselines: Vec<Box<dyn QueryBaseline>> = vec![
        Box::new(Bsl1::new(ws.clone(), u, 2)),
        Box::new(Bsl2::new(ws.clone(), u, k, 3)),
        Box::new(Bsl3::new(ws.clone(), u, k, 4)),
        Box::new(Bsl4::new(ws.clone(), u, k, 5)),
    ];

    // mixed workload: hot repeats, random substrings, absent patterns
    let mut queries: Vec<Vec<u8>> = Vec::new();
    for _ in 0..150 {
        match rng.gen_range(0..3) {
            0 => {
                let i = rng.gen_range(0..n - 3);
                queries.push(text[i..i + 3].to_vec()); // likely-hot trigram
            }
            1 => {
                let m = rng.gen_range(1..10usize);
                let i = rng.gen_range(0..n - m);
                queries.push(text[i..i + m].to_vec());
            }
            _ => {
                let m = rng.gen_range(1..6usize);
                queries.push((0..m).map(|_| b'w' + rng.gen_range(0..3u8)).collect());
            }
        }
    }

    for q in &queries {
        let want = usi.query(q);
        for b in baselines.iter_mut() {
            let got = b.query(q);
            assert_eq!(got.occurrences, want.occurrences, "{} on {q:?}", b.name());
            match (got.value, want.value) {
                (Some(a), Some(bv)) => assert!(
                    (a - bv).abs() < 1e-6 * (1.0 + bv.abs()),
                    "{} value mismatch on {q:?}",
                    b.name()
                ),
                (a, bv) => assert_eq!(a, bv, "{} on {q:?}", b.name()),
            }
        }
    }
}

#[test]
fn index_sizes_are_comparable() {
    // Fig. 6k–p: all five structures are SA-dominated and within a small
    // factor of each other.
    let ws = WeightedString::uniform(b"abcd".repeat(500), 1.0);
    let u = GlobalUtility::sum_of_sums();
    let k = 50;
    let usi = UsiBuilder::new().with_k(k).deterministic(2).build(ws.clone());
    let sizes = [
        Bsl1::new(ws.clone(), u, 2).index_size(),
        Bsl2::new(ws.clone(), u, k, 3).index_size(),
        Bsl3::new(ws.clone(), u, k, 4).index_size(),
        Bsl4::new(ws.clone(), u, k, 5).index_size(),
        usi.size_breakdown().total(),
    ];
    let min = *sizes.iter().min().unwrap() as f64;
    let max = *sizes.iter().max().unwrap() as f64;
    assert!(max / min < 2.0, "sizes too far apart: {sizes:?}");
}
