//! BSL2: LRU query caching.
//!
//! Keeps the precomputed global utilities of the `K` most *recently*
//! queried patterns in a hash table (an [`crate::lru::LruCache`] keyed
//! like the USI hash table). Cache misses fall back to the suffix array.

use crate::common::{BaselineAnswer, QueryBaseline, TextBackend};
use crate::lru::LruCache;
use usi_strings::{GlobalUtility, UtilityAccumulator, WeightedString};

/// The LRU baseline.
#[derive(Debug, Clone)]
pub struct Bsl2 {
    backend: TextBackend,
    cache: LruCache<(u32, u64), UtilityAccumulator>,
}

impl Bsl2 {
    /// Builds the substrate with a `k`-entry LRU cache.
    pub fn new(ws: WeightedString, utility: GlobalUtility, k: usize, seed: u64) -> Self {
        Self { backend: TextBackend::new(ws, utility, seed), cache: LruCache::new(k.max(1)) }
    }
}

impl QueryBaseline for Bsl2 {
    fn name(&self) -> &'static str {
        "BSL2"
    }

    fn query(&mut self, pattern: &[u8]) -> BaselineAnswer {
        let key = self.backend.key(pattern);
        if let Some(acc) = self.cache.get(&key) {
            let acc = *acc;
            return self.backend.answer(acc, true);
        }
        let acc = self.backend.compute(pattern);
        self.cache.insert(key, acc);
        self.backend.answer(acc, false)
    }

    fn index_size(&self) -> usize {
        self.backend.base_size() + self.cache.state_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn second_identical_query_is_cached() {
        let ws = WeightedString::uniform(b"mississippi".repeat(3), 1.0);
        let mut bsl = Bsl2::new(ws, GlobalUtility::sum_of_sums(), 4, 5);
        let first = bsl.query(b"issi");
        assert!(!first.cached);
        let second = bsl.query(b"issi");
        assert!(second.cached);
        assert_eq!(first.value, second.value);
        assert_eq!(first.occurrences, second.occurrences);
    }

    #[test]
    fn eviction_keeps_answers_correct() {
        let ws = WeightedString::uniform(b"abcabcabc".to_vec(), 1.0);
        let u = GlobalUtility::sum_of_sums();
        let mut bsl = Bsl2::new(ws.clone(), u, 2, 6);
        let pats: Vec<&[u8]> = vec![b"a", b"b", b"c", b"ab", b"bc", b"a", b"abc"];
        for pat in pats {
            let a = bsl.query(pat);
            assert_eq!(a.occurrences, u.brute_force(&ws, pat).count(), "{pat:?}");
        }
    }
}
