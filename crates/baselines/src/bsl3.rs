//! BSL3: Top-K-seen-so-far query caching.
//!
//! Caches the utilities of the `K` most *frequently* queried patterns.
//! Query counts of cached patterns live in a hash map; eviction picks the
//! minimum count through a lazily-cleaned min-heap (the paper's
//! "auxiliary data structure which offers the functionality of a min-heap
//! on substring frequency and of a hash table").

use crate::common::{BaselineAnswer, QueryBaseline, TextBackend};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use usi_strings::{FxHashMap, GlobalUtility, UtilityAccumulator, WeightedString};

type Key = (u32, u64);

/// The frequency-cache baseline with exact query counts.
#[derive(Debug, Clone)]
pub struct Bsl3 {
    backend: TextBackend,
    k: usize,
    /// key → (query count, cached utility)
    cache: FxHashMap<Key, (u64, UtilityAccumulator)>,
    /// lazy min-heap of (count, key)
    heap: BinaryHeap<Reverse<(u64, Key)>>,
}

impl Bsl3 {
    /// Builds the substrate with a `k`-entry frequency cache.
    pub fn new(ws: WeightedString, utility: GlobalUtility, k: usize, seed: u64) -> Self {
        Self {
            backend: TextBackend::new(ws, utility, seed),
            k: k.max(1),
            cache: FxHashMap::default(),
            heap: BinaryHeap::new(),
        }
    }

    fn pop_true_min(&mut self) -> Option<(u64, Key)> {
        while let Some(&Reverse((count, key))) = self.heap.peek() {
            match self.cache.get(&key) {
                Some(&(current, _)) if current == count => return Some((count, key)),
                _ => {
                    self.heap.pop();
                }
            }
        }
        None
    }
}

impl QueryBaseline for Bsl3 {
    fn name(&self) -> &'static str {
        "BSL3"
    }

    fn query(&mut self, pattern: &[u8]) -> BaselineAnswer {
        let key = self.backend.key(pattern);
        if let Some((count, acc)) = self.cache.get_mut(&key) {
            *count += 1;
            let (count, acc) = (*count, *acc);
            self.heap.push(Reverse((count, key)));
            return self.backend.answer(acc, true);
        }
        let acc = self.backend.compute(pattern);
        if self.cache.len() < self.k {
            self.cache.insert(key, (1, acc));
            self.heap.push(Reverse((1, key)));
        } else if let Some((min_count, min_key)) = self.pop_true_min() {
            // replace the least frequently queried entry; the newcomer
            // starts at min + 1 (SpaceSaving-style) so it is not
            // immediately evicted by the next miss
            self.heap.pop();
            self.cache.remove(&min_key);
            self.cache.insert(key, (min_count + 1, acc));
            self.heap.push(Reverse((min_count + 1, key)));
        }
        self.backend.answer(acc, false)
    }

    fn index_size(&self) -> usize {
        self.backend.base_size()
            + self.cache.capacity() * (std::mem::size_of::<(Key, (u64, UtilityAccumulator))>() + 1)
            + self.heap.len() * std::mem::size_of::<Reverse<(u64, Key)>>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hot_queries_stay_cached() {
        let ws = WeightedString::uniform(b"abracadabra".repeat(4), 1.0);
        let mut bsl = Bsl3::new(ws, GlobalUtility::sum_of_sums(), 2, 7);
        // make "abra" hot
        for _ in 0..5 {
            bsl.query(b"abra");
        }
        // a burst of one-off queries must not evict it
        for pat in [&b"ac"[..], b"ad", b"br", b"ca", b"da"] {
            bsl.query(pat);
        }
        assert!(bsl.query(b"abra").cached);
    }

    #[test]
    fn answers_always_exact() {
        let ws = WeightedString::uniform(b"aabbaabb".to_vec(), 2.0);
        let u = GlobalUtility::sum_of_sums();
        let mut bsl = Bsl3::new(ws.clone(), u, 2, 8);
        for pat in [&b"a"[..], b"aa", b"ab", b"b", b"bb", b"a", b"ab", b"zz"] {
            let a = bsl.query(pat);
            let want = u.brute_force(&ws, pat);
            assert_eq!(a.occurrences, want.count(), "{pat:?}");
            assert_eq!(a.value, want.finish(u.aggregator), "{pat:?}");
        }
    }
}
