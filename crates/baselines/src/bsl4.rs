//! BSL4: space-efficient Top-K-seen-so-far query caching.
//!
//! Like BSL3, but the query-frequency bookkeeping uses a count-min
//! sketch (as in HeavyKeeper \[24\]) instead of exact per-key counts, so
//! the auxiliary state is `O(sketch)` rather than one counter per cached
//! key. Eviction candidates are ranked by their sketch estimates through
//! a lazily-refreshed min-heap.

use crate::common::{BaselineAnswer, QueryBaseline, TextBackend};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use usi_streams::CmSketch;
use usi_strings::{FxHashMap, GlobalUtility, UtilityAccumulator, WeightedString};

type Key = (u32, u64);

#[inline]
fn sketch_item(key: Key) -> u64 {
    (key.0 as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ key.1
}

/// The sketch-based frequency-cache baseline.
#[derive(Debug, Clone)]
pub struct Bsl4 {
    backend: TextBackend,
    k: usize,
    sketch: CmSketch,
    cache: FxHashMap<Key, UtilityAccumulator>,
    /// lazy min-heap of (estimate at push time, key)
    heap: BinaryHeap<Reverse<(u64, Key)>>,
}

impl Bsl4 {
    /// Builds the substrate with a `k`-entry cache and a sketch sized to
    /// `4k` counters × 4 rows.
    pub fn new(ws: WeightedString, utility: GlobalUtility, k: usize, seed: u64) -> Self {
        let k = k.max(1);
        Self {
            backend: TextBackend::new(ws, utility, seed),
            k,
            sketch: CmSketch::new((4 * k).max(64), 4, seed ^ 0xb514),
            cache: FxHashMap::default(),
            heap: BinaryHeap::new(),
        }
    }

    /// Pops the cached key with the smallest *current* sketch estimate,
    /// lazily refreshing stale heap entries.
    fn pop_min_estimate(&mut self) -> Option<Key> {
        while let Some(Reverse((stale_est, key))) = self.heap.pop() {
            if !self.cache.contains_key(&key) {
                continue;
            }
            let current = self.sketch.estimate(sketch_item(key));
            if current > stale_est {
                // estimate grew since the entry was pushed: refresh it
                self.heap.push(Reverse((current, key)));
                continue;
            }
            return Some(key);
        }
        None
    }
}

impl QueryBaseline for Bsl4 {
    fn name(&self) -> &'static str {
        "BSL4"
    }

    fn query(&mut self, pattern: &[u8]) -> BaselineAnswer {
        let key = self.backend.key(pattern);
        self.sketch.insert(sketch_item(key));
        if let Some(acc) = self.cache.get(&key) {
            let acc = *acc;
            return self.backend.answer(acc, true);
        }
        let acc = self.backend.compute(pattern);
        if self.cache.len() < self.k {
            self.cache.insert(key, acc);
            self.heap.push(Reverse((self.sketch.estimate(sketch_item(key)), key)));
        } else {
            let est_new = self.sketch.estimate(sketch_item(key));
            if let Some(min_key) = self.pop_min_estimate() {
                let est_min = self.sketch.estimate(sketch_item(min_key));
                if est_new >= est_min {
                    self.cache.remove(&min_key);
                    self.cache.insert(key, acc);
                    self.heap.push(Reverse((est_new, key)));
                } else {
                    self.heap.push(Reverse((est_min, min_key)));
                }
            }
        }
        self.backend.answer(acc, false)
    }

    fn index_size(&self) -> usize {
        self.backend.base_size()
            + self.sketch.state_bytes()
            + self.cache.capacity() * (std::mem::size_of::<(Key, UtilityAccumulator)>() + 1)
            + self.heap.len() * std::mem::size_of::<Reverse<(u64, Key)>>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hot_queries_get_cached_eventually() {
        let ws = WeightedString::uniform(b"bananabanana".repeat(4), 1.0);
        let mut bsl = Bsl4::new(ws, GlobalUtility::sum_of_sums(), 2, 9);
        for _ in 0..10 {
            bsl.query(b"ana");
        }
        assert!(bsl.query(b"ana").cached);
    }

    #[test]
    fn answers_always_exact_under_churn() {
        let ws = WeightedString::uniform(b"abcdabcd".to_vec(), 1.5);
        let u = GlobalUtility::sum_of_sums();
        let mut bsl = Bsl4::new(ws.clone(), u, 2, 10);
        let pats: Vec<&[u8]> =
            vec![b"a", b"b", b"c", b"d", b"ab", b"bc", b"cd", b"da", b"a", b"ab", b"abcd", b"zz"];
        for pat in pats {
            let a = bsl.query(pat);
            let want = u.brute_force(&ws, pat);
            assert_eq!(a.occurrences, want.count(), "{pat:?}");
            assert_eq!(a.value, want.finish(u.aggregator), "{pat:?}");
        }
    }

    #[test]
    fn cache_never_exceeds_k() {
        let ws = WeightedString::uniform(b"xyxyxyxy".to_vec(), 1.0);
        let mut bsl = Bsl4::new(ws, GlobalUtility::sum_of_sums(), 3, 11);
        for i in 0..50u8 {
            let pat = vec![b'x', b'y', i % 4 + b'a'];
            bsl.query(&pat);
        }
        assert!(bsl.cache.len() <= 3);
    }
}
