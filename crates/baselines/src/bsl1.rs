//! BSL1: no query caching.
//!
//! The straw-man from Section I ("Why is USI Challenging?"): every query
//! locates its occurrences in the suffix array and aggregates local
//! utilities through `PSW`. Exact, `O(n)` space, but `O(m log n + occ)`
//! per query — slow exactly on the frequent patterns users care about.

use crate::common::{BaselineAnswer, QueryBaseline, TextBackend};
use usi_strings::{GlobalUtility, WeightedString};

/// The no-cache baseline.
#[derive(Debug, Clone)]
pub struct Bsl1 {
    backend: TextBackend,
}

impl Bsl1 {
    /// Builds the SA + PSW substrate.
    pub fn new(ws: WeightedString, utility: GlobalUtility, seed: u64) -> Self {
        Self { backend: TextBackend::new(ws, utility, seed) }
    }
}

impl QueryBaseline for Bsl1 {
    fn name(&self) -> &'static str {
        "BSL1"
    }

    fn query(&mut self, pattern: &[u8]) -> BaselineAnswer {
        let acc = self.backend.compute(pattern);
        self.backend.answer(acc, false)
    }

    fn index_size(&self) -> usize {
        self.backend.base_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn answers_are_exact_and_never_cached() {
        let ws = WeightedString::uniform(b"banana".repeat(5), 1.0);
        let u = GlobalUtility::sum_of_sums();
        let mut bsl = Bsl1::new(ws.clone(), u, 3);
        for _ in 0..3 {
            let a = bsl.query(b"ana");
            assert!(!a.cached);
            assert_eq!(a.occurrences, u.brute_force(&ws, b"ana").count());
        }
    }
}
