//! Query-time baselines BSL1–BSL4 (paper, Section IX-C).
//!
//! No prior system solves USI, so the paper compares `USI_TOP-K` against
//! four nontrivial baselines. All four answer queries *exactly* — they
//! share the suffix-array + `PSW` substrate — and differ only in which
//! queries they can serve from a cache:
//!
//! * [`Bsl1`] — no caching: every query walks the suffix array
//!   (the "Why is USI challenging?" strawman from Section I);
//! * [`Bsl2`] — LRU: caches the `K` most *recently* queried patterns;
//! * [`Bsl3`] — Top-K-seen-so-far: caches the `K` most *frequently*
//!   queried patterns, with exact query counts in a min-heap + hash map;
//! * [`Bsl4`] — space-efficient Top-K-seen-so-far: like BSL3 but tracks
//!   query counts with a count-min sketch (as in HeavyKeeper \[24\]).
//!
//! The contrast with `USI_TOP-K` is what Fig. 6 measures: caching *query
//! history* cannot beat caching the substrings that are frequent *in the
//! text*, because those are exactly the queries whose on-the-fly
//! aggregation is slow.

pub mod bsl1;
pub mod bsl2;
pub mod bsl3;
pub mod bsl4;
pub mod common;
// The LRU implementation moved into the substrate crate so the server's
// pattern-response cache and BSL2 share one implementation; re-exported
// here so `usi_baselines::lru::LruCache` keeps working.
pub use usi_strings::lru;

pub use bsl1::Bsl1;
pub use bsl2::Bsl2;
pub use bsl3::Bsl3;
pub use bsl4::Bsl4;
pub use common::{BaselineAnswer, QueryBaseline, TextBackend};
pub use usi_strings::LruCache;
