//! Shared substrate of the query baselines: suffix array + `PSW`, plus
//! the baseline trait the experiment harness sweeps over.

use usi_strings::{
    Fingerprinter, GlobalUtility, HeapSize, LocalIndex, UtilityAccumulator, WeightedString,
};
use usi_suffix::{suffix_array, SuffixArraySearcher};

/// Result of a baseline query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BaselineAnswer {
    /// The global utility `U(P)` under the configured aggregator.
    pub value: Option<f64>,
    /// Number of occurrences of the pattern.
    pub occurrences: u64,
    /// Whether the answer came from the baseline's cache.
    pub cached: bool,
}

/// Interface shared by BSL1–BSL4 (and adapters around `UsiIndex`):
/// queries may mutate internal caches.
pub trait QueryBaseline {
    /// Report label (`"BSL1"`, …).
    fn name(&self) -> &'static str;

    /// Answers `U(P)`.
    fn query(&mut self, pattern: &[u8]) -> BaselineAnswer;

    /// Total index size in bytes (text, weights, SA, PSW, cache).
    fn index_size(&self) -> usize;
}

/// The exact query substrate all baselines share: suffix array + `PSW`
/// over the weighted string, computing `U(P)` on the fly
/// (`O(m log n + occ)`).
#[derive(Debug, Clone)]
pub struct TextBackend {
    ws: WeightedString,
    sa: Vec<u32>,
    psw: LocalIndex,
    utility: GlobalUtility,
    fingerprinter: Fingerprinter,
}

impl TextBackend {
    /// Builds SA and PSW for `ws`.
    pub fn new(ws: WeightedString, utility: GlobalUtility, fingerprint_seed: u64) -> Self {
        let sa = suffix_array(ws.text());
        let psw = utility.local_index(ws.weights());
        Self { ws, sa, psw, utility, fingerprinter: Fingerprinter::with_base(fingerprint_seed) }
    }

    /// The weighted string.
    pub fn weighted_string(&self) -> &WeightedString {
        &self.ws
    }

    /// The utility function.
    pub fn utility(&self) -> GlobalUtility {
        self.utility
    }

    /// Cache key for a pattern: `(length, Karp–Rabin fingerprint)` —
    /// the same keying the USI hash table uses.
    pub fn key(&self, pattern: &[u8]) -> (u32, u64) {
        (pattern.len() as u32, self.fingerprinter.fingerprint(pattern))
    }

    /// Computes `U(P)` from scratch via the suffix array and `PSW`.
    pub fn compute(&self, pattern: &[u8]) -> UtilityAccumulator {
        let mut acc = UtilityAccumulator::new();
        let m = pattern.len();
        if m == 0 || m > self.ws.len() {
            return acc;
        }
        let searcher = SuffixArraySearcher::new(self.ws.text(), &self.sa);
        if let Some(range) = searcher.interval(pattern) {
            for &p in &self.sa[range] {
                acc.add(self.psw.local(p as usize, m));
            }
        }
        acc
    }

    /// Finishes an accumulator under the configured aggregator.
    pub fn answer(&self, acc: UtilityAccumulator, cached: bool) -> BaselineAnswer {
        BaselineAnswer {
            value: acc.finish(self.utility.aggregator),
            occurrences: acc.count(),
            cached,
        }
    }

    /// Size of the shared structures in bytes.
    pub fn base_size(&self) -> usize {
        self.ws.text().len()
            + std::mem::size_of_val(self.ws.weights())
            + self.sa.heap_bytes()
            + self.psw.heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compute_matches_brute_force() {
        let ws = WeightedString::new(
            b"abracadabra".to_vec(),
            vec![1.0, 2.0, 0.5, 1.0, 1.5, 0.25, 1.0, 2.0, 0.5, 1.0, 3.0],
        )
        .unwrap();
        let u = GlobalUtility::sum_of_sums();
        let backend = TextBackend::new(ws.clone(), u, 1);
        for pat in [&b"a"[..], b"abra", b"bra", b"x", b"abracadabra", b""] {
            let want = u.brute_force(&ws, pat);
            let got = backend.compute(pat);
            assert_eq!(got.count(), want.count(), "{pat:?}");
            assert_eq!(got.finish(u.aggregator), want.finish(u.aggregator), "{pat:?}");
        }
    }

    #[test]
    fn keys_distinguish_lengths() {
        let ws = WeightedString::uniform(b"aaaa".to_vec(), 1.0);
        let backend = TextBackend::new(ws, GlobalUtility::sum_of_sums(), 2);
        assert_ne!(backend.key(b"a"), backend.key(b"aa"));
    }
}
