//! The metrics registry and its instruments.
//!
//! Three instrument kinds, all observation paths lock-free:
//!
//! * [`Counter`] — a monotonically increasing `AtomicU64`;
//! * [`Gauge`] — a signed `AtomicI64` that can move both ways;
//! * [`Histogram`] — fixed upper bounds chosen at registration
//!   (log-spaced for latencies, see [`exponential_buckets`]), one
//!   atomic count per bucket plus an atomic `f64`-bits sum and a total
//!   count, so averages and Prometheus quantile estimation both work.
//!
//! Labels: a *vec* family ([`CounterVec`], [`GaugeVec`],
//! [`HistogramVec`]) maps a label-value tuple to a shared instrument
//! handle. Resolving a tuple ([`CounterVec::with`]) takes the family
//! lock and allocates **only the first time that tuple is seen**;
//! callers on hot paths resolve once and keep the `Arc` handle, so an
//! observation is never more than a few relaxed atomic ops.
//!
//! Registration is idempotent: re-registering a name returns the
//! existing family (handles from both call sites observe the same
//! series), and mismatched kinds panic — that is a programming error,
//! not a runtime condition.

use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Process-wide kill switch: when off, every observation (counter add,
/// gauge move, histogram observe, span record) short-circuits to one
/// relaxed load. Registration and encoding still work — `/metrics`
/// serves the frozen values. The operational escape hatch when
/// telemetry itself is under suspicion, and the control variable the
/// `metrics_overhead` bench flips to measure the instrumented-vs-not
/// delta on an otherwise identical code path.
static ENABLED: AtomicBool = AtomicBool::new(true);

/// Turns all observation globally on or off (default: on).
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether observations are currently recorded.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Increments by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increments by `n`.
    pub fn add(&self, n: u64) {
        if !enabled() {
            return;
        }
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that goes up and down.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Increments by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Decrements by one.
    pub fn dec(&self) {
        self.add(-1);
    }

    /// Adds `n` (may be negative).
    pub fn add(&self, n: i64) {
        if !enabled() {
            return;
        }
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Sets the value outright.
    pub fn set(&self, v: i64) {
        if !enabled() {
            return;
        }
        self.value.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket histogram: per-bucket atomic counts plus sum and
/// count. Bucket semantics follow Prometheus: an observation `v` lands
/// in the first bucket whose upper bound satisfies `v <= le`
/// (inclusive), or the implicit `+Inf` bucket past the last bound.
#[derive(Debug)]
pub struct Histogram {
    /// Strictly increasing upper bounds; the `+Inf` bucket is implicit.
    bounds: Box<[f64]>,
    /// One count per bound, plus the `+Inf` bucket at the end.
    /// **Not** cumulative in memory; the encoder accumulates.
    buckets: Box<[AtomicU64]>,
    /// Sum of all observations, stored as `f64` bits (CAS-updated).
    sum_bits: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    fn new(bounds: &[f64]) -> Self {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        let buckets = (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect();
        Self {
            bounds: bounds.into(),
            buckets,
            sum_bits: AtomicU64::new(0f64.to_bits()),
            count: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    pub fn observe(&self, v: f64) {
        if !enabled() {
            return;
        }
        // bounds are few (≲ 20): a linear scan beats binary search and
        // never branches unpredictably for the common low buckets
        let idx = self.bounds.iter().position(|&b| v <= b).unwrap_or(self.bounds.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let new = (f64::from_bits(cur) + v).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                new,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Records a duration in **seconds** (the Prometheus base unit).
    pub fn observe_duration(&self, d: Duration) {
        self.observe(d.as_secs_f64());
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// The configured upper bounds (without the implicit `+Inf`).
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Cumulative count of observations `<=` each bound, then `+Inf`
    /// last — exactly the series `_bucket{le=…}` exposes.
    pub fn cumulative_buckets(&self) -> Vec<u64> {
        let mut total = 0u64;
        self.buckets
            .iter()
            .map(|b| {
                total += b.load(Ordering::Relaxed);
                total
            })
            .collect()
    }
}

/// `count` log-spaced bounds: `start, start·factor, start·factor², …` —
/// the standard shape for latency histograms (constant relative error).
///
/// # Panics
/// Panics unless `start > 0`, `factor > 1` and `count >= 1`.
pub fn exponential_buckets(start: f64, factor: f64, count: usize) -> Vec<f64> {
    assert!(start > 0.0 && factor > 1.0 && count >= 1, "bad exponential bucket spec");
    let mut bounds = Vec::with_capacity(count);
    let mut b = start;
    for _ in 0..count {
        bounds.push(b);
        b *= factor;
    }
    bounds
}

/// `count` evenly spaced bounds starting at `start` — for sizes and
/// widths rather than latencies.
///
/// # Panics
/// Panics unless `width > 0` and `count >= 1`.
pub fn linear_buckets(start: f64, width: f64, count: usize) -> Vec<f64> {
    assert!(width > 0.0 && count >= 1, "bad linear bucket spec");
    (0..count).map(|i| start + width * i as f64).collect()
}

/// The default latency bounds used across the stack: 100 µs … ~26 s,
/// doubling — 18 buckets plus `+Inf`.
pub fn default_latency_buckets() -> Vec<f64> {
    exponential_buckets(0.000_1, 2.0, 18)
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Counter,
    Gauge,
    Histogram,
}

impl Kind {
    fn type_name(self) -> &'static str {
        match self {
            Self::Counter => "counter",
            Self::Gauge => "gauge",
            Self::Histogram => "histogram",
        }
    }
}

#[derive(Debug)]
enum Instrument {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// One metric family: a name, a kind, label names, and one instrument
/// per label-value tuple (a single anonymous tuple when unlabeled).
#[derive(Debug)]
struct Family {
    name: String,
    help: String,
    kind: Kind,
    label_names: Vec<String>,
    /// Histogram families share one bucket layout.
    buckets: Vec<f64>,
    children: Mutex<Vec<(Vec<String>, Instrument)>>,
}

impl Family {
    /// Returns the child for `values`, creating it on first sight.
    /// Lookup compares `&str`s in place — no allocation on the hit
    /// path; the miss path allocates once per distinct tuple, ever.
    fn child(&self, values: &[&str]) -> Instrument {
        assert_eq!(
            values.len(),
            self.label_names.len(),
            "{}: {} label values for {} label names",
            self.name,
            values.len(),
            self.label_names.len()
        );
        let mut children = self.children.lock().expect("metric family lock poisoned");
        if let Some((_, instrument)) = children
            .iter()
            .find(|(have, _)| have.iter().map(String::as_str).eq(values.iter().copied()))
        {
            return clone_instrument(instrument);
        }
        let instrument = match self.kind {
            Kind::Counter => Instrument::Counter(Arc::new(Counter::default())),
            Kind::Gauge => Instrument::Gauge(Arc::new(Gauge::default())),
            Kind::Histogram => Instrument::Histogram(Arc::new(Histogram::new(&self.buckets))),
        };
        children
            .push((values.iter().map(|&v| v.to_string()).collect(), clone_instrument(&instrument)));
        instrument
    }
}

fn clone_instrument(i: &Instrument) -> Instrument {
    match i {
        Instrument::Counter(c) => Instrument::Counter(Arc::clone(c)),
        Instrument::Gauge(g) => Instrument::Gauge(Arc::clone(g)),
        Instrument::Histogram(h) => Instrument::Histogram(Arc::clone(h)),
    }
}

/// A labeled counter family; see [`Registry::counter_vec`].
#[derive(Debug, Clone)]
pub struct CounterVec {
    family: Arc<Family>,
}

impl CounterVec {
    /// The counter for this label-value tuple (created on first use).
    pub fn with(&self, values: &[&str]) -> Arc<Counter> {
        match self.family.child(values) {
            Instrument::Counter(c) => c,
            _ => unreachable!("counter family holds counters"),
        }
    }
}

/// A labeled gauge family; see [`Registry::gauge_vec`].
#[derive(Debug, Clone)]
pub struct GaugeVec {
    family: Arc<Family>,
}

impl GaugeVec {
    /// The gauge for this label-value tuple (created on first use).
    pub fn with(&self, values: &[&str]) -> Arc<Gauge> {
        match self.family.child(values) {
            Instrument::Gauge(g) => g,
            _ => unreachable!("gauge family holds gauges"),
        }
    }
}

/// A labeled histogram family; see [`Registry::histogram_vec`].
#[derive(Debug, Clone)]
pub struct HistogramVec {
    family: Arc<Family>,
}

impl HistogramVec {
    /// The histogram for this label-value tuple (created on first use).
    pub fn with(&self, values: &[&str]) -> Arc<Histogram> {
        match self.family.child(values) {
            Instrument::Histogram(h) => h,
            _ => unreachable!("histogram family holds histograms"),
        }
    }
}

/// A metrics registry: registration, handle lookup and text-format
/// encoding. The process-global instance is [`crate::global()`]; tests
/// can build private ones.
#[derive(Debug, Default)]
pub struct Registry {
    families: Mutex<Vec<Arc<Family>>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn family(
        &self,
        name: &str,
        help: &str,
        kind: Kind,
        label_names: &[&str],
        buckets: Vec<f64>,
    ) -> Arc<Family> {
        let mut families = self.families.lock().expect("registry lock poisoned");
        if let Some(family) = families.iter().find(|f| f.name == name) {
            assert_eq!(
                family.kind,
                kind,
                "metric {name} re-registered as a {} (was a {})",
                kind.type_name(),
                family.kind.type_name()
            );
            assert!(
                family.label_names.iter().map(String::as_str).eq(label_names.iter().copied()),
                "metric {name} re-registered with different label names"
            );
            return Arc::clone(family);
        }
        let family = Arc::new(Family {
            name: name.to_string(),
            help: help.to_string(),
            kind,
            label_names: label_names.iter().map(|&l| l.to_string()).collect(),
            buckets,
            children: Mutex::new(Vec::new()),
        });
        families.push(Arc::clone(&family));
        family
    }

    /// Registers (or retrieves) an unlabeled counter.
    pub fn counter(&self, name: &str, help: &str) -> Arc<Counter> {
        match self.family(name, help, Kind::Counter, &[], Vec::new()).child(&[]) {
            Instrument::Counter(c) => c,
            _ => unreachable!(),
        }
    }

    /// Registers (or retrieves) an unlabeled gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Arc<Gauge> {
        match self.family(name, help, Kind::Gauge, &[], Vec::new()).child(&[]) {
            Instrument::Gauge(g) => g,
            _ => unreachable!(),
        }
    }

    /// Registers (or retrieves) an unlabeled histogram with the given
    /// upper bounds (`+Inf` implicit).
    pub fn histogram(&self, name: &str, help: &str, buckets: Vec<f64>) -> Arc<Histogram> {
        match self.family(name, help, Kind::Histogram, &[], buckets).child(&[]) {
            Instrument::Histogram(h) => h,
            _ => unreachable!(),
        }
    }

    /// Registers (or retrieves) a labeled counter family.
    pub fn counter_vec(&self, name: &str, help: &str, label_names: &[&str]) -> CounterVec {
        CounterVec { family: self.family(name, help, Kind::Counter, label_names, Vec::new()) }
    }

    /// Registers (or retrieves) a labeled gauge family.
    pub fn gauge_vec(&self, name: &str, help: &str, label_names: &[&str]) -> GaugeVec {
        GaugeVec { family: self.family(name, help, Kind::Gauge, label_names, Vec::new()) }
    }

    /// Registers (or retrieves) a labeled histogram family; every child
    /// shares the bucket layout.
    pub fn histogram_vec(
        &self,
        name: &str,
        help: &str,
        label_names: &[&str],
        buckets: Vec<f64>,
    ) -> HistogramVec {
        HistogramVec { family: self.family(name, help, Kind::Histogram, label_names, buckets) }
    }

    /// Encodes every family in the Prometheus text exposition format
    /// (version 0.0.4): `# HELP` and `# TYPE` per family, one sample
    /// line per child (label values sorted, so output is deterministic
    /// for a given set of observations).
    pub fn encode(&self) -> String {
        let families: Vec<Arc<Family>> =
            self.families.lock().expect("registry lock poisoned").clone();
        let mut out = String::new();
        for family in families {
            out.push_str("# HELP ");
            out.push_str(&family.name);
            out.push(' ');
            out.push_str(&family.help);
            out.push('\n');
            out.push_str("# TYPE ");
            out.push_str(&family.name);
            out.push(' ');
            out.push_str(family.kind.type_name());
            out.push('\n');
            let mut children: Vec<(Vec<String>, Instrument)> = {
                let guard = family.children.lock().expect("metric family lock poisoned");
                guard.iter().map(|(v, i)| (v.clone(), clone_instrument(i))).collect()
            };
            children.sort_by(|a, b| a.0.cmp(&b.0));
            for (values, instrument) in &children {
                match instrument {
                    Instrument::Counter(c) => {
                        sample_line(&mut out, &family.name, "", &family.label_names, values, None);
                        out.push_str(&format!(" {}\n", c.get()));
                    }
                    Instrument::Gauge(g) => {
                        sample_line(&mut out, &family.name, "", &family.label_names, values, None);
                        out.push_str(&format!(" {}\n", g.get()));
                    }
                    Instrument::Histogram(h) => {
                        let cumulative = h.cumulative_buckets();
                        for (i, &bound) in h.bounds().iter().enumerate() {
                            sample_line(
                                &mut out,
                                &family.name,
                                "_bucket",
                                &family.label_names,
                                values,
                                Some(&format_f64(bound)),
                            );
                            out.push_str(&format!(" {}\n", cumulative[i]));
                        }
                        sample_line(
                            &mut out,
                            &family.name,
                            "_bucket",
                            &family.label_names,
                            values,
                            Some("+Inf"),
                        );
                        out.push_str(&format!(" {}\n", cumulative[h.bounds().len()]));
                        sample_line(
                            &mut out,
                            &family.name,
                            "_sum",
                            &family.label_names,
                            values,
                            None,
                        );
                        out.push_str(&format!(" {}\n", format_f64(h.sum())));
                        sample_line(
                            &mut out,
                            &family.name,
                            "_count",
                            &family.label_names,
                            values,
                            None,
                        );
                        out.push_str(&format!(" {}\n", h.count()));
                    }
                }
            }
        }
        out
    }
}

/// Writes `name[suffix]{labels…}` (no trailing value) onto `out`.
fn sample_line(
    out: &mut String,
    name: &str,
    suffix: &str,
    label_names: &[String],
    values: &[String],
    le: Option<&str>,
) {
    out.push_str(name);
    out.push_str(suffix);
    let mut pairs: Vec<(&str, &str)> =
        label_names.iter().map(String::as_str).zip(values.iter().map(String::as_str)).collect();
    let le_value;
    if let Some(le) = le {
        le_value = le;
        pairs.push(("le", le_value));
    }
    if !pairs.is_empty() {
        out.push('{');
        for (i, (k, v)) in pairs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(k);
            out.push_str("=\"");
            out.push_str(&escape_label_value(v));
            out.push('"');
        }
        out.push('}');
    }
}

/// Escapes a label value per the exposition format: backslash, quote
/// and newline.
fn escape_label_value(v: &str) -> String {
    v.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

/// Formats an `f64` the way scrapers expect: integral values without a
/// fraction, everything else via Rust's shortest round-trip display.
fn format_f64(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_move() {
        let registry = Registry::new();
        let c = registry.counter("t_total", "help");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // idempotent registration returns the same underlying series
        let again = registry.counter("t_total", "help");
        again.inc();
        assert_eq!(c.get(), 6);

        let g = registry.gauge("t_gauge", "help");
        g.inc();
        g.add(10);
        g.dec();
        assert_eq!(g.get(), 10);
        g.set(-3);
        assert_eq!(g.get(), -3);
    }

    #[test]
    fn histogram_bucket_boundaries_are_inclusive() {
        let registry = Registry::new();
        let h = registry.histogram("t_seconds", "help", vec![1.0, 2.0, 4.0]);
        // exactly at a bound lands in that bound's bucket (le is <=)
        h.observe(1.0);
        h.observe(2.0);
        h.observe(4.0);
        // strictly past the last bound lands in +Inf
        h.observe(4.000001);
        // below the first bound lands in the first bucket
        h.observe(0.5);
        assert_eq!(h.cumulative_buckets(), vec![2, 3, 4, 5]);
        assert_eq!(h.count(), 5);
        assert!((h.sum() - 11.500001).abs() < 1e-9);
    }

    #[test]
    fn bucket_helpers() {
        assert_eq!(exponential_buckets(1.0, 2.0, 4), vec![1.0, 2.0, 4.0, 8.0]);
        assert_eq!(linear_buckets(0.0, 5.0, 3), vec![0.0, 5.0, 10.0]);
        let latency = default_latency_buckets();
        assert_eq!(latency.len(), 18);
        assert!(latency.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_bounds_panic() {
        Histogram::new(&[1.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "re-registered")]
    fn kind_mismatch_panics() {
        let registry = Registry::new();
        registry.counter("t_total", "help");
        registry.gauge("t_total", "help");
    }

    #[test]
    fn vec_families_reuse_handles_per_tuple() {
        let registry = Registry::new();
        let vec = registry.counter_vec("t_req_total", "help", &["route", "status"]);
        let a = vec.with(&["/x", "200"]);
        let b = vec.with(&["/x", "200"]);
        let c = vec.with(&["/x", "404"]);
        a.inc();
        b.inc();
        c.inc();
        assert_eq!(a.get(), 2, "same tuple must resolve to the same counter");
        assert_eq!(c.get(), 1);
    }

    #[test]
    fn encode_renders_prometheus_text() {
        let registry = Registry::new();
        let vec = registry.counter_vec("t_req_total", "requests served", &["route"]);
        vec.with(&["/a\"b\\c\nd"]).add(3);
        registry.gauge("t_open", "open connections").set(7);
        let h = registry.histogram("t_lat_seconds", "latency", vec![0.1, 1.0]);
        h.observe(0.05);
        h.observe(0.5);
        h.observe(5.0);
        let text = registry.encode();
        assert!(text.contains("# HELP t_req_total requests served\n"), "{text}");
        assert!(text.contains("# TYPE t_req_total counter\n"), "{text}");
        assert!(text.contains("t_req_total{route=\"/a\\\"b\\\\c\\nd\"} 3\n"), "{text}");
        assert!(text.contains("t_open 7\n"), "{text}");
        assert!(text.contains("t_lat_seconds_bucket{le=\"0.1\"} 1\n"), "{text}");
        assert!(text.contains("t_lat_seconds_bucket{le=\"1\"} 2\n"), "{text}");
        assert!(text.contains("t_lat_seconds_bucket{le=\"+Inf\"} 3\n"), "{text}");
        assert!(text.contains("t_lat_seconds_sum 5.55\n"), "{text}");
        assert!(text.contains("t_lat_seconds_count 3\n"), "{text}");
    }

    #[test]
    fn label_values_round_trip_escaped() {
        // each hazardous character alone, and all of them together,
        // must escape to exactly what the exposition format specifies
        let cases = [
            (r"back\slash", r"back\\slash"),
            ("quo\"te", "quo\\\"te"),
            ("new\nline", "new\\nline"),
            ("\\\"\n", "\\\\\\\"\\n"),
            ("plain", "plain"),
        ];
        for (raw, escaped) in cases {
            assert_eq!(escape_label_value(raw), escaped, "escaping {raw:?}");
            let registry = Registry::new();
            let vec = registry.counter_vec("t_esc_total", "help", &["v"]);
            vec.with(&[raw]).inc();
            let text = registry.encode();
            let expected = format!("t_esc_total{{v=\"{escaped}\"}} 1\n");
            assert!(text.contains(&expected), "encoding {raw:?}: {text}");
            // the escaped form is reversible — a scraper un-escaping the
            // value recovers the original label exactly
            let unescaped =
                escaped.replace("\\n", "\n").replace("\\\"", "\"").replace("\\\\", "\\");
            // (unescape order differs from escape order; verify via the
            // stronger property below instead when backslashes overlap)
            if !raw.contains('\\') {
                assert_eq!(unescaped, raw, "round-trip of {raw:?}");
            }
        }
        // proper left-to-right unescape round-trips even the mixed case
        let raw = "\\\"\n mixed \\n";
        let escaped = escape_label_value(raw);
        let mut restored = String::new();
        let mut chars = escaped.chars();
        while let Some(c) = chars.next() {
            if c == '\\' {
                match chars.next() {
                    Some('\\') => restored.push('\\'),
                    Some('"') => restored.push('"'),
                    Some('n') => restored.push('\n'),
                    other => panic!("dangling escape {other:?} in {escaped:?}"),
                }
            } else {
                restored.push(c);
            }
        }
        assert_eq!(restored, raw, "escaped form must be unambiguous");
    }

    #[test]
    fn inf_bucket_is_always_emitted_and_equals_count() {
        let registry = Registry::new();
        // no observations at all: +Inf must still appear, at zero
        let empty = registry.histogram("t_empty_seconds", "help", vec![0.5]);
        let _ = empty;
        // observations entirely past the last bound: only +Inf grows
        let hot = registry.histogram("t_hot_seconds", "help", vec![0.001, 0.01]);
        hot.observe(5.0);
        hot.observe(9.0);
        // labeled children each carry their own +Inf
        let vec = registry.histogram_vec("t_vec_seconds", "help", &["route"], vec![1.0]);
        vec.with(&["/a"]).observe(0.5);
        vec.with(&["/b"]).observe(2.0);
        let text = registry.encode();
        assert!(text.contains("t_empty_seconds_bucket{le=\"+Inf\"} 0\n"), "{text}");
        assert!(text.contains("t_empty_seconds_count 0\n"), "{text}");
        assert!(text.contains("t_hot_seconds_bucket{le=\"0.001\"} 0\n"), "{text}");
        assert!(text.contains("t_hot_seconds_bucket{le=\"+Inf\"} 2\n"), "{text}");
        assert!(text.contains("t_hot_seconds_count 2\n"), "{text}");
        for route in ["/a", "/b"] {
            let inf = format!("t_vec_seconds_bucket{{route=\"{route}\",le=\"+Inf\"}} 1\n");
            assert!(text.contains(&inf), "{text}");
        }
        // structural invariant: each child renders +Inf, then _sum,
        // then _count — and the +Inf sample always equals _count
        let lines: Vec<&str> = text.lines().collect();
        let mut seen = 0;
        for (i, line) in lines.iter().enumerate() {
            if !line.contains("le=\"+Inf\"") {
                continue;
            }
            seen += 1;
            let inf_value = line.rsplit(' ').next().unwrap();
            let count_line = lines[i + 2];
            assert!(count_line.contains("_count"), "expected _count two lines after {line:?}");
            assert_eq!(
                count_line.rsplit(' ').next().unwrap(),
                inf_value,
                "+Inf must equal _count: {line:?} vs {count_line:?}"
            );
        }
        assert_eq!(seen, 4, "one +Inf per histogram child: {text}");
    }

    #[test]
    fn concurrent_observations_are_exact() {
        let registry = Registry::new();
        let counter = registry.counter("t_conc_total", "help");
        let gauge = registry.gauge("t_conc_gauge", "help");
        let histogram = registry.histogram("t_conc_seconds", "help", vec![8.0, 64.0, 512.0]);
        const THREADS: usize = 8;
        const PER_THREAD: usize = 10_000;
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let counter = &counter;
                let gauge = &gauge;
                let histogram = &histogram;
                scope.spawn(move || {
                    for i in 0..PER_THREAD {
                        counter.inc();
                        gauge.add(if i % 2 == 0 { 1 } else { -1 });
                        // integral values: the CAS'd f64 sum is exact
                        histogram.observe(((t * PER_THREAD + i) % 1024) as f64);
                    }
                });
            }
        });
        let total = (THREADS * PER_THREAD) as u64;
        assert_eq!(counter.get(), total);
        assert_eq!(gauge.get(), 0);
        assert_eq!(histogram.count(), total);
        let expected_sum: f64 = (0..THREADS * PER_THREAD).map(|v| (v % 1024) as f64).sum();
        assert_eq!(histogram.sum(), expected_sum, "CAS'd sum must not lose updates");
        let cumulative = histogram.cumulative_buckets();
        assert_eq!(*cumulative.last().unwrap(), total);
        assert!(cumulative.windows(2).all(|w| w[0] <= w[1]));
    }
}
