//! The flight recorder: a bounded ring of complete stage trees for
//! requests that were **slow or errored** — the requests worth a
//! post-mortem.
//!
//! The span ring ([`crate::Tracer`]) sees every request and therefore
//! forgets quickly under load; the flight recorder only admits requests
//! the HTTP layer flags (duration ≥ `--flight-slow-ms`, or status ≥
//! 400), so the interesting ones survive long enough for an operator to
//! fetch them via `GET /debug/requests` or `GET /v1/trace/{trace_id}`.
//!
//! Each [`FlightRecord`] is self-contained: the root `http.request`
//! span plus every stage span (queue-wait, parse, engine, serialize,
//! write) with their starts, durations and fields — no joins against
//! the span ring needed, and eviction there cannot truncate a recorded
//! tree here.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::trace::{Span, TraceId};

/// One slow or errored request: its identity, root span and complete
/// stage breakdown.
#[derive(Debug, Clone)]
pub struct FlightRecord {
    /// The request id (`X-Request-Id` / access-log `request_id`).
    pub trace_id: TraceId,
    /// The `http.request` root span (method, path, status fields).
    pub root: Span,
    /// Stage spans in recording order (queue, parse, engine, …).
    pub stages: Vec<Span>,
}

/// A bounded ring of [`FlightRecord`]s. When full, the oldest record is
/// evicted and counted in [`FlightRecorder::dropped`].
#[derive(Debug)]
pub struct FlightRecorder {
    capacity: AtomicUsize,
    ring: Mutex<VecDeque<FlightRecord>>,
    dropped: AtomicU64,
    /// Mirror of [`FlightRecorder::dropped`] in the metrics registry
    /// (`usi_flight_dropped_total`), set once for the global recorder.
    drop_counter: OnceLock<Arc<crate::Counter>>,
}

impl FlightRecorder {
    /// Ring capacity of the process-global recorder ([`crate::flight()`]).
    /// Records carry whole stage trees, so the ring is kept smaller
    /// than the span ring.
    pub const DEFAULT_CAPACITY: usize = 64;

    /// A recorder holding at most `capacity` records (at least one).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: AtomicUsize::new(capacity.max(1)),
            ring: Mutex::new(VecDeque::with_capacity(capacity.max(1))),
            dropped: AtomicU64::new(0),
            drop_counter: OnceLock::new(),
        }
    }

    /// Current ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity.load(Ordering::Relaxed)
    }

    /// Resizes the ring, evicting oldest records if it shrinks below
    /// its current length.
    pub fn set_capacity(&self, capacity: usize) {
        let capacity = capacity.max(1);
        let mut ring = self.ring.lock().expect("flight lock poisoned");
        self.capacity.store(capacity, Ordering::Relaxed);
        while ring.len() > capacity {
            ring.pop_front();
            self.count_drop();
        }
    }

    /// Publishes drops as a registry counter as well (the global
    /// recorder wires `usi_flight_dropped_total` here).
    pub fn set_drop_counter(&self, counter: Arc<crate::Counter>) {
        let _ = self.drop_counter.set(counter);
    }

    fn count_drop(&self) {
        self.dropped.fetch_add(1, Ordering::Relaxed);
        if let Some(counter) = self.drop_counter.get() {
            counter.inc();
        }
    }

    /// Admits a record, evicting the oldest if the ring is full. A
    /// no-op while the global kill switch ([`crate::set_enabled`]) is
    /// off.
    pub fn record(&self, record: FlightRecord) {
        if !crate::enabled() {
            return;
        }
        let capacity = self.capacity.load(Ordering::Relaxed);
        let mut ring = self.ring.lock().expect("flight lock poisoned");
        if ring.len() == capacity {
            ring.pop_front();
            self.count_drop();
        }
        ring.push_back(record);
    }

    /// A non-destructive copy of the ring, oldest first.
    pub fn snapshot(&self) -> Vec<FlightRecord> {
        self.ring.lock().expect("flight lock poisoned").iter().cloned().collect()
    }

    /// Looks up one request by id — the fast path behind
    /// `GET /v1/trace/{trace_id}`. Scans newest-first so a re-recorded
    /// id (impossible in practice, ids are unique) would return the
    /// latest tree.
    pub fn find(&self, id: TraceId) -> Option<FlightRecord> {
        self.ring
            .lock()
            .expect("flight lock poisoned")
            .iter()
            .rev()
            .find(|r| r.trace_id == id)
            .cloned()
    }

    /// Empties the ring (tests).
    pub fn clear(&self) {
        self.ring.lock().expect("flight lock poisoned").clear();
    }

    /// How many records have been evicted unseen since startup.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::SpanGuard;

    fn record(name: &str) -> FlightRecord {
        let id = TraceId::generate();
        FlightRecord {
            trace_id: id,
            root: SpanGuard::start("http.request").trace(id).field("path", name).finish(),
            stages: vec![
                SpanGuard::start("parse").trace(id).parent("http.request").finish(),
                SpanGuard::start("engine").trace(id).parent("http.request").finish(),
            ],
        }
    }

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let recorder = FlightRecorder::new(2);
        let a = record("/a");
        let b = record("/b");
        let c = record("/c");
        let (ida, idb, idc) = (a.trace_id, b.trace_id, c.trace_id);
        recorder.record(a);
        recorder.record(b);
        recorder.record(c);
        let snap = recorder.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].trace_id, idb);
        assert_eq!(snap[1].trace_id, idc);
        assert_eq!(recorder.dropped(), 1);
        assert!(recorder.find(ida).is_none(), "evicted record is gone");
        let found = recorder.find(idc).expect("still resident");
        assert_eq!(found.stages.len(), 2);
    }

    #[test]
    fn set_capacity_shrinks_the_ring() {
        let recorder = FlightRecorder::new(8);
        for i in 0..8 {
            recorder.record(record(&format!("/{i}")));
        }
        recorder.set_capacity(3);
        assert_eq!(recorder.capacity(), 3);
        assert_eq!(recorder.snapshot().len(), 3);
        assert_eq!(recorder.dropped(), 5);
    }

    #[test]
    fn records_are_self_contained_trees() {
        let recorder = FlightRecorder::new(4);
        let r = record("/slow");
        let id = r.trace_id;
        recorder.record(r);
        let got = recorder.find(id).expect("recorded");
        assert_eq!(got.root.name, "http.request");
        assert!(got.root.trace_id == Some(id));
        assert!(got.stages.iter().all(|s| s.trace_id == Some(id)));
        assert!(got.stages.iter().all(|s| s.parent.as_deref() == Some("http.request")));
    }
}
