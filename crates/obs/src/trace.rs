//! Request-scoped tracing: unique [`TraceId`]s, [`Span`]s that know
//! which request they belong to, a cheap [`SpanGuard`] builder, and a
//! bounded ring of recent spans drained via `GET /v1/trace`.
//!
//! Two recording paths exist:
//!
//! * [`Tracer::record`] appends straight to the ring — background
//!   operations (ingest seals, index builds) that belong to no request.
//! * [`record_stage`] appends to the **current request's** stage
//!   collector, a thread-local the HTTP layer opens with
//!   [`begin_request`] and drains with [`end_request`]. Stages recorded
//!   anywhere down the stack (pool queue wait, engine time in the
//!   catalog) land in the same tree without threading a context object
//!   through every signature; requests are served start-to-finish on
//!   one worker thread, so a thread-local is exactly scoped. Outside a
//!   request the stage falls back to the ring.
//!
//! Recording locks a `Mutex` around the ring — spans are per-request
//! events (not per-query), so contention is negligible next to the I/O
//! they describe.

use std::borrow::Cow;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// A per-process-unique request identity, rendered as 16 hex digits
/// (the `X-Request-Id` header, access-log `request_id` fields and
/// `GET /v1/trace/{trace_id}` all speak this form).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceId(u64);

/// SplitMix64 finalizer: a bijection on `u64`, so distinct inputs give
/// distinct ids — uniqueness within a process is structural, not
/// probabilistic.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl TraceId {
    /// Generates the next id: one relaxed atomic increment plus a
    /// SplitMix64 mix — lock-free and unique within the process, with
    /// a per-process random seed so ids are not guessable across
    /// restarts.
    pub fn generate() -> Self {
        static SEED: OnceLock<u64> = OnceLock::new();
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let seed = *SEED.get_or_init(|| {
            // std's per-process SipHash keys are the one entropy source
            // a std-only crate has; hashing a constant extracts them
            use std::hash::{BuildHasher, Hasher};
            std::collections::hash_map::RandomState::new().build_hasher().finish()
        });
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        Self(splitmix64(seed.wrapping_add(n)))
    }

    /// Parses the 16-hex-digit form produced by `Display`.
    pub fn parse(s: &str) -> Option<Self> {
        if s.is_empty() || s.len() > 16 {
            return None;
        }
        u64::from_str_radix(s, 16).ok().map(Self)
    }

    /// The raw value (tests, alternative encodings).
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for TraceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// One completed operation: a name, when it started, how long it took,
/// which request it belonged to (if any), and free-form key/value
/// fields (route, doc id, status, …).
#[derive(Debug, Clone)]
pub struct Span {
    /// Operation name, e.g. `http.request` or `ingest.seal`. A `Cow`
    /// because every hot-path name is a literal — building a stage span
    /// must not allocate.
    pub name: Cow<'static, str>,
    /// The request this span belongs to; `None` for background work.
    pub trace_id: Option<TraceId>,
    /// Name of the enclosing span within the trace; `None` for roots.
    pub parent: Option<Cow<'static, str>>,
    /// Start time in milliseconds since the process epoch.
    pub start_ms: u64,
    /// Start time in microseconds since the process epoch — orders
    /// sub-millisecond stages within one request's tree.
    pub start_us: u64,
    /// Duration in microseconds.
    pub duration_us: u64,
    /// Free-form context fields, in recording order. Keys are `Cow`s
    /// for the same reason as names: hot-path keys are literals.
    pub fields: Vec<(Cow<'static, str>, String)>,
}

impl Span {
    /// Builds a span from a start [`Instant`] captured with
    /// [`Instant::now`] when the operation began; duration is measured
    /// here, so call this at completion.
    pub fn since(
        name: impl Into<Cow<'static, str>>,
        started: Instant,
        fields: Vec<(Cow<'static, str>, String)>,
    ) -> Self {
        Self::with_duration(name, started, started.elapsed(), fields)
    }

    /// Builds a span from an explicit start and duration (when the
    /// caller already measured, e.g. to reuse one `elapsed()` for both
    /// a histogram and the trace).
    pub fn with_duration(
        name: impl Into<Cow<'static, str>>,
        started: Instant,
        duration: Duration,
        fields: Vec<(Cow<'static, str>, String)>,
    ) -> Self {
        let start_us = started.saturating_duration_since(crate::process_start()).as_micros() as u64;
        Self {
            name: name.into(),
            trace_id: None,
            parent: None,
            start_ms: start_us / 1000,
            start_us,
            duration_us: duration.as_micros() as u64,
            fields,
        }
    }
}

/// A builder for [`Span`]s that starts the clock when created and stops
/// it at [`SpanGuard::finish`] — the cheap way to instrument a scope:
///
/// ```
/// # use usi_obs::SpanGuard;
/// let span = SpanGuard::start("engine").field("doc", "alpha").finish();
/// assert_eq!(span.name, "engine");
/// ```
#[derive(Debug)]
pub struct SpanGuard {
    name: &'static str,
    started: Instant,
    trace_id: Option<TraceId>,
    parent: Option<Cow<'static, str>>,
    fields: Vec<(Cow<'static, str>, String)>,
}

impl SpanGuard {
    /// Starts timing now.
    pub fn start(name: &'static str) -> Self {
        Self::since(name, Instant::now())
    }

    /// Starts from an instant the caller already captured.
    pub fn since(name: &'static str, started: Instant) -> Self {
        Self { name, started, trace_id: None, parent: None, fields: Vec::new() }
    }

    /// Tags the span with a request id (usually left to
    /// [`record_stage`], which stamps the current request's id).
    pub fn trace(mut self, id: TraceId) -> Self {
        self.trace_id = Some(id);
        self
    }

    /// Names the enclosing span within the trace.
    pub fn parent(mut self, parent: impl Into<Cow<'static, str>>) -> Self {
        self.parent = Some(parent.into());
        self
    }

    /// Appends one context field.
    pub fn field(mut self, key: impl Into<Cow<'static, str>>, value: impl Into<String>) -> Self {
        self.fields.push((key.into(), value.into()));
        self
    }

    /// Stops the clock and builds the span.
    pub fn finish(self) -> Span {
        let elapsed = self.started.elapsed();
        self.finish_with(elapsed)
    }

    /// Builds the span with an explicitly measured duration.
    pub fn finish_with(self, duration: Duration) -> Span {
        let mut span = Span::with_duration(self.name, self.started, duration, self.fields);
        span.trace_id = self.trace_id;
        span.parent = self.parent;
        span
    }
}

thread_local! {
    /// The stage collector of the request currently served on this
    /// thread. Requests run start-to-finish on one worker thread, so
    /// this is exactly request-scoped.
    static CURRENT: RefCell<Option<(TraceId, Vec<Span>)>> = const { RefCell::new(None) };
}

/// Opens a request-scoped stage collector on this thread. Any
/// [`record_stage`] until [`end_request`] lands in it, stamped with
/// `id`. A leftover collector from an aborted request is discarded.
pub fn begin_request(id: TraceId) {
    CURRENT.with(|c| *c.borrow_mut() = Some((id, Vec::new())));
}

/// The id of the request currently served on this thread, if any —
/// how error bodies deep in the router learn their request id.
pub fn current_trace_id() -> Option<TraceId> {
    CURRENT.with(|c| c.borrow().as_ref().map(|(id, _)| *id))
}

/// Records one stage of the current request (stamping its trace id), or
/// falls back to the global ring when no request is open on this
/// thread. A no-op while the kill switch is off.
pub fn record_stage(mut span: Span) {
    if !crate::enabled() {
        return;
    }
    let fallback = CURRENT.with(|c| match &mut *c.borrow_mut() {
        Some((id, stages)) => {
            span.trace_id = Some(*id);
            if stages.is_empty() {
                // one up-front allocation instead of doubling through
                // 1→2→4→8 as the five standard stages arrive
                stages.reserve(8);
            }
            stages.push(span);
            None
        }
        None => Some(span),
    });
    if let Some(span) = fallback {
        crate::tracer().record(span);
    }
}

/// Reads the stages collected so far (e.g. to render a `Server-Timing`
/// header before the response is written); `None` when no request is
/// open on this thread.
pub fn with_stages<T>(f: impl FnOnce(&[Span]) -> T) -> Option<T> {
    CURRENT.with(|c| c.borrow().as_ref().map(|(_, stages)| f(stages)))
}

/// Closes the collector and returns the request's id and stages.
pub fn end_request() -> Option<(TraceId, Vec<Span>)> {
    CURRENT.with(|c| c.borrow_mut().take())
}

/// A bounded ring of recent spans. When full, the oldest span is
/// evicted and counted in [`Tracer::dropped`].
#[derive(Debug)]
pub struct Tracer {
    capacity: AtomicUsize,
    ring: Mutex<VecDeque<Span>>,
    dropped: AtomicU64,
    /// Mirror of [`Tracer::dropped`] in the metrics registry
    /// (`usi_trace_dropped_total`), set once for the global tracer.
    drop_counter: OnceLock<Arc<crate::Counter>>,
}

impl Tracer {
    /// Ring capacity of the process-global tracer ([`crate::tracer`]).
    pub const DEFAULT_CAPACITY: usize = 256;

    /// A tracer holding at most `capacity` spans (at least one).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: AtomicUsize::new(capacity.max(1)),
            ring: Mutex::new(VecDeque::with_capacity(capacity.max(1))),
            dropped: AtomicU64::new(0),
            drop_counter: OnceLock::new(),
        }
    }

    /// Current ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity.load(Ordering::Relaxed)
    }

    /// Resizes the ring (`--trace-capacity`), evicting oldest spans if
    /// it shrinks below its current length.
    pub fn set_capacity(&self, capacity: usize) {
        let capacity = capacity.max(1);
        let mut ring = self.ring.lock().expect("tracer lock poisoned");
        self.capacity.store(capacity, Ordering::Relaxed);
        while ring.len() > capacity {
            ring.pop_front();
            self.count_drops(1);
        }
    }

    /// Publishes drops as a registry counter as well (the global
    /// tracer wires `usi_trace_dropped_total` here).
    pub fn set_drop_counter(&self, counter: Arc<crate::Counter>) {
        let _ = self.drop_counter.set(counter);
    }

    fn count_drops(&self, n: u64) {
        self.dropped.fetch_add(n, Ordering::Relaxed);
        if let Some(counter) = self.drop_counter.get() {
            counter.add(n);
        }
    }

    /// Appends a span, evicting the oldest if the ring is full.
    /// A no-op while the global kill switch ([`crate::set_enabled`])
    /// is off.
    pub fn record(&self, span: Span) {
        self.record_all(std::iter::once(span));
    }

    /// Appends several spans under one ring lock — the request path
    /// records its root plus every stage in one pass.
    pub fn record_all(&self, spans: impl IntoIterator<Item = Span>) {
        if !crate::enabled() {
            return;
        }
        let capacity = self.capacity.load(Ordering::Relaxed);
        let mut ring = self.ring.lock().expect("tracer lock poisoned");
        for span in spans {
            if ring.len() == capacity {
                ring.pop_front();
                self.count_drops(1);
            }
            ring.push_back(span);
        }
    }

    /// A non-destructive copy of the ring, oldest first — `GET
    /// /v1/trace` serves this, so repeated scrapes see overlapping
    /// windows rather than racing to drain.
    pub fn snapshot(&self) -> Vec<Span> {
        self.ring.lock().expect("tracer lock poisoned").iter().cloned().collect()
    }

    /// The spans of one request still in the ring, oldest first — the
    /// `GET /v1/trace/{trace_id}` fallback when the flight recorder no
    /// longer holds the request.
    pub fn find_trace(&self, id: TraceId) -> Vec<Span> {
        self.ring
            .lock()
            .expect("tracer lock poisoned")
            .iter()
            .filter(|s| s.trace_id == Some(id))
            .cloned()
            .collect()
    }

    /// Empties the ring (tests).
    pub fn clear(&self) {
        self.ring.lock().expect("tracer lock poisoned").clear();
    }

    /// How many spans have been evicted unseen since startup.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(name: &str) -> Span {
        Span::with_duration(
            name.to_string(),
            Instant::now(),
            Duration::from_micros(42),
            vec![("k".into(), "v".to_string())],
        )
    }

    #[test]
    fn ring_keeps_most_recent_and_counts_drops() {
        let tracer = Tracer::new(3);
        for i in 0..5 {
            tracer.record(span(&format!("s{i}")));
        }
        let spans = tracer.snapshot();
        assert_eq!(
            spans.iter().map(|s| s.name.as_ref()).collect::<Vec<_>>(),
            vec!["s2", "s3", "s4"]
        );
        assert_eq!(tracer.dropped(), 2);
        // snapshot is non-destructive
        assert_eq!(tracer.snapshot().len(), 3);
        tracer.clear();
        assert!(tracer.snapshot().is_empty());
    }

    #[test]
    fn span_since_measures_duration() {
        let started = Instant::now();
        let s = Span::since("op", started, Vec::new());
        assert_eq!(s.name, "op");
        // duration is whatever elapsed — just check it's sane
        assert!(s.duration_us < 5_000_000);
        assert_eq!(s.start_ms, s.start_us / 1000);
        assert!(s.trace_id.is_none());
        assert!(s.parent.is_none());
    }

    #[test]
    fn concurrent_recording_never_exceeds_capacity() {
        let tracer = Tracer::new(16);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let tracer = &tracer;
                scope.spawn(move || {
                    for i in 0..100 {
                        tracer.record(span(&format!("t{i}")));
                    }
                });
            }
        });
        assert_eq!(tracer.snapshot().len(), 16);
        assert_eq!(tracer.dropped(), 4 * 100 - 16);
    }

    #[test]
    fn trace_ids_are_unique_and_round_trip_through_hex() {
        let mut seen = std::collections::HashSet::new();
        for _ in 0..10_000 {
            let id = TraceId::generate();
            assert!(seen.insert(id), "duplicate id {id}");
            let hex = id.to_string();
            assert_eq!(hex.len(), 16, "{hex}");
            assert_eq!(TraceId::parse(&hex), Some(id));
        }
        assert_eq!(TraceId::parse(""), None);
        assert_eq!(TraceId::parse("zz"), None);
        assert_eq!(TraceId::parse("00112233445566778899"), None, "over-long ids are refused");
    }

    #[test]
    fn span_guard_builds_tagged_spans() {
        let id = TraceId::generate();
        let span = SpanGuard::start("engine")
            .trace(id)
            .parent("http.request")
            .field("doc", "alpha")
            .field("batch", "3")
            .finish();
        assert_eq!(span.name, "engine");
        assert_eq!(span.trace_id, Some(id));
        assert_eq!(span.parent.as_deref(), Some("http.request"));
        assert_eq!(span.fields.len(), 2);

        let span =
            SpanGuard::since("queue", Instant::now()).finish_with(Duration::from_micros(1234));
        assert_eq!(span.duration_us, 1234);
    }

    #[test]
    fn stage_collector_scopes_spans_to_the_current_request() {
        assert!(current_trace_id().is_none());
        let id = TraceId::generate();
        begin_request(id);
        assert_eq!(current_trace_id(), Some(id));
        record_stage(SpanGuard::start("parse").finish());
        record_stage(SpanGuard::start("engine").finish());
        let n = with_stages(<[Span]>::len);
        assert_eq!(n, Some(2));
        let (got, stages) = end_request().expect("collector open");
        assert_eq!(got, id);
        assert_eq!(stages.len(), 2);
        assert!(stages.iter().all(|s| s.trace_id == Some(id)), "stages are stamped");
        assert!(end_request().is_none(), "collector closes once");
        assert!(current_trace_id().is_none());
    }

    #[test]
    fn find_trace_filters_the_ring_by_id() {
        let tracer = Tracer::new(8);
        let a = TraceId::generate();
        let b = TraceId::generate();
        tracer.record(SpanGuard::start("x").trace(a).finish());
        tracer.record(SpanGuard::start("y").trace(b).finish());
        tracer.record(SpanGuard::start("z").trace(a).finish());
        tracer.record(span("untagged"));
        let mine = tracer.find_trace(a);
        assert_eq!(mine.iter().map(|s| s.name.as_ref()).collect::<Vec<_>>(), vec!["x", "z"]);
    }

    #[test]
    fn set_capacity_shrinks_and_counts() {
        let tracer = Tracer::new(8);
        for i in 0..8 {
            tracer.record(span(&format!("s{i}")));
        }
        tracer.set_capacity(3);
        assert_eq!(tracer.capacity(), 3);
        assert_eq!(tracer.snapshot().len(), 3);
        assert_eq!(tracer.dropped(), 5);
        tracer.record(span("new"));
        assert_eq!(tracer.snapshot().len(), 3);
    }
}
