//! A lightweight structured-event tracer: a bounded ring of recent
//! [`Span`]s, drained via `GET /v1/trace` instead of a logging
//! framework. Recording locks a `Mutex` around the ring — spans are
//! per-request events (not per-query), so contention is negligible next
//! to the I/O they describe.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// One completed operation: a name, when it started (milliseconds since
/// [`crate::process_start`]), how long it took, and free-form key/value
/// fields (route, doc id, status, …).
#[derive(Debug, Clone)]
pub struct Span {
    /// Operation name, e.g. `http.request` or `ingest.seal`.
    pub name: String,
    /// Start time in milliseconds since the process epoch.
    pub start_ms: u64,
    /// Duration in microseconds.
    pub duration_us: u64,
    /// Free-form context fields, in recording order.
    pub fields: Vec<(String, String)>,
}

impl Span {
    /// Builds a span from a start [`Instant`] captured with
    /// [`Instant::now`] when the operation began; duration is measured
    /// here, so call this at completion.
    pub fn since(name: impl Into<String>, started: Instant, fields: Vec<(String, String)>) -> Self {
        Self::with_duration(name, started, started.elapsed(), fields)
    }

    /// Builds a span from an explicit start and duration (when the
    /// caller already measured, e.g. to reuse one `elapsed()` for both
    /// a histogram and the trace).
    pub fn with_duration(
        name: impl Into<String>,
        started: Instant,
        duration: Duration,
        fields: Vec<(String, String)>,
    ) -> Self {
        let start_ms = started.saturating_duration_since(crate::process_start()).as_millis() as u64;
        Self { name: name.into(), start_ms, duration_us: duration.as_micros() as u64, fields }
    }
}

/// A bounded ring of recent spans. When full, the oldest span is
/// evicted and counted in [`Tracer::dropped`].
#[derive(Debug)]
pub struct Tracer {
    capacity: usize,
    ring: Mutex<VecDeque<Span>>,
    dropped: AtomicU64,
}

impl Tracer {
    /// Ring capacity of the process-global tracer ([`crate::tracer`]).
    pub const DEFAULT_CAPACITY: usize = 256;

    /// A tracer holding at most `capacity` spans (at least one).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            ring: Mutex::new(VecDeque::with_capacity(capacity.max(1))),
            dropped: AtomicU64::new(0),
        }
    }

    /// Appends a span, evicting the oldest if the ring is full.
    /// A no-op while the global kill switch ([`crate::set_enabled`])
    /// is off.
    pub fn record(&self, span: Span) {
        if !crate::enabled() {
            return;
        }
        let mut ring = self.ring.lock().expect("tracer lock poisoned");
        if ring.len() == self.capacity {
            ring.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(span);
    }

    /// A non-destructive copy of the ring, oldest first — `GET
    /// /v1/trace` serves this, so repeated scrapes see overlapping
    /// windows rather than racing to drain.
    pub fn snapshot(&self) -> Vec<Span> {
        self.ring.lock().expect("tracer lock poisoned").iter().cloned().collect()
    }

    /// Empties the ring (tests).
    pub fn clear(&self) {
        self.ring.lock().expect("tracer lock poisoned").clear();
    }

    /// How many spans have been evicted unseen since startup.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(name: &str) -> Span {
        Span::with_duration(
            name,
            Instant::now(),
            Duration::from_micros(42),
            vec![("k".to_string(), "v".to_string())],
        )
    }

    #[test]
    fn ring_keeps_most_recent_and_counts_drops() {
        let tracer = Tracer::new(3);
        for i in 0..5 {
            tracer.record(span(&format!("s{i}")));
        }
        let spans = tracer.snapshot();
        assert_eq!(
            spans.iter().map(|s| s.name.as_str()).collect::<Vec<_>>(),
            vec!["s2", "s3", "s4"]
        );
        assert_eq!(tracer.dropped(), 2);
        // snapshot is non-destructive
        assert_eq!(tracer.snapshot().len(), 3);
        tracer.clear();
        assert!(tracer.snapshot().is_empty());
    }

    #[test]
    fn span_since_measures_duration() {
        let started = Instant::now();
        let s = Span::since("op", started, Vec::new());
        assert_eq!(s.name, "op");
        // duration is whatever elapsed — just check it's sane
        assert!(s.duration_us < 5_000_000);
    }

    #[test]
    fn concurrent_recording_never_exceeds_capacity() {
        let tracer = Tracer::new(16);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let tracer = &tracer;
                scope.spawn(move || {
                    for i in 0..100 {
                        tracer.record(span(&format!("t{i}")));
                    }
                });
            }
        });
        assert_eq!(tracer.snapshot().len(), 16);
        assert_eq!(tracer.dropped(), 4 * 100 - 16);
    }
}
