//! `usi_obs` — operational telemetry for the serving stack: a
//! process-global metrics registry with lock-free atomic instruments,
//! a Prometheus text-format encoder, and a lightweight structured-event
//! tracer.
//!
//! Like the rest of the workspace the crate is **std-only** (no
//! registry access in the build environment), which shapes the design:
//!
//! * [`Counter`] and [`Gauge`] are single atomics; [`Histogram`] is a
//!   fixed set of buckets with one atomic per bucket plus an atomic
//!   `f64`-bits sum and a count — every observation is a handful of
//!   relaxed atomic ops, no locks, no allocation.
//! * Labels are supported through *vec* families ([`CounterVec`],
//!   [`GaugeVec`], [`HistogramVec`]): a label set is resolved to a
//!   shared handle **once** (allocating only on first registration),
//!   and hot paths hold the handle — observations never take the
//!   family lock.
//! * [`Registry::encode`] renders the whole registry in the Prometheus
//!   text exposition format (`# HELP` / `# TYPE`, `_bucket{le=…}` /
//!   `_sum` / `_count` for histograms), so any standard scraper can
//!   consume `GET /metrics` unchanged.
//! * [`set_enabled`] is a process-wide kill switch: observations
//!   short-circuit while it is off (encoding still serves the frozen
//!   values) — the operational escape hatch, and how the
//!   `metrics_overhead` bench isolates instrumentation cost.
//! * [`Tracer`] keeps a bounded ring of recent [`Span`]s
//!   (name, start, duration, free-form fields) drained via an endpoint
//!   (`GET /v1/trace`) instead of pulling in a logging framework.
//!
//! The process-global entry points are [`global()`] (the registry every
//! crate in the workspace registers into), [`tracer()`] and
//! [`process_start()`] (the uptime epoch, pinned on first touch).

pub mod metrics;
pub mod trace;

pub use metrics::{
    default_latency_buckets, enabled, exponential_buckets, linear_buckets, set_enabled, Counter,
    CounterVec, Gauge, GaugeVec, Histogram, HistogramVec, Registry,
};
pub use trace::{Span, Tracer};

use std::sync::OnceLock;
use std::time::Instant;

/// The process-global registry. Every crate in the workspace registers
/// its instruments here; `GET /metrics` encodes it.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// The process-global span tracer behind `GET /v1/trace`.
pub fn tracer() -> &'static Tracer {
    static TRACER: OnceLock<Tracer> = OnceLock::new();
    TRACER.get_or_init(|| Tracer::new(Tracer::DEFAULT_CAPACITY))
}

/// The uptime epoch: pinned the first time anything asks (the server
/// touches it at startup, so `/healthz` uptime measures serving time).
pub fn process_start() -> Instant {
    static START: OnceLock<Instant> = OnceLock::new();
    *START.get_or_init(Instant::now)
}

/// Seconds since [`process_start`], whole seconds.
pub fn uptime_seconds() -> u64 {
    process_start().elapsed().as_secs()
}
