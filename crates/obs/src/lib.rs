//! `usi_obs` — operational telemetry for the serving stack: a
//! process-global metrics registry with lock-free atomic instruments,
//! a Prometheus text-format encoder, and a lightweight structured-event
//! tracer.
//!
//! Like the rest of the workspace the crate is **std-only** (no
//! registry access in the build environment), which shapes the design:
//!
//! * [`Counter`] and [`Gauge`] are single atomics; [`Histogram`] is a
//!   fixed set of buckets with one atomic per bucket plus an atomic
//!   `f64`-bits sum and a count — every observation is a handful of
//!   relaxed atomic ops, no locks, no allocation.
//! * Labels are supported through *vec* families ([`CounterVec`],
//!   [`GaugeVec`], [`HistogramVec`]): a label set is resolved to a
//!   shared handle **once** (allocating only on first registration),
//!   and hot paths hold the handle — observations never take the
//!   family lock.
//! * [`Registry::encode`] renders the whole registry in the Prometheus
//!   text exposition format (`# HELP` / `# TYPE`, `_bucket{le=…}` /
//!   `_sum` / `_count` for histograms), so any standard scraper can
//!   consume `GET /metrics` unchanged.
//! * [`set_enabled`] is a process-wide kill switch: observations
//!   short-circuit while it is off (encoding still serves the frozen
//!   values) — the operational escape hatch, and how the
//!   `metrics_overhead` bench isolates instrumentation cost.
//! * [`Tracer`] keeps a bounded ring of recent [`Span`]s
//!   (name, start, duration, free-form fields) drained via an endpoint
//!   (`GET /v1/trace`) instead of pulling in a logging framework. Spans
//!   carry a [`TraceId`] and parent so one request's stage tree can be
//!   reassembled (`GET /v1/trace/{trace_id}`).
//! * [`FlightRecorder`] keeps the complete stage tree of recent **slow
//!   or errored** requests (`GET /debug/requests`) — the requests worth
//!   a post-mortem survive even when the span ring has churned.
//!
//! The process-global entry points are [`global()`] (the registry every
//! crate in the workspace registers into), [`tracer()`], [`flight()`]
//! and [`process_start()`] (the uptime epoch, pinned on first touch).

pub mod flight;
pub mod metrics;
pub mod trace;

pub use flight::{FlightRecord, FlightRecorder};
pub use metrics::{
    default_latency_buckets, enabled, exponential_buckets, linear_buckets, set_enabled, Counter,
    CounterVec, Gauge, GaugeVec, Histogram, HistogramVec, Registry,
};
pub use trace::{
    begin_request, current_trace_id, end_request, record_stage, with_stages, Span, SpanGuard,
    TraceId, Tracer,
};

use std::sync::OnceLock;
use std::time::Instant;

/// The process-global registry. Every crate in the workspace registers
/// its instruments here; `GET /metrics` encodes it.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// The process-global span tracer behind `GET /v1/trace`. Evictions
/// are mirrored to `usi_trace_dropped_total` in [`global()`].
pub fn tracer() -> &'static Tracer {
    static TRACER: OnceLock<Tracer> = OnceLock::new();
    TRACER.get_or_init(|| {
        let tracer = Tracer::new(Tracer::DEFAULT_CAPACITY);
        tracer.set_drop_counter(global().counter(
            "usi_trace_dropped_total",
            "Spans evicted unseen from the trace ring since startup",
        ));
        tracer
    })
}

/// The process-global flight recorder behind `GET /debug/requests`.
/// Evictions are mirrored to `usi_flight_dropped_total` in
/// [`global()`].
pub fn flight() -> &'static FlightRecorder {
    static FLIGHT: OnceLock<FlightRecorder> = OnceLock::new();
    FLIGHT.get_or_init(|| {
        let recorder = FlightRecorder::new(FlightRecorder::DEFAULT_CAPACITY);
        recorder.set_drop_counter(global().counter(
            "usi_flight_dropped_total",
            "Flight records evicted unseen from the recorder since startup",
        ));
        recorder
    })
}

/// The uptime epoch: pinned the first time anything asks (the server
/// touches it at startup, so `/healthz` uptime measures serving time).
pub fn process_start() -> Instant {
    static START: OnceLock<Instant> = OnceLock::new();
    *START.get_or_init(Instant::now)
}

/// Seconds since [`process_start`], whole seconds.
pub fn uptime_seconds() -> u64 {
    process_start().elapsed().as_secs()
}
