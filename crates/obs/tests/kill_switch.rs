//! The global kill switch, exercised in its own integration binary:
//! `set_enabled` flips a process-wide flag, so this must not share a
//! process with tests that assert exact observation counts.

use std::time::{Duration, Instant};
use usi_obs::{Registry, Span, Tracer};

#[test]
fn disabled_telemetry_drops_observations_and_recovers() {
    let registry = Registry::new();
    let counter = registry.counter("ks_counter", "a counter");
    let gauge = registry.gauge("ks_gauge", "a gauge");
    let histogram = registry.histogram("ks_histogram", "a histogram", vec![1.0, 2.0]);
    let tracer = Tracer::new(4);

    counter.inc();
    gauge.set(7);
    histogram.observe(1.5);
    tracer.record(Span::with_duration("on", Instant::now(), Duration::ZERO, Vec::new()));

    assert!(usi_obs::enabled());
    usi_obs::set_enabled(false);
    counter.add(100);
    gauge.set(-3);
    gauge.inc();
    histogram.observe(0.5);
    tracer.record(Span::with_duration("off", Instant::now(), Duration::ZERO, Vec::new()));

    // nothing moved while disabled…
    assert_eq!(counter.get(), 1);
    assert_eq!(gauge.get(), 7);
    assert_eq!(histogram.count(), 1);
    assert_eq!(tracer.snapshot().len(), 1);

    // …and encoding still serves the frozen values
    let text = registry.encode();
    assert!(text.contains("ks_counter 1"), "{text}");
    assert!(text.contains("ks_gauge 7"), "{text}");

    usi_obs::set_enabled(true);
    counter.inc();
    histogram.observe(0.5);
    tracer.record(Span::with_duration("back", Instant::now(), Duration::ZERO, Vec::new()));
    assert_eq!(counter.get(), 2);
    assert_eq!(histogram.count(), 2);
    assert_eq!(tracer.snapshot().last().map(|s| s.name.clone()).as_deref(), Some("back"));
}
