//! Table I (the ADV case study of Section II) and Table II (dataset
//! properties).

use crate::context::ExperimentContext;
use crate::report::{fmt_duration, Report};
use std::time::Instant;
use usi_core::oracle::TopKOracle;
use usi_core::UsiBuilder;
use usi_datasets::Dataset;
use usi_strings::text::display_bytes;
use usi_strings::Alphabet;

/// Cap on the number of distinct substrings enumerated for the case
/// study (the real ADV has 187,883 of length 3..=200; synthetic
/// instances can have more).
const MAX_PATTERNS: usize = 250_000;

/// Table I / Section II: query every length-\[3,200\] substring of ADV,
/// report total query time, and contrast the top-4 substrings by global
/// utility with the top-4 by frequency.
pub fn table1(ctx: &ExperimentContext) -> Vec<Report> {
    let ds = Dataset::Adv;
    let ws = ctx.generate(ds);
    let n = ws.len();
    let k = ctx.default_k(ds, n);
    let index = UsiBuilder::new().with_k(k).deterministic(ctx.seed).build(ws.clone());
    let (oracle, sa) = TopKOracle::from_text(ws.text());

    // Enumerate distinct substrings with length in [3, 200] as
    // (witness, len) pairs straight off the oracle entries.
    let mut patterns: Vec<(u32, u32)> = Vec::new();
    'outer: for e in oracle.entries() {
        let lo = (e.parent_depth + 1).max(3);
        let hi = e.depth.min(200);
        for len in lo..=hi {
            if patterns.len() >= MAX_PATTERNS {
                break 'outer;
            }
            patterns.push((sa[e.lb as usize], len));
        }
    }

    // Query them all, timing the whole batch (the paper's 3.4 s for
    // 187,883 patterns) and remembering every utility for rank lookups.
    let start = Instant::now();
    let mut utilities: Vec<f64> = Vec::with_capacity(patterns.len());
    for &(pos, len) in &patterns {
        let pat = &ws.text()[pos as usize..(pos + len) as usize];
        utilities.push(index.query(pat).value.unwrap_or(0.0));
    }
    let total_time = start.elapsed();

    let rank_of = |u: f64| 1 + utilities.iter().filter(|&&x| x > u).count();

    // (a) top-4 by global utility
    let mut by_utility: Vec<usize> = (0..patterns.len()).collect();
    by_utility.sort_unstable_by(|&a, &b| utilities[b].total_cmp(&utilities[a]));
    let mut table_a = Report::new(
        "table1a",
        "Top-4 substrings (length ≥ 3) by global utility (Table Ia)",
        &["rank", "substring", "len", "freq", "utility"],
    );
    for (rank, &i) in by_utility.iter().take(4).enumerate() {
        let (pos, len) = patterns[i];
        let pat = &ws.text()[pos as usize..(pos + len) as usize];
        let freq = index.query(pat).occurrences;
        table_a.rowf(&[
            &(rank + 1),
            &display_bytes(&pat[..pat.len().min(24)]),
            &len,
            &freq,
            &format!("{:.1}", utilities[i]),
        ]);
    }

    // (b) top-4 by frequency (length ≥ 3) with their utility ranks
    let mut table_b = Report::new(
        "table1b",
        "Top-4 frequent substrings (length ≥ 3) and their utility ranks (Table Ib)",
        &["substring", "len", "freq", "utility", "utility rank"],
    );
    let mut emitted = 0;
    'freq: for e in oracle.entries() {
        let lo = (e.parent_depth + 1).max(3);
        for len in lo..=e.depth {
            if emitted == 4 {
                break 'freq;
            }
            let pos = sa[e.lb as usize];
            let pat = &ws.text()[pos as usize..pos as usize + len as usize];
            let q = index.query(pat);
            let u = q.value.unwrap_or(0.0);
            table_b.rowf(&[
                &display_bytes(&pat[..pat.len().min(24)]),
                &len,
                &q.occurrences,
                &format!("{u:.1}"),
                &rank_of(u),
            ]);
            emitted += 1;
        }
    }

    let mut summary = Report::new(
        "table1-summary",
        "Case-study batch query cost (Section II: 187,883 patterns in 3.4 s on real ADV)",
        &["patterns", "total time", "avg / query"],
    );
    summary.rowf(&[
        &patterns.len(),
        &fmt_duration(total_time),
        &fmt_duration(total_time / patterns.len().max(1) as u32),
    ]);
    vec![table_a, table_b, summary]
}

/// Table II: dataset properties plus the oracle-derived tuning values.
pub fn table2(ctx: &ExperimentContext) -> Vec<Report> {
    let mut report = Report::new(
        "table2",
        "Dataset properties and defaults (Table II; lengths scaled, see EXPERIMENTS.md)",
        &["dataset", "n", "sigma", "K", "s", "distinct substrings", "tau_K", "L_K"],
    );
    for ds in ctx.datasets() {
        let ws = ctx.generate(ds);
        let n = ws.len();
        let sigma = Alphabet::from_text(ws.text()).sigma();
        let k = ctx.default_k(ds, n);
        let s = ctx.default_s(ds);
        let (oracle, _) = TopKOracle::from_text(ws.text());
        let tune = oracle.tune_for_k(k as u64).expect("non-empty dataset");
        report.rowf(&[
            &ds.spec().name,
            &n,
            &sigma,
            &k,
            &s,
            &oracle.total_distinct_substrings(),
            &tune.tau,
            &tune.distinct_lengths,
        ]);
    }
    vec![report]
}
