//! Figs. 3 and 4: effectiveness of the top-K substring miners
//! (Accuracy and NDCG of AT / TT / SH against the exact top-K).

use crate::context::{scaled_k_sweep, ExperimentContext};
use crate::miners::{run_miner, score_run, MinerKind};
use crate::report::Report;
use usi_core::metrics::EffectivenessReport;
use usi_core::oracle::exact_top_k;
use usi_datasets::Dataset;

/// Scores AT / TT / SH on one `(text, k, s)` configuration.
fn score_all(text: &[u8], k: usize, s: usize, seed: u64) -> [EffectivenessReport; 3] {
    let (exact, sa) = exact_top_k(text, k);
    let kinds = [MinerKind::Approximate { s }, MinerKind::TopKTrie, MinerKind::SubstringHk];
    kinds.map(|kind| {
        let run = run_miner(kind, text, k, seed);
        score_run(text, &sa, &exact, &run)
    })
}

/// Fig. 3a–e: Accuracy vs `K` (five values per dataset, default `s`).
pub fn accuracy_vs_k(ctx: &ExperimentContext) -> Vec<Report> {
    let mut report = Report::new(
        "fig3-accuracy-k",
        "Accuracy (%) of AT/TT/SH vs K (Fig. 3a-e; ET is exact by definition)",
        &["dataset", "n", "K", "s", "AT", "TT", "SH"],
    );
    for ds in ctx.datasets() {
        let ws = ctx.generate(ds);
        let n = ws.len();
        let s = ctx.default_s(ds);
        for k in scaled_k_sweep(ctx, ds, n) {
            let [at, tt, sh] = score_all(ws.text(), k, s, ctx.seed);
            report.rowf(&[
                &ds.spec().name,
                &n,
                &k,
                &s,
                &format!("{:.1}", at.accuracy * 100.0),
                &format!("{:.1}", tt.accuracy * 100.0),
                &format!("{:.1}", sh.accuracy * 100.0),
            ]);
        }
    }
    vec![report]
}

/// Fig. 3f–i: Accuracy vs `n` (five prefixes per dataset).
pub fn accuracy_vs_n(ctx: &ExperimentContext) -> Vec<Report> {
    let mut report = Report::new(
        "fig3-accuracy-n",
        "Accuracy (%) of AT/TT/SH vs n (Fig. 3f-i)",
        &["dataset", "n", "K", "s", "AT", "TT", "SH"],
    );
    for ds in ctx.datasets() {
        let full = ctx.generate(ds);
        let s = ctx.default_s(ds);
        for n in ctx.n_sweep(ds) {
            let text = &full.text()[..n];
            let k = ctx.default_k(ds, n);
            let [at, tt, sh] = score_all(text, k, s, ctx.seed);
            report.rowf(&[
                &ds.spec().name,
                &n,
                &k,
                &s,
                &format!("{:.1}", at.accuracy * 100.0),
                &format!("{:.1}", tt.accuracy * 100.0),
                &format!("{:.1}", sh.accuracy * 100.0),
            ]);
        }
    }
    vec![report]
}

/// Fig. 3j / 4a–c: Accuracy of AT vs `s`.
pub fn accuracy_vs_s(ctx: &ExperimentContext) -> Vec<Report> {
    let mut report = Report::new(
        "fig4-accuracy-s",
        "Accuracy (%) of AT vs s (Fig. 3j, 4a-c)",
        &["dataset", "n", "K", "s", "AT"],
    );
    for ds in ctx.datasets() {
        let ws = ctx.generate(ds);
        let n = ws.len();
        let k = ctx.default_k(ds, n);
        let (exact, sa) = exact_top_k(ws.text(), k);
        for s in ctx.s_sweep(ds) {
            let run = run_miner(MinerKind::Approximate { s }, ws.text(), k, ctx.seed);
            let score = score_run(ws.text(), &sa, &exact, &run);
            report.rowf(&[&ds.spec().name, &n, &k, &s, &format!("{:.1}", score.accuracy * 100.0)]);
        }
    }
    vec![report]
}

/// Fig. 4d: NDCG of AT / TT / SH on all datasets (defaults).
pub fn ndcg_all(ctx: &ExperimentContext) -> Vec<Report> {
    let mut report = Report::new(
        "fig4-ndcg",
        "NDCG of AT/TT/SH at default K and s (Fig. 4d)",
        &["dataset", "n", "K", "s", "AT", "TT", "SH"],
    );
    for ds in ctx.datasets() {
        let ws = ctx.generate(ds);
        let n = ws.len();
        let k = ctx.default_k(ds, n);
        let s = ctx.default_s(ds);
        let [at, tt, sh] = score_all(ws.text(), k, s, ctx.seed);
        report.rowf(&[
            &ds.spec().name,
            &n,
            &k,
            &s,
            &format!("{:.4}", at.ndcg),
            &format!("{:.4}", tt.ndcg),
            &format!("{:.4}", sh.ndcg),
        ]);
    }
    vec![report]
}

/// Fig. 4e: NDCG of AT vs `s` (ECOLI in the paper).
pub fn ndcg_vs_s(ctx: &ExperimentContext) -> Vec<Report> {
    let mut report = Report::new(
        "fig4-ndcg-s",
        "NDCG of AT vs s on ECOLI (Fig. 4e)",
        &["dataset", "n", "K", "s", "NDCG"],
    );
    let ds = Dataset::Ecoli;
    let ws = ctx.generate(ds);
    let n = ws.len();
    let k = ctx.default_k(ds, n);
    let (exact, sa) = exact_top_k(ws.text(), k);
    for s in ctx.s_sweep(ds) {
        let run = run_miner(MinerKind::Approximate { s }, ws.text(), k, ctx.seed);
        let score = score_run(ws.text(), &sa, &exact, &run);
        report.rowf(&[&ds.spec().name, &n, &k, &s, &format!("{:.4}", score.ndcg)]);
    }
    vec![report]
}
