//! Fig. 6: query time, index size and construction time of `UET`/`UAT`
//! versus the four baselines.

use crate::context::{scaled_k_sweep, ExperimentContext};
use crate::experiments::methods::{build_method, replay, Method};
use crate::report::{fmt_bytes, fmt_duration, Report};
use usi_core::oracle::TopKOracle;
use usi_datasets::{w1, w2p, Dataset, Workload};
use usi_strings::WeightedString;

/// Builds the `W1` workload for a dataset instance.
fn w1_for(ctx: &ExperimentContext, ds: Dataset, ws: &WeightedString) -> Workload {
    let (oracle, sa) = TopKOracle::from_text(ws.text());
    let denom = if ds == Dataset::Ecoli { 60 } else { 50 };
    w1(
        ws.text(),
        &oracle,
        &sa,
        ctx.query_count(ds),
        denom,
        ds.spec().pattern_len_range,
        ctx.seed ^ 0x3031,
    )
}

/// Fig. 6a–e: average query time vs `K` on `W1`.
pub fn query_vs_k(ctx: &ExperimentContext) -> Vec<Report> {
    let mut report = Report::new(
        "fig6-query-k",
        "Average W1 query time vs K (Fig. 6a-e)",
        &["dataset", "n", "K", "UET", "UAT", "BSL1", "BSL2", "BSL3", "BSL4"],
    );
    for ds in ctx.datasets() {
        let ws = ctx.generate(ds);
        let n = ws.len();
        let s = ctx.default_s(ds);
        let workload = w1_for(ctx, ds, &ws);
        for k in scaled_k_sweep(ctx, ds, n) {
            let mut cells = vec![ds.spec().name.to_string(), n.to_string(), k.to_string()];
            for method in Method::lineup(s) {
                let mut built = build_method(method, &ws, k, ctx.seed);
                let avg = replay(built.engine.as_mut(), &workload.queries);
                cells.push(fmt_duration(avg));
            }
            report.row(&cells);
        }
    }
    vec![report]
}

/// Fig. 6f–j: average query time vs `p` on `W2,p`.
pub fn query_vs_p(ctx: &ExperimentContext) -> Vec<Report> {
    let mut report = Report::new(
        "fig6-query-p",
        "Average W2,p query time vs p (Fig. 6f-j)",
        &["dataset", "n", "p%", "UET", "UAT", "BSL1", "BSL2", "BSL3", "BSL4"],
    );
    for ds in ctx.datasets() {
        let ws = ctx.generate(ds);
        let n = ws.len();
        let k = ctx.default_k(ds, n);
        let s = ctx.default_s(ds);
        let (oracle, sa) = TopKOracle::from_text(ws.text());
        let denom = if ds == Dataset::Ecoli { 60 } else { 50 };
        for p in [20usize, 40, 60, 80] {
            let workload = w2p(
                ws.text(),
                &oracle,
                &sa,
                ctx.query_count(ds),
                p,
                denom,
                ds.spec().pattern_len_range,
                ctx.seed ^ 0x3270 ^ p as u64,
            );
            let mut cells = vec![ds.spec().name.to_string(), n.to_string(), p.to_string()];
            for method in Method::lineup(s) {
                let mut built = build_method(method, &ws, k, ctx.seed);
                let avg = replay(built.engine.as_mut(), &workload.queries);
                cells.push(fmt_duration(avg));
            }
            report.row(&cells);
        }
    }
    vec![report]
}

/// The datasets plotted in the paper's size panels (Fig. 6k–p).
fn size_datasets() -> [Dataset; 3] {
    [Dataset::Xml, Dataset::Hum, Dataset::Adv]
}

/// Fig. 6k–m: index size vs `K`.
pub fn size_vs_k(ctx: &ExperimentContext) -> Vec<Report> {
    let mut report = Report::new(
        "fig6-size-k",
        "Index size vs K (Fig. 6k-m) — SA-dominated, near-identical",
        &["dataset", "n", "K", "UET", "UAT", "BSL1", "BSL2", "BSL3", "BSL4"],
    );
    for ds in size_datasets() {
        let ws = ctx.generate(ds);
        let n = ws.len();
        let s = ctx.default_s(ds);
        let workload = w1_for(ctx, ds, &ws);
        for k in scaled_k_sweep(ctx, ds, n) {
            let mut cells = vec![ds.spec().name.to_string(), n.to_string(), k.to_string()];
            for method in Method::lineup(s) {
                let mut built = build_method(method, &ws, k, ctx.seed);
                // caches fill up before they are measured, as in the paper
                replay(built.engine.as_mut(), &workload.queries[..workload.len().min(500)]);
                cells.push(fmt_bytes(built.engine.index_size()));
            }
            report.row(&cells);
        }
    }
    vec![report]
}

/// Fig. 6n–p: index size vs `n`.
pub fn size_vs_n(ctx: &ExperimentContext) -> Vec<Report> {
    let mut report = Report::new(
        "fig6-size-n",
        "Index size vs n (Fig. 6n-p)",
        &["dataset", "n", "K", "UET", "UAT", "BSL1", "BSL2", "BSL3", "BSL4"],
    );
    for ds in size_datasets() {
        let full = ctx.generate(ds);
        let s = ctx.default_s(ds);
        for n in ctx.n_sweep(ds) {
            let ws = WeightedString::new(full.text()[..n].to_vec(), full.weights()[..n].to_vec())
                .expect("prefix slicing preserves lengths");
            let k = ctx.default_k(ds, n);
            let mut cells = vec![ds.spec().name.to_string(), n.to_string(), k.to_string()];
            for method in Method::lineup(s) {
                let built = build_method(method, &ws, k, ctx.seed);
                cells.push(fmt_bytes(built.engine.index_size()));
            }
            report.row(&cells);
        }
    }
    vec![report]
}

/// The datasets plotted in the construction-time panels (Fig. 6q–t).
fn build_datasets() -> [Dataset; 2] {
    [Dataset::Xml, Dataset::Hum]
}

/// Fig. 6q,r: construction time vs `K`.
pub fn build_vs_k(ctx: &ExperimentContext) -> Vec<Report> {
    let mut report = Report::new(
        "fig6-build-k",
        "Construction time vs K (Fig. 6q,r)",
        &["dataset", "n", "K", "UET", "UAT", "BSL1", "BSL2", "BSL3", "BSL4"],
    );
    for ds in build_datasets() {
        let ws = ctx.generate(ds);
        let n = ws.len();
        let s = ctx.default_s(ds);
        for k in scaled_k_sweep(ctx, ds, n) {
            let mut cells = vec![ds.spec().name.to_string(), n.to_string(), k.to_string()];
            for method in Method::lineup(s) {
                let built = build_method(method, &ws, k, ctx.seed);
                cells.push(fmt_duration(built.build_time));
            }
            report.row(&cells);
        }
    }
    vec![report]
}

/// Fig. 6s,t: construction time vs `n`.
pub fn build_vs_n(ctx: &ExperimentContext) -> Vec<Report> {
    let mut report = Report::new(
        "fig6-build-n",
        "Construction time vs n (Fig. 6s,t)",
        &["dataset", "n", "K", "UET", "UAT", "BSL1", "BSL2", "BSL3", "BSL4"],
    );
    for ds in build_datasets() {
        let full = ctx.generate(ds);
        let s = ctx.default_s(ds);
        for n in ctx.n_sweep(ds) {
            let ws = WeightedString::new(full.text()[..n].to_vec(), full.weights()[..n].to_vec())
                .expect("prefix slicing preserves lengths");
            let k = ctx.default_k(ds, n);
            let mut cells = vec![ds.spec().name.to_string(), n.to_string(), k.to_string()];
            for method in Method::lineup(s) {
                let built = build_method(method, &ws, k, ctx.seed);
                cells.push(fmt_duration(built.build_time));
            }
            report.row(&cells);
        }
    }
    vec![report]
}
